//! Umbrella crate for the kmem reproduction workspace.
//!
//! Re-exports the component crates so examples and integration tests can
//! use one dependency. The interesting code lives in:
//!
//! * [`kmem`] — the four-layer allocator (the paper's contribution);
//! * [`kmem_vm`] / [`kmem_smp`] — the VM and SMP substrates;
//! * [`kmem_baselines`] — McKusick–Karels and "oldkma" (Fast Fits);
//! * [`kmem_streams`] — the STREAMS buffer allocator;
//! * [`kmem_dlm`] — the distributed lock manager workload;
//! * [`kmem_sim`] — the discrete-event SMP simulator;
//! * [`kmem_bench`] — the experiment harnesses (see `DESIGN.md` §4).

pub use kmem;
pub use kmem_baselines;
pub use kmem_bench;
pub use kmem_dlm;
pub use kmem_sim;
pub use kmem_smp;
pub use kmem_streams;
pub use kmem_vm;
