//! The paper's cyclic (day/night) workload: coalescing in anger.
//!
//! "The machine might be used for data entry and queries as part of a
//! distributed database during the day, and for backups and database
//! reorganization at night. These different activities often require
//! different sizes of memory allocations." The allocator must move memory
//! between size classes — and back to the system for user processes —
//! *online*, with no reboot and no offline coalescing pause.
//!
//! Run with `cargo run --release --example cyclic_workload`.

use kmem::{verify, AllocError, KmemArena, KmemConfig};
use kmem_vm::SpaceConfig;

const DAYS: usize = 3;

fn main() {
    // A deliberately small machine: 4 MB of physical memory, so the day
    // and night workloads genuinely compete for the same frames.
    let arena = KmemArena::new(KmemConfig::new(
        1,
        SpaceConfig::new(64 << 20).phys_pages(1024),
    ))
    .expect("arena");
    let cpu = arena.register_cpu().expect("cpu");

    for day in 1..=DAYS {
        // ---- Daytime: OLTP. Huge numbers of small lock-tracking blocks.
        let mut locks = Vec::new();
        loop {
            match cpu.alloc(48) {
                Ok(p) => locks.push(p),
                Err(AllocError::OutOfMemory { .. }) => break,
                Err(e) => panic!("{e}"),
            }
        }
        let day_blocks = locks.len();
        let day_frames = arena.space().phys().in_use();
        // Evening: transactions drain.
        for p in locks {
            // SAFETY: allocated above, freed once.
            unsafe { cpu.free_sized(p, 48) };
        }

        // ---- Nighttime: backups want massive buffers instead.
        // No reboot, no sleep between phases: the coalesce layers hand the
        // very same frames back out as 64 KB buffers.
        let mut buffers = Vec::new();
        loop {
            match cpu.alloc(64 * 1024) {
                Ok(p) => buffers.push(p),
                Err(AllocError::OutOfMemory { .. }) => break,
                Err(e) => panic!("{e}"),
            }
        }
        let night_buffers = buffers.len();
        let night_frames = arena.space().phys().in_use();
        for p in buffers {
            // SAFETY: allocated above, freed once.
            unsafe { cpu.free(p) };
        }

        // And at dawn, memory returns to "user processes": everything
        // flows back to the physical pool.
        cpu.flush();
        arena.reclaim();
        verify::verify_empty(&arena);
        println!(
            "day {day}: {day_blocks:7} x 48 B lock records ({day_frames} frames) \
             -> {night_buffers:3} x 64 KB backup buffers ({night_frames} frames) \
             -> all {} frames returned",
            arena.space().phys().capacity()
        );
    }
    println!(
        "\n{} day/night cycles, zero reboots, zero offline coalescing pauses \
         - every frame re-crossed size classes online.",
        DAYS
    );
}
