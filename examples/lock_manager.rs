//! The distributed lock manager over kmem — the paper's realistic
//! workload.
//!
//! Four workers hammer a shared resource space with OLTP-style lock
//! traffic (mostly reads, some updates, occasional exclusives), handing
//! granted locks between CPUs, then the allocator's per-layer miss rates
//! are printed. Run with `cargo run --release --example lock_manager`.

use std::sync::Arc;

use kmem::{KmemArena, KmemConfig};
use kmem_dlm::workload::{run_worker, SharedLocks, WorkloadConfig};
use kmem_dlm::{Dlm, LockStatus, Mode};

fn main() {
    let arena = KmemArena::new(KmemConfig::small()).expect("arena");
    let dlm = Dlm::new(arena.clone(), 128);

    // --- Direct API tour --------------------------------------------------
    let cpu = arena.register_cpu().expect("cpu");
    let (h1, st1) = dlm.lock(&cpu, 42, Mode::Pr).expect("lock");
    let (h2, st2) = dlm.lock(&cpu, 42, Mode::Pr).expect("lock");
    println!("two protected-read locks on resource 42: {st1:?}, {st2:?}");
    let (hx, stx) = dlm.lock(&cpu, 42, Mode::Ex).expect("lock");
    println!("an exclusive must wait behind them:      {stx:?}");
    dlm.unlock(&cpu, h1);
    dlm.unlock(&cpu, h2);
    println!(
        "after the readers release, the exclusive is {:?}",
        dlm.poll(&hx)
    );
    assert_eq!(dlm.poll(&hx), LockStatus::Granted);
    // Down-convert to concurrent-read; others could now share.
    assert!(dlm.convert(&cpu, &hx, Mode::Cr));
    dlm.unlock(&cpu, hx);
    drop(cpu);

    // --- The paper's benchmark workload -----------------------------------
    let shared = SharedLocks::new();
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let dlm = Arc::clone(&dlm);
            let arena = arena.clone();
            let shared = &shared;
            s.spawn(move || {
                let cpu = arena.register_cpu().expect("worker cpu");
                let cfg = WorkloadConfig {
                    resources: 256,
                    ops: 30_000,
                    ..WorkloadConfig::default()
                };
                let report = run_worker(&dlm, &cpu, shared, cfg, t);
                println!(
                    "worker {t}: {} granted, {} waited, {} converts, {} releases",
                    report.granted, report.waited, report.converts, report.released
                );
            });
        }
    });
    let cpu = arena.register_cpu().expect("drain cpu");
    shared.drain(&dlm, &cpu);

    println!(
        "\nlock manager totals: {} grants, {} waits, {} promotions",
        dlm.stats().grants.get(),
        dlm.stats().waits.get(),
        dlm.stats().promotions.get()
    );
    println!("\nallocator miss rates (the paper's E6 measurement):");
    for c in arena.stats().classes.iter() {
        if c.cpu_alloc.accesses == 0 {
            continue;
        }
        println!(
            "  {:4}-byte class: per-CPU {:.2}% / global {:.2}% / combined {:.4}%",
            c.size,
            100.0 * c.cpu_alloc.miss_rate(),
            100.0 * c.gbl_alloc.miss_rate(),
            100.0 * c.combined_alloc_miss_rate(),
        );
    }
}
