//! A STREAMS-style message pipeline over the kmem allocator.
//!
//! The paper's motivating subsystem: a communications path that allocates
//! a message (message block + data block + buffer) per packet on one CPU,
//! passes it through a queue, and frees it on another CPU — with `dupb`
//! retaining data for retransmission. Run with
//! `cargo run --example streams_pipeline`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use kmem::{KmemArena, KmemConfig};
use kmem_streams::{MsgPtr, StreamsAlloc};

/// A toy STREAMS queue: producer puts messages, consumer takes them.
struct Queue {
    q: Mutex<VecDeque<MsgPtr>>,
    cv: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn put(&self, m: MsgPtr) {
        self.q.lock().unwrap().push_back(m);
        self.cv.notify_one();
    }

    fn take(&self) -> MsgPtr {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(m) = q.pop_front() {
                return m;
            }
            q = self.cv.wait(q).unwrap();
        }
    }
}

const PACKETS: usize = 10_000;

fn main() {
    let arena = KmemArena::new(KmemConfig::small()).expect("arena");
    let sa = StreamsAlloc::new(arena.clone());
    let queue = Queue::new();
    let retransmit = Queue::new();

    std::thread::scope(|s| {
        // Driver side (CPU 0): builds segmented messages, keeps a dup of
        // each first segment for "retransmission".
        let producer = {
            let arena = arena.clone();
            let sa = &sa;
            let queue = &queue;
            let retransmit = &retransmit;
            s.spawn(move || {
                let cpu = arena.register_cpu().expect("cpu0");
                for n in 0..PACKETS {
                    let head = sa.allocb(&cpu, 64).expect("allocb");
                    // SAFETY: freshly allocated message, exclusively ours.
                    unsafe {
                        let payload = format!("pkt{n:06}");
                        assert!(sa.put(head, payload.as_bytes()));
                        // Two-segment message: header + body.
                        let body = sa.allocb(&cpu, 256).expect("allocb body");
                        assert!(sa.put(body, &[n as u8; 100]));
                        sa.linkb(head, body);
                        // Retain the header for possible retransmission.
                        let dup = sa.dupb(&cpu, head).expect("dupb");
                        retransmit.put(dup);
                    }
                    queue.put(head);
                }
            })
        };

        // Stream head (CPU 1): consumes and frees whole messages.
        let consumer = {
            let arena = arena.clone();
            let sa = &sa;
            let queue = &queue;
            s.spawn(move || {
                let cpu = arena.register_cpu().expect("cpu1");
                let mut bytes = 0usize;
                for _ in 0..PACKETS {
                    let m = queue.take();
                    // SAFETY: ownership of the message chain arrived with
                    // it; freed exactly once here.
                    unsafe {
                        bytes += sa.msgdsize(m);
                        sa.freemsg(&cpu, m);
                    }
                }
                bytes
            })
        };

        // Retransmission reaper (CPU 2): drops the retained dups.
        let reaper = {
            let arena = arena.clone();
            let sa = &sa;
            let retransmit = &retransmit;
            s.spawn(move || {
                let cpu = arena.register_cpu().expect("cpu2");
                for _ in 0..PACKETS {
                    let dup = retransmit.take();
                    // SAFETY: the dup is ours; freeing it drops the last
                    // data-block reference after the consumer freed the
                    // original.
                    unsafe { sa.freeb(&cpu, dup) };
                }
            })
        };

        producer.join().unwrap();
        let bytes = consumer.join().unwrap();
        reaper.join().unwrap();
        println!(
            "pipelined {PACKETS} two-segment messages ({bytes} payload bytes) \
             across three CPUs"
        );
    });

    let stats = arena.stats();
    println!(
        "allocator saw {} allocs / {} frees; cross-CPU flow pushed {} chains \
         through the global layer",
        stats.total_allocs(),
        stats.total_frees(),
        stats
            .classes
            .iter()
            .map(|c| c.gbl_free.accesses)
            .sum::<u64>(),
    );
    arena.reclaim();
    println!(
        "physical frames still cached (bounded by per-CPU caches): {}",
        arena.stats().phys_in_use
    );
}
