//! kmemstat — vmstat for the kmem arena.
//!
//! Polls [`KmemArena::snapshot`] on an interval and prints the *delta*
//! between consecutive sweeps, one line per tick: allocator events per
//! interval rather than cumulative totals, exactly how `vmstat 1` reports
//! the VM subsystem. A self-contained churn workload runs in the
//! background so the numbers move; in a real system the same loop would
//! watch an arena owned by the rest of the kernel.
//!
//! The snapshot API is lock-free and costs the workload CPUs nothing (the
//! counters are single-writer; the sampler only reads), so the tool can
//! poll as fast as it likes — try `--interval-ms 1`.
//!
//! Usage: kmemstat [--interval-ms N] [--count N] [--threads N] [--nodes N]
//!                 [--hardened] [--maint] [--json]
//!
//! `--hardened` runs the arena with every corruption defense armed
//! (encoded freelist links, poison-on-free, randomized carve,
//! double-free quarantine); the closing hardened table then shows live
//! quarantine occupancy alongside the detection counters.
//!
//! `--maint` arms the background maintenance core: slow-path trims,
//! regroups, spills, and pressure drain-requests route through the
//! lock-free mailbox to a maintenance thread that runs for the whole
//! sweep; the closing maintenance table shows posted / deduplicated /
//! drained work items, the residual backlog, and the epoch-batched
//! drain counters.
//!
//! `--nodes N` shards the arena over N NUMA nodes (block CPU mapping) and
//! the closing per-node table shows how the shards behaved: blocks parked
//! per node, refills served locally vs stolen from a remote shard, and
//! blocks spilled to the shared page layer.
//!
//! With `--json`, each tick emits the full cumulative snapshot as one JSON
//! object per line (newline-delimited JSON, via the hand-rolled
//! [`KmemSnapshot::to_json`] writer) instead of the delta table — ready to
//! pipe into `jq` or a time-series collector.
//!
//! Columns (all per interval):
//!   allocs/frees  class-sized operations across all CPUs
//!   am%/fm%       per-CPU layer miss rates (bound: 1/target)
//!   refill        chains pulled from the global layer (short: < target)
//!   flush         cache flushes (any cause) and blocks they evicted
//!   spill         blocks the global layer pushed to the page layer
//!   pg+/pg-       pages acquired from / released to the vmblk layer
//!   phys          physical frames in use (gauge, not a delta)

use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use kmem::{HardenedConfig, KmemArena, KmemConfig, KmemSnapshot, MaintConfig};
use kmem_vm::SpaceConfig;

struct Args {
    interval_ms: u64,
    count: usize,
    threads: usize,
    nodes: usize,
    hardened: bool,
    maint: bool,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        interval_ms: 200,
        count: 20,
        threads: 4,
        nodes: 1,
        hardened: false,
        maint: false,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval-ms" => {
                args.interval_ms = it.next().expect("--interval-ms N").parse().expect("number")
            }
            "--count" => args.count = it.next().expect("--count N").parse().expect("number"),
            "--threads" => args.threads = it.next().expect("--threads N").parse().expect("number"),
            "--nodes" => args.nodes = it.next().expect("--nodes N").parse().expect("number"),
            "--hardened" => args.hardened = true,
            "--maint" => args.maint = true,
            "--json" => args.json = true,
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn churn(arena: KmemArena, seed: u64, stop: &AtomicBool) {
    let cpu = arena.register_cpu().unwrap();
    let mut held: Vec<(NonNull<u8>, usize)> = Vec::new();
    let mut x = seed | 1;
    while !stop.load(Ordering::Relaxed) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let size = 16usize << (x % 9);
        // Drift the working-set bound so occupancy and refill/flush
        // traffic actually vary from tick to tick.
        let bound = 64 + ((x >> 9) % 512) as usize;
        if held.len() >= bound {
            while held.len() > bound / 2 {
                let (p, sz) = held.swap_remove((x as usize) % held.len());
                // SAFETY: allocated below, freed exactly once.
                unsafe { cpu.free_sized(p, sz) };
            }
        }
        if let Ok(p) = cpu.alloc(size) {
            held.push((p, size));
        }
        if x % 200_000 < 2 {
            cpu.flush();
        }
    }
    for (p, sz) in held {
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu.free_sized(p, sz) };
    }
}

fn tick_line(d: &KmemSnapshot, now: &KmemSnapshot) -> String {
    let mut alloc = 0u64;
    let mut alloc_miss = 0u64;
    let mut free = 0u64;
    let mut free_miss = 0u64;
    let mut refill = 0u64;
    let mut short = 0u64;
    let mut flushes = 0u64;
    let mut flush_blocks = 0u64;
    let mut spill = 0u64;
    let mut pg_acq = 0u64;
    let mut pg_rel = 0u64;
    for cs in &d.classes {
        let t = cs.cache_total();
        alloc += t.alloc;
        alloc_miss += t.alloc_miss;
        free += t.free;
        free_miss += t.free_miss;
        refill += t.refill;
        short += t.refill_short;
        flushes += t.flushes();
        flush_blocks += t.flush_blocks;
        spill += cs.global.spill_blocks;
        pg_acq += cs.page.page_acquires;
        pg_rel += cs.page.page_releases;
    }
    let pct = |m: u64, a: u64| {
        if a == 0 {
            0.0
        } else {
            100.0 * m as f64 / a as f64
        }
    };
    format!(
        "{alloc:>9} {:>5.2} {free:>9} {:>5.2} {refill:>6} {short:>5} {flushes:>5} \
         {flush_blocks:>7} {spill:>6} {pg_acq:>5} {pg_rel:>5} {:>6}",
        pct(alloc_miss, alloc),
        pct(free_miss, free),
        now.phys_in_use,
    )
}

fn main() {
    let args = parse_args();
    let mut cfg = KmemConfig::new(args.threads, SpaceConfig::new(64 << 20)).nodes(args.nodes);
    if args.hardened {
        cfg = cfg.hardened(HardenedConfig::full(0x4b4d_5354_4154));
    }
    if args.maint {
        cfg = cfg.maint(MaintConfig::on());
    }
    let arena = KmemArena::new(cfg).unwrap();
    // No-op (None) unless --maint armed the core; joined on drop after
    // the churn threads stop, with one final settling drain.
    let pump = arena.start_maint_thread();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for t in 0..args.threads {
            let arena = arena.clone();
            let stop = &stop;
            s.spawn(move || churn(arena, 0xBEEF_0000 + t as u64, stop));
        }

        if !args.json {
            println!(
                "kmemstat: {} churn threads, {} ticks every {} ms\n",
                args.threads, args.count, args.interval_ms
            );
        }
        let header = format!(
            "{:>9} {:>5} {:>9} {:>5} {:>6} {:>5} {:>5} {:>7} {:>6} {:>5} {:>5} {:>6}",
            "allocs",
            "am%",
            "frees",
            "fm%",
            "refill",
            "short",
            "flush",
            "fl-blks",
            "spill",
            "pg+",
            "pg-",
            "phys"
        );
        let mut prev = arena.snapshot();
        for tick in 0..args.count {
            if !args.json && tick % 10 == 0 {
                println!("{header}");
            }
            std::thread::sleep(Duration::from_millis(args.interval_ms));
            let snap = arena.snapshot();
            // Live-sample invariants hold on every tick even though the
            // workload never pauses — see kmem::snapshot.
            snap.check_live().expect("live snapshot invariant");
            if args.json {
                println!("{}", snap.to_json());
            } else {
                let delta = snap.delta(&prev);
                println!("{}", tick_line(&delta, &snap));
            }
            prev = snap;
        }
        stop.store(true, Ordering::Relaxed);
    });
    // Churn is quiescent: the pump's drop runs one final settling drain,
    // so the closing tables see the mailbox fully drained.
    drop(pump);

    if args.json {
        return;
    }
    // Parting shot: cumulative per-CPU totals, the skew view.
    let end = arena.snapshot();
    println!("\nper-CPU cumulative totals:");
    println!(
        "{:>4} {:>10} {:>6} {:>10} {:>6} {:>7} {:>7} {:>5}",
        "cpu", "allocs", "am%", "frees", "fm%", "refill", "flush", "occ%"
    );
    for (cpu, t) in end.per_cpu_totals().iter().enumerate() {
        println!(
            "{cpu:>4} {:>10} {:>6.2} {:>10} {:>6.2} {:>7} {:>7} {:>5}",
            t.alloc,
            100.0 * t.alloc_layer().miss_rate(),
            t.free,
            100.0 * t.free_layer().miss_rate(),
            t.refill,
            t.flushes(),
            t.mean_occupancy()
                .map(|o| format!("{:.0}", 100.0 * o))
                .unwrap_or_else(|| "-".into()),
        );
    }
    // Per-node shard behaviour: one row on the default flat topology.
    println!("\nper-node global shards:");
    println!(
        "{:>4} {:>6} {:>10} {:>10} {:>7} {:>10}",
        "node", "blocks", "refills", "stolen", "steal%", "spilled"
    );
    for (node, n) in end.nodes.iter().enumerate() {
        let refills = n.local_refills + n.stolen_refills;
        let steal_pct = if refills == 0 {
            0.0
        } else {
            100.0 * n.stolen_refills as f64 / refills as f64
        };
        println!(
            "{node:>4} {:>6} {:>10} {:>10} {steal_pct:>7.2} {:>10}",
            n.shard_blocks, n.local_refills, n.stolen_refills, n.remote_spills,
        );
    }
    // Corruption-defense counters: all zero for a healthy workload, in
    // the default profile *and* under --hardened (where the defenses are
    // armed and a nonzero count would be a real detection).
    println!(
        "\nhardened profile ({}):",
        if args.hardened { "armed" } else { "off" }
    );
    println!(
        "{:>12} {:>12} {:>13} {:>15}",
        "corruption", "poison-hits", "encode-faults", "quarantine-len"
    );
    println!(
        "{:>12} {:>12} {:>13} {:>15}",
        end.corruption_reports, end.poison_hits, end.encode_faults, end.quarantine_len
    );
    // Maintenance-core counters: what the hot CPUs handed off and what
    // the background thread settled. With the core off, all zeros.
    let m = end.maint;
    println!(
        "\nmaintenance core ({}):",
        if m.enabled { "on" } else { "off" }
    );
    println!(
        "{:>10} {:>10} {:>10} {:>9} {:>12} {:>14}",
        "posted", "deduped", "drained", "backlog", "batch-drains", "batched-chains"
    );
    println!(
        "{:>10} {:>10} {:>10} {:>9} {:>12} {:>14}",
        m.posted, m.deduped, m.drained, m.backlog, m.batch_drains, m.batched_chains
    );
}
