//! Quickstart: create an arena, register CPUs, allocate and free.
//!
//! Run with `cargo run --example quickstart`.

use kmem::{verify, KmemArena, KmemConfig};

fn main() {
    // An arena is "the kernel": one per system. `small()` keeps the
    // reservation modest for demos; production configs pass
    // `KmemConfig::new(ncpus, SpaceConfig::new(bytes))`.
    let arena = KmemArena::new(KmemConfig::small()).expect("arena");

    // Each execution context registers as one virtual CPU. The returned
    // handle is the only path to that CPU's caches (it is Send but not
    // Sync, so two threads can never act as the same CPU).
    let cpu = arena.register_cpu().expect("cpu");

    // --- Standard System V interface -----------------------------------
    let p = cpu.alloc(100).expect("alloc");
    println!(
        "allocated 100 bytes at {:p} (served by the 128-byte class)",
        p.as_ptr()
    );
    // The block is yours until freed.
    // SAFETY: `p` is a live 128-byte block we own.
    unsafe { core::ptr::write_bytes(p.as_ptr(), 0xAB, 100) };
    // SAFETY: allocated above, freed exactly once.
    unsafe { cpu.free(p) };

    // --- Cookie interface (sizes known up front) ------------------------
    // `cookie_for` is the paper's kmem_alloc_get_cookie: resolve the size
    // class once, then alloc/free skip the size lookup entirely.
    let cookie = arena.cookie_for(100).expect("cookie");
    let q = cpu.alloc_cookie(cookie).expect("alloc_cookie");
    println!(
        "cookie interface reused the same block: {}",
        if q == p { "yes" } else { "no" }
    );
    // SAFETY: allocated above with `cookie`, freed exactly once.
    unsafe { cpu.free_cookie(q, cookie) };

    // --- Multi-page allocations -----------------------------------------
    // Requests beyond the largest class bypass the caching layers and go
    // straight to the coalesce-to-vmblk layer.
    let big = cpu.alloc(3 * 4096 + 1).expect("large alloc");
    println!("multi-page block at {:p} (4 pages)", big.as_ptr());
    // SAFETY: allocated above, freed exactly once.
    unsafe { cpu.free(big) };

    // --- Statistics ------------------------------------------------------
    let stats = arena.stats();
    println!(
        "\n{} allocations, {} frees, {} large ops, {} physical frames in use",
        stats.total_allocs(),
        stats.total_frees(),
        stats.large_allocs + stats.large_frees,
        stats.phys_in_use
    );
    for class in stats.classes.iter().filter(|c| c.cpu_alloc.accesses > 0) {
        println!(
            "  {:4}-byte class: {} allocs, per-CPU miss rate {:.1}%",
            class.size,
            class.cpu_alloc.accesses,
            100.0 * class.cpu_alloc.miss_rate()
        );
    }

    // --- Returning memory to the system ----------------------------------
    // Caches keep bounded amounts; flush + reclaim push everything back
    // down through the coalescing layers.
    cpu.flush();
    arena.reclaim();
    verify::verify_empty(&arena);
    println!("\nafter flush + reclaim every physical frame is back: OK");
}
