//! SMP scaling in one minute: the paper's Figure 7 claim, live.
//!
//! Runs the best-case alloc/free loop for the cookie interface and for
//! the naively parallelized McKusick–Karels allocator on 1, 4, and 16
//! virtual CPUs of the discrete-event simulator, and prints the speedups.
//! Run with `cargo run --release --example smp_scaling`.
//! (For the full four-allocator figure use
//! `cargo run --release -p kmem-bench --bin fig7`.)

use kmem::{KmemArena, KmemConfig};
use kmem_baselines::{KmemCookieAlloc, MkAllocator};
use kmem_bench::{sim_pairs_per_sec, BASE_COOKIE, BASE_MK};
use kmem_vm::SpaceConfig;

fn main() {
    println!("allocator        CPUs   pairs/sec   speedup vs 1 CPU");
    println!("---------        ----   ---------   ----------------");

    let mut cookie_base = 0.0;
    for &n in &[1usize, 4, 16] {
        let arena = KmemArena::new(KmemConfig::new(n, SpaceConfig::new(32 << 20))).expect("arena");
        let alloc = KmemCookieAlloc::new(arena);
        let point = sim_pairs_per_sec(&alloc, 256, n, 4_000, BASE_COOKIE);
        if n == 1 {
            cookie_base = point.pairs_per_sec;
        }
        println!(
            "cookie           {n:4}   {:9.3e}   {:.1}x",
            point.pairs_per_sec,
            point.pairs_per_sec / cookie_base
        );
    }

    let mut mk_base = 0.0;
    for &n in &[1usize, 4, 16] {
        let alloc = MkAllocator::new(32 << 20, 8192);
        let point = sim_pairs_per_sec(&alloc, 256, n, 4_000, BASE_MK);
        if n == 1 {
            mk_base = point.pairs_per_sec;
        }
        println!(
            "mk (global lock) {n:4}   {:9.3e}   {:.1}x   ({:.0}% of time in lock waits)",
            point.pairs_per_sec,
            point.pairs_per_sec / mk_base,
            100.0 * point.lock_wait_frac
        );
    }

    println!(
        "\nPer-CPU caching scales because the fast path touches only lines\n\
         the owning CPU ever writes; the global lock cannot scale no matter\n\
         how fast the CPUs are - the paper's central argument."
    );
}
