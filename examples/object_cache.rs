//! Typed allocation: `KBox` and the constructed-object cache.
//!
//! The paper notes that special-purpose allocators remain useful "when
//! the structures being allocated are subject to some complex but
//! reusable initialization" — and that they should reuse the
//! general-purpose allocator's machinery. `ObjectCache` is that pattern:
//! expensive-to-build objects keep their constructed state across
//! free/alloc cycles while the memory itself flows through the kmem
//! cookie fast path. Run with `cargo run --release --example object_cache`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use kmem::{KBox, KmemArena, KmemConfig, ObjectCache};

static CTOR_CALLS: AtomicUsize = AtomicUsize::new(0);

/// A kernel record with expensive, reusable initialization: think of the
/// STREAMS triplet or a preformatted I/O control block.
struct IoRecord {
    lookup: Vec<u32>, // built once, reused forever
    payload: [u8; 64],
    uses: u64,
}

impl IoRecord {
    fn build() -> Self {
        CTOR_CALLS.fetch_add(1, Ordering::Relaxed);
        // "Complex but reusable initialization".
        let lookup = (0..256u32).map(|x| x.wrapping_mul(0x9E3779B9)).collect();
        IoRecord {
            lookup,
            payload: [0; 64],
            uses: 0,
        }
    }
}

fn main() {
    let arena = KmemArena::new(KmemConfig::small()).expect("arena");
    let cpu = arena.register_cpu().expect("cpu");

    // --- KBox: one-off typed values in arena memory ----------------------
    let mut b = KBox::new(&cpu, [0u64; 16]).expect("kbox");
    b[3] = 42;
    println!(
        "KBox holds arena memory at {:p}; b[3] = {}",
        b.as_ptr(),
        b[3]
    );
    drop(b); // freed back through the per-CPU cache

    // --- ObjectCache: constructed-state reuse -----------------------------
    let cache = ObjectCache::new(&arena, 32, IoRecord::build);
    const ROUNDS: usize = 200_000;
    let t0 = Instant::now();
    for i in 0..ROUNDS {
        let mut rec = cache.get(&cpu).expect("get");
        rec.uses += 1;
        rec.payload[i % 64] = rec.lookup[i % 256] as u8;
        // Dropping returns the record — still constructed — to the pool.
    }
    let dt = t0.elapsed();
    println!(
        "{ROUNDS} checkouts in {:.1} ms ({:.0} ns each); constructor ran {} time(s)",
        dt.as_secs_f64() * 1e3,
        dt.as_nanos() as f64 / ROUNDS as f64,
        CTOR_CALLS.load(Ordering::Relaxed),
    );
    let surviving = cache.get(&cpu).expect("get");
    println!(
        "a pooled record accumulated uses = {} without ever being rebuilt",
        surviving.uses
    );
    drop(surviving);

    cache.drain(&cpu);
    cpu.flush();
    arena.reclaim();
    kmem::verify::verify_empty(&arena);
    println!("drained: every frame returned to the system");
}
