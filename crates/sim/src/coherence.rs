//! MESI-style cache-coherence cost model.
//!
//! Tracks, per cache line, which virtual CPU (if any) holds it modified
//! and which CPUs share it, and prices each access accordingly. The point
//! is not cycle accuracy but the *ratios* the paper's Analysis section
//! measures: a cache hit is effectively free, a memory miss costs tens of
//! cycles, and a transfer from another CPU's cache — the lock word and
//! freelist heads of a global allocator — costs the most. ("In both
//! allocb and freeb the worst accesses were cache misses, either to main
//! memory, to the other processor's cache, or to uncacheable device
//! registers.")

use std::collections::HashMap;

/// Kinds of priced accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write,
    /// Atomic read-modify-write (lock word).
    Rmw,
}

/// Relative access costs in CPU cycles.
///
/// Defaults approximate a 50 MHz 80486 with a 64-byte-line external cache:
/// hits are pipelined, a memory miss stalls for tens of cycles, and a
/// dirty transfer from a peer cache (via memory, on that era's busses)
/// costs the most; atomic RMWs add a non-overlappable pipeline stall.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cache hit.
    pub hit: u64,
    /// Miss satisfied from memory.
    pub miss_memory: u64,
    /// Miss satisfied by snooping a peer cache's modified line.
    pub miss_remote: u64,
    /// As `miss_remote`, but the peer sits on a *different NUMA node*:
    /// the line crosses the interconnect, not just the local bus. Only
    /// reachable when the directory is built with a CPU→node map
    /// ([`Coherence::new_with_nodes`]); flat directories never charge it.
    pub miss_remote_node: u64,
    /// Extra stall for an atomic RMW, on top of the line acquisition.
    pub rmw_stall: u64,
    /// Bus bandwidth stolen by each CPU spinning on a contended lock,
    /// as a fraction of the spin duration added to the lock hand-off.
    /// Test-and-test-and-set spinners re-read the lock line every time it
    /// changes hands, so the hand-off slows as more CPUs wait; this is
    /// the "second-order effects resulting from the extreme lock
    /// contention" the paper blames for the baseline curves' decline.
    /// Calibrated so the 25-CPU cookie:oldkma ratio lands near the
    /// paper's three orders of magnitude (see EXPERIMENTS.md).
    pub spin_bus_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            hit: 2,
            miss_memory: 50,
            miss_remote: 90,
            miss_remote_node: 150,
            rmw_stall: 20,
            spin_bus_factor: 0.025,
        }
    }
}

/// Line state: who holds it and how.
#[derive(Debug, Clone)]
enum LineState {
    /// One CPU holds the line modified.
    Modified(usize),
    /// A set of CPUs hold the line shared (bitmask).
    Shared(u64),
}

/// Outcome of one priced access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycles charged.
    pub cycles: u64,
    /// Whether the access left the CPU (any kind of miss).
    pub off_chip: bool,
    /// Whether it was served from a peer cache (the expensive kind).
    pub remote: bool,
}

/// The coherence directory.
pub struct Coherence {
    cost: CostModel,
    lines: HashMap<usize, LineState>,
    /// CPU index → node index; empty means "flat" (everything node 0).
    node_of: Vec<usize>,
    /// Total accesses priced.
    pub accesses: u64,
    /// Off-chip accesses (misses of either kind).
    pub misses: u64,
    /// Peer-cache transfers.
    pub remote_transfers: u64,
    /// Peer-cache transfers that crossed a node boundary (a subset of
    /// `remote_transfers`).
    pub remote_node_transfers: u64,
}

impl Coherence {
    /// Creates an empty directory with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Coherence::new_with_nodes(cost, Vec::new())
    }

    /// Creates a directory that knows which node each CPU sits on, so
    /// dirty transfers between nodes are priced at `miss_remote_node`.
    pub fn new_with_nodes(cost: CostModel, node_of: Vec<usize>) -> Self {
        Coherence {
            cost,
            lines: HashMap::new(),
            node_of,
            accesses: 0,
            misses: 0,
            remote_transfers: 0,
            remote_node_transfers: 0,
        }
    }

    /// The model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Cost of pulling a modified line out of `owner`'s cache into
    /// `cpu`'s, and whether the transfer crossed a node boundary.
    fn transfer_cost(&self, cpu: usize, owner: usize) -> (u64, bool) {
        let node = |i: usize| self.node_of.get(i).copied().unwrap_or(0);
        if node(cpu) != node(owner) {
            (self.cost.miss_remote_node, true)
        } else {
            (self.cost.miss_remote, false)
        }
    }

    /// Prices one access by `cpu` to `line`.
    pub fn access(&mut self, cpu: usize, line: usize, kind: AccessKind) -> Access {
        debug_assert!(cpu < 64, "cpu index too large for the sharer mask");
        self.accesses += 1;
        let bit = 1u64 << cpu;
        let mut cross_node = false;
        let (cycles, off_chip, remote, newstate) = match (self.lines.get(&line), kind) {
            // Read hits.
            (Some(LineState::Modified(owner)), AccessKind::Read) if *owner == cpu => {
                (self.cost.hit, false, false, LineState::Modified(cpu))
            }
            (Some(LineState::Shared(set)), AccessKind::Read) if set & bit != 0 => {
                (self.cost.hit, false, false, LineState::Shared(*set))
            }
            // Read from a peer's modified line: remote transfer, both end
            // up sharing.
            (Some(LineState::Modified(owner)), AccessKind::Read) => {
                let (cost, cross) = self.transfer_cost(cpu, *owner);
                cross_node = cross;
                (cost, true, true, LineState::Shared(bit | (1 << *owner)))
            }
            // Read miss to memory; join the sharers.
            (Some(LineState::Shared(set)), AccessKind::Read) => (
                self.cost.miss_memory,
                true,
                false,
                LineState::Shared(set | bit),
            ),
            (None, AccessKind::Read) => {
                (self.cost.miss_memory, true, false, LineState::Shared(bit))
            }
            // Writes and RMWs need exclusive ownership.
            (Some(LineState::Modified(owner)), _) if *owner == cpu => {
                let stall = if kind == AccessKind::Rmw {
                    self.cost.rmw_stall
                } else {
                    0
                };
                (
                    self.cost.hit + stall,
                    false,
                    false,
                    LineState::Modified(cpu),
                )
            }
            (Some(LineState::Modified(owner)), _) => {
                let stall = if kind == AccessKind::Rmw {
                    self.cost.rmw_stall
                } else {
                    0
                };
                let (cost, cross) = self.transfer_cost(cpu, *owner);
                cross_node = cross;
                (cost + stall, true, true, LineState::Modified(cpu))
            }
            (Some(LineState::Shared(set)), _) => {
                let stall = if kind == AccessKind::Rmw {
                    self.cost.rmw_stall
                } else {
                    0
                };
                if *set == bit {
                    // Sole sharer upgrades silently enough.
                    (
                        self.cost.hit + stall,
                        false,
                        false,
                        LineState::Modified(cpu),
                    )
                } else {
                    // Invalidate the other sharers.
                    (
                        self.cost.miss_memory + stall,
                        true,
                        false,
                        LineState::Modified(cpu),
                    )
                }
            }
            (None, _) => {
                let stall = if kind == AccessKind::Rmw {
                    self.cost.rmw_stall
                } else {
                    0
                };
                (
                    self.cost.miss_memory + stall,
                    true,
                    false,
                    LineState::Modified(cpu),
                )
            }
        };
        self.lines.insert(line, newstate);
        if off_chip {
            self.misses += 1;
        }
        if remote {
            self.remote_transfers += 1;
        }
        if cross_node {
            self.remote_node_transfers += 1;
        }
        Access {
            cycles,
            off_chip,
            remote,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coh() -> Coherence {
        Coherence::new(CostModel::default())
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = coh();
        let a = c.access(0, 100, AccessKind::Read);
        assert!(a.off_chip && !a.remote);
        let b = c.access(0, 100, AccessKind::Read);
        assert!(!b.off_chip);
        assert_eq!(b.cycles, c.cost_model().hit);
    }

    #[test]
    fn writes_invalidate_readers() {
        let mut c = coh();
        c.access(0, 7, AccessKind::Read);
        c.access(1, 7, AccessKind::Read);
        // CPU 0 writes: other sharers invalidated.
        let w = c.access(0, 7, AccessKind::Write);
        assert!(w.off_chip);
        // CPU 1's next read is a remote transfer from CPU 0.
        let r = c.access(1, 7, AccessKind::Read);
        assert!(r.remote);
        assert_eq!(r.cycles, c.cost_model().miss_remote);
    }

    #[test]
    fn lock_word_ping_pong_is_the_expensive_case() {
        let mut c = coh();
        // Two CPUs alternately RMW the same line: every access after the
        // first is a remote transfer plus RMW stall.
        c.access(0, 1, AccessKind::Rmw);
        for i in 1..10 {
            let a = c.access(i % 2, 1, AccessKind::Rmw);
            assert!(a.remote);
            assert_eq!(
                a.cycles,
                c.cost_model().miss_remote + c.cost_model().rmw_stall
            );
        }
        assert_eq!(c.remote_transfers, 9);
    }

    #[test]
    fn private_lines_stay_cheap_forever() {
        let mut c = coh();
        c.access(3, 42, AccessKind::Write);
        let mut total = 0;
        for _ in 0..100 {
            total += c.access(3, 42, AccessKind::Write).cycles;
        }
        assert_eq!(total, 100 * c.cost_model().hit);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn cross_node_transfers_cost_more_than_local_ones() {
        // CPUs 0,1 on node 0; CPUs 2,3 on node 1.
        let mut c = Coherence::new_with_nodes(CostModel::default(), vec![0, 0, 1, 1]);
        c.access(0, 5, AccessKind::Write);
        // Same-node pull: ordinary remote price, no node transfer counted.
        let local = c.access(1, 5, AccessKind::Write);
        assert_eq!(local.cycles, c.cost_model().miss_remote);
        assert_eq!(c.remote_node_transfers, 0);
        // Cross-node pull: interconnect price, counted.
        let far = c.access(2, 5, AccessKind::Write);
        assert_eq!(far.cycles, c.cost_model().miss_remote_node);
        assert_eq!(c.remote_node_transfers, 1);
        // The flat constructor never charges the interconnect.
        let mut flat = Coherence::new(CostModel::default());
        flat.access(0, 5, AccessKind::Write);
        let pull = flat.access(7, 5, AccessKind::Write);
        assert_eq!(pull.cycles, flat.cost_model().miss_remote);
        assert_eq!(flat.remote_node_transfers, 0);
    }

    #[test]
    fn sole_sharer_upgrade_is_cheap() {
        let mut c = coh();
        c.access(0, 9, AccessKind::Read);
        let w = c.access(0, 9, AccessKind::Write);
        assert!(!w.off_chip);
    }
}
