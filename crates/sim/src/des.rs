//! The discrete-event engine.
//!
//! N virtual CPUs each repeatedly execute a caller-supplied operation (a
//! real alloc/free pair against a real allocator). The operation's wall
//! time on the host is irrelevant; its *simulated* duration is
//!
//! `base_cycles` (the calibrated, probe-free fast path)
//! `+ Σ` priced probe events (shared lines via [`crate::Coherence`],
//! lock hold intervals via the lock table).
//!
//! Virtual CPUs advance in min-clock order (deterministic), so a lock held
//! from simulated time `t₁` to `t₂` delays any acquisition falling inside
//! that window exactly as a spinlock would — which is what flattens the
//! curves of the lock-based allocators in Figure 7 while the per-CPU
//! allocator's lines stay linear.

use std::collections::HashMap;

use kmem_smp::probe::{self, ProbeEvent};
use kmem_smp::{CpuId, NodeMapping, Topology};

use crate::coherence::{AccessKind, Coherence, CostModel};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Virtual CPUs.
    pub ncpus: usize,
    /// NUMA nodes the virtual CPUs are spread over; 1 (the default) is a
    /// flat machine where `miss_remote_node` is never charged.
    pub nodes: usize,
    /// How vCPU indices map onto nodes (ignored when `nodes == 1`).
    pub node_mapping: NodeMapping,
    /// Operations each virtual CPU performs.
    pub ops_per_cpu: u64,
    /// Cost model for shared-memory accesses.
    pub cost: CostModel,
    /// Simulated clock rate, for converting cycles to ops/sec
    /// (default: the paper's 50 MHz 80486).
    pub clock_hz: u64,
}

impl SimConfig {
    /// A config for `ncpus` CPUs with paper-era defaults.
    pub fn new(ncpus: usize, ops_per_cpu: u64) -> Self {
        SimConfig {
            ncpus,
            nodes: 1,
            node_mapping: NodeMapping::Block,
            ops_per_cpu,
            cost: CostModel::default(),
            clock_hz: 50_000_000,
        }
    }

    /// Spreads the vCPUs over `nodes` NUMA nodes (block mapping, matching
    /// the allocator config's `nodes` builder default).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimResult {
    /// Total operations completed across all CPUs.
    pub total_ops: u64,
    /// Simulated elapsed cycles (the slowest CPU's clock).
    pub elapsed_cycles: u64,
    /// Total shared-memory accesses priced.
    pub accesses: u64,
    /// Off-chip accesses among them.
    pub misses: u64,
    /// Peer-cache transfers among them.
    pub remote_transfers: u64,
    /// Peer-cache transfers that crossed a node boundary (a subset of
    /// `remote_transfers`; zero on a 1-node config).
    pub remote_node_transfers: u64,
    /// Cycles spent waiting for locks.
    pub lock_wait_cycles: u64,
    /// Clock rate used for rate conversion.
    pub clock_hz: u64,
}

impl SimResult {
    /// Aggregate operations per simulated second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        self.total_ops as f64 * self.clock_hz as f64 / self.elapsed_cycles as f64
    }
}

/// The engine.
pub struct Simulator {
    config: SimConfig,
    coherence: Coherence,
    /// Lock address → (free_at, last owner line priced as the lock word).
    locks: HashMap<usize, u64>,
    clocks: Vec<u64>,
    lock_wait: u64,
}

impl Simulator {
    /// Creates an engine.
    pub fn new(config: SimConfig) -> Self {
        let topology = Topology::new(config.nodes, config.ncpus, config.node_mapping);
        let node_of = (0..config.ncpus)
            .map(|i| topology.node_of(CpuId::new(i)).index())
            .collect();
        Simulator {
            coherence: Coherence::new_with_nodes(config.cost, node_of),
            locks: HashMap::new(),
            clocks: vec![0; config.ncpus],
            lock_wait: 0,
            config,
        }
    }

    /// Runs the simulation.
    ///
    /// `step(vcpu)` must perform one *real* operation as virtual CPU
    /// `vcpu` and return the calibrated probe-free base cost in cycles;
    /// probe events are recorded around the call automatically.
    pub fn run(mut self, mut step: impl FnMut(usize) -> u64) -> SimResult {
        let mut remaining: Vec<u64> = vec![self.config.ops_per_cpu; self.config.ncpus];
        let mut done = 0usize;
        probe::start();
        while done < self.config.ncpus {
            // Deterministic scheduling: the least-advanced runnable CPU.
            let mut vcpu = usize::MAX;
            let mut best = u64::MAX;
            for (i, &c) in self.clocks.iter().enumerate() {
                if remaining[i] > 0 && c < best {
                    best = c;
                    vcpu = i;
                }
            }
            let base = step(vcpu);
            let events = probe::drain();
            let mut now = self.clocks[vcpu] + base;
            for ev in events {
                now = self.price(vcpu, now, ev);
            }
            self.clocks[vcpu] = now;
            remaining[vcpu] -= 1;
            if remaining[vcpu] == 0 {
                done += 1;
            }
        }
        probe::finish();
        let elapsed = self.clocks.iter().copied().max().unwrap_or(0);
        SimResult {
            total_ops: self.config.ops_per_cpu * self.config.ncpus as u64,
            elapsed_cycles: elapsed,
            accesses: self.coherence.accesses,
            misses: self.coherence.misses,
            remote_transfers: self.coherence.remote_transfers,
            remote_node_transfers: self.coherence.remote_node_transfers,
            lock_wait_cycles: self.lock_wait,
            clock_hz: self.config.clock_hz,
        }
    }

    fn price(&mut self, vcpu: usize, now: u64, ev: ProbeEvent) -> u64 {
        match ev {
            ProbeEvent::Work { cycles } => now + cycles,
            ProbeEvent::LineRead { line } => {
                now + self.coherence.access(vcpu, line, AccessKind::Read).cycles
            }
            ProbeEvent::LineWrite { line } => {
                now + self.coherence.access(vcpu, line, AccessKind::Write).cycles
            }
            ProbeEvent::LineRmw { line } => {
                now + self.coherence.access(vcpu, line, AccessKind::Rmw).cycles
            }
            ProbeEvent::LockAcquire { lock } => {
                let free_at = self.locks.get(&lock).copied().unwrap_or(0);
                let start = if free_at > now {
                    let wait = free_at - now;
                    self.lock_wait += wait;
                    // Spinning CPUs consume bus bandwidth in proportion to
                    // how long they spin, delaying the hand-off (see
                    // `CostModel::spin_bus_factor`).
                    let interference = (wait as f64 * self.config.cost.spin_bus_factor) as u64;
                    free_at + interference
                } else {
                    now
                };
                // Acquiring always RMWs the lock word's line.
                let cost = self
                    .coherence
                    .access(vcpu, lock >> probe::LINE_SHIFT, AccessKind::Rmw)
                    .cycles;
                // Mark held until released (release will set the real end).
                self.locks.insert(lock, u64::MAX);
                start + cost
            }
            ProbeEvent::LockRelease { lock } => {
                let cost = self
                    .coherence
                    .access(vcpu, lock >> probe::LINE_SHIFT, AccessKind::Write)
                    .cycles;
                let end = now + cost;
                self.locks.insert(lock, end);
                end
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem_smp::SpinLock;

    /// Pure per-CPU work scales linearly.
    #[test]
    fn private_work_scales_linearly() {
        let r1 = Simulator::new(SimConfig::new(1, 1000)).run(|_| 100);
        let r4 = Simulator::new(SimConfig::new(4, 1000)).run(|_| 100);
        let s1 = r1.ops_per_sec();
        let s4 = r4.ops_per_sec();
        assert!((s4 / s1 - 4.0).abs() < 0.01, "speedup {}", s4 / s1);
    }

    /// Lock-serialized work does not scale: total throughput is capped by
    /// the critical-section length.
    #[test]
    fn lock_serialized_work_plateaus() {
        fn run(ncpus: usize) -> f64 {
            let lock = SpinLock::new(());
            let sim = Simulator::new(SimConfig::new(ncpus, 500));
            sim.run(|_| {
                let _g = lock.lock();
                probe::emit(kmem_smp::probe::ProbeEvent::Work { cycles: 100 });
                10
            })
            .ops_per_sec()
        }
        let s1 = run(1);
        let s8 = run(8);
        // Not even 1.5× speedup from 8 CPUs.
        assert!(s8 < s1 * 1.5, "s1={s1} s8={s8}");
    }

    /// Lock waits actually accumulate.
    #[test]
    fn lock_wait_is_accounted() {
        let lock = SpinLock::new(());
        let sim = Simulator::new(SimConfig::new(4, 100));
        let r = sim.run(|_| {
            let _g = lock.lock();
            probe::emit(kmem_smp::probe::ProbeEvent::Work { cycles: 200 });
            1
        });
        assert!(r.lock_wait_cycles > 0);
        assert!(r.remote_transfers > 0, "lock line must ping-pong");
    }

    /// Deterministic: same run twice gives identical results.
    #[test]
    fn runs_are_deterministic() {
        fn once() -> (u64, u64) {
            let lock = SpinLock::new(0u64);
            let r = Simulator::new(SimConfig::new(3, 200)).run(|_| {
                *lock.lock() += 1;
                17
            });
            (r.elapsed_cycles, r.misses)
        }
        assert_eq!(once(), once());
    }

    /// Per-CPU clocks are monotone and ops complete exactly.
    #[test]
    fn completes_exact_op_counts() {
        let r = Simulator::new(SimConfig::new(5, 123)).run(|_| 1);
        assert_eq!(r.total_ops, 5 * 123);
        assert!(r.elapsed_cycles >= 123);
    }

    /// The same lock ping-pong costs more cycles on a 4-node machine than
    /// on a flat one, and the delta is entirely cross-node transfers.
    #[test]
    fn node_topology_prices_the_interconnect() {
        fn run(nodes: usize) -> SimResult {
            let lock = SpinLock::new(0u64);
            Simulator::new(SimConfig::new(8, 200).nodes(nodes)).run(|_| {
                *lock.lock() += 1;
                10
            })
        }
        let flat = run(1);
        let numa = run(4);
        assert_eq!(flat.remote_node_transfers, 0);
        assert!(numa.remote_node_transfers > 0);
        assert!(
            numa.elapsed_cycles > flat.elapsed_cycles,
            "flat {} vs numa {}",
            flat.elapsed_cycles,
            numa.elapsed_cycles
        );
        // Everything else about the run is identical, so the transfer
        // totals match: only the price of some of them changed.
        assert_eq!(flat.remote_transfers, numa.remote_transfers);
    }
}
