//! Discrete-event SMP simulation for the kmem reproduction.
//!
//! The paper measured its allocators on a 25-CPU Sequent Symmetry 2000 and
//! a logic analyzer; this environment has neither. What the paper's
//! Figures 7–9 actually demonstrate, though, is a property of the
//! *algorithms*: per-CPU fast paths touch only CPU-private cache lines, so
//! throughput scales with CPU count, while lock-based allocators serialize
//! on the lock and ping-pong shared lines, so their throughput is capped
//! regardless of CPU count. Those effects are reproducible from first
//! principles:
//!
//! * [`coherence::Coherence`] prices every shared-memory access with a
//!   MESI-style invalidation protocol (hit / memory miss / remote-cache
//!   transfer / atomic RMW), using 80486-era relative costs.
//! * [`des::Simulator`] runs the **real allocator implementations** on N
//!   virtual CPUs from one host thread. Each operation executes for real
//!   (the data structures really are shared), while its *timing* comes
//!   from the probe events the slow paths emit (`kmem_smp::probe`) plus a
//!   calibrated constant for the probe-free per-CPU fast path.
//! * [`analysis`] reproduces the paper's Analysis section: the measured
//!   allocb/freeb cost distribution under the old allocator, where a
//!   handful of off-chip accesses dominate elapsed time.
//!
//! The simulator is deterministic: virtual CPUs are stepped in
//! min-clock order with index tie-breaking, so identical inputs give
//! identical curves.

pub mod analysis;
pub mod coherence;
pub mod des;

pub use coherence::{AccessKind, Coherence, CostModel};
pub use des::{SimConfig, SimResult, Simulator};
