//! Reproduction of the paper's Analysis section (E1).
//!
//! The paper instrumented `allocb`/`freeb` (the STREAMS buffer allocator
//! over the *old* global allocator) with a logic analyzer on a 2-CPU
//! Sequent S2000/200 and found that execution time was dominated by a
//! small number of off-chip accesses: "the worst 19 of the 304 off-chip
//! accesses (6.3 %) accounted for 57.6 % of the elapsed time".
//!
//! Here the logic analyzer is replaced by a two-level cache model. The
//! measured machine's 80486 has a small on-chip cache backed by a larger
//! coherent board cache: an "off-chip access" is anything that leaves the
//! chip, most of which hit the board cache cheaply — the expensive few are
//! the ones the board cache cannot satisfy either (memory, the *other*
//! CPU's cache, or uncacheable device registers). Two virtual CPUs
//! alternately run the access pattern of a lock-protected global allocator
//! building a STREAMS message (lock word, freelist heads, message and
//! data-block headers, statistics, plus the op's instruction stream);
//! every access is priced, and the paper's statistic is computed over the
//! per-access cost distribution.

use crate::coherence::{AccessKind, Coherence, CostModel};

/// One synthetic memory reference of the modelled operation.
#[derive(Debug, Clone, Copy)]
pub struct Ref {
    /// Which shared object (disjoint synthetic line per id); `None` is a
    /// CPU-private scratch line.
    pub shared: Option<usize>,
    /// Access kind.
    pub kind: AccessKind,
}

/// The access pattern of one `allocb` against a lock-protected global
/// allocator: derived from the structure of such allocators — acquire the
/// lock (RMW), read and update the freelist head and counters for each of
/// the three pieces (message block, data block, buffer), initialize the
/// pieces (writes to lines the *other* CPU last wrote when it freed
/// them), and release.
pub fn allocb_pattern(instr_refs: usize) -> Vec<Ref> {
    let mut v = Vec::new();
    // Lock word.
    v.push(Ref {
        shared: Some(0),
        kind: AccessKind::Rmw,
    });
    // Three pieces: freelist head read+write, stats update, block header
    // initialization (two lines each).
    for piece in 0..3usize {
        let base = 1 + piece * 4;
        v.push(Ref {
            shared: Some(base),
            kind: AccessKind::Read,
        });
        v.push(Ref {
            shared: Some(base),
            kind: AccessKind::Write,
        });
        v.push(Ref {
            shared: Some(base + 1),
            kind: AccessKind::Write,
        });
        v.push(Ref {
            shared: Some(base + 2),
            kind: AccessKind::Write,
        });
        v.push(Ref {
            shared: Some(base + 3),
            kind: AccessKind::Write,
        });
    }
    // Lock release.
    v.push(Ref {
        shared: Some(0),
        kind: AccessKind::Write,
    });
    // Private instruction/data references (code fetches, stack).
    for _ in 0..instr_refs {
        v.push(Ref {
            shared: None,
            kind: AccessKind::Read,
        });
    }
    v
}

/// `freeb`'s pattern: lock, push each piece back (read head, write link,
/// write head), stats, unlock.
pub fn freeb_pattern(instr_refs: usize) -> Vec<Ref> {
    let mut v = Vec::new();
    v.push(Ref {
        shared: Some(0),
        kind: AccessKind::Rmw,
    });
    for piece in 0..3usize {
        let base = 1 + piece * 4;
        v.push(Ref {
            shared: Some(base),
            kind: AccessKind::Read,
        });
        v.push(Ref {
            shared: Some(base + 1),
            kind: AccessKind::Write,
        });
        v.push(Ref {
            shared: Some(base),
            kind: AccessKind::Write,
        });
        v.push(Ref {
            shared: Some(base + 2),
            kind: AccessKind::Write,
        });
    }
    v.push(Ref {
        shared: Some(0),
        kind: AccessKind::Write,
    });
    for _ in 0..instr_refs {
        v.push(Ref {
            shared: None,
            kind: AccessKind::Read,
        });
    }
    v
}

/// The hot CPU's slow-path involvement with the maintenance core ON:
/// post one work item to the lock-free mailbox. A single RMW claims a
/// slot index on the shared ticket line; the slot body and the per-key
/// dedup bit are plain writes. The global layer's lock word and bucket
/// lines are never touched — that traffic moves to the maintenance CPU,
/// off this CPU's critical path.
pub fn maint_post_pattern(instr_refs: usize) -> Vec<Ref> {
    let mut v = Vec::new();
    // Ticket counter: the post's one contended RMW.
    v.push(Ref {
        shared: Some(0),
        kind: AccessKind::Rmw,
    });
    // Slot payload + sequence publication, then the pending bit.
    v.push(Ref {
        shared: Some(1),
        kind: AccessKind::Write,
    });
    v.push(Ref {
        shared: Some(2),
        kind: AccessKind::Write,
    });
    for _ in 0..instr_refs {
        v.push(Ref {
            shared: None,
            kind: AccessKind::Read,
        });
    }
    v
}

/// The same slow-path work done INLINE (core off): take the global
/// lock, walk the bucket heads, links, and settle counters it protects
/// — lines the peer CPU wrote the last time *it* drained — and release.
/// Derived from the structure of the locked trim/regroup walk over four
/// chains.
pub fn inline_maint_pattern(instr_refs: usize) -> Vec<Ref> {
    let mut v = Vec::new();
    v.push(Ref {
        shared: Some(0),
        kind: AccessKind::Rmw,
    });
    for chain in 0..4usize {
        let base = 1 + chain * 3;
        v.push(Ref {
            shared: Some(base),
            kind: AccessKind::Read,
        });
        v.push(Ref {
            shared: Some(base + 1),
            kind: AccessKind::Write,
        });
        v.push(Ref {
            shared: Some(base + 2),
            kind: AccessKind::Write,
        });
    }
    v.push(Ref {
        shared: Some(0),
        kind: AccessKind::Write,
    });
    for _ in 0..instr_refs {
        v.push(Ref {
            shared: None,
            kind: AccessKind::Read,
        });
    }
    v
}

/// Result of replaying an operation's pattern on one CPU while a peer
/// runs the same pattern interleaved.
#[derive(Debug, Clone)]
pub struct OpCostProfile {
    /// Total priced accesses for one operation.
    pub accesses: usize,
    /// Off-chip accesses.
    pub off_chip: usize,
    /// Elapsed cycles with a cold/contended cache (measured case).
    pub elapsed_cycles: u64,
    /// Elapsed cycles if every access hit (the paper's "in the absence of
    /// cache misses" instruction-count estimate).
    pub nominal_cycles: u64,
    /// Per-access costs, descending.
    pub costs_desc: Vec<u64>,
}

impl OpCostProfile {
    /// Fraction of elapsed time consumed by the most expensive
    /// `k`-fraction of *off-chip* accesses (the paper's statistic: "the
    /// worst 19 of the 304 off-chip accesses (6.3%) accounted for 57.6%
    /// of the elapsed time").
    pub fn worst_offchip_share(&self, k: f64) -> f64 {
        let take = ((self.off_chip as f64 * k).round() as usize).max(1);
        let worst: u64 = self.costs_desc.iter().take(take).sum();
        worst as f64 / self.elapsed_cycles as f64
    }

    /// Ratio of measured to nominal time (paper: 64.2 µs vs 12.5 µs ≈ 5×).
    pub fn slowdown(&self) -> f64 {
        self.elapsed_cycles as f64 / self.nominal_cycles as f64
    }
}

/// A small on-chip cache: LRU over whole lines (the 80486's 8 KB unified
/// cache ≈ 128 lines of 64 B).
struct OnChip {
    capacity: usize,
    /// Lines in LRU order, most recent last.
    lines: Vec<usize>,
}

impl OnChip {
    fn new(capacity: usize) -> Self {
        OnChip {
            capacity,
            lines: Vec::with_capacity(capacity),
        }
    }

    /// Touches `line`; returns whether it hit on-chip.
    fn touch(&mut self, line: usize) -> bool {
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.lines.push(line);
            return true;
        }
        if self.lines.len() == self.capacity {
            self.lines.remove(0);
        }
        self.lines.push(line);
        false
    }

    /// Invalidates `line` (a peer wrote it).
    fn invalidate(&mut self, line: usize) {
        self.lines.retain(|&l| l != line);
    }
}

/// On-chip hit cost (pipelined).
const ONCHIP_HIT: u64 = 1;
/// Off-chip access satisfied by the (coherent) board cache.
const BOARD_HIT: u64 = 4;
/// On-chip lines in the modelled 80486 (8 KB / 64 B).
const ONCHIP_LINES: usize = 128;

/// Replays `pattern` alternating between two CPUs for `warmup + 1` rounds
/// and profiles the final round on CPU 0.
///
/// The board caches are modelled by the MESI directory (`Coherence`):
/// lines it says this CPU holds cost [`BOARD_HIT`] when the on-chip cache
/// misses; lines held modified by the peer, or absent, cost the full
/// remote/memory penalty. The op's instruction stream (the `shared: None`
/// references) sweeps more lines than fit on chip, so nearly all of it
/// goes off-chip — cheaply — exactly as in the paper's traces, where 304
/// accesses left the chip but only ~19 dominated the elapsed time.
pub fn profile_two_cpu(pattern: &[Ref], warmup: usize, cost: CostModel) -> OpCostProfile {
    let mut coh = Coherence::new(cost);
    let mut onchip = [OnChip::new(ONCHIP_LINES), OnChip::new(ONCHIP_LINES)];
    let line_for = |cpu: usize, r: &Ref, i: usize| -> usize {
        match r.shared {
            Some(obj) => 0x1000 + obj,
            // The instruction/stack stream: distinct lines per reference
            // index, private to the CPU, exceeding the on-chip capacity.
            None => 0x10_0000 + cpu * 0x10_000 + i,
        }
    };
    let run = |cpu: usize,
               onchip: &mut [OnChip; 2],
               coh: &mut Coherence,
               record: bool|
     -> OpCostProfile {
        let mut costs = Vec::with_capacity(pattern.len());
        let mut off_chip = 0usize;
        let mut elapsed = 0u64;
        for (i, r) in pattern.iter().enumerate() {
            let line = line_for(cpu, r, i);
            let hit_onchip = onchip[cpu].touch(line);
            // Writes to shared lines invalidate the peer's on-chip copy.
            if r.shared.is_some() && r.kind != AccessKind::Read {
                onchip[1 - cpu].invalidate(line);
            }
            let cycles = if hit_onchip && r.kind != AccessKind::Rmw {
                ONCHIP_HIT
            } else {
                // Off chip: let the directory price it; a "miss" that
                // the directory serves from our own board cache is the
                // cheap kind.
                let a = coh.access(cpu, line, r.kind);
                off_chip += 1;
                if a.off_chip {
                    a.cycles
                } else {
                    BOARD_HIT + a.cycles - cost.hit
                }
            };
            if record {
                costs.push(cycles);
            }
            elapsed += cycles;
        }
        costs.sort_unstable_by(|a, b| b.cmp(a));
        OpCostProfile {
            accesses: pattern.len(),
            off_chip,
            elapsed_cycles: elapsed,
            nominal_cycles: 0,
            costs_desc: costs,
        }
    };
    // Warmup: both CPUs alternate ops, heating their board caches and
    // leaving the shared lines in the *other* CPU's cache.
    for _ in 0..warmup {
        for cpu in [0usize, 1usize] {
            let _ = run(cpu, &mut onchip, &mut coh, false);
        }
    }
    // CPU 1 runs once more so every shared line is remote to CPU 0.
    let _ = run(1, &mut onchip, &mut coh, false);
    let mut profile = run(0, &mut onchip, &mut coh, true);
    // Nominal: the instruction-count estimate — every reference an
    // on-chip hit, plus the unavoidable RMW stalls.
    profile.nominal_cycles = pattern.len() as u64 * ONCHIP_HIT
        + pattern.iter().filter(|r| r.kind == AccessKind::Rmw).count() as u64 * cost.rmw_stall;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contended_allocb_matches_the_papers_structure() {
        let pattern = allocb_pattern(287); // 304 references in total
        let profile = profile_two_cpu(&pattern, 3, CostModel::default());
        assert_eq!(profile.accesses, 304);
        // Nearly every reference leaves the chip (the instruction stream
        // sweeps past the on-chip capacity), as in the paper's 304
        // off-chip accesses...
        assert!(
            profile.off_chip > 250,
            "only {} off-chip accesses",
            profile.off_chip
        );
        // ...but the worst ~6% of them dominate elapsed time.
        let share = profile.worst_offchip_share(0.063);
        assert!(
            share > 0.35,
            "worst-6.3% share only {share:.2} (paper: 57.6%)"
        );
        // And the op runs several times slower than its nominal time.
        assert!(profile.slowdown() > 3.0, "slowdown {}", profile.slowdown());
    }

    #[test]
    fn most_offchip_accesses_are_cheap_board_hits() {
        let pattern = allocb_pattern(287);
        let profile = profile_two_cpu(&pattern, 3, CostModel::default());
        // The bottom 90% of the cost distribution is board-hit priced:
        // cheap, near-uniform — the expensive tail is what matters.
        let cheap = profile
            .costs_desc
            .iter()
            .filter(|&&c| c <= BOARD_HIT + 4)
            .count();
        assert!(
            cheap as f64 > 0.8 * profile.accesses as f64,
            "{cheap} cheap of {}",
            profile.accesses
        );
    }

    #[test]
    fn freeb_pattern_shares_the_shape() {
        let profile = profile_two_cpu(&freeb_pattern(308), 3, CostModel::default());
        assert_eq!(profile.accesses, 322);
        assert!(profile.worst_offchip_share(0.086) > 0.3);
        assert!(profile.slowdown() > 2.5);
    }

    #[test]
    fn mailbox_post_prices_below_the_inline_slow_path() {
        // Equal total reference counts (54 each): the saving must come
        // from shared-line traffic, not from pretending the post runs
        // less private code than the walk.
        let post = profile_two_cpu(&maint_post_pattern(51), 3, CostModel::default());
        let walk = profile_two_cpu(&inline_maint_pattern(40), 3, CostModel::default());
        assert_eq!(post.accesses, walk.accesses);
        // Structurally: one RMW for the post, against lock + unlock
        // around a four-chain walk.
        assert_eq!(
            maint_post_pattern(0)
                .iter()
                .filter(|r| r.kind == AccessKind::Rmw)
                .count(),
            1
        );
        // Under two-CPU contention (every shared line remote), the post
        // is priced well below the locked walk it replaces — this is the
        // DES justification for routing slow-path work through the
        // mailbox.
        assert!(
            (walk.elapsed_cycles as f64) > 1.5 * post.elapsed_cycles as f64,
            "inline walk {} cycles vs mailbox post {} cycles — offload not priced in",
            walk.elapsed_cycles,
            post.elapsed_cycles
        );
    }

    #[test]
    fn line_shift_matches_probe_layer() {
        // The analysis and DES layers must agree on line granularity.
        assert_eq!(kmem_smp::probe::LINE_SHIFT, 6);
    }
}
