//! Property tests for the discrete-event engine (DESIGN.md §6f).

use kmem_testkit::{check, no_shrink, Rng};

use kmem_sim::{SimConfig, Simulator};
use kmem_smp::probe::{self, ProbeEvent};
use kmem_smp::SpinLock;

/// A (ncpus, ops, base, cs) parameter tuple.
type Params = (usize, u64, u64, u64);

/// Shrinks a [`Params`] tuple component-wise toward its lower bounds.
fn shrink_params(lo: Params) -> impl Fn(&Params) -> Vec<Params> {
    move |&(ncpus, ops, base, cs)| {
        let mut out = Vec::new();
        for n in kmem_testkit::shrink_usize(ncpus, lo.0) {
            out.push((n, ops, base, cs));
        }
        for o in kmem_testkit::shrink_u64(ops, lo.1) {
            out.push((ncpus, o, base, cs));
        }
        for b in kmem_testkit::shrink_u64(base, lo.2) {
            out.push((ncpus, ops, b, cs));
        }
        for c in kmem_testkit::shrink_u64(cs, lo.3) {
            out.push((ncpus, ops, base, c));
        }
        out
    }
}

/// Whatever the per-op cost mix, the run completes the exact op count
/// and elapsed time is bounded below by both the per-CPU work and the
/// lock-serialized work.
#[test]
fn elapsed_respects_work_lower_bounds() {
    check(
        "elapsed_respects_work_lower_bounds",
        48,
        |rng: &mut Rng| {
            (
                rng.range_usize(1..8),
                rng.range_u64(1..200),
                rng.range_u64(0..500),
                rng.range_u64(1..300),
            )
        },
        shrink_params((1, 1, 0, 1)),
        |&(ncpus, ops, base, cs)| {
            let lock = SpinLock::new(());
            let r = Simulator::new(SimConfig::new(ncpus, ops)).run(|_| {
                let _g = lock.lock();
                probe::emit(ProbeEvent::Work { cycles: cs });
                base
            });
            assert_eq!(r.total_ops, ops * ncpus as u64);
            // Per-CPU lower bound: each CPU did `ops` ops of ≥ base cycles.
            assert!(r.elapsed_cycles >= ops * base);
            // Serialization lower bound: every critical section is ≥ cs and
            // they cannot overlap.
            assert!(r.elapsed_cycles >= ops * ncpus as u64 * cs);
            Ok(())
        },
    );
}

/// Lock-free work scales exactly: N CPUs finish in the same simulated
/// time one CPU needs (no hidden cross-CPU coupling).
#[test]
fn private_work_is_perfectly_parallel() {
    check(
        "private_work_is_perfectly_parallel",
        48,
        |rng: &mut Rng| {
            (
                rng.range_usize(1..12),
                rng.range_u64(1..500),
                rng.range_u64(1..1000),
                1u64,
            )
        },
        shrink_params((1, 1, 1, 1)),
        |&(ncpus, ops, base, _)| {
            let solo = Simulator::new(SimConfig::new(1, ops)).run(|_| base);
            let many = Simulator::new(SimConfig::new(ncpus, ops)).run(|_| base);
            assert_eq!(solo.elapsed_cycles, many.elapsed_cycles);
            assert_eq!(many.total_ops, ops * ncpus as u64);
            Ok(())
        },
    );
}

/// The engine is deterministic for any parameter mix.
#[test]
fn determinism() {
    check(
        "determinism",
        48,
        |rng: &mut Rng| {
            (
                rng.range_usize(1..6),
                rng.range_u64(1..100),
                rng.range_u64(1..100),
            )
        },
        no_shrink,
        |&(ncpus, ops, cs)| {
            let run = || {
                let lock = SpinLock::new(());
                Simulator::new(SimConfig::new(ncpus, ops)).run(|_| {
                    let _g = lock.lock();
                    probe::emit(ProbeEvent::Work { cycles: cs });
                    7
                })
            };
            let a = run();
            let b = run();
            assert_eq!(a.elapsed_cycles, b.elapsed_cycles);
            assert_eq!(a.misses, b.misses);
            assert_eq!(a.lock_wait_cycles, b.lock_wait_cycles);
            Ok(())
        },
    );
}
