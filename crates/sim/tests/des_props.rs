//! Property tests for the discrete-event engine (DESIGN.md §6f).

use proptest::prelude::*;

use kmem_smp::probe::{self, ProbeEvent};
use kmem_smp::SpinLock;
use kmem_sim::{SimConfig, Simulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the per-op cost mix, the run completes the exact op count
    /// and elapsed time is bounded below by both the per-CPU work and the
    /// lock-serialized work.
    #[test]
    fn elapsed_respects_work_lower_bounds(
        ncpus in 1usize..8,
        ops in 1u64..200,
        base in 0u64..500,
        cs in 1u64..300,
    ) {
        let lock = SpinLock::new(());
        let r = Simulator::new(SimConfig::new(ncpus, ops)).run(|_| {
            let _g = lock.lock();
            probe::emit(ProbeEvent::Work { cycles: cs });
            base
        });
        prop_assert_eq!(r.total_ops, ops * ncpus as u64);
        // Per-CPU lower bound: each CPU did `ops` ops of ≥ base cycles.
        prop_assert!(r.elapsed_cycles >= ops * base);
        // Serialization lower bound: every critical section is ≥ cs and
        // they cannot overlap.
        prop_assert!(r.elapsed_cycles >= ops * ncpus as u64 * cs);
    }

    /// Lock-free work scales exactly: N CPUs finish in the same simulated
    /// time one CPU needs (no hidden cross-CPU coupling).
    #[test]
    fn private_work_is_perfectly_parallel(
        ncpus in 1usize..12,
        ops in 1u64..500,
        base in 1u64..1000,
    ) {
        let solo = Simulator::new(SimConfig::new(1, ops)).run(|_| base);
        let many = Simulator::new(SimConfig::new(ncpus, ops)).run(|_| base);
        prop_assert_eq!(solo.elapsed_cycles, many.elapsed_cycles);
        prop_assert_eq!(many.total_ops, ops * ncpus as u64);
    }

    /// The engine is deterministic for any parameter mix.
    #[test]
    fn determinism(
        ncpus in 1usize..6,
        ops in 1u64..100,
        cs in 1u64..100,
    ) {
        let run = || {
            let lock = SpinLock::new(());
            Simulator::new(SimConfig::new(ncpus, ops)).run(|_| {
                let _g = lock.lock();
                probe::emit(ProbeEvent::Work { cycles: cs });
                7
            })
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.elapsed_cycles, b.elapsed_cycles);
        prop_assert_eq!(a.misses, b.misses);
        prop_assert_eq!(a.lock_wait_cycles, b.lock_wait_cycles);
    }
}
