//! Prices the lock-free global layer against a spinlocked equivalent on
//! the paper's 25-CPU Sequent Symmetry configuration.
//!
//! The workload is the pattern the global layer exists for (paper §3.2):
//! every CPU repeatedly takes an intact `target`-sized chain and hands one
//! back — pure CPU-to-CPU chain recycling. The Treiber-stack pool does it
//! with one tag-CAS per direction; the baseline guards a `Vec<Chain>` with
//! a [`SpinLock`]. Both run under the discrete-event engine, which prices
//! every probe event (shared-line reads/writes, lock hand-offs, spin-bus
//! interference), so the comparison is the simulated Figure-7 delta, not
//! host wall time.

use kmem::chain::Chain;
use kmem::global::GlobalPool;
use kmem_sim::{SimConfig, Simulator};
use kmem_smp::SpinLock;

const NCPUS: usize = 25;
const OPS: u64 = 400;
const TARGET: usize = 4;
const SEED_CHAINS: usize = 8;
/// Calibrated probe-free base cost of a get/put pair (cycles).
const BASE: u64 = 60;

/// Backing store of fake blocks with stable addresses.
#[expect(clippy::vec_box)]
fn backing(n: usize) -> Vec<Box<[u8; 32]>> {
    (0..n).map(|_| Box::new([0u8; 32])).collect()
}

fn chain(store: &mut [Box<[u8; 32]>], range: core::ops::Range<usize>) -> Chain {
    let mut c = Chain::new();
    for b in &mut store[range] {
        // SAFETY: fake blocks are owned and disjoint.
        unsafe { c.push(b.as_mut_ptr()) };
    }
    c
}

fn discard(mut c: Chain) {
    while c.pop().is_some() {}
}

/// The naive parallelization the paper argues against: one lock around
/// the whole chain pool.
struct SpinPool {
    chains: SpinLock<Vec<Chain>>,
}

impl SpinPool {
    fn get(&self) -> Option<Chain> {
        self.chains.lock().pop()
    }

    fn put(&self, c: Chain) {
        self.chains.lock().push(c);
    }
}

#[test]
fn lock_free_global_beats_spinlocked_pool_at_25_cpus() {
    // Spinlocked baseline.
    let mut store = backing(SEED_CHAINS * TARGET);
    let spin = SpinPool {
        chains: SpinLock::new(Vec::new()),
    };
    for i in 0..SEED_CHAINS {
        spin.put(chain(&mut store, i * TARGET..(i + 1) * TARGET));
    }
    let spin_result = Simulator::new(SimConfig::new(NCPUS, OPS)).run(|_| {
        let c = spin.get().expect("pool seeded above demand");
        spin.put(c);
        BASE
    });
    for c in spin.chains.lock().drain(..) {
        discard(c);
    }

    // Lock-free global pool, same seed, same op mix.
    let mut store = backing(SEED_CHAINS * TARGET);
    let pool = GlobalPool::new(TARGET, SEED_CHAINS * TARGET);
    for i in 0..SEED_CHAINS {
        assert!(pool
            .put_chain(chain(&mut store, i * TARGET..(i + 1) * TARGET))
            .is_none());
    }
    let cas_result = Simulator::new(SimConfig::new(NCPUS, OPS)).run(|_| {
        let c = pool.get_chain().expect("pool seeded above demand");
        assert!(pool.put_chain(c).is_none());
        BASE
    });
    discard(pool.drain_all());

    // The stack head still bounces between caches — that traffic is real
    // and must be priced...
    assert!(
        cas_result.remote_transfers > 0,
        "lock-free run priced no cross-CPU line transfers: {cas_result:?}"
    );
    // ...but no CPU ever waits on a lock,
    assert_eq!(
        cas_result.lock_wait_cycles, 0,
        "lock-free run waited on a lock: {cas_result:?}"
    );
    // while the spinlocked pool serializes every op pair,
    assert!(
        spin_result.lock_wait_cycles > 0,
        "baseline never contended — workload too light: {spin_result:?}"
    );
    // and at 25 CPUs the serialization dominates: the lock-free layer is
    // strictly faster in simulated time.
    assert!(
        cas_result.elapsed_cycles < spin_result.elapsed_cycles,
        "lock-free {} cycles vs spinlocked {} cycles",
        cas_result.elapsed_cycles,
        spin_result.elapsed_cycles
    );
    // Sanity: both runs completed the same op count.
    assert_eq!(cas_result.total_ops, spin_result.total_ops);

    // Visible under `--nocapture`; EXPERIMENTS.md records these.
    println!(
        "global contention @ {NCPUS} CPUs: spinlocked {} cycles \
         ({} lock-wait), lock-free {} cycles ({} lock-wait, {} remote \
         transfers) — {:.2}x",
        spin_result.elapsed_cycles,
        spin_result.lock_wait_cycles,
        cas_result.elapsed_cycles,
        cas_result.lock_wait_cycles,
        cas_result.remote_transfers,
        spin_result.elapsed_cycles as f64 / cas_result.elapsed_cycles as f64,
    );
}
