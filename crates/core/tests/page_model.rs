//! Linearizability model test for the lock-free page layer.
//!
//! Seeded multi-thread schedules (testkit [`interleaving`] generator) are
//! replayed against the lock-free radix lists, and after **every** step the
//! layer's observable state is compared with a sequential reference
//! allocator executing the same operation sequence. Because the reference
//! is sequential, agreement on every prefix of every schedule is exactly
//! the linearizability claim for this (deterministically explored) slice
//! of the interleaving space: each lock-free operation behaves as if it
//! happened atomically at its schedule position.
//!
//! Tie nondeterminism (two pages with the same free count) is handled by
//! comparing count *multisets*, not page identities: the layer must match
//! *some* sequential greedy-min execution.
//!
//! Failures shrink to a minimal schedule and report a replayable
//! `KMEM_TESTKIT_SEED`.

use std::collections::HashMap;
use std::sync::Arc;

use kmem::chain::Chain;
use kmem::pagelayer::PageLayer;
use kmem::vmblklayer::VmblkLayer;
use kmem_testkit::{check, interleaving, shrink_vec};
use kmem_vm::{KernelSpace, SpaceConfig, PAGE_SIZE};

const BLOCK_SIZE: usize = 512;
const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 16;

fn setup() -> (VmblkLayer, PageLayer) {
    let space = Arc::new(KernelSpace::new(
        SpaceConfig::new(4 << 20).vmblk_shift(16).phys_pages(256),
    ));
    let vm = VmblkLayer::new(space, true);
    let layer = PageLayer::new(3, BLOCK_SIZE, true);
    (vm, layer)
}

fn page_of(block: usize) -> usize {
    block & !(PAGE_SIZE - 1)
}

/// Deterministic per-(thread, step) decision word, so shrinking the
/// schedule never changes what an individual step *does* — only whether
/// and when it runs.
fn op_word(thread: usize, step: usize) -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64
        .wrapping_mul(thread as u64 + 1)
        .wrapping_add((step as u64) << 17)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The sequential reference: counts-only greedy-min simulation of one
/// allocation of `want` blocks. Mirrors the radix policy exactly —
/// repeatedly drain the fewest-free page, carving a fresh `bpp`-block page
/// only when nothing is listed. Returns the number of fresh pages carved.
fn reference_alloc(counts: &mut Vec<usize>, want: usize, bpp: usize) -> usize {
    let mut need = want;
    let mut carved = 0;
    while need > 0 {
        if let Some(pos) = counts
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
        {
            let take = counts[pos].min(need);
            counts[pos] -= take;
            need -= take;
            if counts[pos] == 0 {
                counts.swap_remove(pos);
            }
        } else {
            carved += 1;
            let take = need.min(bpp);
            need -= take;
            if take < bpp {
                counts.push(bpp - take);
            }
        }
    }
    carved
}

/// Collects the listed (free_count) multiset straight from the layer.
fn listed_counts(layer: &PageLayer) -> Vec<usize> {
    let mut counts = Vec::new();
    layer.for_each_page(|count, listed| {
        assert_eq!(count, listed, "free_count disagrees with freelist length");
        counts.push(count);
    });
    counts.sort_unstable();
    counts
}

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

/// Replays one schedule, checking the layer against the reference after
/// every step. Returns `Err` (for the shrinker) on the first divergence.
fn replay(schedule: &[usize]) -> Result<(), String> {
    let (vm, layer) = setup();
    let bpp = layer.blocks_per_page();

    // Per-logical-thread held blocks and step counters.
    let mut held: Vec<Vec<usize>> = vec![Vec::new(); THREADS];
    let mut steps = [0usize; THREADS];
    // Ground-truth model keyed by real page addresses; its count multiset
    // must always match both the reference simulation and the layer.
    let mut model: HashMap<usize, usize> = HashMap::new();

    for (pos, &t) in schedule.iter().enumerate() {
        let step = steps[t];
        steps[t] += 1;
        let w = op_word(t, step);
        let mine = &mut held[t];

        if w & 1 == 0 || mine.is_empty() {
            // Allocate 1–3 blocks as one chain.
            let want = 1 + (w >> 1) as usize % 3;
            let mut ref_counts: Vec<usize> = model.values().copied().collect();
            let ref_carved = reference_alloc(&mut ref_counts, want, bpp);

            let mut chain = match layer.alloc_chain(&vm, want) {
                Ok(c) => c,
                Err(e) => return Err(format!("step {pos}: alloc_chain failed: {e:?}")),
            };
            if chain.len() != want {
                return Err(format!(
                    "step {pos}: asked {want} blocks, got {}",
                    chain.len()
                ));
            }
            let mut carved = 0;
            while let Some(blk) = chain.pop() {
                let blk = blk as usize;
                let page = page_of(blk);
                match model.get_mut(&page) {
                    Some(c) => {
                        if *c == 0 {
                            return Err(format!(
                                "step {pos}: block taken from a page the model \
                                 says is exhausted"
                            ));
                        }
                        *c -= 1;
                    }
                    None => {
                        carved += 1;
                        model.insert(page, bpp - 1);
                    }
                }
                mine.push(blk);
            }
            if carved != ref_carved {
                return Err(format!(
                    "step {pos}: layer carved {carved} fresh pages, the \
                     sequential reference carved {ref_carved}"
                ));
            }
            // Radix policy up to ties: the post-alloc count multiset must
            // match the greedy-min reference.
            let got = sorted(model.values().copied().filter(|&c| c > 0).collect());
            if got != sorted(ref_counts.clone()) {
                return Err(format!(
                    "step {pos}: alloc of {want} left counts {got:?}, \
                     reference says {ref_counts:?}"
                ));
            }
        } else {
            // Free 1–4 held blocks (deterministic picks) as one chain.
            let n = (1 + (w >> 1) as usize % 4).min(mine.len());
            let mut chain = Chain::new();
            for i in 0..n {
                let idx = ((w >> (8 + i * 8)) as usize) % mine.len();
                let blk = mine.swap_remove(idx);
                // SAFETY: allocated from this layer above, freed once.
                unsafe { chain.push(blk as *mut u8) };
                let count = model.get_mut(&page_of(blk)).unwrap();
                *count += 1;
                if *count == bpp {
                    // Fully free: the layer must release the page.
                    model.remove(&page_of(blk));
                }
            }
            // SAFETY: chain holds blocks of this layer, each freed once.
            unsafe { layer.free_chain(&vm, chain) };
        }

        // Linearization point check: after every step the layer's listed
        // multiset and usage gauges agree with the sequential model.
        let expect = sorted(model.values().copied().filter(|&c| c > 0).collect());
        let got = listed_counts(&layer);
        if got != expect {
            return Err(format!(
                "step {pos}: layer lists {got:?}, model says {expect:?}"
            ));
        }
        let (npages, nfree) = layer.usage();
        if npages != model.len() || nfree != model.values().sum::<usize>() {
            return Err(format!(
                "step {pos}: usage ({npages}, {nfree}) != model ({}, {})",
                model.len(),
                model.values().sum::<usize>()
            ));
        }
    }

    // Teardown: return everything; all pages must release and the frame
    // count must reach zero — full coalescing survived the schedule.
    let mut chain = Chain::new();
    for mine in &mut held {
        for blk in mine.drain(..) {
            // SAFETY: allocated from this layer above, freed once.
            unsafe { chain.push(blk as *mut u8) };
        }
    }
    // SAFETY: as above.
    unsafe { layer.free_chain(&vm, chain) };
    if layer.usage() != (0, 0) {
        return Err(format!("teardown left usage {:?}", layer.usage()));
    }
    if vm.space().phys().in_use() != 0 {
        return Err("teardown leaked physical frames".into());
    }
    Ok(())
}

#[test]
fn lock_free_page_layer_linearizes_against_sequential_reference() {
    check(
        "page_layer_linearizability",
        40,
        interleaving(THREADS, OPS_PER_THREAD),
        |s| shrink_vec(s, |_| Vec::new()),
        |schedule| replay(schedule),
    );
}

/// A pinned adversarial schedule (all of thread 0, then strict round-robin)
/// on top of the random sweep, so the densest alloc/free alternation is
/// exercised on every run regardless of seed.
#[test]
fn round_robin_schedule_linearizes() {
    let mut schedule: Vec<usize> = (0..THREADS)
        .flat_map(|t| std::iter::repeat_n(t, OPS_PER_THREAD))
        .collect();
    replay(&schedule).unwrap();
    schedule = (0..OPS_PER_THREAD).flat_map(|_| 0..THREADS).collect();
    replay(&schedule).unwrap();
}
