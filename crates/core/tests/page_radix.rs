//! Model-based coverage of the radix-sorted per-page freelists: under a
//! mixed alloc/free workload, allocation must prefer the pages with the
//! fewest free blocks, and fully freed pages must leave the list (and
//! return their frame).

use std::collections::HashMap;
use std::sync::Arc;

use kmem::chain::Chain;
use kmem::pagelayer::PageLayer;
use kmem::vmblklayer::VmblkLayer;
use kmem_testkit::Rng;
use kmem_vm::{KernelSpace, SpaceConfig, PAGE_SIZE};

const BLOCK_SIZE: usize = 512;

fn setup() -> (VmblkLayer, PageLayer) {
    let space = Arc::new(KernelSpace::new(
        SpaceConfig::new(4 << 20).vmblk_shift(16).phys_pages(256),
    ));
    let vm = VmblkLayer::new(space, true);
    let layer = PageLayer::new(3, BLOCK_SIZE, true);
    (vm, layer)
}

fn page_of(block: usize) -> usize {
    block & !(PAGE_SIZE - 1)
}

/// Collects the listed (free_count) multiset straight from the layer.
fn listed_counts(layer: &PageLayer) -> Vec<usize> {
    let mut counts = Vec::new();
    layer.for_each_page(|count, listed| {
        assert_eq!(count, listed, "free_count disagrees with freelist length");
        counts.push(count);
    });
    counts.sort_unstable();
    counts
}

/// A mixed workload driven against a shadow model (page address →
/// expected free count). After every operation the layer's listed pages
/// must match the model, no listed page may be fully free (such pages are
/// released immediately), and single-block refills must come from a page
/// with the minimum free count — the radix policy.
#[test]
fn mixed_workload_obeys_radix_policy() {
    let (vm, layer) = setup();
    let bpp = layer.blocks_per_page();
    assert_eq!(bpp, PAGE_SIZE / BLOCK_SIZE);

    let mut rng = Rng::new(0x5261_6469_7854); // "RadixT"
    let mut held: Vec<usize> = Vec::new();
    // page base -> free blocks in that page (0 = owned but unlisted).
    let mut model: HashMap<usize, usize> = HashMap::new();
    let mut preference_checks = 0u32;

    for _ in 0..600 {
        if rng.ratio(3, 5) && held.len() < 800 {
            // Single-block refills so each one's source page is checkable.
            let min_free = model.values().copied().filter(|&c| c > 0).min();
            let Ok(mut chain) = layer.alloc_chain(&vm, 1) else {
                continue;
            };
            assert_eq!(chain.len(), 1);
            let blk = chain.pop().unwrap() as usize;
            let page = page_of(blk);
            match min_free {
                Some(m) => {
                    // Radix policy: the block must come out of a page with
                    // the fewest free blocks, not any fuller page.
                    assert_eq!(
                        model.get(&page).copied(),
                        Some(m),
                        "refill took from a page with more than the \
                         minimum {m} free blocks"
                    );
                    *model.get_mut(&page).unwrap() -= 1;
                    preference_checks += 1;
                }
                None => {
                    // No free blocks anywhere: a fresh page was carved.
                    assert!(
                        !model.contains_key(&page),
                        "fresh span aliases an owned page"
                    );
                    model.insert(page, bpp - 1);
                }
            }
            held.push(blk);
        } else if !held.is_empty() {
            // Free a few blocks (possibly of different pages) as one chain.
            let n = rng.range_usize(1..held.len().min(6) + 1);
            let mut chain = Chain::new();
            for _ in 0..n {
                let i = rng.index(held.len());
                let blk = held.swap_remove(i);
                // SAFETY: allocated from this layer above, freed once.
                unsafe { chain.push(blk as *mut u8) };
                let count = model.get_mut(&page_of(blk)).unwrap();
                *count += 1;
                if *count == bpp {
                    // Fully free: the layer must release the page.
                    model.remove(&page_of(blk));
                }
            }
            // SAFETY: chain holds blocks of this layer, each freed once.
            unsafe { layer.free_chain(&vm, chain) };
        }

        // The layer agrees with the model after every operation.
        let mut expected: Vec<usize> = model.values().copied().filter(|&c| c > 0).collect();
        expected.sort_unstable();
        assert_eq!(listed_counts(&layer), expected);
        // Fully freed pages left the list: nothing listed is all-free.
        assert!(expected.iter().all(|&c| c < bpp));
        let (npages, nfree) = layer.usage();
        assert_eq!(npages, model.len());
        assert_eq!(nfree, model.values().sum::<usize>());
    }

    assert!(
        preference_checks > 50,
        "workload never exercised the radix preference ({preference_checks})"
    );
    assert!(
        layer.stats().page_releases.get() > 0,
        "workload never drained a page"
    );

    // Teardown: everything returns, every page is released.
    let mut chain = Chain::new();
    for blk in held.drain(..) {
        // SAFETY: allocated from this layer above, freed once.
        unsafe { chain.push(blk as *mut u8) };
    }
    // SAFETY: as above.
    unsafe { layer.free_chain(&vm, chain) };
    assert_eq!(layer.usage(), (0, 0));
    assert_eq!(listed_counts(&layer), Vec::<usize>::new());
    assert_eq!(vm.space().phys().in_use(), 0);
}

/// The headline drain behaviour in isolation: partially drain two pages
/// to different depths, and watch refills empty the sparser page first
/// while the fuller one keeps gathering frees until it drains entirely.
#[test]
fn sparse_pages_drain_before_full_ones() {
    let (vm, layer) = setup();
    let bpp = layer.blocks_per_page();

    // Carve two pages: take all of page A, then all of page B.
    let mut a = layer.alloc_chain(&vm, bpp).unwrap();
    let mut b = layer.alloc_chain(&vm, bpp).unwrap();
    assert_eq!(layer.usage(), (2, 0));
    let page_a = page_of(a.iter().next().unwrap() as usize);
    let page_b = page_of(b.iter().next().unwrap() as usize);
    assert_ne!(page_a, page_b);

    // Give back 1 block of A and 3 of B: counts {A: 1, B: 3}.
    let mut back = Chain::new();
    // SAFETY: blocks from this layer, each freed once.
    unsafe {
        back.push(a.pop().unwrap());
        for _ in 0..3 {
            back.push(b.pop().unwrap());
        }
        layer.free_chain(&vm, back);
    }
    assert_eq!(listed_counts(&layer), vec![1, 3]);

    // One refill: must take A's lone free block (count 1 < 3), emptying A
    // out of the list while B keeps its 3.
    let mut got = layer.alloc_chain(&vm, 1).unwrap();
    assert_eq!(page_of(got.iter().next().unwrap() as usize), page_a);
    assert_eq!(listed_counts(&layer), vec![3]);

    // Free the rest of B: it reaches bpp free and leaves entirely —
    // frame returned, page no longer owned.
    let releases_before = layer.stats().page_releases.get();
    let mut rest = Chain::new();
    // SAFETY: blocks from this layer, each freed once.
    unsafe {
        while let Some(blk) = b.pop() {
            rest.push(blk);
        }
        layer.free_chain(&vm, rest);
    }
    assert_eq!(layer.stats().page_releases.get(), releases_before + 1);
    assert_eq!(layer.usage().0, 1); // only page A remains owned
    assert_eq!(listed_counts(&layer), Vec::<usize>::new()); // ...unlisted

    // Teardown.
    let mut rest = Chain::new();
    // SAFETY: blocks from this layer, each freed once.
    unsafe {
        while let Some(blk) = a.pop() {
            rest.push(blk);
        }
        while let Some(blk) = got.pop() {
            rest.push(blk);
        }
        layer.free_chain(&vm, rest);
    }
    assert_eq!(layer.usage(), (0, 0));
    assert_eq!(vm.space().phys().in_use(), 0);
}
