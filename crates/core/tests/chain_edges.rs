//! Edge cases for the chain primitives and the paths that feed odd-sized
//! chains into the global layer's bucket list.

use kmem::chain::Chain;
use kmem::global::GlobalPool;
use kmem::verify::verify_empty;
use kmem::{KmemArena, KmemConfig};

/// Backing store for fake blocks: boxed so addresses stay stable.
#[expect(clippy::vec_box)]
struct Blocks {
    store: Vec<Box<[u8; 32]>>,
    next: usize,
}

impl Blocks {
    fn new(n: usize) -> Self {
        Blocks {
            store: (0..n).map(|_| Box::new([0u8; 32])).collect(),
            next: 0,
        }
    }

    fn chain(&mut self, n: usize) -> Chain {
        let mut c = Chain::new();
        for _ in 0..n {
            // SAFETY: fake blocks are owned and disjoint.
            unsafe { c.push(self.store[self.next].as_mut_ptr()) };
            self.next += 1;
        }
        c
    }
}

fn drain(mut c: Chain) -> Vec<*mut u8> {
    let mut v = Vec::new();
    while let Some(b) = c.pop() {
        v.push(b);
    }
    v
}

/// Out-of-range splits (zero, longer than the chain, anything from an
/// empty chain) panic without disturbing the source chain. Checked via
/// `catch_unwind` rather than `should_panic` because a live chain must
/// still be drained afterwards (its drop asserts emptiness).
#[test]
fn split_first_rejects_out_of_range() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut blocks = Blocks::new(4);
    let mut c = blocks.chain(4);
    for n in [0usize, 5] {
        let r = catch_unwind(AssertUnwindSafe(|| c.split_first(n)));
        match r {
            Err(_) => {}
            Ok(sub) => {
                drain(sub);
                drain(c);
                panic!("split_first({n}) of a 4-chain did not panic");
            }
        }
    }
    assert_eq!(c.len(), 4, "failed split must not disturb the chain");
    drain(c);

    let mut empty = Chain::new();
    let r = catch_unwind(AssertUnwindSafe(|| empty.split_first(1)));
    match r {
        Err(_) => {}
        Ok(sub) => {
            drain(sub);
            panic!("split_first(1) of an empty chain did not panic");
        }
    }
}

/// Splitting off exactly the whole chain is the O(1) take-all path (no
/// link walk), and it must leave the source genuinely empty — head, tail,
/// and count — so later appends start from scratch.
#[test]
fn split_first_of_exactly_len_takes_all() {
    let mut blocks = Blocks::new(7);
    let mut c = blocks.chain(5);
    let all = c.split_first(5);
    assert_eq!(all.len(), 5);
    assert!(c.is_empty());
    assert!(c.pop().is_none());
    // The emptied chain is fully reusable.
    let mut more = blocks.chain(2);
    c.append(&mut more);
    assert_eq!(c.len(), 2);
    drain(all);
    drain(c);
}

/// A proper split cuts the link between the halves: walking the prefix
/// must not run into the suffix.
#[test]
fn split_first_severs_the_link() {
    let mut blocks = Blocks::new(6);
    let mut c = blocks.chain(6);
    let original: Vec<*mut u8> = c.iter().collect();
    let prefix = c.split_first(2);
    let walked: Vec<*mut u8> = prefix.iter().collect();
    assert_eq!(walked, &original[..2]);
    assert_eq!(c.iter().collect::<Vec<_>>(), &original[2..]);
    drain(prefix);
    drain(c);
}

#[test]
fn append_handles_all_empty_combinations() {
    let mut blocks = Blocks::new(4);

    // empty += empty: still empty, still usable.
    let mut a = Chain::new();
    let mut b = Chain::new();
    a.append(&mut b);
    assert!(a.is_empty() && b.is_empty());

    // empty += full: wholesale transfer, source emptied.
    let mut full = blocks.chain(2);
    a.append(&mut full);
    assert_eq!(a.len(), 2);
    assert!(full.is_empty());

    // full += empty: no-op.
    a.append(&mut b);
    assert_eq!(a.len(), 2);

    // The tail survives the transfers: appending more links after it.
    let mut more = blocks.chain(2);
    let more_blocks: Vec<*mut u8> = more.iter().collect();
    a.append(&mut more);
    assert_eq!(a.len(), 4);
    let order: Vec<*mut u8> = a.iter().collect();
    assert_eq!(&order[2..], &more_blocks[..]);
    drain(a);
}

/// An exactly-`target` chain arriving through the *odd* path regroups
/// instantly into a ready chain — `get_chain` returns it whole instead of
/// carving the bucket.
#[test]
fn exactly_target_odd_chain_becomes_a_ready_chain() {
    let mut blocks = Blocks::new(16);
    let pool = GlobalPool::new(4, 8);
    assert!(pool.put_odd(blocks.chain(4)).is_none());
    let got = pool.get_chain().unwrap();
    assert_eq!(got.len(), 4);
    assert!(pool.is_empty());
    drain(got);
}

/// An empty odd chain is a no-op: no stats bump, no bucket traffic.
#[test]
fn empty_odd_chain_is_ignored() {
    let pool = GlobalPool::new(4, 8);
    assert!(pool.put_odd(Chain::new()).is_none());
    assert_eq!(pool.stats().put(), 0);
    assert!(pool.is_empty());
}

/// Odd chains accumulate across puts and regroup exactly at `target`,
/// whatever the arrival pattern (1+1+1+1 vs 3+1 vs 2+2).
#[test]
fn bucket_regroups_any_arrival_pattern() {
    for pattern in [vec![1usize, 1, 1, 1], vec![3, 1], vec![2, 2], vec![1, 3]] {
        let mut blocks = Blocks::new(8);
        let pool = GlobalPool::new(4, 8);
        for &n in &pattern {
            assert!(pool.put_odd(blocks.chain(n)).is_none());
        }
        let got = pool.get_chain().unwrap();
        assert_eq!(got.len(), 4, "pattern {pattern:?} failed to regroup");
        assert!(pool.is_empty());
        drain(got);
    }
}

/// The arena path that creates odd chains in real traffic: a cache flush
/// (the low-memory drain operation) hands a non-`target`-sized chain to
/// the global layer, which buckets it; the next CPU's refill is then
/// served from the bucket without touching the coalesce-to-page layer.
#[test]
fn cache_flush_feeds_odd_chain_into_bucket() {
    let arena = KmemArena::new(KmemConfig::new(2, kmem_vm::SpaceConfig::new(16 << 20))).unwrap();
    let cpu1 = arena.register_cpu().unwrap();
    let cpu2 = arena.register_cpu().unwrap();
    let class = arena.cookie_for(256).unwrap().class_index();

    // Fill cpu1's cache (refill brings in a full target chain), then free
    // one block back so the cache holds a non-target count.
    let a = cpu1.alloc(256).unwrap();
    let b = cpu1.alloc(256).unwrap();
    // SAFETY: allocated above, freed once.
    unsafe { cpu1.free(a) };
    let cached = cpu1.cached_blocks();
    assert!(cached > 0, "cache unexpectedly empty");

    let before = arena.stats().classes[class];
    cpu1.flush();
    let after_flush = arena.stats().classes[class];
    // The flush put one (odd) chain to the global layer.
    assert_eq!(
        after_flush.gbl_free.accesses,
        before.gbl_free.accesses + 1,
        "flush did not reach the global layer"
    );

    // cpu2's refill is served from the bucketed blocks: a global get that
    // does NOT miss to the page layer.
    let c = cpu2.alloc(256).unwrap();
    let after_refill = arena.stats().classes[class];
    assert_eq!(
        after_refill.gbl_alloc.accesses,
        after_flush.gbl_alloc.accesses + 1
    );
    assert_eq!(
        after_refill.gbl_alloc.misses, after_flush.gbl_alloc.misses,
        "refill bypassed the bucketed flush chain"
    );

    // SAFETY: allocated above, freed once each.
    unsafe {
        cpu2.free(c);
        cpu1.free(b);
    }
    cpu1.flush();
    cpu2.flush();
    arena.reclaim();
    verify_empty(&arena);
}
