//! Property tests for the coalesce-to-vmblk layer: random span traffic
//! must keep the boundary tags, span freelists, and frame accounting
//! exact at every step.

use std::sync::Arc;

use kmem::pagedesc::PdKind;
use kmem::vmblklayer::VmblkLayer;
use kmem_testkit::{check, shrink_vec, vec_of, Rng};
use kmem_vm::{KernelSpace, SpaceConfig};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a span of this many pages.
    Alloc(usize),
    /// Free the i-th live span (modulo live count).
    Free(usize),
    /// Allocate a large block of this many bytes.
    Large(usize),
}

fn gen_op(rng: &mut Rng) -> Op {
    // Weighted 3:3:1, matching the original proptest strategy.
    match rng.range_u64(0..7) {
        0..=2 => Op::Alloc(rng.range_usize(1..6)),
        3..=5 => Op::Free(rng.range_usize(0..64)),
        _ => Op::Large(rng.range_usize(1..20_000)),
    }
}

fn shrink_op(op: &Op) -> Vec<Op> {
    match *op {
        Op::Alloc(n) => kmem_testkit::shrink_usize(n, 1)
            .into_iter()
            .map(Op::Alloc)
            .collect(),
        Op::Free(i) => kmem_testkit::shrink_usize(i, 0)
            .into_iter()
            .map(Op::Free)
            .collect(),
        // A Large op simplifies toward a plain one-page span.
        Op::Large(b) => {
            let mut out = vec![Op::Alloc(1)];
            out.extend(kmem_testkit::shrink_usize(b, 1).into_iter().map(Op::Large));
            out
        }
    }
}

fn run_span_traffic(ops: &[Op]) -> Result<(), String> {
    let space = Arc::new(KernelSpace::new(
        SpaceConfig::new(1 << 20).vmblk_shift(16).phys_pages(128),
    ));
    let layer = VmblkLayer::new(space, true);
    // (addr, pages, is_large)
    let mut live: Vec<(usize, usize, bool)> = Vec::new();
    for o in ops {
        match *o {
            Op::Alloc(n) => {
                if let Ok((addr, pd)) = layer.alloc_span(n) {
                    // Mark the span as a consumer would (the page
                    // layer marks BlockPage; everything else marks
                    // Large) — the invariant walker requires every
                    // allocated span to carry its owner's tag.
                    // SAFETY: the span is exclusively ours; no layer
                    // can reach its descriptor until it is freed.
                    unsafe { pd.inner().span_pages = n as u32 };
                    pd.set_kind(PdKind::Large);
                    live.push((addr.as_ptr() as usize, n, false));
                }
            }
            Op::Large(bytes) => {
                if let Ok(addr) = layer.alloc_large(bytes) {
                    live.push((addr.as_ptr() as usize, bytes.div_ceil(4096), true));
                }
            }
            Op::Free(i) => {
                if live.is_empty() {
                    continue;
                }
                let (addr, n, large) = live.swap_remove(i % live.len());
                let p = std::ptr::NonNull::new(addr as *mut u8).unwrap();
                // SAFETY: allocated above, freed exactly once.
                unsafe {
                    if large {
                        let freed = layer.free_large(p);
                        if freed != n {
                            return Err(format!("free_large returned {freed} pages, expected {n}"));
                        }
                    } else {
                        layer.pd_of(addr).unwrap().set_kind(PdKind::Unused);
                        layer.free_span(p, n);
                    }
                }
            }
        }
        // The walker checks: tags consistent, no adjacent free spans,
        // freelists exact, frame accounting exact.
        layer.verify();
    }
    // Live spans never overlap.
    let mut sorted = live.clone();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0].0 + w[0].1 * 4096 > w[1].0 {
            return Err(format!("spans overlap: {:?} {:?}", w[0], w[1]));
        }
    }
    // Free everything: all vmblks must be released.
    for (addr, n, large) in live {
        let p = std::ptr::NonNull::new(addr as *mut u8).unwrap();
        // SAFETY: allocated above, freed exactly once.
        unsafe {
            if large {
                layer.free_large(p);
            } else {
                layer.pd_of(addr).unwrap().set_kind(PdKind::Unused);
                layer.free_span(p, n);
            }
        }
    }
    layer.verify();
    if layer.nvmblks() != 0 {
        return Err(format!("{} vmblks left after full drain", layer.nvmblks()));
    }
    if layer.space().phys().in_use() != 0 {
        return Err(format!(
            "{} phys frames still in use after full drain",
            layer.space().phys().in_use()
        ));
    }
    Ok(())
}

#[test]
fn random_span_traffic_stays_coalesced() {
    check(
        "random_span_traffic_stays_coalesced",
        48,
        vec_of(1..150, gen_op),
        |ops| shrink_vec(ops, shrink_op),
        |ops| run_span_traffic(ops),
    );
}

/// Regression (saved proptest counterexample): a single one-page span
/// allocation, then the drain path. Caught a walker bug in the
/// single-span vmblk case.
#[test]
fn regression_single_one_page_span() {
    run_span_traffic(&[Op::Alloc(1)]).unwrap();
}

#[test]
fn arenas_are_fully_isolated() {
    use kmem::{KmemArena, KmemConfig};
    let a = KmemArena::new(KmemConfig::small()).unwrap();
    let b = KmemArena::new(KmemConfig::small()).unwrap();
    let cpu_a = a.register_cpu().unwrap();
    let cpu_b = b.register_cpu().unwrap();
    let pa = cpu_a.alloc(128).unwrap();
    let pb = cpu_b.alloc(128).unwrap();
    // Traffic in one arena does not move the other's statistics.
    assert_eq!(b.stats().total_allocs(), 1);
    assert_eq!(a.stats().total_allocs(), 1);
    // Freeing across arenas is caught (addresses live in different
    // reservations, so the dope lookup rejects them).
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // SAFETY: intentionally violates the contract to test the guard;
        // the pointer is valid memory, just foreign to `b`.
        unsafe { cpu_b.free(pa) };
    }));
    assert!(r.is_err(), "cross-arena free must be rejected");
    // SAFETY: allocated above, freed once each in their own arenas.
    unsafe {
        cpu_a.free(pa);
        cpu_b.free(pb);
    }
}
