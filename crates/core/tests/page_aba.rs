//! ABA regression test for the generation-tagged page lists.
//!
//! The page layer's radix buckets and the vmblk page cache are Treiber
//! stacks of `PageDesc` linked through `anext` under a [`TaggedAtomic`]
//! head. A plain pointer CAS would be unsound there: between a popper's
//! head load and its CAS, the same descriptor can be popped, recycled and
//! pushed back (the ABA problem), and the CAS would splice a stale —
//! possibly absent — successor into the list, losing or double-owning
//! pages.
//!
//! The first test stages that exact interleaving with two real threads and
//! barrier rendezvous, replicating `PdStack::push`/`pop` op-for-op so the
//! popper can be held *between* its head load and its CAS (the real `pop`
//! is a single call and cannot be paused there). The stale CAS must fail
//! on the generation tag alone — the pointer halves match, so removing the
//! tags makes the CAS succeed and the assertions below fail. The second
//! test churns a real [`PdStack`] from two seeded threads as a
//! conservation backstop.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Barrier;

use kmem::pagedesc::{PageDesc, PdStack};
use kmem_smp::TaggedAtomic;
use kmem_testkit::Rng;

/// A list node shaped like a page descriptor's lock-free linkage: the
/// stack head is the tagged word, nodes link through an atomic next.
struct Node {
    next: AtomicPtr<Node>,
}

/// `PdStack::push`, op-for-op.
fn push(head: &TaggedAtomic, node: *mut Node) {
    let mut cur = head.load();
    loop {
        // SAFETY: the caller possesses `node` until the CAS publishes it.
        unsafe {
            (*node)
                .next
                .store(cur.ptr() as *mut Node, Ordering::Release)
        };
        match head.compare_exchange(cur, node as *mut u8) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// `PdStack::pop`, op-for-op.
fn pop(head: &TaggedAtomic) -> Option<*mut Node> {
    let mut cur = head.load();
    loop {
        if cur.is_null() {
            return None;
        }
        let node = cur.ptr() as *mut Node;
        // SAFETY: node storage is type-stable for the whole test; a stale
        // next is discarded when the tag CAS fails.
        let next = unsafe { (*node).next.load(Ordering::Acquire) };
        match head.compare_exchange(cur, next as *mut u8) {
            Ok(_) => return Some(node),
            Err(seen) => cur = seen,
        }
    }
}

/// The classic two-thread pop/push/push-back interleaving, staged
/// deterministically. Seed varies the stack depth and how much extra
/// churn the interfering thread adds before handing control back.
#[test]
fn stale_pop_cas_fails_on_generation_tag() {
    let mut rng = Rng::new(0xABA0_5EED);
    for round in 0..16 {
        let depth = rng.range_usize(3..9);
        let churn = rng.range_usize(0..4);
        let nodes: Vec<Node> = (0..depth)
            .map(|_| Node {
                next: AtomicPtr::new(std::ptr::null_mut()),
            })
            .collect();
        let head = TaggedAtomic::null();
        for n in &nodes {
            push(&head, n as *const Node as *mut Node);
        }
        // Stack is now [A, B, ...] top-down with A the last-pushed node.
        // Addresses cross the thread boundary as plain integers.
        let a_addr = &nodes[depth - 1] as *const Node as usize;
        let b_addr = &nodes[depth - 2] as *const Node as usize;

        let staged = Barrier::new(2);
        let churned = Barrier::new(2);
        std::thread::scope(|s| {
            // The stalled popper: loads head and A's successor, then stalls
            // exactly where a preempted CPU would.
            s.spawn(|| {
                let (a, b) = (a_addr as *mut Node, b_addr as *mut Node);
                let cur = head.load();
                assert_eq!(cur.ptr() as *mut Node, a);
                // SAFETY: A is live and on the stack at this point.
                let next = unsafe { (*a).next.load(Ordering::Acquire) };
                assert_eq!(next, b);
                staged.wait();
                churned.wait();
                // Resume: head points at A again, but B is *gone* — the
                // CAS must fail on the tag, though the pointers match.
                let err = match head.compare_exchange(cur, next as *mut u8) {
                    Err(e) => e,
                    Ok(_) => panic!("round {round}: stale pop CAS succeeded — ABA splice"),
                };
                assert_eq!(
                    err.ptr() as *mut Node,
                    a,
                    "pointer halves match — only the tag can reject this CAS"
                );
                assert_ne!(err.tag(), cur.tag(), "tag must have moved");
                // A proper retry from fresh state pops A, not B.
                assert_eq!(pop(&head), Some(a));
            });
            // The interfering thread: pop A, pop B (and keep it), push A
            // back — optionally cycling A a few more times first.
            s.spawn(|| {
                let (a, b) = (a_addr as *mut Node, b_addr as *mut Node);
                staged.wait();
                assert_eq!(pop(&head), Some(a));
                assert_eq!(pop(&head), Some(b));
                for _ in 0..churn {
                    push(&head, a);
                    assert_eq!(pop(&head), Some(a));
                }
                push(&head, a);
                churned.wait();
            });
        });

        // Conservation: A and B are held (popper took A, interferer holds
        // B); exactly the remaining depth-2 nodes drain out, each once.
        let mut drained = Vec::new();
        while let Some(n) = pop(&head) {
            drained.push(n as usize);
        }
        drained.sort_unstable();
        let mut want: Vec<usize> = nodes[..depth - 2]
            .iter()
            .map(|n| n as *const Node as usize)
            .collect();
        want.sort_unstable();
        assert_eq!(drained, want, "round {round}: lost or duplicated nodes");
    }
}

/// Backstop on the real descriptor stack: two seeded threads cycling
/// descriptors through a [`PdStack`] long enough that an untagged head
/// would splice stale successors; every descriptor must come back exactly
/// once.
#[test]
fn pd_stack_two_thread_churn_conserves_descriptors() {
    const N: usize = 4;
    let mut slots: Vec<Box<std::mem::MaybeUninit<PageDesc>>> =
        (0..N).map(|_| Box::new_uninit()).collect();
    let ptrs: Vec<usize> = slots
        .iter_mut()
        .map(|b| {
            let p = b.as_mut_ptr();
            // SAFETY: the box provides valid, aligned storage.
            unsafe { PageDesc::init(p) };
            p as usize
        })
        .collect();
    let stack = PdStack::new();
    for &p in &ptrs {
        // SAFETY: descriptors are owned and in no stack.
        unsafe { stack.push(p as *mut PageDesc) };
    }
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let stack = &stack;
            s.spawn(move || {
                let mut rng = Rng::new(0xABA1_0000 + t);
                for _ in 0..30_000 {
                    if let (Some(pd), _) = stack.pop() {
                        // A seeded pause widens the load-to-CAS windows on
                        // the other thread.
                        for _ in 0..rng.range_usize(0..8) {
                            std::hint::spin_loop();
                        }
                        // SAFETY: pop transferred possession.
                        unsafe { stack.push(pd) };
                    }
                }
            });
        }
    });
    let mut seen = Vec::new();
    while let (Some(pd), _) = stack.pop() {
        seen.push(pd as usize);
    }
    seen.sort_unstable();
    let mut want = ptrs.clone();
    want.sort_unstable();
    assert_eq!(seen, want, "every descriptor back exactly once");
}
