//! Per-CPU observability: snapshots and deltas of every allocator counter.
//!
//! The paper's whole evaluation is expressed in per-layer miss rates, and a
//! production operator wants the same numbers *per CPU*, live, without
//! perturbing the hot path. This module is the read side of that bargain:
//! every counter in the allocator is a single-writer relaxed/release store
//! on a cache line its CPU owns ([`kmem_smp::LocalCounter`]), and a
//! [`KmemSnapshot`] is nothing but an unsynchronized sweep of those
//! counters — no locks are taken, no CPU is interrupted, and the cost to
//! the writers is zero.
//!
//! # Consistency model
//!
//! A snapshot taken while CPUs are running is a *live sample*: it is not a
//! single instant in time. Two properties still hold and are checkable:
//!
//! * **Monotonicity** — every counter only grows, so for two snapshots
//!   `a` then `b`, `b.delta(&a)` is exact event-for-event between the two
//!   sweeps (verified against torture-driver ground truth in the testkit).
//! * **Cross-counter bounds** — each CPU bumps an access counter *before*
//!   the corresponding miss/detail counter (with release stores), and the
//!   snapshot reads them in the *reverse* order (with acquire loads), so
//!   even a live sample satisfies `miss <= access`, `refill <= miss`, and
//!   friends. [`KmemSnapshot::check_live`] asserts exactly the set that is
//!   safe on live samples; [`KmemSnapshot::check_quiescent`] adds the
//!   equalities that only hold when no CPU is mid-operation.

use crate::percpu::{CacheStats, OCC_BUCKETS};
use crate::stats::{ClassStats, KmemStats, LayerCounts};
use crate::{global::GlobalStats, pagelayer::PageLayerStats};

/// Counters of one (CPU, size-class) cache, as captured by a snapshot.
///
/// All fields are cumulative event counts since arena creation; subtract
/// two captures (via [`CacheCounts::delta`]) for a per-interval view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// Allocations presented to this cache.
    pub alloc: u64,
    /// Allocations that missed (needed the global layer).
    pub alloc_miss: u64,
    /// Allocation misses that returned `OutOfMemory`.
    pub alloc_fail: u64,
    /// Failed attempts inside `alloc_sleep` retry loops (each also counted
    /// in `alloc_fail`).
    pub sleep_retries: u64,
    /// Frees presented to this cache.
    pub free: u64,
    /// Frees that overflowed a chain to the global layer.
    pub free_miss: u64,
    /// Replenishment chains installed.
    pub refill: u64,
    /// Refill chains shorter than `target`.
    pub refill_short: u64,
    /// Blocks received across all refills.
    pub refill_blocks: u64,
    /// Flushes via the public API / CPU teardown (only counted when they
    /// evicted at least one block).
    pub flush_explicit: u64,
    /// Flushes honouring another CPU's drain request.
    pub flush_drain: u64,
    /// Flushes on this CPU's own low-memory retry path.
    pub flush_lowmem: u64,
    /// Blocks evicted by flushes.
    pub flush_blocks: u64,
    /// Cache-occupancy histogram: bucket `i` counts samples at occupancy
    /// `[i/8, (i+1)/8)` of the `2 * target` capacity.
    pub occupancy: [u64; OCC_BUCKETS],
}

impl CacheCounts {
    /// Sweeps one cache's counters.
    ///
    /// Detail counters are read *before* the totals that bound them
    /// (reverse of the owner's write order) so the live-sample invariants
    /// of [`KmemSnapshot::check_live`] hold by construction.
    pub(crate) fn read(s: &CacheStats) -> CacheCounts {
        let occupancy = core::array::from_fn(|i| s.occupancy[i].get());
        let flush_blocks = s.flush_blocks.get();
        let flush_lowmem = s.flush_lowmem.get();
        let flush_drain = s.flush_drain.get();
        let flush_explicit = s.flush_explicit.get();
        let refill_blocks = s.refill_blocks.get();
        let refill_short = s.refill_short.get();
        let refill = s.refill.get();
        let sleep_retries = s.sleep_retries.get();
        let alloc_fail = s.alloc_fail.get();
        let free_miss = s.free_miss.get();
        let free = s.free.get();
        let alloc_miss = s.alloc_miss.get();
        let alloc = s.alloc.get();
        CacheCounts {
            alloc,
            alloc_miss,
            alloc_fail,
            sleep_retries,
            free,
            free_miss,
            refill,
            refill_short,
            refill_blocks,
            flush_explicit,
            flush_drain,
            flush_lowmem,
            flush_blocks,
            occupancy,
        }
    }

    /// Events between `earlier` and `self` (field-wise difference).
    ///
    /// Counters are monotone, so the difference is exact; `saturating_sub`
    /// only guards against snapshots passed in the wrong order.
    pub fn delta(&self, earlier: &CacheCounts) -> CacheCounts {
        CacheCounts {
            alloc: self.alloc.saturating_sub(earlier.alloc),
            alloc_miss: self.alloc_miss.saturating_sub(earlier.alloc_miss),
            alloc_fail: self.alloc_fail.saturating_sub(earlier.alloc_fail),
            sleep_retries: self.sleep_retries.saturating_sub(earlier.sleep_retries),
            free: self.free.saturating_sub(earlier.free),
            free_miss: self.free_miss.saturating_sub(earlier.free_miss),
            refill: self.refill.saturating_sub(earlier.refill),
            refill_short: self.refill_short.saturating_sub(earlier.refill_short),
            refill_blocks: self.refill_blocks.saturating_sub(earlier.refill_blocks),
            flush_explicit: self.flush_explicit.saturating_sub(earlier.flush_explicit),
            flush_drain: self.flush_drain.saturating_sub(earlier.flush_drain),
            flush_lowmem: self.flush_lowmem.saturating_sub(earlier.flush_lowmem),
            flush_blocks: self.flush_blocks.saturating_sub(earlier.flush_blocks),
            occupancy: core::array::from_fn(|i| {
                self.occupancy[i].saturating_sub(earlier.occupancy[i])
            }),
        }
    }

    /// Field-wise accumulation (summing CPUs or classes).
    pub fn merge(&mut self, other: &CacheCounts) {
        self.alloc += other.alloc;
        self.alloc_miss += other.alloc_miss;
        self.alloc_fail += other.alloc_fail;
        self.sleep_retries += other.sleep_retries;
        self.free += other.free;
        self.free_miss += other.free_miss;
        self.refill += other.refill;
        self.refill_short += other.refill_short;
        self.refill_blocks += other.refill_blocks;
        self.flush_explicit += other.flush_explicit;
        self.flush_drain += other.flush_drain;
        self.flush_lowmem += other.flush_lowmem;
        self.flush_blocks += other.flush_blocks;
        for (acc, v) in self.occupancy.iter_mut().zip(other.occupancy) {
            *acc += v;
        }
    }

    /// Allocations that actually handed out a block.
    pub fn allocs_served(&self) -> u64 {
        self.alloc - self.alloc_fail
    }

    /// Per-CPU layer, allocation direction, as the paper's `LayerCounts`.
    pub fn alloc_layer(&self) -> LayerCounts {
        LayerCounts {
            accesses: self.alloc,
            misses: self.alloc_miss,
        }
    }

    /// Per-CPU layer, free direction.
    pub fn free_layer(&self) -> LayerCounts {
        LayerCounts {
            accesses: self.free,
            misses: self.free_miss,
        }
    }

    /// Total flushes that evicted blocks, over all causes.
    pub fn flushes(&self) -> u64 {
        self.flush_explicit + self.flush_drain + self.flush_lowmem
    }

    /// Total occupancy samples recorded.
    pub fn occupancy_samples(&self) -> u64 {
        self.occupancy.iter().sum()
    }

    /// Mean sampled occupancy as a fraction of capacity (bucket
    /// midpoints), or `None` with no samples.
    pub fn mean_occupancy(&self) -> Option<f64> {
        let samples = self.occupancy_samples();
        if samples == 0 {
            return None;
        }
        let weighted: f64 = self
            .occupancy
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as f64 + 0.5) / OCC_BUCKETS as f64 * n as f64)
            .sum();
        Some(weighted / samples as f64)
    }

    fn check_live(&self, what: &str) -> Result<(), String> {
        let c = |ok: bool, msg: &str| {
            if ok {
                Ok(())
            } else {
                Err(format!("{what}: {msg} ({self:?})"))
            }
        };
        c(self.alloc_miss <= self.alloc, "alloc_miss > alloc")?;
        c(self.free_miss <= self.free, "free_miss > free")?;
        c(
            self.refill + self.alloc_fail <= self.alloc_miss,
            "refill + alloc_fail > alloc_miss",
        )?;
        c(self.refill_short <= self.refill, "refill_short > refill")?;
        c(
            self.sleep_retries <= self.alloc_fail,
            "sleep_retries > alloc_fail",
        )?;
        Ok(())
    }

    fn check_quiescent(&self, what: &str) -> Result<(), String> {
        self.check_live(what)?;
        let c = |ok: bool, msg: &str| {
            if ok {
                Ok(())
            } else {
                Err(format!("{what}: {msg} ({self:?})"))
            }
        };
        c(
            self.refill + self.alloc_fail == self.alloc_miss,
            "every quiescent miss must end in a refill or a failure",
        )?;
        c(
            self.refill <= self.refill_blocks,
            "refill chains of 0 blocks",
        )?;
        c(
            self.flushes() <= self.flush_blocks,
            "counted flushes that evicted nothing",
        )?;
        Ok(())
    }
}

/// Global-pool per-event detail for one class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalCounts {
    /// Chain requests (hits and misses); derived as
    /// `get_fast + get_slow` from the same sweep.
    pub get: u64,
    /// Gets served entirely by the lock-free CAS pop.
    pub get_fast: u64,
    /// Gets that took the locked slow path.
    pub get_slow: u64,
    /// Gets first served from a ready `target`-sized chain.
    pub get_chain_hits: u64,
    /// Gets first served from the bucket list.
    pub get_bucket_hits: u64,
    /// Gets that returned fewer than `target` blocks.
    pub get_short: u64,
    /// Blocks missing from short gets, summed.
    pub get_short_deficit: u64,
    /// Gets that fell through to the coalesce-to-page layer.
    pub get_miss: u64,
    /// Chains returned by per-CPU caches; derived as
    /// `put_fast + put_slow` from the same sweep.
    pub put: u64,
    /// Exact-`target` puts served entirely by the lock-free CAS push.
    pub put_fast: u64,
    /// Puts that took the locked slow path.
    pub put_slow: u64,
    /// Puts through the odd-sized bucket path.
    pub put_odd: u64,
    /// Puts that spilled to the coalesce-to-page layer.
    pub put_miss: u64,
    /// Spills forced by the pressure ladder (`spill_to`), counted apart
    /// from `put_miss` so the latter stays bounded by `put`.
    pub pressure_spills: u64,
    /// Blocks spilled to the coalesce-to-page layer (all causes).
    pub spill_blocks: u64,
    /// Failed tag-CAS attempts on the lock-free chain stack (monotone;
    /// zero without contention).
    pub cas_retries: u64,
}

impl GlobalCounts {
    /// Sweeps one class's shards (one per node) into a single merged view,
    /// so per-class global counters keep their pre-NUMA meaning. Each
    /// shard is swept with the order guarantees of [`GlobalCounts::read`],
    /// and every derived partition (`get = get_fast + get_slow`, …) is a
    /// sum of per-shard equalities, so it survives the merge.
    pub(crate) fn read_merged<'a>(shards: impl Iterator<Item = &'a GlobalStats>) -> GlobalCounts {
        let mut total = GlobalCounts::default();
        for s in shards {
            total.merge(&GlobalCounts::read(s));
        }
        total
    }

    /// Field-wise accumulation (summing shards or classes).
    pub fn merge(&mut self, other: &GlobalCounts) {
        self.get += other.get;
        self.get_fast += other.get_fast;
        self.get_slow += other.get_slow;
        self.get_chain_hits += other.get_chain_hits;
        self.get_bucket_hits += other.get_bucket_hits;
        self.get_short += other.get_short;
        self.get_short_deficit += other.get_short_deficit;
        self.get_miss += other.get_miss;
        self.put += other.put;
        self.put_fast += other.put_fast;
        self.put_slow += other.put_slow;
        self.put_odd += other.put_odd;
        self.put_miss += other.put_miss;
        self.pressure_spills += other.pressure_spills;
        self.spill_blocks += other.spill_blocks;
        self.cas_retries += other.cas_retries;
    }

    pub(crate) fn read(s: &GlobalStats) -> GlobalCounts {
        // Slow-path outcome details before the slow-entry counters that
        // bound them (reverse of the writers' order), as for
        // `CacheCounts::read`. The totals (`get`, `put`,
        // `get_chain_hits`) are then *derived* from this single sweep —
        // the pool keeps no total counters, so the lock-free fast path
        // pays one RMW per operation — which makes the fast/slow
        // partition an equality even on live samples.
        let cas_retries = s.cas_retries.get();
        let spill_blocks = s.spill_blocks.get();
        let pressure_spills = s.pressure_spills.get();
        let put_miss = s.put_miss.get();
        let put_odd = s.put_odd.get();
        let put_slow = s.put_slow.get();
        let put_fast = s.put_fast.get();
        let get_miss = s.get_miss.get();
        let get_short = s.get_short.get();
        let get_short_deficit = s.get_short_deficit.get();
        let get_chain_hits_slow = s.get_chain_hits_slow.get();
        let get_bucket_hits = s.get_bucket_hits.get();
        let get_slow = s.get_slow.get();
        let get_fast = s.get_fast.get();
        GlobalCounts {
            get: get_fast + get_slow,
            get_fast,
            get_slow,
            get_chain_hits: get_fast + get_chain_hits_slow,
            get_bucket_hits,
            get_short,
            get_short_deficit,
            get_miss,
            put: put_fast + put_slow,
            put_fast,
            put_slow,
            put_odd,
            put_miss,
            pressure_spills,
            spill_blocks,
            cas_retries,
        }
    }

    /// Events between `earlier` and `self`.
    pub fn delta(&self, earlier: &GlobalCounts) -> GlobalCounts {
        GlobalCounts {
            get: self.get.saturating_sub(earlier.get),
            get_fast: self.get_fast.saturating_sub(earlier.get_fast),
            get_slow: self.get_slow.saturating_sub(earlier.get_slow),
            get_chain_hits: self.get_chain_hits.saturating_sub(earlier.get_chain_hits),
            get_bucket_hits: self.get_bucket_hits.saturating_sub(earlier.get_bucket_hits),
            get_short: self.get_short.saturating_sub(earlier.get_short),
            get_short_deficit: self
                .get_short_deficit
                .saturating_sub(earlier.get_short_deficit),
            get_miss: self.get_miss.saturating_sub(earlier.get_miss),
            put: self.put.saturating_sub(earlier.put),
            put_fast: self.put_fast.saturating_sub(earlier.put_fast),
            put_slow: self.put_slow.saturating_sub(earlier.put_slow),
            put_odd: self.put_odd.saturating_sub(earlier.put_odd),
            put_miss: self.put_miss.saturating_sub(earlier.put_miss),
            pressure_spills: self.pressure_spills.saturating_sub(earlier.pressure_spills),
            spill_blocks: self.spill_blocks.saturating_sub(earlier.spill_blocks),
            cas_retries: self.cas_retries.saturating_sub(earlier.cas_retries),
        }
    }

    /// Global layer, allocation direction.
    pub fn alloc_layer(&self) -> LayerCounts {
        LayerCounts {
            accesses: self.get,
            misses: self.get_miss,
        }
    }

    /// Global layer, free direction.
    pub fn free_layer(&self) -> LayerCounts {
        LayerCounts {
            accesses: self.put,
            misses: self.put_miss,
        }
    }

    fn check_live(&self, what: &str) -> Result<(), String> {
        let c = |ok: bool, msg: &str| {
            if ok {
                Ok(())
            } else {
                Err(format!("{what}: {msg} ({self:?})"))
            }
        };
        c(
            self.get_chain_hits + self.get_bucket_hits + self.get_miss <= self.get,
            "get outcomes exceed gets",
        )?;
        c(
            self.get_fast + self.get_slow <= self.get,
            "fast/slow gets exceed gets",
        )?;
        c(
            self.get_short <= self.get_short_deficit,
            "short gets with no deficit",
        )?;
        c(self.put_odd <= self.put, "put_odd > put")?;
        c(
            self.put_fast + self.put_slow <= self.put,
            "fast/slow puts exceed puts",
        )?;
        c(self.put_miss <= self.put, "put_miss > put")?;
        Ok(())
    }

    fn check_quiescent(&self, what: &str) -> Result<(), String> {
        self.check_live(what)?;
        if self.get_chain_hits + self.get_bucket_hits + self.get_miss != self.get {
            return Err(format!(
                "{what}: quiescent get outcomes must partition gets ({self:?})"
            ));
        }
        if self.get_fast + self.get_slow != self.get {
            return Err(format!(
                "{what}: quiescent fast/slow gets must partition gets ({self:?})"
            ));
        }
        if self.put_fast + self.put_slow != self.put {
            return Err(format!(
                "{what}: quiescent fast/slow puts must partition puts ({self:?})"
            ));
        }
        Ok(())
    }
}

/// Per-node rollup: how one NUMA node's CPUs interacted with the sharded
/// global layer, plus the node's current shard occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounts {
    /// Blocks currently held by this node's shards, summed over classes
    /// (gauge; `delta` keeps the later value).
    pub shard_blocks: usize,
    /// Refill chains this node's CPUs took from their own shard.
    pub local_refills: u64,
    /// Refill chains this node's CPUs stole from a remote shard.
    pub stolen_refills: u64,
    /// Blocks this node's CPUs spilled past the global layer to the
    /// (shared) coalesce-to-page layer — frames that may come back remote.
    pub remote_spills: u64,
}

impl NodeCounts {
    /// Events between `earlier` and `self`; the gauge keeps `self`.
    pub fn delta(&self, earlier: &NodeCounts) -> NodeCounts {
        NodeCounts {
            shard_blocks: self.shard_blocks,
            local_refills: self.local_refills.saturating_sub(earlier.local_refills),
            stolen_refills: self.stolen_refills.saturating_sub(earlier.stolen_refills),
            remote_spills: self.remote_spills.saturating_sub(earlier.remote_spills),
        }
    }
}

/// Coalesce-to-page counters for one class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCounts {
    /// Chain requests from the global layer.
    pub refills: u64,
    /// Refills that took a fresh page from the vmblk layer.
    pub page_acquires: u64,
    /// Pages fully drained and returned to the vmblk layer.
    pub page_releases: u64,
    /// Individual blocks pushed down from the global layer.
    pub block_frees: u64,
    /// Failed CAS attempts on the lock-free radix lists and per-page
    /// freelists (contention indicator; zero when single-threaded).
    pub cas_retries: u64,
}

impl PageCounts {
    pub(crate) fn read(s: &PageLayerStats) -> PageCounts {
        PageCounts {
            // Read the retry counter first: retries precede the operation
            // counters they belong to, so a live sample never shows an
            // operation whose retries are still missing.
            cas_retries: s.cas_retries.get(),
            page_acquires: s.page_acquires.get(),
            page_releases: s.page_releases.get(),
            block_frees: s.block_frees.get(),
            refills: s.refills.get(),
        }
    }

    /// Events between `earlier` and `self`.
    pub fn delta(&self, earlier: &PageCounts) -> PageCounts {
        PageCounts {
            refills: self.refills.saturating_sub(earlier.refills),
            page_acquires: self.page_acquires.saturating_sub(earlier.page_acquires),
            page_releases: self.page_releases.saturating_sub(earlier.page_releases),
            block_frees: self.block_frees.saturating_sub(earlier.block_frees),
            cas_retries: self.cas_retries.saturating_sub(earlier.cas_retries),
        }
    }
}

/// Maintenance-core counters: mailbox flow plus the epoch-batched drain
/// totals summed over every global shard. All zeros (with
/// `enabled: false`) when the arena runs without the core
/// ([`crate::config::MaintConfig`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintCounts {
    /// Whether the arena was built with the maintenance core enabled.
    pub enabled: bool,
    /// Work-item post attempts, including deduplicated ones.
    pub posted: u64,
    /// Posts suppressed because the same key was already queued.
    pub deduped: u64,
    /// Work items drained and run by the maintenance core. At quiescence
    /// (mailbox empty, no poster mid-call) `drained == posted - deduped`.
    pub drained: u64,
    /// Work items currently queued (gauge; `delta` keeps the later
    /// value; racy while posters are active).
    pub backlog: usize,
    /// Epoch-batched stack detaches across all global shards — each is
    /// one tagged CAS, however many chains it moved.
    pub batch_drains: u64,
    /// Chains moved by those batched detaches.
    pub batched_chains: u64,
}

impl MaintCounts {
    /// Events between `earlier` and `self`; gauges and the enabled flag
    /// keep the later (`self`) values.
    pub fn delta(&self, earlier: &MaintCounts) -> MaintCounts {
        MaintCounts {
            enabled: self.enabled,
            posted: self.posted.saturating_sub(earlier.posted),
            deduped: self.deduped.saturating_sub(earlier.deduped),
            drained: self.drained.saturating_sub(earlier.drained),
            backlog: self.backlog,
            batch_drains: self.batch_drains.saturating_sub(earlier.batch_drains),
            batched_chains: self.batched_chains.saturating_sub(earlier.batched_chains),
        }
    }
}

/// Snapshot of one size class: per-CPU cache counters plus the shared
/// global-pool and page-layer counters.
#[derive(Debug, Clone)]
pub struct ClassSnapshot {
    /// Block size of the class.
    pub size: usize,
    /// The class's per-CPU `target` parameter.
    pub target: usize,
    /// The class's global-layer `gbltarget` parameter.
    pub gbltarget: usize,
    /// One entry per CPU, indexed by CPU number.
    pub per_cpu: Vec<CacheCounts>,
    /// Global pool detail.
    pub global: GlobalCounts,
    /// Coalesce-to-page detail.
    pub page: PageCounts,
}

impl ClassSnapshot {
    /// Cache counters summed over all CPUs.
    pub fn cache_total(&self) -> CacheCounts {
        let mut total = CacheCounts::default();
        for c in &self.per_cpu {
            total.merge(c);
        }
        total
    }

    fn delta(&self, earlier: &ClassSnapshot) -> ClassSnapshot {
        assert_eq!(
            self.per_cpu.len(),
            earlier.per_cpu.len(),
            "snapshots of different arenas"
        );
        ClassSnapshot {
            size: self.size,
            target: self.target,
            gbltarget: self.gbltarget,
            per_cpu: self
                .per_cpu
                .iter()
                .zip(&earlier.per_cpu)
                .map(|(now, then)| now.delta(then))
                .collect(),
            global: self.global.delta(&earlier.global),
            page: self.page.delta(&earlier.page),
        }
    }
}

/// A full counter sweep of a [`crate::KmemArena`]: every (CPU, class)
/// cache, every global pool, every page layer, plus arena-wide gauges.
///
/// Obtain one with [`crate::KmemArena::snapshot`]; see the module docs for
/// the consistency model.
#[derive(Debug, Clone)]
pub struct KmemSnapshot {
    /// One entry per size class, ascending by block size.
    pub classes: Vec<ClassSnapshot>,
    /// One entry per NUMA node, indexed by node number (a single entry on
    /// the default flat topology).
    pub nodes: Vec<NodeCounts>,
    /// Large (multi-page) allocations served by the vmblk layer.
    pub large_allocs: u64,
    /// Large frees.
    pub large_frees: u64,
    /// Single-page allocations served from the vmblk layer's lock-free
    /// page cache (no boundary-tag lock taken).
    pub vmblk_cache_hits: u64,
    /// Whole pages parked on the vmblk page cache by `free_span`.
    pub vmblk_cache_puts: u64,
    /// vmblks currently live (gauge; `delta` keeps the later value).
    pub vmblks_live: usize,
    /// Physical frames currently claimed (gauge).
    pub phys_in_use: usize,
    /// Physical frame capacity (gauge).
    pub phys_capacity: usize,
    /// Current pressure-ladder level, 0–3 (gauge).
    pub pressure_level: u8,
    /// `pressure_escalations[i]` counts entries into ladder rung `i + 1`.
    pub pressure_escalations: [u64; 3],
    /// De-escalation steps taken by the ladder (hysteresis-gated).
    pub pressure_deescalations: u64,
    /// Failed allocations that re-applied the ladder's deepest rung rather
    /// than entering a new one.
    pub pressure_reapplied: u64,
    /// Failpoint consultations while a fault plan was armed.
    pub fault_hits: u64,
    /// Failpoint firings (injected failures).
    pub fault_fired: u64,
    /// Hardened-profile corruption detections reported, all sites
    /// (always zero in the default profile).
    pub corruption_reports: u64,
    /// Poison-based detections: double free by intact poison, or a
    /// use-after-free write caught by verify-on-alloc.
    pub poison_hits: u64,
    /// Encoded-link detections: an implausible decode sank a chain.
    pub encode_faults: u64,
    /// Blocks currently parked in double-free quarantine rings (gauge;
    /// `delta` keeps the later value).
    pub quarantine_len: usize,
    /// Maintenance-core mailbox and batched-drain counters.
    pub maint: MaintCounts,
}

impl KmemSnapshot {
    /// Number of CPUs covered by the snapshot.
    pub fn ncpus(&self) -> usize {
        self.classes.first().map_or(0, |c| c.per_cpu.len())
    }

    /// Number of size classes.
    pub fn nclasses(&self) -> usize {
        self.classes.len()
    }

    /// Counters of one (CPU, class) cache.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cpu_class(&self, cpu: usize, class: usize) -> &CacheCounts {
        &self.classes[class].per_cpu[cpu]
    }

    /// Iterates `(cpu, class, &counts)` over every per-CPU cache.
    pub fn iter_cpu_class(&self) -> impl Iterator<Item = (usize, usize, &CacheCounts)> {
        self.classes.iter().enumerate().flat_map(|(class, cs)| {
            cs.per_cpu
                .iter()
                .enumerate()
                .map(move |(cpu, counts)| (cpu, class, counts))
        })
    }

    /// Per-CPU totals summed over classes, indexed by CPU.
    pub fn per_cpu_totals(&self) -> Vec<CacheCounts> {
        let mut totals = vec![CacheCounts::default(); self.ncpus()];
        for (cpu, _, counts) in self.iter_cpu_class() {
            totals[cpu].merge(counts);
        }
        totals
    }

    /// Events between `earlier` and `self`, per (CPU, class); gauges keep
    /// the later (`self`) values. The difference is exact: every event
    /// counted after the `earlier` sweep and before this one appears in
    /// the delta exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots come from arenas of different shape.
    pub fn delta(&self, earlier: &KmemSnapshot) -> KmemSnapshot {
        assert_eq!(
            self.classes.len(),
            earlier.classes.len(),
            "snapshots of different arenas"
        );
        KmemSnapshot {
            classes: self
                .classes
                .iter()
                .zip(&earlier.classes)
                .map(|(now, then)| now.delta(then))
                .collect(),
            nodes: self
                .nodes
                .iter()
                .zip(&earlier.nodes)
                .map(|(now, then)| now.delta(then))
                .collect(),
            large_allocs: self.large_allocs.saturating_sub(earlier.large_allocs),
            large_frees: self.large_frees.saturating_sub(earlier.large_frees),
            vmblk_cache_hits: self
                .vmblk_cache_hits
                .saturating_sub(earlier.vmblk_cache_hits),
            vmblk_cache_puts: self
                .vmblk_cache_puts
                .saturating_sub(earlier.vmblk_cache_puts),
            vmblks_live: self.vmblks_live,
            phys_in_use: self.phys_in_use,
            phys_capacity: self.phys_capacity,
            pressure_level: self.pressure_level,
            pressure_escalations: core::array::from_fn(|i| {
                self.pressure_escalations[i].saturating_sub(earlier.pressure_escalations[i])
            }),
            pressure_deescalations: self
                .pressure_deescalations
                .saturating_sub(earlier.pressure_deescalations),
            pressure_reapplied: self
                .pressure_reapplied
                .saturating_sub(earlier.pressure_reapplied),
            fault_hits: self.fault_hits.saturating_sub(earlier.fault_hits),
            fault_fired: self.fault_fired.saturating_sub(earlier.fault_fired),
            corruption_reports: self
                .corruption_reports
                .saturating_sub(earlier.corruption_reports),
            poison_hits: self.poison_hits.saturating_sub(earlier.poison_hits),
            encode_faults: self.encode_faults.saturating_sub(earlier.encode_faults),
            quarantine_len: self.quarantine_len,
            maint: self.maint.delta(&earlier.maint),
        }
    }

    /// Total allocations across classes and CPUs (cache-layer accesses).
    pub fn total_allocs(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.per_cpu.iter().map(|p| p.alloc).sum::<u64>())
            .sum()
    }

    /// Total frees across classes and CPUs.
    pub fn total_frees(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.per_cpu.iter().map(|p| p.free).sum::<u64>())
            .sum()
    }

    /// Rolls the snapshot up into the CPU-summed [`KmemStats`] shape the
    /// paper's tables use (`KmemArena::stats` is implemented this way).
    pub fn aggregate(&self) -> KmemStats {
        KmemStats {
            classes: self
                .classes
                .iter()
                .map(|c| {
                    let total = c.cache_total();
                    ClassStats {
                        size: c.size,
                        cpu_alloc: total.alloc_layer(),
                        cpu_free: total.free_layer(),
                        gbl_alloc: c.global.alloc_layer(),
                        gbl_free: c.global.free_layer(),
                    }
                })
                .collect(),
            large_allocs: self.large_allocs,
            large_frees: self.large_frees,
            vmblk_cache_hits: self.vmblk_cache_hits,
            vmblk_cache_puts: self.vmblk_cache_puts,
            vmblks_live: self.vmblks_live,
            phys_in_use: self.phys_in_use,
            phys_capacity: self.phys_capacity,
        }
    }

    /// Renders the snapshot as a single-line JSON object (hand-rolled —
    /// the workspace is hermetic, so no serde). Field names match the Rust
    /// field names; all values are numbers or arrays of numbers, so the
    /// output needs no string escaping.
    pub fn to_json(&self) -> String {
        use core::fmt::Write as _;

        fn arr(out: &mut String, vals: &[u64]) {
            out.push('[');
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }

        fn cache(out: &mut String, c: &CacheCounts) {
            let _ = write!(
                out,
                "{{\"alloc\":{},\"alloc_miss\":{},\"alloc_fail\":{},\"sleep_retries\":{},\
                 \"free\":{},\"free_miss\":{},\"refill\":{},\"refill_short\":{},\
                 \"refill_blocks\":{},\"flush_explicit\":{},\"flush_drain\":{},\
                 \"flush_lowmem\":{},\"flush_blocks\":{},\"occupancy\":",
                c.alloc,
                c.alloc_miss,
                c.alloc_fail,
                c.sleep_retries,
                c.free,
                c.free_miss,
                c.refill,
                c.refill_short,
                c.refill_blocks,
                c.flush_explicit,
                c.flush_drain,
                c.flush_lowmem,
                c.flush_blocks,
            );
            arr(out, &c.occupancy);
            out.push('}');
        }

        let mut out = String::with_capacity(4096);
        out.push_str("{\"classes\":[");
        for (i, cs) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"size\":{},\"target\":{},\"gbltarget\":{},\"per_cpu\":[",
                cs.size, cs.target, cs.gbltarget
            );
            for (cpu, c) in cs.per_cpu.iter().enumerate() {
                if cpu > 0 {
                    out.push(',');
                }
                cache(&mut out, c);
            }
            let g = &cs.global;
            let _ = write!(
                out,
                "],\"global\":{{\"get\":{},\"get_fast\":{},\"get_slow\":{},\
                 \"get_chain_hits\":{},\"get_bucket_hits\":{},\
                 \"get_short\":{},\"get_short_deficit\":{},\"get_miss\":{},\"put\":{},\
                 \"put_fast\":{},\"put_slow\":{},\"put_odd\":{},\"put_miss\":{},\
                 \"pressure_spills\":{},\"spill_blocks\":{},\"cas_retries\":{}}}",
                g.get,
                g.get_fast,
                g.get_slow,
                g.get_chain_hits,
                g.get_bucket_hits,
                g.get_short,
                g.get_short_deficit,
                g.get_miss,
                g.put,
                g.put_fast,
                g.put_slow,
                g.put_odd,
                g.put_miss,
                g.pressure_spills,
                g.spill_blocks,
                g.cas_retries,
            );
            let p = &cs.page;
            let _ = write!(
                out,
                ",\"page\":{{\"refills\":{},\"page_acquires\":{},\"page_releases\":{},\
                 \"block_frees\":{},\"cas_retries\":{}}}}}",
                p.refills, p.page_acquires, p.page_releases, p.block_frees, p.cas_retries,
            );
        }
        out.push_str("],\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard_blocks\":{},\"local_refills\":{},\"stolen_refills\":{},\
                 \"remote_spills\":{}}}",
                n.shard_blocks, n.local_refills, n.stolen_refills, n.remote_spills,
            );
        }
        let _ = write!(
            out,
            "],\"large_allocs\":{},\"large_frees\":{},\"vmblk_cache\":{{\"hits\":{},\
             \"puts\":{}}},\"vmblks_live\":{},\"phys_in_use\":{},\
             \"phys_capacity\":{},\"pressure\":{{\"level\":{},\"escalations\":",
            self.large_allocs,
            self.large_frees,
            self.vmblk_cache_hits,
            self.vmblk_cache_puts,
            self.vmblks_live,
            self.phys_in_use,
            self.phys_capacity,
            self.pressure_level,
        );
        arr(&mut out, &self.pressure_escalations);
        let _ = write!(
            out,
            ",\"deescalations\":{},\"reapplied\":{}}},\"faults\":{{\"hits\":{},\"fired\":{}}},\
             \"hardened\":{{\"corruption_reports\":{},\"poison_hits\":{},\"encode_faults\":{},\
             \"quarantine_len\":{}}},\"maint\":{{\"enabled\":{},\"posted\":{},\"deduped\":{},\
             \"drained\":{},\"backlog\":{},\"batch_drains\":{},\"batched_chains\":{}}}}}",
            self.pressure_deescalations,
            self.pressure_reapplied,
            self.fault_hits,
            self.fault_fired,
            self.corruption_reports,
            self.poison_hits,
            self.encode_faults,
            self.quarantine_len,
            self.maint.enabled,
            self.maint.posted,
            self.maint.deduped,
            self.maint.drained,
            self.maint.backlog,
            self.maint.batch_drains,
            self.maint.batched_chains,
        );
        out
    }

    /// Checks every invariant that holds even on a live, unsynchronized
    /// sample: per-(CPU, class) `miss <= access` bounds, refill/fail
    /// accounting, and global-pool outcome bounds.
    pub fn check_live(&self) -> Result<(), String> {
        for (class, cs) in self.classes.iter().enumerate() {
            for (cpu, counts) in cs.per_cpu.iter().enumerate() {
                counts.check_live(&format!("class {class} (size {}) cpu {cpu}", cs.size))?;
            }
            cs.global
                .check_live(&format!("class {class} (size {}) global", cs.size))?;
        }
        Ok(())
    }

    /// Checks the live invariants plus the exact-accounting equalities
    /// that hold only when no CPU is mid-operation (torture checkpoints,
    /// post-join assertions).
    pub fn check_quiescent(&self) -> Result<(), String> {
        for (class, cs) in self.classes.iter().enumerate() {
            for (cpu, counts) in cs.per_cpu.iter().enumerate() {
                counts.check_quiescent(&format!("class {class} (size {}) cpu {cpu}", cs.size))?;
            }
            cs.global
                .check_quiescent(&format!("class {class} (size {}) global", cs.size))?;
        }
        Ok(())
    }

    /// Verifies that every counter in `self` is `>=` its counterpart in
    /// `earlier` — the property `delta` exactness rests on. Returns the
    /// first offending counter.
    pub fn check_monotone_since(&self, earlier: &KmemSnapshot) -> Result<(), String> {
        assert_eq!(self.classes.len(), earlier.classes.len());
        fn mono(what: String, now: u64, then: u64) -> Result<(), String> {
            if now >= then {
                Ok(())
            } else {
                Err(format!("{what} went backwards: {then} -> {now}"))
            }
        }
        for (class, (now, then)) in self.classes.iter().zip(&earlier.classes).enumerate() {
            for (cpu, (n, t)) in now.per_cpu.iter().zip(&then.per_cpu).enumerate() {
                let w = |f: &str| format!("class {class} cpu {cpu} {f}");
                mono(w("alloc"), n.alloc, t.alloc)?;
                mono(w("alloc_miss"), n.alloc_miss, t.alloc_miss)?;
                mono(w("alloc_fail"), n.alloc_fail, t.alloc_fail)?;
                mono(w("sleep_retries"), n.sleep_retries, t.sleep_retries)?;
                mono(w("free"), n.free, t.free)?;
                mono(w("free_miss"), n.free_miss, t.free_miss)?;
                mono(w("refill"), n.refill, t.refill)?;
                mono(w("refill_short"), n.refill_short, t.refill_short)?;
                mono(w("refill_blocks"), n.refill_blocks, t.refill_blocks)?;
                mono(w("flush_explicit"), n.flush_explicit, t.flush_explicit)?;
                mono(w("flush_drain"), n.flush_drain, t.flush_drain)?;
                mono(w("flush_lowmem"), n.flush_lowmem, t.flush_lowmem)?;
                mono(w("flush_blocks"), n.flush_blocks, t.flush_blocks)?;
                for i in 0..OCC_BUCKETS {
                    mono(
                        w(&format!("occupancy[{i}]")),
                        n.occupancy[i],
                        t.occupancy[i],
                    )?;
                }
            }
            let w = |f: &str| format!("class {class} global {f}");
            mono(w("get"), now.global.get, then.global.get)?;
            mono(w("get_fast"), now.global.get_fast, then.global.get_fast)?;
            mono(w("get_slow"), now.global.get_slow, then.global.get_slow)?;
            mono(
                w("get_chain_hits"),
                now.global.get_chain_hits,
                then.global.get_chain_hits,
            )?;
            mono(
                w("get_bucket_hits"),
                now.global.get_bucket_hits,
                then.global.get_bucket_hits,
            )?;
            mono(w("get_short"), now.global.get_short, then.global.get_short)?;
            mono(
                w("get_short_deficit"),
                now.global.get_short_deficit,
                then.global.get_short_deficit,
            )?;
            mono(w("get_miss"), now.global.get_miss, then.global.get_miss)?;
            mono(w("put"), now.global.put, then.global.put)?;
            mono(w("put_fast"), now.global.put_fast, then.global.put_fast)?;
            mono(w("put_slow"), now.global.put_slow, then.global.put_slow)?;
            mono(w("put_odd"), now.global.put_odd, then.global.put_odd)?;
            mono(w("put_miss"), now.global.put_miss, then.global.put_miss)?;
            mono(
                w("pressure_spills"),
                now.global.pressure_spills,
                then.global.pressure_spills,
            )?;
            mono(
                w("spill_blocks"),
                now.global.spill_blocks,
                then.global.spill_blocks,
            )?;
            mono(
                w("cas_retries"),
                now.global.cas_retries,
                then.global.cas_retries,
            )?;
            mono(w("page refills"), now.page.refills, then.page.refills)?;
            mono(
                w("page acquires"),
                now.page.page_acquires,
                then.page.page_acquires,
            )?;
            mono(
                w("page releases"),
                now.page.page_releases,
                then.page.page_releases,
            )?;
            mono(
                w("page block_frees"),
                now.page.block_frees,
                then.page.block_frees,
            )?;
            mono(
                w("page cas_retries"),
                now.page.cas_retries,
                then.page.cas_retries,
            )?;
        }
        for (node, (now, then)) in self.nodes.iter().zip(&earlier.nodes).enumerate() {
            let w = |f: &str| format!("node {node} {f}");
            mono(w("local_refills"), now.local_refills, then.local_refills)?;
            mono(w("stolen_refills"), now.stolen_refills, then.stolen_refills)?;
            mono(w("remote_spills"), now.remote_spills, then.remote_spills)?;
        }
        mono(
            "large_allocs".into(),
            self.large_allocs,
            earlier.large_allocs,
        )?;
        mono("large_frees".into(), self.large_frees, earlier.large_frees)?;
        mono(
            "vmblk_cache_hits".into(),
            self.vmblk_cache_hits,
            earlier.vmblk_cache_hits,
        )?;
        mono(
            "vmblk_cache_puts".into(),
            self.vmblk_cache_puts,
            earlier.vmblk_cache_puts,
        )?;
        for i in 0..3 {
            mono(
                format!("pressure_escalations[{i}]"),
                self.pressure_escalations[i],
                earlier.pressure_escalations[i],
            )?;
        }
        mono(
            "pressure_deescalations".into(),
            self.pressure_deescalations,
            earlier.pressure_deescalations,
        )?;
        mono(
            "pressure_reapplied".into(),
            self.pressure_reapplied,
            earlier.pressure_reapplied,
        )?;
        mono("fault_hits".into(), self.fault_hits, earlier.fault_hits)?;
        mono("fault_fired".into(), self.fault_fired, earlier.fault_fired)?;
        mono(
            "corruption_reports".into(),
            self.corruption_reports,
            earlier.corruption_reports,
        )?;
        mono("poison_hits".into(), self.poison_hits, earlier.poison_hits)?;
        mono(
            "encode_faults".into(),
            self.encode_faults,
            earlier.encode_faults,
        )?;
        mono(
            "maint posted".into(),
            self.maint.posted,
            earlier.maint.posted,
        )?;
        mono(
            "maint deduped".into(),
            self.maint.deduped,
            earlier.maint.deduped,
        )?;
        mono(
            "maint drained".into(),
            self.maint.drained,
            earlier.maint.drained,
        )?;
        mono(
            "maint batch_drains".into(),
            self.maint.batch_drains,
            earlier.maint.batch_drains,
        )?;
        mono(
            "maint batched_chains".into(),
            self.maint.batched_chains,
            earlier.maint.batched_chains,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(alloc: u64, miss: u64, free: u64) -> CacheCounts {
        CacheCounts {
            alloc,
            alloc_miss: miss,
            free,
            refill: miss,
            refill_blocks: miss * 4,
            ..Default::default()
        }
    }

    fn snapshot_of(per_cpu: Vec<CacheCounts>) -> KmemSnapshot {
        KmemSnapshot {
            classes: vec![ClassSnapshot {
                size: 64,
                target: 4,
                gbltarget: 8,
                per_cpu,
                global: GlobalCounts::default(),
                page: PageCounts::default(),
            }],
            nodes: vec![NodeCounts::default()],
            large_allocs: 0,
            large_frees: 0,
            vmblk_cache_hits: 0,
            vmblk_cache_puts: 0,
            vmblks_live: 0,
            phys_in_use: 0,
            phys_capacity: 0,
            pressure_level: 0,
            pressure_escalations: [0; 3],
            pressure_deescalations: 0,
            pressure_reapplied: 0,
            fault_hits: 0,
            fault_fired: 0,
            corruption_reports: 0,
            poison_hits: 0,
            encode_faults: 0,
            quarantine_len: 0,
            maint: MaintCounts::default(),
        }
    }

    #[test]
    fn delta_is_field_wise_difference() {
        let a = snapshot_of(vec![counts(10, 2, 5), counts(4, 1, 0)]);
        let b = snapshot_of(vec![counts(25, 3, 11), counts(9, 2, 3)]);
        let d = b.delta(&a);
        assert_eq!(d.cpu_class(0, 0).alloc, 15);
        assert_eq!(d.cpu_class(0, 0).alloc_miss, 1);
        assert_eq!(d.cpu_class(0, 0).free, 6);
        assert_eq!(d.cpu_class(1, 0).alloc, 5);
        assert_eq!(d.total_allocs(), 20);
        assert!(b.check_monotone_since(&a).is_ok());
        assert!(a.check_monotone_since(&b).is_err());
    }

    #[test]
    fn per_cpu_totals_sum_over_classes() {
        let mut s = snapshot_of(vec![counts(10, 2, 5), counts(4, 1, 0)]);
        s.classes.push(ClassSnapshot {
            size: 128,
            target: 4,
            gbltarget: 8,
            per_cpu: vec![counts(1, 0, 1), counts(2, 0, 2)],
            global: GlobalCounts::default(),
            page: PageCounts::default(),
        });
        let totals = s.per_cpu_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].alloc, 11);
        assert_eq!(totals[1].alloc, 6);
        assert_eq!(totals[1].free, 2);
    }

    #[test]
    fn live_checks_catch_inverted_counters() {
        let mut bad = counts(5, 9, 0); // miss > alloc
        assert!(snapshot_of(vec![bad]).check_live().is_err());
        bad = counts(10, 2, 0);
        bad.refill = 1;
        bad.alloc_fail = 2; // refill + fail > miss
        assert!(snapshot_of(vec![bad]).check_live().is_err());
        assert!(snapshot_of(vec![counts(10, 2, 3)]).check_live().is_ok());
    }

    #[test]
    fn quiescent_check_requires_miss_accounting() {
        let mut c = counts(10, 3, 0);
        c.refill = 2; // one miss unaccounted: fine live, not quiescent
        let s = snapshot_of(vec![c]);
        assert!(s.check_live().is_ok());
        assert!(s.check_quiescent().is_err());
    }

    #[test]
    fn mean_occupancy_uses_bucket_midpoints() {
        let mut c = CacheCounts::default();
        assert_eq!(c.mean_occupancy(), None);
        c.occupancy[0] = 1;
        c.occupancy[7] = 1;
        let m = c.mean_occupancy().unwrap();
        assert!((m - 0.5).abs() < 1e-12, "{m}");
    }

    #[test]
    fn json_rendering_is_structurally_sound() {
        let mut s = snapshot_of(vec![counts(10, 2, 5), counts(4, 1, 0)]);
        s.pressure_level = 2;
        s.pressure_escalations = [3, 2, 1];
        s.fault_hits = 7;
        s.fault_fired = 2;
        let json = s.to_json();
        // Balanced structure and no trailing garbage.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Spot-check fields, including the new pressure/fault groups.
        assert!(json.contains("\"classes\":[{\"size\":64,"));
        assert!(json.contains("\"alloc\":10,"));
        assert!(json.contains("\"pressure\":{\"level\":2,\"escalations\":[3,2,1]"));
        assert!(json.contains("\"faults\":{\"hits\":7,\"fired\":2}"));
        assert!(json.contains(
            "\"hardened\":{\"corruption_reports\":0,\"poison_hits\":0,\
             \"encode_faults\":0,\"quarantine_len\":0}"
        ));
        assert!(json.contains(
            "\"nodes\":[{\"shard_blocks\":0,\"local_refills\":0,\
             \"stolen_refills\":0,\"remote_spills\":0}]"
        ));
        assert!(json.contains(
            "\"maint\":{\"enabled\":false,\"posted\":0,\"deduped\":0,\"drained\":0,\
             \"backlog\":0,\"batch_drains\":0,\"batched_chains\":0}"
        ));
        assert!(json.contains("\"sleep_retries\":0"));
        assert!(json.contains("\"pressure_spills\":0"));
        assert!(json.contains("\"get_fast\":0"));
        assert!(json.contains("\"put_slow\":0"));
        assert!(json.contains("\"cas_retries\":0"));
        // No pretty-printing: a single machine-readable line.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn aggregate_matches_summed_layers() {
        let s = snapshot_of(vec![counts(10, 2, 5), counts(4, 1, 3)]);
        let agg = s.aggregate();
        assert_eq!(agg.classes[0].cpu_alloc.accesses, 14);
        assert_eq!(agg.classes[0].cpu_alloc.misses, 3);
        assert_eq!(agg.classes[0].cpu_free.accesses, 8);
        assert_eq!(agg.total_allocs(), 14);
    }
}
