//! The coalesce-to-page layer (paper Figure 5).
//!
//! One instance per size class. "The coalesce-to-page layer gathers blocks
//! of a given size and coalesces them into pages. This layer maintains a
//! data structure for each page, which contains the per-page freelist and a
//! count of the number of blocks in the page that are currently free. When
//! the count equals the total number of blocks in the page, the entire page
//! may be given back to the system" — no mark-and-sweep, no offline pass.
//!
//! Pages that still have blocks in use sit on a **radix-sorted** freelist
//! (one bucket per free count) "so that pages with the fewest free blocks
//! will be allocated from most frequently", giving nearly-free pages time
//! to gather their last outstanding blocks and drain completely.

use kmem_smp::{EventCounter, SpinLock};
use kmem_vm::{VmError, PAGE_SIZE};

use crate::block;
use crate::chain::Chain;
use crate::pagedesc::{PageDesc, PdKind, PdList};
use crate::vmblklayer::VmblkLayer;

/// Statistics for one coalesce-to-page instance.
#[derive(Default)]
pub struct PageLayerStats {
    /// Chain requests from the global layer.
    pub refills: EventCounter,
    /// Refills that had to take a fresh page from the vmblk layer.
    pub page_acquires: EventCounter,
    /// Pages fully drained and returned to the vmblk layer.
    pub page_releases: EventCounter,
    /// Individual blocks pushed down from the global layer.
    pub block_frees: EventCounter,
}

struct PageInner {
    /// `buckets[c]` lists pages with exactly `c` free blocks. Bucket 0 is
    /// unused: pages with no free blocks are not listed.
    buckets: Box<[PdList]>,
    /// Pages currently owned by this class.
    npages: usize,
    /// Free blocks across all owned pages.
    free_blocks: usize,
}

/// The coalesce-to-page layer for one size class.
pub struct PageLayer {
    class: usize,
    block_size: usize,
    blocks_per_page: usize,
    radix: bool,
    inner: SpinLock<PageInner>,
    stats: PageLayerStats,
}

impl PageLayer {
    /// Creates the layer for size class `class` with the given block size.
    pub fn new(class: usize, block_size: usize, radix: bool) -> Self {
        assert!(block_size.is_power_of_two() && block_size <= PAGE_SIZE);
        let blocks_per_page = PAGE_SIZE / block_size;
        PageLayer {
            class,
            block_size,
            blocks_per_page,
            radix,
            inner: SpinLock::new(PageInner {
                buckets: (0..=blocks_per_page).map(|_| PdList::new()).collect(),
                npages: 0,
                free_blocks: 0,
            }),
            stats: PageLayerStats::default(),
        }
    }

    /// Blocks that fit in one page at this class's size.
    pub fn blocks_per_page(&self) -> usize {
        self.blocks_per_page
    }

    /// Layer statistics.
    pub fn stats(&self) -> &PageLayerStats {
        &self.stats
    }

    #[inline]
    fn bucket_of(&self, free_count: usize) -> usize {
        free_count
    }

    /// Collects up to `want` blocks for the global layer.
    ///
    /// Blocks come from the pages with the *fewest* free blocks first; a
    /// fresh page is taken from the vmblk layer only when no owned page
    /// has a free block. Returns a possibly short chain under memory
    /// pressure, or the error when not a single block could be produced.
    pub fn alloc_chain(&self, vm: &VmblkLayer, want: usize) -> Result<Chain, VmError> {
        self.stats.refills.inc();
        let mut chain = Chain::new();
        let mut inner = self.inner.lock();
        while chain.len() < want {
            let Some((pd, count)) = self.fullest_page(&inner) else {
                // No free blocks anywhere: pull a fresh page in.
                match self.acquire_page(&mut inner, vm) {
                    Ok(()) => continue,
                    Err(e) if !chain.is_empty() => {
                        // Low memory: hand back what we gathered.
                        let _ = e;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            };
            self.take_blocks(&mut inner, pd, count, want, &mut chain);
        }
        Ok(chain)
    }

    /// Returns one block's worth of chain for each block in `chain` to the
    /// per-page freelists; fully drained pages go back to the vmblk layer.
    ///
    /// "There is no reason to maintain a split freelist at the global
    /// layer, since each block must be individually examined by the
    /// coalesce-to-page layer in order to determine which page's freelist
    /// it belongs on."
    ///
    /// # Safety
    ///
    /// Every block in `chain` must belong to this class (allocated through
    /// it) and be free and unaliased.
    pub unsafe fn free_chain(&self, vm: &VmblkLayer, mut chain: Chain) {
        let mut inner = self.inner.lock();
        while let Some(blk) = chain.pop() {
            self.stats.block_frees.inc();
            let pd = vm
                .pd_of(blk as usize)
                .expect("freed block not managed by this allocator");
            debug_assert_eq!(pd.kind(), PdKind::BlockPage);
            debug_assert_eq!(pd.class(), self.class);
            let pd_ptr = pd as *const PageDesc as *mut PageDesc;
            // SAFETY: page-layer lock held; this class owns the page.
            let pdi = unsafe { pd.inner() };
            // SAFETY: `blk` is free and ours per the function contract.
            unsafe { block::write_next(blk, pdi.freelist) };
            pdi.freelist = blk;
            let count = pdi.free_count as usize + 1;
            pdi.free_count = count as u32;
            inner.free_blocks += 1;

            if count == self.blocks_per_page {
                // Whole page free: give it back immediately.
                if count > 1 {
                    // Pages with count 0 were unlisted; all others listed.
                    // SAFETY: lock held; pd was in bucket (count - 1).
                    unsafe { inner.buckets[self.bucket_of(count - 1)].remove(pd_ptr) };
                }
                self.release_page(&mut inner, vm, pd);
            } else if count == 1 {
                // Page had no free blocks: list it now.
                // SAFETY: lock held; pd is unlisted.
                unsafe { inner.buckets[self.bucket_of(1)].push_front(pd_ptr) };
            } else if self.bucket_of(count) != self.bucket_of(count - 1) {
                // SAFETY: lock held; pd is in bucket (count - 1).
                unsafe {
                    inner.buckets[self.bucket_of(count - 1)].remove(pd_ptr);
                    inner.buckets[self.bucket_of(count)].push_front(pd_ptr);
                }
            }
        }
    }

    /// Picks the page to allocate from. The paper's radix policy takes
    /// the page with the *fewest* free blocks, so sparse pages get time
    /// to drain; the ablation (`radix = false`) takes the page with the
    /// *most* free blocks — the tempting "fewest page visits per refill"
    /// optimization that destroys page drain.
    fn fullest_page(&self, inner: &PageInner) -> Option<(*mut PageDesc, usize)> {
        let counts: Box<dyn Iterator<Item = usize>> = if self.radix {
            Box::new(1..=self.blocks_per_page)
        } else {
            Box::new((1..=self.blocks_per_page).rev())
        };
        for c in counts {
            if let Some(pd) = inner.buckets[c].front() {
                return Some((pd, c));
            }
        }
        None
    }

    /// Pops blocks from `pd` (which has `count` free) into `chain` until
    /// the page is exhausted or the chain reaches `want`.
    fn take_blocks(
        &self,
        inner: &mut PageInner,
        pd: *mut PageDesc,
        count: usize,
        want: usize,
        chain: &mut Chain,
    ) {
        let take = count.min(want - chain.len());
        // SAFETY: lock held; this class owns the page.
        let pdi = unsafe { (*pd).inner() };
        for _ in 0..take {
            let blk = pdi.freelist;
            debug_assert!(!blk.is_null());
            // SAFETY: freelist blocks are free blocks of this page.
            pdi.freelist = unsafe { block::read_next(blk) };
            // SAFETY: as above; the block enters the outgoing chain.
            unsafe { chain.push(blk) };
        }
        let left = count - take;
        pdi.free_count = left as u32;
        inner.free_blocks -= take;
        if self.bucket_of(count) != self.bucket_of(left) || left == 0 {
            // SAFETY: lock held; pd was in bucket(count).
            unsafe { inner.buckets[self.bucket_of(count)].remove(pd) };
            if left > 0 {
                // SAFETY: lock held; pd is unlisted.
                unsafe { inner.buckets[self.bucket_of(left)].push_front(pd) };
            }
        }
    }

    /// Takes one fresh page from the vmblk layer and splits it into
    /// blocks.
    fn acquire_page(&self, inner: &mut PageInner, vm: &VmblkLayer) -> Result<(), VmError> {
        let (page, pd) = vm.alloc_span(1)?;
        self.stats.page_acquires.inc();
        let base = page.as_ptr();
        pd.set_class(self.class);
        pd.set_kind(PdKind::BlockPage);
        let pd_ptr = pd as *const PageDesc as *mut PageDesc;
        // SAFETY: the page is exclusively ours; lock held.
        let pdi = unsafe { pd.inner() };
        pdi.freelist = core::ptr::null_mut();
        // Carve the page into blocks, building the page freelist in
        // ascending address order.
        for i in (0..self.blocks_per_page).rev() {
            // SAFETY: offsets stay inside the page we own.
            let blk = unsafe { base.add(i * self.block_size) };
            // SAFETY: `blk` is a fresh free block of this page.
            unsafe {
                block::write_next(blk, pdi.freelist);
                block::poison(blk);
            }
            pdi.freelist = blk;
        }
        pdi.free_count = self.blocks_per_page as u32;
        inner.free_blocks += self.blocks_per_page;
        inner.npages += 1;
        // SAFETY: lock held; the fresh page descriptor is unlisted.
        unsafe {
            inner.buckets[self.bucket_of(self.blocks_per_page)].push_front(pd_ptr);
        }
        Ok(())
    }

    /// Returns a fully free page to the vmblk layer ("the physical memory
    /// is returned to the system; the virtual memory is retained and
    /// passed up").
    fn release_page(&self, inner: &mut PageInner, vm: &VmblkLayer, pd: &PageDesc) {
        self.stats.page_releases.inc();
        // SAFETY: lock held; page fully free, so no block of it is
        // reachable anywhere.
        let pdi = unsafe { pd.inner() };
        debug_assert_eq!(pdi.free_count as usize, self.blocks_per_page);
        pdi.freelist = core::ptr::null_mut();
        pdi.free_count = 0;
        inner.free_blocks -= self.blocks_per_page;
        inner.npages -= 1;
        pd.set_kind(PdKind::Unused);
        pd.set_class(0);
        // Recover the page base address from the descriptor itself:
        // descriptors live inside their vmblk, so the dope vector resolves
        // them like any other managed address.
        let page_addr = {
            let hdr = vm
                .header_of(pd as *const PageDesc as usize)
                .expect("descriptor outside any vmblk");
            hdr.data_page(hdr.pd_index_of(pd))
        };
        // SAFETY: the span is exactly the fully free page we own.
        unsafe { vm.free_span(page_addr, 1) };
    }

    /// (owned pages, free blocks) — verification.
    pub fn usage(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.npages, inner.free_blocks)
    }

    /// Walks every listed page, calling `f(free_count, freelist_len)`
    /// (verification).
    pub fn for_each_page(&self, mut f: impl FnMut(usize, usize)) {
        let inner = self.inner.lock();
        for bucket in inner.buckets.iter() {
            // SAFETY: page-layer lock held for the whole walk.
            for pd in unsafe { bucket.iter() } {
                // SAFETY: lock held.
                let pdi = unsafe { (*pd).inner() };
                let mut n = 0;
                let mut blk = pdi.freelist;
                while !blk.is_null() {
                    n += 1;
                    // SAFETY: page freelist blocks are free and linked.
                    blk = unsafe { block::read_next(blk) };
                }
                f(pdi.free_count as usize, n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem_vm::{KernelSpace, SpaceConfig};
    use std::sync::Arc;

    fn setup(block_size: usize, radix: bool, phys_pages: usize) -> (VmblkLayer, PageLayer) {
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20)
                .vmblk_shift(14)
                .phys_pages(phys_pages),
        ));
        let vm = VmblkLayer::new(space, true);
        let layer = PageLayer::new(3, block_size, radix);
        (vm, layer)
    }

    fn chain_len_and_back(layer: &PageLayer, vm: &VmblkLayer, chain: Chain) -> usize {
        let n = chain.len();
        // SAFETY: blocks came from this layer moments ago.
        unsafe { layer.free_chain(vm, chain) };
        n
    }

    #[test]
    fn refill_carves_a_page_into_blocks() {
        let (vm, layer) = setup(512, true, 64);
        assert_eq!(layer.blocks_per_page(), 8);
        let chain = layer.alloc_chain(&vm, 3).unwrap();
        assert_eq!(chain.len(), 3);
        let (pages, free) = layer.usage();
        assert_eq!((pages, free), (1, 5));
        assert_eq!(chain_len_and_back(&layer, &vm, chain), 3);
        // Fully drained: page returned, nothing owned.
        assert_eq!(layer.usage(), (0, 0));
        assert_eq!(vm.space().phys().in_use(), 0);
    }

    #[test]
    fn blocks_are_disjoint_and_page_aligned_strides() {
        let (vm, layer) = setup(256, true, 64);
        let mut chain = layer.alloc_chain(&vm, 16).unwrap();
        let mut addrs = Vec::new();
        while let Some(b) = chain.pop() {
            addrs.push(b as usize);
        }
        addrs.sort_unstable();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= 256, "blocks overlap");
        }
        for &a in &addrs {
            assert_eq!(a % 256, 0, "block misaligned");
        }
        // Hand them back one chain at a time.
        let mut back = Chain::new();
        for a in addrs {
            // SAFETY: these are the blocks we just took.
            unsafe { back.push(a as *mut u8) };
        }
        // SAFETY: as above.
        unsafe { layer.free_chain(&vm, back) };
        assert_eq!(layer.usage(), (0, 0));
    }

    #[test]
    fn radix_prefers_fullest_page() {
        let (vm, layer) = setup(1024, true, 64);
        // Two pages of 4 blocks each.
        let mut c1 = layer.alloc_chain(&vm, 4).unwrap();
        let c2 = layer.alloc_chain(&vm, 4).unwrap();
        assert_eq!(layer.usage().0, 2);
        // Free 1 block of page 1 and all 4 of page 2: page 2 drains and is
        // released, page 1 has one free block.
        let one = {
            let mut c = Chain::new();
            // SAFETY: block from c1.
            unsafe { c.push(c1.pop().unwrap()) };
            c
        };
        // SAFETY: blocks from this layer.
        unsafe {
            layer.free_chain(&vm, one);
            layer.free_chain(&vm, c2);
        }
        assert_eq!(layer.usage(), (1, 1));
        // Next refill must come from the page with the fewest free blocks
        // (the 1-free page), not a fresh page.
        let c3 = layer.alloc_chain(&vm, 1).unwrap();
        assert_eq!(layer.usage(), (1, 0));
        assert_eq!(layer.stats().page_acquires.get(), 2); // no new page
                                                          // Cleanup.
        let mut rest = Chain::new();
        let mut c3 = c3;
        // SAFETY: blocks from this layer.
        unsafe {
            while let Some(b) = c1.pop() {
                rest.push(b);
            }
            while let Some(b) = c3.pop() {
                rest.push(b);
            }
            layer.free_chain(&vm, rest);
        }
        assert_eq!(layer.usage(), (0, 0));
    }

    #[test]
    fn partial_chain_under_memory_pressure() {
        // Pool: 1 header + 1 data page only.
        let (vm, layer) = setup(2048, true, 2);
        // A page holds 2 blocks; asking for 5 returns the 2 we can get.
        let chain = layer.alloc_chain(&vm, 5).unwrap();
        assert_eq!(chain.len(), 2);
        // And with nothing at all we get the error.
        let err = layer.alloc_chain(&vm, 1).unwrap_err();
        assert!(matches!(err, VmError::OutOfPhysical { .. }));
        // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, chain) };
        assert_eq!(vm.space().phys().in_use(), 0);
    }

    #[test]
    fn single_block_pages_release_on_every_free() {
        let (vm, layer) = setup(4096, true, 16);
        assert_eq!(layer.blocks_per_page(), 1);
        let chain = layer.alloc_chain(&vm, 2).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(layer.usage(), (2, 0));
        // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, chain) };
        assert_eq!(layer.usage(), (0, 0));
        assert_eq!(layer.stats().page_releases.get(), 2);
    }

    #[test]
    fn most_free_first_ablation_prefers_sparse_pages() {
        let (vm, layer) = setup(1024, false, 64);
        // Two pages: drain one fully, the other partially.
        let mut c1 = layer.alloc_chain(&vm, 4).unwrap();
        let c2 = layer.alloc_chain(&vm, 2).unwrap();
        // Free 1 block of page 1: counts are now {page1: 1, page2: 2}.
        let mut one = Chain::new();
        // SAFETY: block from c1.
        unsafe { one.push(c1.pop().unwrap()) };
        // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, one) };
        // The ablation policy takes from the page with MORE free blocks.
        let c3 = layer.alloc_chain(&vm, 1).unwrap();
        let mut counts = Vec::new();
        layer.for_each_page(|c, _| counts.push(c));
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 1]);
        // Cleanup.
        let mut rest = Chain::new();
        let mut c3 = c3;
        let mut c2 = c2;
        // SAFETY: blocks from this layer.
        unsafe {
            while let Some(b) = c1.pop() {
                rest.push(b);
            }
            while let Some(b) = c2.pop() {
                rest.push(b);
            }
            while let Some(b) = c3.pop() {
                rest.push(b);
            }
            layer.free_chain(&vm, rest);
        }
        assert_eq!(layer.usage(), (0, 0));
    }

    #[test]
    fn page_walker_counts_match() {
        let (vm, layer) = setup(256, true, 64);
        let chain = layer.alloc_chain(&vm, 5).unwrap();
        let mut seen = Vec::new();
        layer.for_each_page(|count, listed| {
            assert_eq!(count, listed);
            seen.push(count);
        });
        assert_eq!(seen, vec![11]); // 16 per page - 5 taken
                                    // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, chain) };
    }
}
