//! The coalesce-to-page layer (paper Figure 5), lock-free.
//!
//! One instance per size class. "The coalesce-to-page layer gathers blocks
//! of a given size and coalesces them into pages. This layer maintains a
//! data structure for each page, which contains the per-page freelist and a
//! count of the number of blocks in the page that are currently free. When
//! the count equals the total number of blocks in the page, the entire page
//! may be given back to the system" — no mark-and-sweep, no offline pass.
//!
//! Pages that still have blocks in use sit on a **radix-sorted** freelist
//! (one bucket per free count) "so that pages with the fewest free blocks
//! will be allocated from most frequently", giving nearly-free pages time
//! to gather their last outstanding blocks and drain completely.
//!
//! # Lock-free protocol
//!
//! The spinlock of the original layer is gone. Each page descriptor carries
//! two tagged words: `afree`, the page's block freelist (a Treiber stack
//! through each free block's first word), and `state`, a packed
//! `(count | bucket | LISTED | OWNED)` snapshot of the page's standing. The
//! radix buckets are [`PdStack`]s of whole descriptors.
//!
//! **Possession.** Physically popping a descriptor from a bucket grants
//! *possession*: the popper CASes `state` from `{c, LISTED, b}` to
//! `{c, OWNED}` and is then the only CPU allowed to take blocks, relist the
//! page, or release it. Freeing CPUs never pop; they only push blocks and
//! bump the count with one `fetch_count_add`.
//!
//! **Freelist before count.** A freer pushes the block onto `afree`
//! *before* incrementing the count, and a possessor reserves blocks by
//! CASing the count *down* before popping them, so the freelist length `L`
//! and count `C` obey `L >= C + reserved` at all times. When a count
//! reaches `blocks_per_page` every block is physically on the freelist and
//! the page can be handed back whole.
//!
//! **Coalescing without a lock.** The freer whose increment takes a LISTED
//! page's count to `blocks_per_page` *hunts* the bucket recorded in the
//! state: it pops pages, possesses each, releases any it finds full, and
//! stops once the target is met. An empty-handed hunt is absolved — some
//! other CPU possessed the page and will itself observe the full count.
//! Every possessor that observes `count == blocks_per_page` releases the
//! page, so a full page is never relisted and never double-freed.
//!
//! **Lazy buckets.** A listed page's bucket only records the count at
//! listing time; the true count may have grown since (it is monotone
//! non-decreasing while LISTED). Poppers repair stale positions by
//! relisting the page at its true count, which keeps the radix policy —
//! fewest-free-first under an ascending scan — exact in the absence of
//! concurrent frees and a best-effort approximation under them.

use core::ptr;
use core::sync::atomic::{AtomicUsize, Ordering};

use kmem_smp::{faults, EventCounter, Faults, NodeId, TaggedPtr};
use kmem_vm::{VmError, PAGE_SIZE};

use crate::block::{self, LinkKey};
use crate::chain::Chain;
use crate::pagedesc::{PageDesc, PdKind, PdStack};
use crate::vmblklayer::VmblkLayer;

/// Statistics for one coalesce-to-page instance.
#[derive(Default)]
pub struct PageLayerStats {
    /// Chain requests from the global layer.
    pub refills: EventCounter,
    /// Refills that had to take a fresh page from the vmblk layer.
    pub page_acquires: EventCounter,
    /// Pages fully drained and returned to the vmblk layer.
    pub page_releases: EventCounter,
    /// Individual blocks pushed down from the global layer.
    pub block_frees: EventCounter,
    /// Failed CAS attempts across every lock-free path of the layer.
    pub cas_retries: EventCounter,
}

/// Decoded view of a page's packed `state` word. Layout inside the 48-bit
/// value half of the [`TaggedAtomic`](kmem_smp::TaggedAtomic):
/// count in bits 0..16, listing bucket in bits 16..32, flags above. The
/// count sits in the low bits so a freer's `fetch_count_add(1)` increments
/// it without disturbing bucket or flags (a page holds at most
/// `PAGE_SIZE / MIN_BLOCK` = 256 blocks, far below the 16-bit field).
#[derive(Clone, Copy)]
struct PageState(u64);

const COUNT_MASK: u64 = 0xFFFF;
const BUCKET_SHIFT: u32 = 16;
const LISTED: u64 = 1 << 32;
const OWNED: u64 = 1 << 33;

impl PageState {
    #[inline]
    fn of(tp: TaggedPtr) -> Self {
        PageState(tp.value())
    }

    #[inline]
    fn count(self) -> usize {
        (self.0 & COUNT_MASK) as usize
    }

    /// Bucket recorded at listing time; meaningful only while LISTED.
    #[inline]
    fn bucket(self) -> usize {
        ((self.0 >> BUCKET_SHIFT) & COUNT_MASK) as usize
    }

    #[inline]
    fn listed(self) -> bool {
        self.0 & LISTED != 0
    }

    #[inline]
    fn owned(self) -> bool {
        self.0 & OWNED != 0
    }

    #[inline]
    fn owned_value(count: usize) -> u64 {
        count as u64 | OWNED
    }

    #[inline]
    fn listed_value(count: usize, bucket: usize) -> u64 {
        count as u64 | ((bucket as u64) << BUCKET_SHIFT) | LISTED
    }
}

/// The coalesce-to-page layer for one size class.
pub struct PageLayer {
    class: usize,
    block_size: usize,
    blocks_per_page: usize,
    radix: bool,
    /// `buckets[c]` lists pages listed with `c` free blocks (lazily: the
    /// true count may since have grown). Bucket 0 is unused; bucket
    /// `blocks_per_page` holds only fault-deferred full pages.
    buckets: Box<[PdStack]>,
    /// Pages currently owned by this class.
    npages: AtomicUsize,
    /// Free blocks across all owned pages.
    free_blocks: AtomicUsize,
    /// Link-encoding key for the per-page `afree` freelists (the arena
    /// key under the hardened profile, identity otherwise).
    key: LinkKey,
    /// `Some(seed)` shuffles each fresh page's carve order (hardened
    /// randomization); `None` carves in ascending address order.
    shuffle_seed: Option<u64>,
    /// Write the full free-poison pattern at carve time, so verify-on-
    /// alloc holds for never-yet-allocated blocks too.
    poison: bool,
    faults: Faults,
    stats: PageLayerStats,
}

impl PageLayer {
    /// Creates the layer for size class `class` with the given block size.
    pub fn new(class: usize, block_size: usize, radix: bool) -> Self {
        PageLayer::new_with_faults(class, block_size, radix, Faults::none())
    }

    /// As [`new`](PageLayer::new), wired to a fault-injection plan
    /// (consults `page.get` and `page.coalesce`).
    pub fn new_with_faults(class: usize, block_size: usize, radix: bool, faults: Faults) -> Self {
        PageLayer::new_hardened(
            class,
            block_size,
            radix,
            faults,
            LinkKey::PLAIN,
            None,
            false,
        )
    }

    /// As [`new_with_faults`](PageLayer::new_with_faults), with the
    /// hardened profile's knobs: freelist links encoded under `key`,
    /// fresh pages carved in an order shuffled from `shuffle_seed`, and
    /// (`poison`) the free-poison pattern laid down at carve time.
    pub fn new_hardened(
        class: usize,
        block_size: usize,
        radix: bool,
        faults: Faults,
        key: LinkKey,
        shuffle_seed: Option<u64>,
        poison: bool,
    ) -> Self {
        assert!(block_size.is_power_of_two() && block_size <= PAGE_SIZE);
        let blocks_per_page = PAGE_SIZE / block_size;
        PageLayer {
            class,
            block_size,
            blocks_per_page,
            radix,
            buckets: (0..=blocks_per_page).map(|_| PdStack::new()).collect(),
            npages: AtomicUsize::new(0),
            free_blocks: AtomicUsize::new(0),
            key,
            shuffle_seed,
            poison,
            faults,
            stats: PageLayerStats::default(),
        }
    }

    /// Blocks that fit in one page at this class's size.
    pub fn blocks_per_page(&self) -> usize {
        self.blocks_per_page
    }

    /// Layer statistics.
    pub fn stats(&self) -> &PageLayerStats {
        &self.stats
    }

    /// Collects up to `want` blocks for the global layer.
    ///
    /// Blocks come from the pages with the *fewest* free blocks first; a
    /// fresh page is taken from the vmblk layer only when no owned page
    /// has a free block. Returns a possibly short chain under memory
    /// pressure, or the error when not a single block could be produced.
    pub fn alloc_chain(&self, vm: &VmblkLayer, want: usize) -> Result<Chain, VmError> {
        self.alloc_chain_on(vm, want, NodeId::new(0))
    }

    /// As [`PageLayer::alloc_chain`], preferring node `preferred` when a
    /// fresh page must be taken from the vmblk layer. The radix buckets
    /// themselves are node-blind: a block already carved is served from
    /// wherever it sits (draining pages beats placement), so the
    /// preference only steers *new* frames.
    pub fn alloc_chain_on(
        &self,
        vm: &VmblkLayer,
        want: usize,
        preferred: NodeId,
    ) -> Result<Chain, VmError> {
        if self.faults.hit(faults::PAGE_GET) {
            // Injected refill failure on the common (lock-free) path.
            return Err(VmError::OutOfPhysical {
                requested: 1,
                available: 0,
            });
        }
        self.stats.refills.inc();
        let mut chain = Chain::new_keyed(self.key);
        while chain.len() < want {
            let pd = match self.pop_page() {
                Some(pd) => pd,
                None => match self.acquire_page(vm, preferred) {
                    Ok(pd) => pd,
                    Err(_) if !chain.is_empty() => break, // low memory: short chain
                    Err(e) => return Err(e),
                },
            };
            // SAFETY: `pd` is possessed by us (popped or freshly acquired).
            unsafe { self.take_from(vm, pd, want, &mut chain) };
        }
        Ok(chain)
    }

    /// Returns each block in `chain` to its page's lock-free freelist;
    /// fully drained pages go back to the vmblk layer.
    ///
    /// "There is no reason to maintain a split freelist at the global
    /// layer, since each block must be individually examined by the
    /// coalesce-to-page layer in order to determine which page's freelist
    /// it belongs on."
    ///
    /// # Safety
    ///
    /// Every block in `chain` must belong to this class (allocated through
    /// it) and be free and unaliased.
    pub unsafe fn free_chain(&self, vm: &VmblkLayer, mut chain: Chain) {
        while let Some(blk) = chain.pop() {
            let pd = vm
                .pd_of(blk as usize)
                .expect("freed block not managed by this allocator");
            debug_assert_eq!(pd.kind(), PdKind::BlockPage);
            debug_assert_eq!(pd.class(), self.class);
            let pd_ptr = pd as *const PageDesc as *mut PageDesc;

            // Gather the run of consecutive chain blocks landing on the
            // same page and pre-link it privately: however long the run,
            // it then costs one freelist splice and one count add. Chains
            // built from one page's blocks (the common refill shape) fold
            // to a single RMW pair.
            let run_tail = blk;
            let mut run_head = blk;
            let mut k = 1u64;
            while let Some(next) = chain.peek() {
                match vm.pd_of(next as usize) {
                    Some(p) if ptr::eq(p, pd) => {}
                    _ => break,
                }
                chain.pop();
                // SAFETY: `next` is free and ours per the function
                // contract; the run stays private until the splice below
                // publishes it.
                unsafe { block::write_next_atomic(next, run_head, self.key) };
                run_head = next;
                k += 1;
            }
            self.stats.block_frees.add(k);

            // Freelist before count: splice the run, then announce it, so
            // any CPU seeing the count can also pop the blocks it promises.
            let mut head = pd.afree().load();
            loop {
                // SAFETY: `run_tail` is free and ours per the contract.
                unsafe { block::write_next_atomic(run_tail, head.ptr(), self.key) };
                match pd.afree().compare_exchange(head, run_head) {
                    Ok(_) => break,
                    Err(seen) => {
                        self.stats.cas_retries.inc();
                        head = seen;
                    }
                }
            }
            self.free_blocks.fetch_add(k as usize, Ordering::Relaxed);

            let old = PageState::of(pd.state().fetch_count_add(k));
            let count = old.count() + k as usize;
            debug_assert!(count <= self.blocks_per_page);
            if old.owned() {
                // A possessor is working the page; it settles the count.
            } else if old.listed() {
                if count == self.blocks_per_page {
                    // Our increment filled the page: coalesce it.
                    self.hunt(vm, old.bucket(), pd_ptr);
                }
            } else if old.count() == 0 {
                // First free into an unlisted page: we are the unique
                // lister. (Later freers see a nonzero count and rely on
                // us listing at the count we re-read.)
                self.list_unowned(vm, pd_ptr);
            }
        }
    }

    /// Pops a page to allocate from, transferring possession to the
    /// caller. The paper's radix policy scans buckets *ascending* so the
    /// page with the fewest free blocks is taken; the ablation
    /// (`radix = false`) scans descending — the tempting "fewest page
    /// visits per refill" optimization that destroys page drain.
    ///
    /// Stale positions (true count above the listed bucket) are repaired
    /// by relisting; fault-deferred full pages are returned directly for
    /// consumption.
    fn pop_page(&self) -> Option<*mut PageDesc> {
        let bpp = self.blocks_per_page;
        if self.radix {
            for b in 1..=bpp {
                loop {
                    let (popped, retries) = self.buckets[b].pop();
                    self.stats.cas_retries.add(retries);
                    let Some(pd) = popped else { break };
                    let c = self.possess(pd);
                    if c == b || c == bpp {
                        return Some(pd);
                    }
                    // Stale (c > b): relist at the true count and keep
                    // scanning this bucket — repairs never move a page
                    // *down*, so the ascending scan stays exact.
                    self.settle_one_no_release(pd);
                }
            }
            None
        } else {
            'restart: loop {
                for b in (1..=bpp).rev() {
                    let (popped, retries) = self.buckets[b].pop();
                    self.stats.cas_retries.add(retries);
                    let Some(pd) = popped else { continue };
                    let c = self.possess(pd);
                    if c == b || c == bpp {
                        return Some(pd);
                    }
                    // Stale: the true count is *higher*, i.e. in a bucket
                    // the descending scan already passed. Relist and
                    // rescan from the top.
                    self.settle_one_no_release(pd);
                    continue 'restart;
                }
                return None;
            }
        }
    }

    /// CASes a physically popped page from LISTED to OWNED, returning the
    /// observed free count. Flags are stable while the page is popped
    /// (only freers touch the word, and they only move the count), so the
    /// loop converges.
    fn possess(&self, pd: *mut PageDesc) -> usize {
        // SAFETY: a physical pop grants possession; `pd` is valid
        // (descriptor storage is type-stable).
        let pdr = unsafe { &*pd };
        let mut cur = pdr.state().load();
        loop {
            let st = PageState::of(cur);
            debug_assert!(st.listed() && !st.owned(), "possessing an unlisted page");
            match pdr
                .state()
                .compare_exchange_value(cur, PageState::owned_value(st.count()))
            {
                Ok(_) => return st.count(),
                Err(seen) => {
                    self.stats.cas_retries.inc();
                    cur = seen;
                }
            }
        }
    }

    /// Takes up to `want - chain.len()` blocks from possessed page `pd`,
    /// then settles it (relist / release / unlist).
    ///
    /// # Safety
    ///
    /// The caller possesses `pd`.
    unsafe fn take_from(&self, vm: &VmblkLayer, pd: *mut PageDesc, want: usize, chain: &mut Chain) {
        // SAFETY: possessed per contract.
        let pdr = unsafe { &*pd };
        // Reserve first: CAS the count down, then pop that many blocks.
        // The freelist-before-count discipline guarantees they are there.
        let mut cur = pdr.state().load();
        let take = loop {
            let st = PageState::of(cur);
            debug_assert!(st.owned());
            let k = st.count().min(want - chain.len());
            if k == 0 {
                break 0;
            }
            match pdr
                .state()
                .compare_exchange_value(cur, PageState::owned_value(st.count() - k))
            {
                Ok(_) => break k,
                Err(seen) => {
                    self.stats.cas_retries.inc();
                    cur = seen;
                }
            }
        };
        self.free_blocks.fetch_sub(take, Ordering::Relaxed);
        if take > 0 {
            // Possession makes this CPU the freelist's only consumer, so
            // the whole list comes off in one exchange and is walked
            // privately — per-block CAS traffic collapses to at most two
            // RMWs regardless of `take`.
            let mut head = pdr.afree().load();
            let taken = loop {
                debug_assert!(!head.is_null(), "page freelist under-supplied");
                match pdr.afree().compare_exchange(head, ptr::null_mut()) {
                    Ok(_) => break head.ptr(),
                    Err(seen) => {
                        self.stats.cas_retries.inc();
                        head = seen;
                    }
                }
            };
            // Keep the first `take` blocks — the reservation made them
            // exclusively ours, and the freelist-before-count discipline
            // guarantees they are physically present.
            let mut blk = taken;
            for _ in 0..take {
                debug_assert!(!blk.is_null(), "page freelist under-supplied");
                // SAFETY: `blk` is a free block of this page; its next
                // field was published by the pushing CPU's Release CAS.
                let next = unsafe { block::read_next_atomic(blk, self.key) };
                // SAFETY: reserved above.
                unsafe { chain.push(blk) };
                blk = next;
            }
            // Splice back any surplus (blocks beyond the reservation, or
            // freed after the count snapshot). The surplus is private
            // until the CAS republishes it, so the tail walk is plain
            // reads; racing freers meanwhile push onto the empty head and
            // merge when this CAS lands.
            if !blk.is_null() {
                let mut tail = blk;
                loop {
                    // SAFETY: surplus blocks are ours until respliced.
                    let next = unsafe { block::read_next_atomic(tail, self.key) };
                    if next.is_null() {
                        break;
                    }
                    tail = next;
                }
                let mut head = pdr.afree().load();
                loop {
                    // SAFETY: `tail` is ours until the CAS publishes it.
                    unsafe { block::write_next_atomic(tail, head.ptr(), self.key) };
                    match pdr.afree().compare_exchange(head, blk) {
                        Ok(_) => break,
                        Err(seen) => {
                            self.stats.cas_retries.inc();
                            head = seen;
                        }
                    }
                }
            }
        }
        self.settle_one(vm, pd);
    }

    /// Settles a possessed page: unlists it at count 0, releases it when
    /// full (unless an injected fault defers the coalesce, in which case
    /// it is listed at bucket `blocks_per_page` for a later pass), and
    /// relists it at its true count otherwise.
    fn settle_one(&self, vm: &VmblkLayer, pd: *mut PageDesc) {
        // SAFETY: possessed by the caller.
        let pdr = unsafe { &*pd };
        let mut cur = pdr.state().load();
        loop {
            let st = PageState::of(cur);
            debug_assert!(st.owned() && !st.listed());
            let c = st.count();
            if c == self.blocks_per_page {
                if !self.faults.hit(faults::PAGE_COALESCE) {
                    self.release_owned(vm, pdr);
                    return;
                }
                // Injected deferral: park the full page in the top bucket.
            } else if c == 0 {
                match pdr.state().compare_exchange_value(cur, 0) {
                    Ok(_) => return, // unlisted; the next free relists it
                    Err(seen) => {
                        self.stats.cas_retries.inc();
                        cur = seen;
                        continue;
                    }
                }
            }
            match pdr
                .state()
                .compare_exchange_value(cur, PageState::listed_value(c, c))
            {
                Ok(_) => {
                    self.push_listed(vm, pd, c);
                    return;
                }
                Err(seen) => {
                    self.stats.cas_retries.inc();
                    cur = seen;
                }
            }
        }
    }

    /// [`settle_one`](Self::settle_one) for callers with no vmblk handy —
    /// only valid where the page cannot be full (stale-relist repair:
    /// possession was just taken with `c < blocks_per_page`... but a
    /// racing freer may still fill it, so this delegates to the full
    /// settle path via the stored layer state).
    fn settle_one_no_release(&self, pd: *mut PageDesc) {
        // SAFETY: possessed by the caller.
        let pdr = unsafe { &*pd };
        let mut cur = pdr.state().load();
        loop {
            let st = PageState::of(cur);
            debug_assert!(st.owned() && !st.listed());
            let c = st.count();
            debug_assert!(c >= 1);
            // Full pages are listed at the top bucket rather than released
            // (no vmblk reference here); the next popper or the freer's
            // hunt consumes or releases them.
            match pdr
                .state()
                .compare_exchange_value(cur, PageState::listed_value(c, c))
            {
                Ok(_) => {
                    // Physical push; no vm for the post-push mop either —
                    // a full page parked at the top bucket is always
                    // discoverable, so no mop is needed.
                    // SAFETY: we possess `pd` until this push publishes it.
                    let retries = unsafe { self.buckets[c].push(pd) };
                    self.stats.cas_retries.add(retries);
                    return;
                }
                Err(seen) => {
                    self.stats.cas_retries.inc();
                    cur = seen;
                }
            }
        }
    }

    /// Lists a page after its state CAS to LISTED at bucket `c`, then mops
    /// up the window between the CAS and the physical push: a freer that
    /// filled the page in that window hunted an emptier bucket and was
    /// absolved, so the lister re-checks and hunts on its behalf.
    fn push_listed(&self, vm: &VmblkLayer, pd: *mut PageDesc, c: usize) {
        // SAFETY: we possess `pd` until this push publishes it.
        let retries = unsafe { self.buckets[c].push(pd) };
        self.stats.cas_retries.add(retries);
        if c != self.blocks_per_page {
            // SAFETY: descriptor storage is type-stable.
            let st = PageState::of(unsafe { (*pd).state().load() });
            if st.listed() && st.count() == self.blocks_per_page {
                self.hunt(vm, c, pd);
            }
        }
    }

    /// First free into an unlisted, unowned page: list it at its current
    /// count — or, if the page has already refilled completely, claim and
    /// release it directly.
    fn list_unowned(&self, vm: &VmblkLayer, pd: *mut PageDesc) {
        // SAFETY: descriptor storage is type-stable.
        let pdr = unsafe { &*pd };
        let mut cur = pdr.state().load();
        loop {
            let st = PageState::of(cur);
            debug_assert!(!st.listed() && !st.owned());
            let c = st.count();
            debug_assert!(c >= 1);
            if c == self.blocks_per_page && !self.faults.hit(faults::PAGE_COALESCE) {
                // Claiming is the same CAS a possessor would use; with it
                // we hold the only reference to an all-free page.
                match pdr
                    .state()
                    .compare_exchange_value(cur, PageState::owned_value(c))
                {
                    Ok(_) => {
                        self.release_owned(vm, pdr);
                        return;
                    }
                    Err(seen) => {
                        self.stats.cas_retries.inc();
                        cur = seen;
                        continue;
                    }
                }
            }
            match pdr
                .state()
                .compare_exchange_value(cur, PageState::listed_value(c, c))
            {
                Ok(_) => {
                    self.push_listed(vm, pd, c);
                    return;
                }
                Err(seen) => {
                    self.stats.cas_retries.inc();
                    cur = seen;
                }
            }
        }
    }

    /// Coalesce hunt: our free filled a LISTED page, so *someone* must
    /// release it. Pop pages from the bucket it was listed in, releasing
    /// every full page found, until the target turns up — or the bucket
    /// runs dry, which absolves us: a racing possessor popped the target
    /// and will itself observe the full count.
    fn hunt(&self, vm: &VmblkLayer, bucket: usize, target: *mut PageDesc) {
        if self.faults.hit(faults::PAGE_COALESCE) {
            // Injected deferral: leave the page listed; a later popper,
            // hunt, or flush settles it.
            return;
        }
        let mut aside = Vec::new();
        loop {
            let (popped, retries) = self.buckets[bucket].pop();
            self.stats.cas_retries.add(retries);
            let Some(pd) = popped else { break };
            let c = self.possess(pd);
            if c == self.blocks_per_page {
                // SAFETY: possessed, full.
                self.release_owned(vm, unsafe { &*pd });
                if pd == target {
                    break;
                }
            } else {
                // Not ours and not full: set it aside — relisting now
                // could push it back on top of the target.
                aside.push(pd);
            }
        }
        for pd in aside {
            self.settle_one(vm, pd);
        }
    }

    /// Takes one fresh page from the vmblk layer (preferring frames homed
    /// on `preferred`), carves it into blocks and returns it possessed
    /// (OWNED, all blocks on `afree`).
    fn acquire_page(&self, vm: &VmblkLayer, preferred: NodeId) -> Result<*mut PageDesc, VmError> {
        if self.faults.hit(faults::PAGE_GET) {
            // Injected refill failure on the slow (vmblk) path.
            return Err(VmError::OutOfPhysical {
                requested: 1,
                available: 0,
            });
        }
        let (page, pd) = vm.alloc_span_on(1, preferred)?;
        self.stats.page_acquires.inc();
        let base = page.as_ptr();
        pd.set_class(self.class);
        pd.set_kind(PdKind::BlockPage);
        // Carve the page into blocks, building the page freelist — in
        // ascending address order by default, or in an order shuffled
        // from the hardened seed so allocation order does not expose the
        // page layout. Plain writes: nothing is published until the
        // freelist-head CAS below releases them.
        let mut freelist = ptr::null_mut();
        let carve = |i: usize, freelist: &mut *mut u8| {
            // SAFETY: offsets stay inside the page we own.
            let blk = unsafe { base.add(i * self.block_size) };
            // SAFETY: `blk` is a fresh free block of this page.
            unsafe {
                block::write_next(blk, *freelist, self.key);
                if self.poison {
                    block::poison_free(blk, self.block_size);
                } else {
                    block::poison(blk);
                }
            }
            *freelist = blk;
        };
        match self.shuffle_seed {
            None => {
                for i in (0..self.blocks_per_page).rev() {
                    carve(i, &mut freelist);
                }
            }
            Some(seed) => {
                // Fisher–Yates over the block indices, seeded per page
                // (arena seed ⊕ page address) so two pages of the same
                // class carve in different orders but a fixed seed keeps
                // the whole run reproducible.
                let mut order: Vec<usize> = (0..self.blocks_per_page).collect();
                let mut s = seed ^ base as u64;
                for i in (1..order.len()).rev() {
                    // splitmix64 step — self-contained, no RNG dependency.
                    s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = s;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^= z >> 31;
                    order.swap(i, (z % (i as u64 + 1)) as usize);
                }
                for &i in &order {
                    carve(i, &mut freelist);
                }
            }
        }
        // The page is exclusively ours, so these CASes cannot contend;
        // the loops only track the tag.
        let mut cur = pd.afree().load();
        debug_assert!(cur.is_null());
        while let Err(seen) = pd.afree().compare_exchange(cur, freelist) {
            cur = seen;
        }
        let mut cur = pd.state().load();
        debug_assert_eq!(cur.value(), 0);
        while let Err(seen) = pd
            .state()
            .compare_exchange_value(cur, PageState::owned_value(self.blocks_per_page))
        {
            cur = seen;
        }
        self.free_blocks
            .fetch_add(self.blocks_per_page, Ordering::Relaxed);
        self.npages.fetch_add(1, Ordering::Relaxed);
        Ok(pd as *const PageDesc as *mut PageDesc)
    }

    /// Returns a possessed, fully free page to the vmblk layer ("the
    /// physical memory is returned to the system; the virtual memory is
    /// retained and passed up"). With the count at `blocks_per_page` no
    /// freer or popper can reach the page, so the resets are private.
    fn release_owned(&self, vm: &VmblkLayer, pd: &PageDesc) {
        self.stats.page_releases.inc();
        let mut cur = pd.state().load();
        debug_assert_eq!(PageState::of(cur).count(), self.blocks_per_page);
        debug_assert!(PageState::of(cur).owned());
        while let Err(seen) = pd.state().compare_exchange_value(cur, 0) {
            cur = seen;
        }
        let mut cur = pd.afree().load();
        while let Err(seen) = pd.afree().compare_exchange(cur, ptr::null_mut()) {
            cur = seen;
        }
        self.free_blocks
            .fetch_sub(self.blocks_per_page, Ordering::Relaxed);
        self.npages.fetch_sub(1, Ordering::Relaxed);
        pd.set_kind(PdKind::Unused);
        pd.set_class(0);
        // Recover the page base address from the descriptor itself:
        // descriptors live inside their vmblk, so the dope vector resolves
        // them like any other managed address.
        let page_addr = {
            let hdr = vm
                .header_of(pd as *const PageDesc as usize)
                .expect("descriptor outside any vmblk");
            hdr.data_page(hdr.pd_index_of(pd))
        };
        // SAFETY: the span is exactly the fully free page we own.
        unsafe { vm.free_span(page_addr, 1) };
    }

    /// Pops every listed page and settles it at its true count, releasing
    /// any that are full — the recovery pass for fault-deferred coalesces
    /// and the final drain before teardown. Safe under concurrency (every
    /// pop possesses), though buckets refilled by racing frees are not
    /// re-scanned.
    pub fn flush_full_pages(&self, vm: &VmblkLayer) {
        let mut possessed = Vec::new();
        for bucket in self.buckets.iter() {
            loop {
                let (popped, retries) = bucket.pop();
                self.stats.cas_retries.add(retries);
                let Some(pd) = popped else { break };
                self.possess(pd);
                possessed.push(pd);
            }
        }
        for pd in possessed {
            self.settle_one(vm, pd);
        }
    }

    /// (owned pages, free blocks) — verification. Exact at quiescence.
    pub fn usage(&self) -> (usize, usize) {
        (
            self.npages.load(Ordering::Acquire),
            self.free_blocks.load(Ordering::Acquire),
        )
    }

    /// Walks every listed page, calling `f(free_count, freelist_len)`.
    ///
    /// Verification only: the layer must be quiescent for the walk (no
    /// concurrent allocs or frees), as the torture checkpoints guarantee.
    pub fn for_each_page(&self, mut f: impl FnMut(usize, usize)) {
        for bucket in self.buckets.iter() {
            // SAFETY: quiescence per the function contract.
            for pd in unsafe { bucket.iter() } {
                // SAFETY: listed pages are valid block pages of this class.
                let pdr = unsafe { &*pd };
                let st = PageState::of(pdr.state().load());
                let mut n = 0;
                let mut blk = pdr.afree().load().ptr();
                while !blk.is_null() {
                    n += 1;
                    // SAFETY: page freelist blocks are free and linked.
                    blk = unsafe { block::read_next_atomic(blk, self.key) };
                }
                f(st.count(), n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem_smp::probe::{self, ProbeEvent};
    use kmem_smp::FailPolicy;
    use kmem_vm::{KernelSpace, SpaceConfig};
    use std::sync::Arc;

    fn setup(block_size: usize, radix: bool, phys_pages: usize) -> (VmblkLayer, PageLayer) {
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20)
                .vmblk_shift(14)
                .phys_pages(phys_pages),
        ));
        let vm = VmblkLayer::new(space, true);
        let layer = PageLayer::new(3, block_size, radix);
        (vm, layer)
    }

    fn chain_len_and_back(layer: &PageLayer, vm: &VmblkLayer, chain: Chain) -> usize {
        let n = chain.len();
        // SAFETY: blocks came from this layer moments ago.
        unsafe { layer.free_chain(vm, chain) };
        n
    }

    #[test]
    fn refill_carves_a_page_into_blocks() {
        let (vm, layer) = setup(512, true, 64);
        assert_eq!(layer.blocks_per_page(), 8);
        let chain = layer.alloc_chain(&vm, 3).unwrap();
        assert_eq!(chain.len(), 3);
        let (pages, free) = layer.usage();
        assert_eq!((pages, free), (1, 5));
        assert_eq!(chain_len_and_back(&layer, &vm, chain), 3);
        // Fully drained: page returned, nothing owned.
        assert_eq!(layer.usage(), (0, 0));
        assert_eq!(vm.space().phys().in_use(), 0);
    }

    #[test]
    fn blocks_are_disjoint_and_page_aligned_strides() {
        let (vm, layer) = setup(256, true, 64);
        let mut chain = layer.alloc_chain(&vm, 16).unwrap();
        let mut addrs = Vec::new();
        while let Some(b) = chain.pop() {
            addrs.push(b as usize);
        }
        addrs.sort_unstable();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= 256, "blocks overlap");
        }
        for &a in &addrs {
            assert_eq!(a % 256, 0, "block misaligned");
        }
        // Hand them back one chain at a time.
        let mut back = Chain::new();
        for a in addrs {
            // SAFETY: these are the blocks we just took.
            unsafe { back.push(a as *mut u8) };
        }
        // SAFETY: as above.
        unsafe { layer.free_chain(&vm, back) };
        assert_eq!(layer.usage(), (0, 0));
    }

    #[test]
    fn radix_prefers_fullest_page() {
        let (vm, layer) = setup(1024, true, 64);
        // Two pages of 4 blocks each.
        let mut c1 = layer.alloc_chain(&vm, 4).unwrap();
        let c2 = layer.alloc_chain(&vm, 4).unwrap();
        assert_eq!(layer.usage().0, 2);
        // Free 1 block of page 1 and all 4 of page 2: page 2 drains and is
        // released, page 1 has one free block.
        let one = {
            let mut c = Chain::new();
            // SAFETY: block from c1.
            unsafe { c.push(c1.pop().unwrap()) };
            c
        };
        // SAFETY: blocks from this layer.
        unsafe {
            layer.free_chain(&vm, one);
            layer.free_chain(&vm, c2);
        }
        assert_eq!(layer.usage(), (1, 1));
        // Next refill must come from the page with the fewest free blocks
        // (the 1-free page), not a fresh page.
        let c3 = layer.alloc_chain(&vm, 1).unwrap();
        assert_eq!(layer.usage(), (1, 0));
        assert_eq!(layer.stats().page_acquires.get(), 2); // no new page
                                                          // Cleanup.
        let mut rest = Chain::new();
        let mut c3 = c3;
        // SAFETY: blocks from this layer.
        unsafe {
            while let Some(b) = c1.pop() {
                rest.push(b);
            }
            while let Some(b) = c3.pop() {
                rest.push(b);
            }
            layer.free_chain(&vm, rest);
        }
        assert_eq!(layer.usage(), (0, 0));
    }

    #[test]
    fn partial_chain_under_memory_pressure() {
        // Pool: 1 header + 1 data page only.
        let (vm, layer) = setup(2048, true, 2);
        // A page holds 2 blocks; asking for 5 returns the 2 we can get.
        let chain = layer.alloc_chain(&vm, 5).unwrap();
        assert_eq!(chain.len(), 2);
        // And with nothing at all we get the error.
        let err = layer.alloc_chain(&vm, 1).unwrap_err();
        assert!(matches!(err, VmError::OutOfPhysical { .. }));
        // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, chain) };
        assert_eq!(vm.space().phys().in_use(), 0);
    }

    #[test]
    fn single_block_pages_release_on_every_free() {
        let (vm, layer) = setup(4096, true, 16);
        assert_eq!(layer.blocks_per_page(), 1);
        let chain = layer.alloc_chain(&vm, 2).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(layer.usage(), (2, 0));
        // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, chain) };
        assert_eq!(layer.usage(), (0, 0));
        assert_eq!(layer.stats().page_releases.get(), 2);
    }

    #[test]
    fn most_free_first_ablation_prefers_sparse_pages() {
        let (vm, layer) = setup(1024, false, 64);
        // Two pages: drain one fully, the other partially.
        let mut c1 = layer.alloc_chain(&vm, 4).unwrap();
        let c2 = layer.alloc_chain(&vm, 2).unwrap();
        // Free 1 block of page 1: counts are now {page1: 1, page2: 2}.
        let mut one = Chain::new();
        // SAFETY: block from c1.
        unsafe { one.push(c1.pop().unwrap()) };
        // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, one) };
        // The ablation policy takes from the page with MORE free blocks.
        let c3 = layer.alloc_chain(&vm, 1).unwrap();
        let mut counts = Vec::new();
        layer.for_each_page(|c, _| counts.push(c));
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 1]);
        // Cleanup.
        let mut rest = Chain::new();
        let mut c3 = c3;
        let mut c2 = c2;
        // SAFETY: blocks from this layer.
        unsafe {
            while let Some(b) = c1.pop() {
                rest.push(b);
            }
            while let Some(b) = c2.pop() {
                rest.push(b);
            }
            while let Some(b) = c3.pop() {
                rest.push(b);
            }
            layer.free_chain(&vm, rest);
        }
        assert_eq!(layer.usage(), (0, 0));
    }

    #[test]
    fn page_walker_counts_match() {
        let (vm, layer) = setup(256, true, 64);
        let chain = layer.alloc_chain(&vm, 5).unwrap();
        let mut seen = Vec::new();
        layer.for_each_page(|count, listed| {
            assert_eq!(count, listed);
            seen.push(count);
        });
        assert_eq!(seen, vec![11]); // 16 per page - 5 taken
                                    // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, chain) };
    }

    #[test]
    fn steady_state_alloc_free_takes_no_spinlock() {
        let (vm, layer) = setup(512, true, 64);
        // Warm a page with free blocks so the steady state never touches
        // the vmblk layer.
        let warm = layer.alloc_chain(&vm, 3).unwrap();
        let ((), events) = probe::record(|| {
            for _ in 0..8 {
                let c = layer.alloc_chain(&vm, 1).unwrap();
                assert_eq!(c.len(), 1);
                // SAFETY: block from this layer.
                unsafe { layer.free_chain(&vm, c) };
            }
        });
        assert!(
            !events.iter().any(|e| matches!(
                e,
                ProbeEvent::LockAcquire { .. } | ProbeEvent::LockRelease { .. }
            )),
            "steady-state page refill/free must not take a spinlock: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ProbeEvent::LineRmw { .. })),
            "tagged-CAS traffic should be visible to the probe"
        );
        assert_eq!(layer.stats().cas_retries.get(), 0, "no contention here");
        // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, warm) };
        assert_eq!(layer.usage(), (0, 0));
    }

    #[test]
    fn hardened_carve_is_shuffled_encoded_and_poisoned() {
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(64),
        ));
        let base = space.base_addr();
        let key = LinkKey::hardened(0xc0de_5eed, base, base + (1 << 20));
        let vm = VmblkLayer::new(space, true);
        let layer =
            PageLayer::new_hardened(3, 256, true, Faults::none(), key, Some(0x5eed_f00d), true);
        // One whole page: 16 blocks, all through encoded afree links.
        let mut chain = layer.alloc_chain(&vm, 16).unwrap();
        assert_eq!(chain.len(), 16);
        let mut order = Vec::new();
        while let Some(b) = chain.pop() {
            // Carve-time poison: word 1 and the body still carry the
            // pattern (only word 0 was used for links).
            // SAFETY: `b` is a free block of the page just carved.
            assert!(unsafe { block::verify_free_poison(b, 256) }.is_ok());
            order.push(b as usize);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let reversed: Vec<usize> = sorted.iter().rev().copied().collect();
        assert_ne!(order, sorted, "carve order must not be ascending");
        assert_ne!(order, reversed, "carve order must not be descending");
        // Hand everything back; the page drains and is released.
        let mut back = Chain::new_keyed(key);
        for a in order {
            // SAFETY: these are the blocks we just took.
            unsafe { back.push(a as *mut u8) };
        }
        // SAFETY: as above.
        unsafe { layer.free_chain(&vm, back) };
        assert_eq!(layer.usage(), (0, 0));
        assert_eq!(vm.space().phys().in_use(), 0);
    }

    #[test]
    fn page_get_fault_covers_entry_and_acquire_paths() {
        let faults = Faults::with_plan();
        let plan = Arc::clone(faults.plan().unwrap());
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(64),
        ));
        let vm = VmblkLayer::new(space, true);
        let layer = PageLayer::new_with_faults(3, 512, true, faults);

        // Entry (common-path) consult fires first; then a pass at the
        // entry lets the miss reach acquire_page, whose consult fires.
        plan.set(
            faults::PAGE_GET,
            FailPolicy::Script(vec![true, false, true]),
        );
        assert!(layer.alloc_chain(&vm, 1).is_err()); // entry fire
        assert!(layer.alloc_chain(&vm, 1).is_err()); // acquire fire
        let st = plan
            .site_stats()
            .into_iter()
            .find(|s| s.site == faults::PAGE_GET)
            .unwrap();
        assert_eq!((st.hits, st.fired), (3, 2));
        // Script exhausted: the layer recovers fully.
        let chain = layer.alloc_chain(&vm, 2).unwrap();
        assert_eq!(chain.len(), 2);
        // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, chain) };
        assert_eq!(layer.usage(), (0, 0));
        assert_eq!(vm.space().phys().in_use(), 0);
    }

    #[test]
    fn deferred_coalesce_recovers_on_flush() {
        let faults = Faults::with_plan();
        let plan = Arc::clone(faults.plan().unwrap());
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(64),
        ));
        let vm = VmblkLayer::new(space, true);
        let layer = PageLayer::new_with_faults(3, 512, true, faults);

        let chain = layer.alloc_chain(&vm, 8).unwrap();
        assert_eq!(chain.len(), 8);
        // The free that fills the page consults page.coalesce and defers:
        // the full page stays listed instead of returning to the vmblk.
        plan.set(faults::PAGE_COALESCE, FailPolicy::Script(vec![true]));
        // SAFETY: blocks from this layer.
        unsafe { layer.free_chain(&vm, chain) };
        assert_eq!(layer.usage(), (1, 8), "coalesce deferred by the fault");
        assert_eq!(layer.stats().page_releases.get(), 0);
        let st = plan
            .site_stats()
            .into_iter()
            .find(|s| s.site == faults::PAGE_COALESCE)
            .unwrap();
        assert_eq!(st.fired, 1);
        // The recovery pass settles the parked page (script exhausted).
        layer.flush_full_pages(&vm);
        assert_eq!(layer.usage(), (0, 0));
        assert_eq!(layer.stats().page_releases.get(), 1);
        assert_eq!(vm.space().phys().in_use(), 0);
    }
}
