//! Raw free-block primitives.
//!
//! Free blocks carry their freelist linkage *inside themselves*, exactly as
//! in the kernel: the first word of a free block is the pointer to the next
//! free block. This module is the single home of the raw reads and writes
//! of that word, plus the debug-build poisoning that catches use-after-free
//! and double-free in tests.
//!
//! # Safety
//!
//! Every function here requires that `block` points to the start of a block
//! that (a) lies inside the arena's reservation, (b) is at least 16 bytes,
//! and (c) is *free* — i.e. owned by an allocator layer, not by a caller.
//! These are exactly the conditions under which the kernel scribbles
//! freelist links into memory.

/// Minimum block size: one link word plus a poison word, with room spare.
pub const MIN_BLOCK: usize = 16;

/// Debug-build poison value written into the second word of freed blocks.
const POISON: usize = 0xdead_4b4d_454d_beef_u64 as usize;

/// Reads the next-free-block link from a free block.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions, and its
/// link word must have been written by [`write_next`].
#[inline]
pub unsafe fn read_next(block: *mut u8) -> *mut u8 {
    // SAFETY: per the function contract, `block` is a live free block with
    // a valid link word at offset 0.
    unsafe { (block as *mut *mut u8).read() }
}

/// Writes the next-free-block link into a free block.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn write_next(block: *mut u8, next: *mut u8) {
    // SAFETY: per the function contract, offset 0 of `block` is writable
    // and owned by the allocator.
    unsafe { (block as *mut *mut u8).write(next) };
}

/// Atomically reads the next-free-block link from a free block.
///
/// The lock-free global stack threads its stack links through the first
/// word of chain-head blocks. A popping CPU reads that word *before* its
/// tag CAS confirms ownership, so a racing thread may read the word of a
/// block that was just popped by someone else (and is even being handed
/// to a user). The read therefore must be atomic: the value may be
/// stale garbage, but the access itself is a plain relaxed load that
/// cannot fault (the arena reservation is type-stable), and the stale
/// value is discarded when the generation-tag CAS fails.
///
/// # Safety
///
/// `block` must point into the arena reservation and be at least
/// [`MIN_BLOCK`] bytes; unlike [`read_next`], the caller need *not* own
/// it — a stale read returns garbage rather than UB-free data, and the
/// caller must validate ownership (tag CAS) before trusting the value.
#[inline]
pub unsafe fn read_next_atomic(block: *mut u8) -> *mut u8 {
    use core::sync::atomic::{AtomicUsize, Ordering};
    // SAFETY: per the function contract, the first word of `block` is
    // mapped, aligned memory inside the reservation.
    unsafe { (*(block as *const AtomicUsize)).load(Ordering::Acquire) as *mut u8 }
}

/// Atomically writes the next-free-block link into a free block the
/// caller owns.
///
/// Counterpart of [`read_next_atomic`]: any block that is (or recently
/// was) the head of the lock-free global stack may still be speculatively
/// loaded by CPUs spinning in a pop, so its link word is only ever
/// written atomically while that window is open.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn write_next_atomic(block: *mut u8, next: *mut u8) {
    use core::sync::atomic::{AtomicUsize, Ordering};
    // SAFETY: per the function contract, offset 0 of `block` is writable
    // and owned by the caller.
    unsafe { (*(block as *const AtomicUsize)).store(next as usize, Ordering::Release) };
}

/// Stashes a pointer in the *second* word of a free block (the word the
/// poison normally occupies).
///
/// The lock-free global stack keeps whole chains intact on the stack:
/// the head block's first word becomes the stack link, so the displaced
/// intra-chain link moves into the head's second word, and the chain's
/// tail pointer into the second block's second word. [`take_stash`]
/// reverses the theft and restores the poison.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions, and the
/// caller must restore the word via [`take_stash`] before the block can
/// reach [`check_and_clear_poison_on_alloc`].
#[inline]
pub unsafe fn write_stash(block: *mut u8, val: *mut u8) {
    // SAFETY: blocks are at least [`MIN_BLOCK`] bytes, so the second
    // word is in bounds and allocator-owned.
    unsafe { (block as *mut usize).add(1).write(val as usize) };
}

/// Reads back a pointer stashed by [`write_stash`] and re-poisons the
/// word (debug builds), so the free-poison invariant holds again by the
/// time the block leaves the global stack.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions and carry
/// a value written by [`write_stash`].
#[inline]
pub unsafe fn take_stash(block: *mut u8) -> *mut u8 {
    // SAFETY: as in `write_stash`.
    let word = unsafe { (block as *mut usize).add(1) };
    // SAFETY: as in `write_stash`.
    let val = unsafe { word.read() } as *mut u8;
    if cfg!(debug_assertions) {
        // SAFETY: as in `write_stash`.
        unsafe { word.write(POISON) };
    }
    val
}

/// Marks `block` as freed (debug builds only).
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn poison(block: *mut u8) {
    if cfg!(debug_assertions) {
        // SAFETY: blocks are at least [`MIN_BLOCK`] bytes, so the second
        // word is in bounds and allocator-owned.
        unsafe { (block as *mut usize).add(1).write(POISON) };
    }
}

/// Panics (debug builds only) if `block` does not carry the free poison —
/// catching frees of never-allocated pointers — and clears it so a
/// *second* free of the same block is caught as a double free.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn check_and_clear_poison_on_alloc(block: *mut u8) {
    if cfg!(debug_assertions) {
        // SAFETY: as in `poison`.
        let word = unsafe { (block as *mut usize).add(1) };
        // SAFETY: as in `poison`.
        debug_assert_eq!(
            unsafe { word.read() },
            POISON,
            "allocating a block whose free poison was overwritten \
             (use-after-free?) at {block:p}"
        );
        // SAFETY: as in `poison`.
        unsafe { word.write(0) };
    }
}

/// Panics (debug builds only) if `block` still carries the free poison,
/// i.e. if it is being freed twice without an intervening allocation.
///
/// # Safety
///
/// `block` must point to a block-sized region owned by the caller.
#[inline]
pub unsafe fn check_not_double_free(block: *mut u8) {
    if cfg!(debug_assertions) {
        // SAFETY: as in `poison`.
        let val = unsafe { (block as *const usize).add(1).read() };
        debug_assert_ne!(val, POISON, "double free of block at {block:p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Box<[u8; 32]> {
        Box::new([0u8; 32])
    }

    #[test]
    fn link_round_trip() {
        let mut a = block();
        let mut b = block();
        let pa = a.as_mut_ptr();
        let pb = b.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned, writable bytes.
        unsafe { write_next(pa, pb) };
        // SAFETY: link was just written.
        assert_eq!(unsafe { read_next(pa) }, pb);
    }

    #[test]
    fn poison_cycle() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe {
            check_not_double_free(pa);
            poison(pa);
            check_and_clear_poison_on_alloc(pa);
            check_not_double_free(pa);
        }
    }

    #[test]
    fn stash_round_trip_restores_poison() {
        let mut a = block();
        let mut b = block();
        let pa = a.as_mut_ptr();
        let pb = b.as_mut_ptr();
        // SAFETY: both point to 32 owned, writable bytes.
        unsafe {
            poison(pa);
            write_stash(pa, pb);
            assert_eq!(take_stash(pa), pb);
            // Poison is back: the alloc-time check passes.
            check_and_clear_poison_on_alloc(pa);
        }
    }

    #[test]
    fn atomic_link_round_trip() {
        let mut a = block();
        let mut b = block();
        let pa = a.as_mut_ptr();
        let pb = b.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned, writable bytes.
        unsafe { write_next_atomic(pa, pb) };
        // SAFETY: link was just written; mixed atomic/plain access to the
        // same word is fine from a single thread.
        assert_eq!(unsafe { read_next_atomic(pa) }, pb);
        assert_eq!(unsafe { read_next(pa) }, pb);
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_is_caught() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe {
            poison(pa);
            check_not_double_free(pa);
        }
    }

    #[test]
    #[should_panic(expected = "use-after-free")]
    #[cfg(debug_assertions)]
    fn foreign_free_is_caught() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe { check_and_clear_poison_on_alloc(pa) };
    }
}
