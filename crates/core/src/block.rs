//! Raw free-block primitives.
//!
//! Free blocks carry their freelist linkage *inside themselves*, exactly as
//! in the kernel: the first word of a free block is the pointer to the next
//! free block. This module is the single home of the raw reads and writes
//! of that word, plus the debug-build poisoning that catches use-after-free
//! and double-free in tests.
//!
//! # Safety
//!
//! Every function here requires that `block` points to the start of a block
//! that (a) lies inside the arena's reservation, (b) is at least 16 bytes,
//! and (c) is *free* — i.e. owned by an allocator layer, not by a caller.
//! These are exactly the conditions under which the kernel scribbles
//! freelist links into memory.

/// Minimum block size: one link word plus a poison word, with room spare.
pub const MIN_BLOCK: usize = 16;

/// Debug-build poison value written into the second word of freed blocks.
const POISON: usize = 0xdead_4b4d_454d_beef_u64 as usize;

/// Reads the next-free-block link from a free block.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions, and its
/// link word must have been written by [`write_next`].
#[inline]
pub unsafe fn read_next(block: *mut u8) -> *mut u8 {
    // SAFETY: per the function contract, `block` is a live free block with
    // a valid link word at offset 0.
    unsafe { (block as *mut *mut u8).read() }
}

/// Writes the next-free-block link into a free block.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn write_next(block: *mut u8, next: *mut u8) {
    // SAFETY: per the function contract, offset 0 of `block` is writable
    // and owned by the allocator.
    unsafe { (block as *mut *mut u8).write(next) };
}

/// Marks `block` as freed (debug builds only).
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn poison(block: *mut u8) {
    if cfg!(debug_assertions) {
        // SAFETY: blocks are at least [`MIN_BLOCK`] bytes, so the second
        // word is in bounds and allocator-owned.
        unsafe { (block as *mut usize).add(1).write(POISON) };
    }
}

/// Panics (debug builds only) if `block` does not carry the free poison —
/// catching frees of never-allocated pointers — and clears it so a
/// *second* free of the same block is caught as a double free.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn check_and_clear_poison_on_alloc(block: *mut u8) {
    if cfg!(debug_assertions) {
        // SAFETY: as in `poison`.
        let word = unsafe { (block as *mut usize).add(1) };
        // SAFETY: as in `poison`.
        debug_assert_eq!(
            unsafe { word.read() },
            POISON,
            "allocating a block whose free poison was overwritten \
             (use-after-free?) at {block:p}"
        );
        // SAFETY: as in `poison`.
        unsafe { word.write(0) };
    }
}

/// Panics (debug builds only) if `block` still carries the free poison,
/// i.e. if it is being freed twice without an intervening allocation.
///
/// # Safety
///
/// `block` must point to a block-sized region owned by the caller.
#[inline]
pub unsafe fn check_not_double_free(block: *mut u8) {
    if cfg!(debug_assertions) {
        // SAFETY: as in `poison`.
        let val = unsafe { (block as *const usize).add(1).read() };
        debug_assert_ne!(val, POISON, "double free of block at {block:p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Box<[u8; 32]> {
        Box::new([0u8; 32])
    }

    #[test]
    fn link_round_trip() {
        let mut a = block();
        let mut b = block();
        let pa = a.as_mut_ptr();
        let pb = b.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned, writable bytes.
        unsafe { write_next(pa, pb) };
        // SAFETY: link was just written.
        assert_eq!(unsafe { read_next(pa) }, pb);
    }

    #[test]
    fn poison_cycle() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe {
            check_not_double_free(pa);
            poison(pa);
            check_and_clear_poison_on_alloc(pa);
            check_not_double_free(pa);
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_is_caught() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe {
            poison(pa);
            check_not_double_free(pa);
        }
    }

    #[test]
    #[should_panic(expected = "use-after-free")]
    #[cfg(debug_assertions)]
    fn foreign_free_is_caught() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe { check_and_clear_poison_on_alloc(pa) };
    }
}
