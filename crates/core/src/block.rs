//! Raw free-block primitives.
//!
//! Free blocks carry their freelist linkage *inside themselves*, exactly as
//! in the kernel: the first word of a free block is the pointer to the next
//! free block. This module is the single home of the raw reads and writes
//! of that word, plus the poisoning that catches use-after-free and
//! double-free.
//!
//! # Hardened link encoding
//!
//! Intrusive links are the classic kernel-heap corruption target: a
//! use-after-free write lands directly on a pointer the allocator will
//! dereference. Under the hardened profile every link word is stored
//! XOR-encoded with a [`LinkKey`] — `stored = ptr ⊕ secret ⊕ word_addr`,
//! the SLUB `freelist_ptr` scheme — so an attacker without the per-arena
//! secret cannot aim a forged pointer, and an honest scribble decodes to
//! an implausible value that [`LinkKey::plausible`] rejects instead of the
//! allocator walking into it. Mixing the *word's own address* into the
//! mask means equal pointers encode differently at every slot, and the
//! first and second words of one block use different masks. A `secret` of
//! zero is the identity encoding (the default profile): the mask is zero
//! and every function below degenerates to the plain load/store it was
//! before hardening existed.
//!
//! # Safety
//!
//! Every function here requires that `block` points to the start of a block
//! that (a) lies inside the arena's reservation, (b) is at least 16 bytes,
//! and (c) is *free* — i.e. owned by an allocator layer, not by a caller.
//! These are exactly the conditions under which the kernel scribbles
//! freelist links into memory.

/// Minimum block size: one link word plus a poison word, with room spare.
pub const MIN_BLOCK: usize = 16;

/// Poison value written into the second word of freed blocks (all builds
/// under the hardened profile; debug builds otherwise).
const POISON: usize = 0xdead_4b4d_454d_beef_u64 as usize;

/// Byte pattern written over the non-pointer body words of freed blocks
/// under hardened poisoning (SLUB's `POISON_FREE` 0x6b, word-replicated).
const BODY_POISON: usize = 0x6b6b_6b6b_6b6b_6b6b_u64 as usize;

/// Per-arena key for encoding intrusive link words.
///
/// Carries the arena's secret plus the bounds of its reservation, so a
/// decoded link can be judged *plausible* (null, or in-reservation and
/// [`MIN_BLOCK`]-aligned) before anything dereferences it. The constant
/// [`LinkKey::PLAIN`] is the identity encoding used by the default
/// profile and by unit tests that build chains from host-heap fakes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkKey {
    secret: usize,
    base: usize,
    limit: usize,
}

impl LinkKey {
    /// Identity encoding: links are stored as bare pointers and never
    /// validated. The default (non-hardened) profile.
    pub const PLAIN: LinkKey = LinkKey {
        secret: 0,
        base: 0,
        limit: 0,
    };

    /// An encoding key with the given secret, validating decoded links
    /// against the reservation `[base, limit)`. The secret is forced odd
    /// so it can never collide with the plain encoding.
    pub fn hardened(secret: usize, base: usize, limit: usize) -> LinkKey {
        LinkKey {
            secret: secret | 1,
            base,
            limit,
        }
    }

    /// Whether this key is the identity encoding.
    #[inline]
    pub fn is_plain(self) -> bool {
        self.secret == 0
    }

    /// The XOR mask for the link word at `word_addr`. Zero for the plain
    /// key, so encode/decode are the identity.
    #[inline]
    fn mask(self, word_addr: usize) -> usize {
        if self.secret == 0 {
            0
        } else {
            self.secret ^ word_addr
        }
    }

    /// Whether a decoded link could be a real free-block pointer: null,
    /// or inside the reservation and [`MIN_BLOCK`]-aligned. A clobbered
    /// encoded word decodes to an effectively random value, which this
    /// rejects with probability `1 - reservation_size / 2^64`.
    #[inline]
    pub fn plausible(self, ptr: *mut u8) -> bool {
        let addr = ptr as usize;
        ptr.is_null() || (addr >= self.base && addr < self.limit && addr.is_multiple_of(MIN_BLOCK))
    }
}

/// Reads the next-free-block link from a free block.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions, and its
/// link word must have been written by [`write_next`] under the same key.
#[inline]
pub unsafe fn read_next(block: *mut u8, key: LinkKey) -> *mut u8 {
    // SAFETY: per the function contract, `block` is a live free block with
    // a valid link word at offset 0.
    let raw = unsafe { (block as *mut usize).read() };
    (raw ^ key.mask(block as usize)) as *mut u8
}

/// Writes the next-free-block link into a free block.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn write_next(block: *mut u8, next: *mut u8, key: LinkKey) {
    // SAFETY: per the function contract, offset 0 of `block` is writable
    // and owned by the allocator.
    unsafe { (block as *mut usize).write(next as usize ^ key.mask(block as usize)) };
}

/// Atomically reads the next-free-block link from a free block.
///
/// The lock-free global stack threads its stack links through the first
/// word of chain-head blocks. A popping CPU reads that word *before* its
/// tag CAS confirms ownership, so a racing thread may read the word of a
/// block that was just popped by someone else (and is even being handed
/// to a user). The read therefore must be atomic: the value may be
/// stale garbage, but the access itself is a relaxed-class load that
/// cannot fault (the arena reservation is type-stable), and the stale
/// value is discarded when the generation-tag CAS fails.
///
/// # Safety
///
/// `block` must point into the arena reservation and be at least
/// [`MIN_BLOCK`] bytes; unlike [`read_next`], the caller need *not* own
/// it — a stale read returns garbage rather than UB-free data, and the
/// caller must validate ownership (tag CAS) before trusting the value.
#[inline]
pub unsafe fn read_next_atomic(block: *mut u8, key: LinkKey) -> *mut u8 {
    use core::sync::atomic::{AtomicUsize, Ordering};
    // SAFETY: per the function contract, the first word of `block` is
    // mapped, aligned memory inside the reservation.
    let raw = unsafe { (*(block as *const AtomicUsize)).load(Ordering::Acquire) };
    (raw ^ key.mask(block as usize)) as *mut u8
}

/// Atomically writes the next-free-block link into a free block the
/// caller owns.
///
/// Counterpart of [`read_next_atomic`]: any block that is (or recently
/// was) the head of the lock-free global stack may still be speculatively
/// loaded by CPUs spinning in a pop, so its link word is only ever
/// written atomically while that window is open.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn write_next_atomic(block: *mut u8, next: *mut u8, key: LinkKey) {
    use core::sync::atomic::{AtomicUsize, Ordering};
    let encoded = next as usize ^ key.mask(block as usize);
    // SAFETY: per the function contract, offset 0 of `block` is writable
    // and owned by the caller.
    unsafe { (*(block as *const AtomicUsize)).store(encoded, Ordering::Release) };
}

/// Stashes a pointer in the *second* word of a free block (the word the
/// poison normally occupies), encoded under the second word's own mask.
///
/// The lock-free global stack keeps whole chains intact on the stack:
/// the head block's first word becomes the stack link, so the displaced
/// intra-chain link moves into the head's second word, and the chain's
/// tail pointer into the second block's second word. [`take_stash`]
/// reverses the theft and restores the poison.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions, and the
/// caller must restore the word via [`take_stash`] before the block can
/// reach an alloc-time poison check.
#[inline]
pub unsafe fn write_stash(block: *mut u8, val: *mut u8, key: LinkKey) {
    // SAFETY: blocks are at least [`MIN_BLOCK`] bytes, so the second
    // word is in bounds and allocator-owned.
    let word = unsafe { (block as *mut usize).add(1) };
    // SAFETY: as above.
    unsafe { word.write(val as usize ^ key.mask(word as usize)) };
}

/// Reads back a pointer stashed by [`write_stash`] and re-poisons the
/// word, so the free-poison invariant holds again by the time the block
/// leaves the global stack. (The restore is unconditional: it is off the
/// per-op fast path — two stores per chain refill — and keeping it
/// profile-independent means the hardened verify-on-alloc never has to
/// special-case stack-traversed blocks.)
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions and carry
/// a value written by [`write_stash`] under the same key.
#[inline]
pub unsafe fn take_stash(block: *mut u8, key: LinkKey) -> *mut u8 {
    // SAFETY: as in `write_stash`.
    let word = unsafe { (block as *mut usize).add(1) };
    // SAFETY: as in `write_stash`.
    let val = unsafe { word.read() } ^ key.mask(word as usize);
    // SAFETY: as in `write_stash`.
    unsafe { word.write(POISON) };
    val as *mut u8
}

/// Marks `block` as freed (debug builds only — the default profile's
/// zero-release-cost poison). The hardened profile uses
/// [`poison_free`] instead, which also patterns the body and runs in
/// every build.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn poison(block: *mut u8) {
    if cfg!(debug_assertions) {
        // SAFETY: blocks are at least [`MIN_BLOCK`] bytes, so the second
        // word is in bounds and allocator-owned.
        unsafe { (block as *mut usize).add(1).write(POISON) };
    }
}

/// Hardened poison-on-free: writes the free poison into the second word
/// and the body pattern into every remaining word of the block, in every
/// build profile. The first word is left alone — it is (or will become)
/// the encoded freelist link.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions and be at
/// least `block_size` bytes.
#[inline]
pub unsafe fn poison_free(block: *mut u8, block_size: usize) {
    let words = block as *mut usize;
    // SAFETY: per the contract, words 1..block_size/8 are in bounds and
    // allocator-owned.
    unsafe {
        words.add(1).write(POISON);
        for i in 2..block_size / core::mem::size_of::<usize>() {
            words.add(i).write(BODY_POISON);
        }
    }
}

/// Hardened verify-on-alloc: checks that the free poison written by
/// [`poison_free`] is intact, returning the address of the first
/// overwritten word if not. Does *not* clear the poison — call
/// [`clear_poison_word`] once the block is accepted.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions and be at
/// least `block_size` bytes.
#[inline]
pub unsafe fn verify_free_poison(block: *mut u8, block_size: usize) -> Result<(), usize> {
    let words = block as *const usize;
    // SAFETY: per the contract, words 1..block_size/8 are in bounds.
    unsafe {
        if words.add(1).read() != POISON {
            return Err(words.add(1) as usize);
        }
        for i in 2..block_size / core::mem::size_of::<usize>() {
            if words.add(i).read() != BODY_POISON {
                return Err(words.add(i) as usize);
            }
        }
    }
    Ok(())
}

/// Whether `block` currently carries the free-poison word — the hardened
/// double-free heuristic (exact for blocks parked on freelists; a live
/// block whose owner stored exactly the poison value is a false positive
/// the quarantine does not share).
///
/// # Safety
///
/// `block` must point to a readable block-sized region.
#[inline]
pub unsafe fn is_free_poisoned(block: *mut u8) -> bool {
    // SAFETY: per the contract, the second word is in bounds.
    unsafe { (block as *const usize).add(1).read() == POISON }
}

/// Clears the free-poison word after a hardened verify accepted the
/// block, so the next free of it is not mistaken for a double free.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn clear_poison_word(block: *mut u8) {
    // SAFETY: per the contract, the second word is in bounds.
    unsafe { (block as *mut usize).add(1).write(0) };
}

/// Panics (debug builds only) if `block` does not carry the free poison —
/// catching frees of never-allocated pointers — and clears it so a
/// *second* free of the same block is caught as a double free.
///
/// # Safety
///
/// `block` must satisfy the module-level free-block conditions.
#[inline]
pub unsafe fn check_and_clear_poison_on_alloc(block: *mut u8) {
    if cfg!(debug_assertions) {
        // SAFETY: as in `poison`.
        let word = unsafe { (block as *mut usize).add(1) };
        // SAFETY: as in `poison`.
        debug_assert_eq!(
            unsafe { word.read() },
            POISON,
            "allocating a block whose free poison was overwritten \
             (use-after-free?) at {block:p}"
        );
        // SAFETY: as in `poison`.
        unsafe { word.write(0) };
    }
}

/// Panics (debug builds only) if `block` still carries the free poison,
/// i.e. if it is being freed twice without an intervening allocation.
///
/// # Safety
///
/// `block` must point to a block-sized region owned by the caller.
#[inline]
pub unsafe fn check_not_double_free(block: *mut u8) {
    if cfg!(debug_assertions) {
        // SAFETY: as in `poison`.
        let val = unsafe { (block as *const usize).add(1).read() };
        debug_assert_ne!(val, POISON, "double free of block at {block:p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Box<[u8; 32]> {
        Box::new([0u8; 32])
    }

    fn key_for(blocks: &[*mut u8]) -> LinkKey {
        let lo = blocks.iter().map(|&p| p as usize).min().unwrap();
        let hi = blocks.iter().map(|&p| p as usize).max().unwrap();
        LinkKey::hardened(0x5eed_cafe_f00d_1234, lo & !15, (hi & !15) + 32)
    }

    #[test]
    fn link_round_trip() {
        let mut a = block();
        let mut b = block();
        let pa = a.as_mut_ptr();
        let pb = b.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned, writable bytes.
        unsafe { write_next(pa, pb, LinkKey::PLAIN) };
        // SAFETY: link was just written.
        assert_eq!(unsafe { read_next(pa, LinkKey::PLAIN) }, pb);
        // The plain encoding stores the bare pointer.
        assert_eq!(unsafe { (pa as *const usize).read() }, pb as usize);
    }

    #[test]
    fn keyed_link_round_trips_and_scrambles() {
        let mut a = block();
        let mut b = block();
        let pa = a.as_mut_ptr();
        let pb = b.as_mut_ptr();
        let key = key_for(&[pa, pb]);
        // SAFETY: `pa` points to 32 owned, writable bytes.
        unsafe { write_next(pa, pb, key) };
        // SAFETY: link was just written under `key`.
        assert_eq!(unsafe { read_next(pa, key) }, pb);
        // The stored word is NOT the bare pointer (and not null for null).
        assert_ne!(unsafe { (pa as *const usize).read() }, pb as usize);
        // SAFETY: as above.
        unsafe { write_next(pa, core::ptr::null_mut(), key) };
        assert_ne!(unsafe { (pa as *const usize).read() }, 0);
        assert!(unsafe { read_next(pa, key) }.is_null());
        // A different slot encodes the same pointer differently.
        // SAFETY: `pb` points to 32 owned, writable bytes.
        unsafe { write_next(pb, pa, key) };
        // SAFETY: both words just written.
        let wa = unsafe { (pa as *const usize).read() };
        let wb = unsafe { (pb as *const usize).read() };
        assert_ne!(wa, wb);
    }

    #[test]
    fn plausibility_rejects_wild_decodes() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        let key = key_for(&[pa]);
        assert!(key.plausible(core::ptr::null_mut()));
        assert!(key.plausible((pa as usize & !15) as *mut u8));
        // Unaligned, below-base, and random addresses are rejected.
        assert!(!key.plausible((pa as usize & !15).wrapping_add(8) as *mut u8));
        assert!(!key.plausible(8 as *mut u8));
        assert!(!key.plausible(usize::MAX as *mut u8));
        // The plain key never validates (callers skip the check).
        assert!(LinkKey::PLAIN.is_plain());
        assert!(!key.is_plain());
    }

    #[test]
    fn poison_cycle() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe {
            check_not_double_free(pa);
            poison(pa);
            check_and_clear_poison_on_alloc(pa);
            check_not_double_free(pa);
        }
    }

    #[test]
    fn hardened_poison_covers_the_body() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe {
            poison_free(pa, 32);
            assert!(is_free_poisoned(pa));
            assert!(verify_free_poison(pa, 32).is_ok());
            // A body scribble (word 2) is pinpointed.
            (pa as *mut usize).add(2).write(0x41414141);
            let bad = verify_free_poison(pa, 32).unwrap_err();
            assert_eq!(bad, (pa as *const usize).add(2) as usize);
            // The poison word itself is covered too.
            (pa as *mut usize).add(2).write(BODY_POISON);
            (pa as *mut usize).add(1).write(0);
            assert!(verify_free_poison(pa, 32).is_err());
            assert!(!is_free_poisoned(pa));
            // Clearing after a successful verify resets the state.
            poison_free(pa, 32);
            clear_poison_word(pa);
            assert!(!is_free_poisoned(pa));
        }
    }

    #[test]
    fn stash_round_trip_restores_poison() {
        let mut a = block();
        let mut b = block();
        let pa = a.as_mut_ptr();
        let pb = b.as_mut_ptr();
        // SAFETY: both point to 32 owned, writable bytes.
        unsafe {
            poison(pa);
            write_stash(pa, pb, LinkKey::PLAIN);
            assert_eq!(take_stash(pa, LinkKey::PLAIN), pb);
            // Poison is back: the alloc-time check passes.
            check_and_clear_poison_on_alloc(pa);
        }
    }

    #[test]
    fn keyed_stash_round_trip_restores_poison() {
        let mut a = block();
        let mut b = block();
        let pa = a.as_mut_ptr();
        let pb = b.as_mut_ptr();
        let key = key_for(&[pa, pb]);
        // SAFETY: both point to 32 owned, writable bytes.
        unsafe {
            poison_free(pa, 32);
            write_stash(pa, pb, key);
            // The stashed word is encoded, not the bare pointer.
            assert_ne!((pa as *const usize).add(1).read(), pb as usize);
            assert_eq!(take_stash(pa, key), pb);
            // The unconditional restore re-arms the poison in all builds.
            assert!(is_free_poisoned(pa));
        }
    }

    #[test]
    fn atomic_link_round_trip() {
        let mut a = block();
        let mut b = block();
        let pa = a.as_mut_ptr();
        let pb = b.as_mut_ptr();
        let key = key_for(&[pa, pb]);
        for k in [LinkKey::PLAIN, key] {
            // SAFETY: `pa` points to 32 owned, writable bytes.
            unsafe { write_next_atomic(pa, pb, k) };
            // SAFETY: link was just written; mixed atomic/plain access to
            // the same word is fine from a single thread.
            assert_eq!(unsafe { read_next_atomic(pa, k) }, pb);
            assert_eq!(unsafe { read_next(pa, k) }, pb);
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_is_caught() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe {
            poison(pa);
            check_not_double_free(pa);
        }
    }

    #[test]
    #[should_panic(expected = "use-after-free")]
    #[cfg(debug_assertions)]
    fn foreign_free_is_caught() {
        let mut a = block();
        let pa = a.as_mut_ptr();
        // SAFETY: `pa` points to 32 owned bytes.
        unsafe { check_and_clear_poison_on_alloc(pa) };
    }
}
