//! Maintenance-core work descriptors and their mailbox key layout.
//!
//! When the maintenance core is enabled ([`crate::config::MaintConfig`]),
//! slow-path chores are described by a [`MaintWork`] item and posted to a
//! [`kmem_smp::Mailbox`] instead of running inline. The mailbox
//! deduplicates per key, so the key layout *is* the dedup policy: one key
//! per (site, shard) means a storm of identical threshold crossings — a
//! hundred CPUs all noticing the same shard is over its bound — collapses
//! to one unit of work.
//!
//! [`MaintKeys`] owns the dense key layout for one arena topology:
//!
//! ```text
//! [0,            nshards)                    Regroup  per (class, node)
//! [nshards,      2*nshards)                  Trim     per (class, node)
//! [2*nshards,    3*nshards)                  Spill    per (class, node)
//! [3*nshards,    3*nshards + ncpus)          DrainCpu per cpu
//! [3*nshards+ncpus, .. + nclasses)           Coalesce per class
//! ```
//!
//! where `nshards = nclasses * nnodes` and shards are node-minor
//! (`class * nnodes + node`), matching the arena's global-pool layout.

use kmem_smp::Mailbox;

/// One unit of deferred slow-path work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintWork {
    /// Regroup the bucket list of shard `(class, node)` into
    /// `target`-sized stack chains and trim to the standard bound — the
    /// deferred half of an odd put.
    Regroup { class: usize, node: usize },
    /// Trim shard `(class, node)` back to its `2 * gbltarget` bound via
    /// the epoch-batched detach — the deferred half of a bound-exceeding
    /// exact put.
    Trim { class: usize, node: usize },
    /// Pressure-ladder spill of shard `(class, node)` down to
    /// `gbltarget` blocks.
    Spill { class: usize, node: usize },
    /// Request a cache drain from `cpu` (sets its drain flag; the CPU
    /// flushes at its next poll, as with the inline request).
    DrainCpu { cpu: usize },
    /// Push `class`'s fully free pages back to the vmblk layer.
    Coalesce { class: usize },
}

/// Dense key layout for one arena topology (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct MaintKeys {
    nclasses: usize,
    nnodes: usize,
    ncpus: usize,
}

impl MaintKeys {
    /// Builds the layout for `nclasses` size classes over `nnodes` NUMA
    /// nodes and `ncpus` CPUs.
    pub fn new(nclasses: usize, nnodes: usize, ncpus: usize) -> Self {
        assert!(nclasses >= 1 && nnodes >= 1 && ncpus >= 1);
        MaintKeys {
            nclasses,
            nnodes,
            ncpus,
        }
    }

    fn nshards(&self) -> usize {
        self.nclasses * self.nnodes
    }

    /// Total number of dedup keys (the mailbox size).
    pub fn count(&self) -> usize {
        3 * self.nshards() + self.ncpus + self.nclasses
    }

    /// The dedup key for `work`.
    pub fn key(&self, work: MaintWork) -> usize {
        let shard = |class: usize, node: usize| {
            debug_assert!(class < self.nclasses && node < self.nnodes);
            class * self.nnodes + node
        };
        match work {
            MaintWork::Regroup { class, node } => shard(class, node),
            MaintWork::Trim { class, node } => self.nshards() + shard(class, node),
            MaintWork::Spill { class, node } => 2 * self.nshards() + shard(class, node),
            MaintWork::DrainCpu { cpu } => {
                debug_assert!(cpu < self.ncpus);
                3 * self.nshards() + cpu
            }
            MaintWork::Coalesce { class } => {
                debug_assert!(class < self.nclasses);
                3 * self.nshards() + self.ncpus + class
            }
        }
    }

    /// The work item a drained `key` describes (inverse of
    /// [`MaintKeys::key`]).
    ///
    /// # Panics
    ///
    /// Panics if `key >= self.count()` — a key can only come from this
    /// layout's own mailbox.
    pub fn work(&self, key: usize) -> MaintWork {
        let nshards = self.nshards();
        let unshard = |shard: usize| (shard / self.nnodes, shard % self.nnodes);
        if key < nshards {
            let (class, node) = unshard(key);
            MaintWork::Regroup { class, node }
        } else if key < 2 * nshards {
            let (class, node) = unshard(key - nshards);
            MaintWork::Trim { class, node }
        } else if key < 3 * nshards {
            let (class, node) = unshard(key - 2 * nshards);
            MaintWork::Spill { class, node }
        } else if key < 3 * nshards + self.ncpus {
            MaintWork::DrainCpu {
                cpu: key - 3 * nshards,
            }
        } else if key < self.count() {
            MaintWork::Coalesce {
                class: key - 3 * nshards - self.ncpus,
            }
        } else {
            panic!("maintenance key {key} out of range for {self:?}");
        }
    }
}

/// Per-arena maintenance state: the mailbox plus its key layout.
pub(crate) struct MaintState {
    pub(crate) mailbox: Mailbox,
    pub(crate) keys: MaintKeys,
}

impl MaintState {
    pub(crate) fn new(keys: MaintKeys) -> Self {
        MaintState {
            mailbox: Mailbox::new(keys.count()),
            keys,
        }
    }

    /// Wait-free post of a work item (deduplicated per key).
    pub(crate) fn post(&self, work: MaintWork) {
        self.mailbox.post(self.keys.key(work), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_dense_distinct_and_round_trip() {
        for (nclasses, nnodes, ncpus) in [(1, 1, 1), (9, 1, 4), (9, 4, 16), (3, 2, 5)] {
            let keys = MaintKeys::new(nclasses, nnodes, ncpus);
            let mut seen = vec![false; keys.count()];
            let mut all = Vec::new();
            for class in 0..nclasses {
                for node in 0..nnodes {
                    all.push(MaintWork::Regroup { class, node });
                    all.push(MaintWork::Trim { class, node });
                    all.push(MaintWork::Spill { class, node });
                }
                all.push(MaintWork::Coalesce { class });
            }
            for cpu in 0..ncpus {
                all.push(MaintWork::DrainCpu { cpu });
            }
            assert_eq!(all.len(), keys.count(), "layout is dense");
            for work in all {
                let k = keys.key(work);
                assert!(!seen[k], "key {k} assigned twice");
                seen[k] = true;
                assert_eq!(keys.work(k), work, "key round-trips");
            }
            assert!(seen.iter().all(|&s| s), "every key is reachable");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_is_rejected() {
        let keys = MaintKeys::new(2, 1, 1);
        let _ = keys.work(keys.count());
    }

    #[test]
    fn state_posts_dedupe_per_work_item() {
        let state = MaintState::new(MaintKeys::new(2, 1, 2));
        state.post(MaintWork::Trim { class: 0, node: 0 });
        state.post(MaintWork::Trim { class: 0, node: 0 });
        state.post(MaintWork::Trim { class: 1, node: 0 });
        assert_eq!(state.mailbox.posted(), 3);
        assert_eq!(state.mailbox.deduped(), 1);
        let mut drained = Vec::new();
        state
            .mailbox
            .try_drain(|key, _| drained.push(state.keys.work(key)));
        assert_eq!(
            drained,
            vec![
                MaintWork::Trim { class: 0, node: 0 },
                MaintWork::Trim { class: 1, node: 0 },
            ]
        );
    }
}
