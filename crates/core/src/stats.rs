//! Per-layer hit/miss statistics and the paper's miss rates.
//!
//! The distributed-lock-manager evaluation in the paper is expressed
//! entirely in **miss rates**: "We define the miss rate at a given layer as
//! the fraction of accesses to that layer that require the services of a
//! higher layer." This module aggregates the per-CPU cache counters and the
//! global-pool counters into exactly those rates, per class and per
//! operation direction, so the E6 experiment can print the same table.

use kmem_smp::counter::rate;

/// Raw access/miss counts for one layer and direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerCounts {
    /// Operations presented to the layer.
    pub accesses: u64,
    /// Operations that required the next layer up.
    pub misses: u64,
}

impl LayerCounts {
    /// `misses / accesses`, the paper's miss rate.
    pub fn miss_rate(&self) -> f64 {
        rate(self.misses, self.accesses)
    }
}

/// Statistics for one size class.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassStats {
    /// Block size of the class.
    pub size: usize,
    /// Per-CPU layer, allocation direction (summed over CPUs).
    pub cpu_alloc: LayerCounts,
    /// Per-CPU layer, free direction (summed over CPUs).
    pub cpu_free: LayerCounts,
    /// Global layer, allocation direction (chain gets).
    pub gbl_alloc: LayerCounts,
    /// Global layer, free direction (chain puts).
    pub gbl_free: LayerCounts,
}

impl ClassStats {
    /// Combined per-CPU + global miss rate for allocations: the fraction
    /// of `kmem_alloc` calls that reached the coalesce-to-page layer.
    pub fn combined_alloc_miss_rate(&self) -> f64 {
        rate(self.gbl_alloc.misses, self.cpu_alloc.accesses)
    }

    /// Combined per-CPU + global miss rate for frees.
    pub fn combined_free_miss_rate(&self) -> f64 {
        rate(self.gbl_free.misses, self.cpu_free.accesses)
    }
}

/// A snapshot of allocator statistics across all classes.
#[derive(Debug, Clone, Default)]
pub struct KmemStats {
    /// One entry per size class, ascending.
    pub classes: Vec<ClassStats>,
    /// Large (multi-page) allocations served by the vmblk layer.
    pub large_allocs: u64,
    /// Large frees.
    pub large_frees: u64,
    /// Single-page allocations served from the vmblk layer's lock-free
    /// page cache without taking the boundary-tag lock.
    pub vmblk_cache_hits: u64,
    /// Whole pages parked on the vmblk page cache.
    pub vmblk_cache_puts: u64,
    /// vmblks currently live.
    pub vmblks_live: usize,
    /// Physical frames currently claimed.
    pub phys_in_use: usize,
    /// Physical frame capacity.
    pub phys_capacity: usize,
}

impl KmemStats {
    /// Total allocations across classes (cache-layer accesses).
    pub fn total_allocs(&self) -> u64 {
        self.classes.iter().map(|c| c.cpu_alloc.accesses).sum()
    }

    /// Total frees across classes.
    pub fn total_frees(&self) -> u64 {
        self.classes.iter().map(|c| c.cpu_free.accesses).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_math() {
        let l = LayerCounts {
            accesses: 1000,
            misses: 78,
        };
        assert!((l.miss_rate() - 0.078).abs() < 1e-12);
        assert_eq!(LayerCounts::default().miss_rate(), 0.0);
    }

    #[test]
    fn combined_rate_uses_cache_accesses_as_denominator() {
        // 1000 allocs, 100 reached the global layer, 10 of those reached
        // the page layer: combined rate 1%.
        let c = ClassStats {
            size: 256,
            cpu_alloc: LayerCounts {
                accesses: 1000,
                misses: 100,
            },
            gbl_alloc: LayerCounts {
                accesses: 100,
                misses: 10,
            },
            ..Default::default()
        };
        assert!((c.combined_alloc_miss_rate() - 0.01).abs() < 1e-12);
        // The product of the layer rates bounds the combined rate when the
        // layers are independent: 0.1 * 0.1 = 0.01.
        let product = c.cpu_alloc.miss_rate() * c.gbl_alloc.miss_rate();
        assert!((product - 0.01).abs() < 1e-12);
    }

    #[test]
    fn totals_sum_over_classes() {
        let mut s = KmemStats::default();
        for n in [10u64, 20, 30] {
            s.classes.push(ClassStats {
                cpu_alloc: LayerCounts {
                    accesses: n,
                    misses: 0,
                },
                cpu_free: LayerCounts {
                    accesses: n * 2,
                    misses: 0,
                },
                ..Default::default()
            });
        }
        assert_eq!(s.total_allocs(), 60);
        assert_eq!(s.total_frees(), 120);
    }
}
