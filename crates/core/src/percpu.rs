//! The per-CPU caching layer (paper Figure 2).
//!
//! "The only purpose of the per-CPU caching layer is to support high-speed
//! allocation and deallocation in the common case." Each (CPU, size class)
//! pair owns one [`CpuCache`]: a *split freelist* made of `main` and `aux`,
//! each holding at most `target` blocks.
//!
//! * Allocation pops from `main`; if `main` is empty the contents of `aux`
//!   are moved over (one O(1) chain move); only if both are empty does the
//!   global layer get involved.
//! * Freeing pushes onto `main`; when `main` already holds `target` blocks,
//!   `aux` (if occupied) is returned to the global layer as a ready-made
//!   `target`-sized chain and `main` is demoted to `aux` — again O(1).
//!
//! The split gives hysteresis: after any interaction with the global layer,
//! at least `target` operations of the same kind must happen before the
//! global layer is touched again, so "the global layer will be accessed at
//! most one time per target-number of accesses".

use kmem_smp::{ExclusionFlag, LocalCounter};

use crate::block::LinkKey;
use crate::chain::{Chain, ChainFault};

/// Number of buckets in the cache-occupancy histogram: bucket `i` counts
/// samples where the cache held between `i/8` and `(i+1)/8` of its
/// `2 * target` capacity.
pub const OCC_BUCKETS: usize = 8;

/// Per-cache event counters, readable from other threads.
///
/// These live *outside* the cache's `UnsafeCell` (in the per-CPU slot) so
/// that a statistics snapshot taken by another thread never aliases the
/// owner's exclusive borrow of the cache itself. Every counter is a
/// single-writer [`LocalCounter`]: only the owning CPU writes it, on its
/// own cache-line-padded slot, so increments are plain load/store pairs —
/// the "zero hot-path cost" telemetry the snapshot layer is built on.
///
/// The owner always bumps the access counter *before* the corresponding
/// miss counter, and the miss counter before any refill/fail detail; the
/// release-store/acquire-load pairing in [`LocalCounter`] then lets a
/// concurrent snapshot that reads in the *reverse* order assert
/// `miss <= access` on live samples (see `crate::snapshot`).
#[derive(Default)]
pub struct CacheStats {
    /// Allocations served by this cache (including refills).
    pub alloc: LocalCounter,
    /// Allocations that needed a chain from the global layer.
    pub alloc_miss: LocalCounter,
    /// Allocation misses that found no memory anywhere (returned
    /// `OutOfMemory` to the caller). `alloc - alloc_fail` is the number of
    /// blocks actually handed out — the snapshot conservation checks rely
    /// on this.
    pub alloc_fail: LocalCounter,
    /// Failed attempts inside [`crate::KmemArena`]'s `alloc_sleep`
    /// retry loop. Each one is also counted in `alloc_fail` (the bump
    /// happens first), so live readers that load `sleep_retries` before
    /// `alloc_fail` can assert `sleep_retries <= alloc_fail`.
    pub sleep_retries: LocalCounter,
    /// Frees handled by this cache (including overflows).
    pub free: LocalCounter,
    /// Frees that pushed a chain back to the global layer.
    pub free_miss: LocalCounter,
    /// Replenishment chains installed from the layers below.
    pub refill: LocalCounter,
    /// Refill chains that arrived shorter than `target` — each one erodes
    /// the paper's "at most one global access per `target` operations"
    /// hysteresis, so the DLM experiment wants them visible.
    pub refill_short: LocalCounter,
    /// Total blocks received across all refills.
    pub refill_blocks: LocalCounter,
    /// Cache flushes requested through the public API (or CPU teardown).
    pub flush_explicit: LocalCounter,
    /// Cache flushes triggered by another CPU's drain request.
    pub flush_drain: LocalCounter,
    /// Cache flushes this CPU ran on its own low-memory retry path.
    pub flush_lowmem: LocalCounter,
    /// Total blocks evicted by flushes (flush counters above only count
    /// flushes that actually evicted something).
    pub flush_blocks: LocalCounter,
    /// Cache-occupancy histogram: sampled every 64th allocation and at
    /// every cold-path event, bucketed by fraction of `2 * target`.
    pub occupancy: [LocalCounter; OCC_BUCKETS],
}

impl CacheStats {
    /// Records one occupancy sample: `len` blocks cached out of a
    /// `capacity` bound (`2 * target`). Called on cold paths and on a
    /// 1-in-64 sampling cadence from the alloc fast path.
    #[inline]
    pub(crate) fn sample_occupancy(&self, len: usize, capacity: usize) {
        let bucket = (len * OCC_BUCKETS)
            .checked_div(capacity)
            .map_or(0, |b| b.min(OCC_BUCKETS - 1));
        self.occupancy[bucket].bump();
    }
}

/// What the double-free quarantine said about a freed block.
#[derive(Debug, PartialEq, Eq)]
pub enum QuarantineVerdict {
    /// The block is already parked in the ring: this free is a double
    /// free, caught before it could damage a list.
    Hit,
    /// The block was parked; the free is complete for now (the block
    /// re-enters circulation when it is evicted or the cache flushes).
    Parked,
    /// The block was parked and the oldest resident evicted; the caller
    /// continues the free with the evicted block.
    Evicted(*mut u8),
}

/// One per-(CPU, class) cache: the split freelist plus its bookkeeping.
pub struct CpuCache {
    main: Chain,
    aux: Chain,
    /// Bound on each half of the split freelist.
    target: usize,
    /// `false` selects the single-list ablation (no `aux`; overflow walks
    /// the list to split off a chain).
    split: bool,
    /// Hardened-profile double-free quarantine: the most recently freed
    /// blocks, parked out of circulation. A free whose block is still in
    /// the ring is a double free. Empty (len 0) in the default profile.
    quarantine: Box<[*mut u8]>,
    /// Next ring slot to fill/evict.
    q_pos: usize,
    /// Occupied ring slots (grows to capacity, then stays).
    q_len: usize,
    /// Simulated interrupt disabling: asserts the cache is never
    /// re-entered.
    excl: ExclusionFlag,
}

// SAFETY: the quarantine ring holds free blocks the cache owns outright,
// exactly like the blocks threaded through `main`/`aux`; moving the cache
// to another thread moves that ownership wholesale.
unsafe impl Send for CpuCache {}

impl CpuCache {
    /// Creates an empty cache with the given `target` (plain link
    /// encoding, no quarantine — the default profile).
    pub fn new(target: usize, split: bool) -> Self {
        CpuCache::new_hardened(target, split, LinkKey::PLAIN, 0)
    }

    /// Creates an empty cache whose chains encode links under `key` and
    /// whose double-free quarantine ring holds `quarantine` blocks.
    pub fn new_hardened(target: usize, split: bool, key: LinkKey, quarantine: usize) -> Self {
        CpuCache {
            main: Chain::new_keyed(key),
            aux: Chain::new_keyed(key),
            target,
            split,
            quarantine: vec![core::ptr::null_mut(); quarantine].into_boxed_slice(),
            q_pos: 0,
            q_len: 0,
            excl: ExclusionFlag::new(),
        }
    }

    /// This cache's `target` parameter.
    #[inline]
    pub fn target(&self) -> usize {
        self.target
    }

    /// Total blocks currently cached.
    #[inline]
    pub fn len(&self) -> usize {
        self.main.len() + self.aux.len()
    }

    /// Returns whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fast-path allocation.
    ///
    /// Returns `None` when both halves are empty; the caller then fetches a
    /// chain from the global layer and calls [`CpuCache::refill`] (and
    /// charges the miss counter in its per-CPU slot).
    #[inline]
    pub fn alloc(&mut self) -> Option<*mut u8> {
        let _irq = self.excl.enter();
        if let Some(block) = self.main.pop() {
            return Some(block);
        }
        if !self.aux.is_empty() {
            // "If main is empty upon allocation, the contents of aux, if
            // any, are moved to main."
            self.main = self.aux.take();
            return self.main.pop();
        }
        None
    }

    /// Installs a replenishment chain from the global layer and pops one
    /// block from it.
    ///
    /// The internal allocation path only refills a cache both of whose
    /// halves are empty, but the guard is unconditional: a refill against a
    /// non-empty cache *merges* the resident blocks into the incoming chain
    /// instead of overwriting (and silently leaking) them. (This used to be
    /// a `debug_assert!` followed by a blind overwrite — in release builds
    /// a misused refill leaked every resident block out of the arena's
    /// accounting.)
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty.
    pub fn refill(&mut self, mut chain: Chain) -> *mut u8 {
        let _irq = self.excl.enter();
        assert!(!chain.is_empty(), "refill with empty chain");
        if !(self.main.is_empty() && self.aux.is_empty()) {
            // Defensive merge: keep every resident block accounted for.
            chain.append(&mut self.main);
            chain.append(&mut self.aux);
        }
        self.main = chain;
        self.main.pop().expect("chain was non-empty")
    }

    /// Fast-path free.
    ///
    /// Returns a `target`-sized chain to hand to the global layer when the
    /// cache overflows, `None` otherwise.
    ///
    /// # Safety
    ///
    /// `block` must be a free block of this cache's size class, owned by
    /// the caller, not in any list.
    #[inline]
    pub unsafe fn free(&mut self, block: *mut u8) -> Option<Chain> {
        if !self.split {
            // SAFETY: forwarded caller contract.
            return unsafe { self.free_single_list(block) };
        }
        let _irq = self.excl.enter();
        let mut overflow = None;
        if self.main.len() == self.target {
            // "If adding another block would cause the main list to exceed
            // target, main is moved to aux. If aux is not empty, its
            // contents are first returned to the global layer."
            if !self.aux.is_empty() {
                overflow = Some(self.aux.take());
            }
            self.aux = self.main.take();
        }
        // SAFETY: forwarded caller contract.
        unsafe { self.main.push(block) };
        overflow
    }

    /// Single-list ablation: bound `2 * target`, overflow splits off the
    /// oldest `target` blocks by walking the list (the "unnecessary
    /// linked-list operations" the split freelist avoids).
    unsafe fn free_single_list(&mut self, block: *mut u8) -> Option<Chain> {
        let _irq = self.excl.enter();
        let mut overflow = None;
        if self.main.len() == 2 * self.target {
            overflow = Some(self.main.split_first(self.target));
        }
        // SAFETY: forwarded caller contract.
        unsafe { self.main.push(block) };
        overflow
    }

    /// Checks `block` against the double-free quarantine and parks it.
    ///
    /// A hit means `block` is already sitting in the ring — a double free,
    /// reported before any list is damaged. Otherwise the block is parked
    /// and, once the ring is full, the oldest resident is evicted for the
    /// caller to continue freeing. Only called on the hardened free path
    /// (the ring has capacity 0 otherwise).
    ///
    /// The ring is per-(CPU, class): a double free whose second free runs
    /// on another CPU is not caught here (the poison heuristic covers that
    /// window), which keeps the check a short local scan.
    pub fn quarantine_check_insert(&mut self, block: *mut u8) -> QuarantineVerdict {
        let _irq = self.excl.enter();
        if self.quarantine[..self.q_len].contains(&block) {
            return QuarantineVerdict::Hit;
        }
        let evicted = self.quarantine[self.q_pos];
        self.quarantine[self.q_pos] = block;
        self.q_pos = (self.q_pos + 1) % self.quarantine.len();
        if self.q_len < self.quarantine.len() {
            self.q_len += 1;
            QuarantineVerdict::Parked
        } else {
            QuarantineVerdict::Evicted(evicted)
        }
    }

    /// Blocks currently parked in the quarantine ring (a gauge the
    /// conservation check and snapshots account as neither cached nor
    /// free).
    #[inline]
    pub fn quarantine_len(&self) -> usize {
        self.q_len
    }

    /// Whether the ring can park blocks at all.
    #[inline]
    pub fn has_quarantine(&self) -> bool {
        !self.quarantine.is_empty()
    }

    /// Takes the corruption fault latched by a chain walk inside this
    /// cache, if any (hardened alloc path; see [`Chain::take_fault`]).
    pub fn take_fault(&mut self) -> Option<ChainFault> {
        self.main.take_fault().or_else(|| self.aux.take_fault())
    }

    /// Flushes the whole cache, returning every block as one chain.
    ///
    /// Used for low-memory draining and arena teardown. The chain's length
    /// is arbitrary ("odd-sized"), so the global layer routes it through
    /// its bucket list. Quarantined blocks leave the ring and join the
    /// chain: nothing stays parked across a flush.
    pub fn flush(&mut self) -> Chain {
        let _irq = self.excl.enter();
        let mut all = self.main.take();
        let mut aux = self.aux.take();
        all.append(&mut aux);
        for i in 0..self.q_len {
            // SAFETY: a parked block is a free block this cache owns.
            unsafe { all.push(self.quarantine[i]) };
        }
        self.q_len = 0;
        self.q_pos = 0;
        all
    }

    /// (len(main), len(aux)) — for tests and the invariant walker.
    pub fn shape(&self) -> (usize, usize) {
        (self.main.len(), self.aux.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bag of fake blocks the tests can hand to the cache.
    // Boxed so each block keeps a stable address while the Vec grows.
    #[expect(clippy::vec_box)]
    struct Blocks {
        store: Vec<Box<[u8; 64]>>,
        next: usize,
    }

    impl Blocks {
        fn new(n: usize) -> Self {
            Blocks {
                store: (0..n).map(|_| Box::new([0u8; 64])).collect(),
                next: 0,
            }
        }

        fn take(&mut self) -> *mut u8 {
            let p = self.store[self.next].as_mut_ptr();
            self.next += 1;
            p
        }
    }

    fn drain_chain(mut c: Chain) -> usize {
        let mut n = 0;
        while c.pop().is_some() {
            n += 1;
        }
        n
    }

    #[test]
    fn free_fills_main_then_demotes_to_aux() {
        let mut blocks = Blocks::new(16);
        let mut cache = CpuCache::new(3, true);
        // 3 frees fill main.
        for _ in 0..3 {
            // SAFETY: fake blocks are owned and disjoint.
            assert!(unsafe { cache.free(blocks.take()) }.is_none());
        }
        assert_eq!(cache.shape(), (3, 0));
        // 4th free demotes main to aux (no overflow: aux was empty).
        // SAFETY: as above.
        assert!(unsafe { cache.free(blocks.take()) }.is_none());
        assert_eq!(cache.shape(), (1, 3));
        // Fill main again; the next free overflows aux as an exact chain.
        for _ in 0..2 {
            // SAFETY: as above.
            assert!(unsafe { cache.free(blocks.take()) }.is_none());
        }
        assert_eq!(cache.shape(), (3, 3));
        // SAFETY: as above.
        let overflow = unsafe { cache.free(blocks.take()) }.unwrap();
        assert_eq!(overflow.len(), 3);
        assert_eq!(cache.shape(), (1, 3));
        drain_chain(overflow);
        drain_chain(cache.flush());
    }

    #[test]
    fn paper_figure_2_walkthrough() {
        // Reproduces the worked example under Figure 2: target = 3, main
        // holds 1 block, aux holds 3.
        let mut blocks = Blocks::new(16);
        let mut cache = CpuCache::new(3, true);
        for _ in 0..4 {
            // SAFETY: fake blocks are owned and disjoint.
            assert!(unsafe { cache.free(blocks.take()) }.is_none());
        }
        assert_eq!(cache.shape(), (1, 3));

        // "Up to two additional blocks may be freed onto main."
        // SAFETY: as above.
        unsafe {
            assert!(cache.free(blocks.take()).is_none());
            assert!(cache.free(blocks.take()).is_none());
        }
        assert_eq!(cache.shape(), (3, 3));
        // "Freeing a third block would cause the contents of aux to be
        // returned to the global pool [...] At this point, the
        // configuration would again be as shown in Figure 2."
        // SAFETY: as above.
        let spill = unsafe { cache.free(blocks.take()) }.unwrap();
        assert_eq!(spill.len(), 3);
        assert_eq!(cache.shape(), (1, 3));
        drain_chain(spill);

        // "One more block may be allocated from main, at which point main
        // will be empty."
        assert!(cache.alloc().is_some());
        assert_eq!(cache.shape(), (0, 3));
        // "A second allocation will result in the contents of aux being
        // moved to main [...] main will contain two more blocks."
        assert!(cache.alloc().is_some());
        assert_eq!(cache.shape(), (2, 0));
        // "allowing two additional allocations to be made from main."
        assert!(cache.alloc().is_some());
        assert!(cache.alloc().is_some());
        // "The next allocation would find both main and aux empty."
        assert!(cache.alloc().is_none());
    }

    #[test]
    fn refill_then_alloc_hits() {
        let mut blocks = Blocks::new(8);
        let mut cache = CpuCache::new(2, true);
        assert!(cache.alloc().is_none());
        let mut chain = Chain::new();
        for _ in 0..2 {
            // SAFETY: fake blocks are owned and disjoint.
            unsafe { chain.push(blocks.take()) };
        }
        let first = cache.refill(chain);
        assert!(!first.is_null());
        assert!(cache.alloc().is_some());
        assert!(cache.alloc().is_none());
    }

    #[test]
    fn refill_of_nonempty_cache_keeps_resident_blocks() {
        // Regression: `refill` used to overwrite `main` behind a
        // `debug_assert!`, so in release builds a refill against a
        // non-empty cache leaked every resident block. The guard is now
        // unconditional: resident blocks are merged into the new chain.
        let mut blocks = Blocks::new(16);
        let mut cache = CpuCache::new(4, true);
        for _ in 0..6 {
            // SAFETY: fake blocks are owned and disjoint.
            assert!(unsafe { cache.free(blocks.take()) }.is_none());
        }
        assert_eq!(cache.len(), 6); // (2, 4): both halves occupied
        let mut chain = Chain::new();
        for _ in 0..3 {
            // SAFETY: as above.
            unsafe { chain.push(blocks.take()) };
        }
        let got = cache.refill(chain);
        assert!(!got.is_null());
        // 6 resident + 3 incoming - 1 popped: nothing leaked.
        assert_eq!(cache.len(), 8);
        assert_eq!(drain_chain(cache.flush()), 8);
    }

    #[test]
    fn miss_rate_is_bounded_by_one_over_target() {
        // Steady-state alternating bursts: the global layer must be
        // touched at most once per `target` operations.
        let mut blocks = Blocks::new(600);
        let target = 8;
        let mut cache = CpuCache::new(target, true);
        let mut spills = 0u64;
        let mut held = Vec::new();
        let mut ops = 0u64;
        for round in 0..200 {
            if round % 2 == 0 {
                for _ in 0..5 {
                    // SAFETY: blocks come from `blocks` or previous allocs.
                    if unsafe { cache.free(held.pop().unwrap_or_else(|| blocks.take())) }
                        .map(drain_chain)
                        .is_some()
                    {
                        spills += 1;
                    }
                    ops += 1;
                }
            } else {
                for _ in 0..4 {
                    if let Some(b) = cache.alloc() {
                        held.push(b);
                    }
                    ops += 1;
                }
            }
        }
        assert!(
            spills <= ops / target as u64 + 1,
            "{spills} spills in {ops} ops with target {target}"
        );
        drain_chain(cache.flush());
    }

    #[test]
    fn flush_returns_everything() {
        let mut blocks = Blocks::new(16);
        let mut cache = CpuCache::new(3, true);
        for _ in 0..5 {
            // SAFETY: fake blocks are owned and disjoint.
            unsafe { cache.free(blocks.take()) };
        }
        assert_eq!(cache.len(), 5);
        let all = cache.flush();
        assert_eq!(all.len(), 5);
        assert!(cache.is_empty());
        drain_chain(all);
    }

    #[test]
    fn quarantine_catches_a_double_free_and_evicts_fifo() {
        let mut blocks = Blocks::new(8);
        let mut cache = CpuCache::new_hardened(3, true, LinkKey::PLAIN, 2);
        assert!(cache.has_quarantine());
        let a = blocks.take();
        let b = blocks.take();
        let c = blocks.take();
        assert_eq!(cache.quarantine_check_insert(a), QuarantineVerdict::Parked);
        assert_eq!(cache.quarantine_check_insert(b), QuarantineVerdict::Parked);
        assert_eq!(cache.quarantine_len(), 2);
        // Freeing a block still in the ring is the double free.
        assert_eq!(cache.quarantine_check_insert(a), QuarantineVerdict::Hit);
        // A third distinct block evicts the oldest resident (FIFO).
        assert_eq!(
            cache.quarantine_check_insert(c),
            QuarantineVerdict::Evicted(a)
        );
        assert_eq!(cache.quarantine_len(), 2);
        // Flush surfaces the parked blocks and empties the ring.
        let all = cache.flush();
        assert_eq!(all.len(), 2);
        assert_eq!(cache.quarantine_len(), 0);
        drain_chain(all);
    }

    #[test]
    fn hardened_cache_latches_faults_from_its_chains() {
        // Real links must pass the key's 16-alignment plausibility check,
        // so these fakes (unlike `Blocks`) carry the arena alignment.
        #[repr(align(16))]
        struct Aligned([u8; 64]);
        let mut store: Vec<Box<Aligned>> = (0..2).map(|_| Box::new(Aligned([0u8; 64]))).collect();
        let lo = store.iter().map(|s| s.0.as_ptr() as usize).min().unwrap();
        let hi = store.iter().map(|s| s.0.as_ptr() as usize).max().unwrap();
        let key = LinkKey::hardened(0x5eed, lo, hi + 64);
        let mut cache = CpuCache::new_hardened(2, true, key, 0);
        let a = store[0].0.as_mut_ptr();
        let b = store[1].0.as_mut_ptr();
        // SAFETY: fake blocks are owned and disjoint.
        unsafe {
            cache.free(a);
            cache.free(b);
        }
        // Scribble the head's encoded link: the next alloc must miss and
        // latch a fault instead of returning a wild pointer.
        // SAFETY: the fake block is owned by the test.
        unsafe { (b as *mut usize).write(0x4141_4141) };
        assert!(cache.alloc().is_none());
        let fault = cache.take_fault().expect("fault latched");
        assert_eq!(fault.addr, b as usize);
        assert_eq!(fault.lost, 2);
    }

    #[test]
    fn single_list_ablation_bounds_and_spills() {
        let mut blocks = Blocks::new(32);
        let target = 3;
        let mut cache = CpuCache::new(target, false);
        let mut spilled = 0;
        for _ in 0..10 {
            // SAFETY: fake blocks are owned and disjoint.
            if let Some(c) = unsafe { cache.free(blocks.take()) } {
                assert_eq!(c.len(), target);
                spilled += drain_chain(c);
            }
            assert!(cache.len() <= 2 * target);
        }
        assert_eq!(spilled + cache.len(), 10);
        drain_chain(cache.flush());
    }
}
