//! The memory-pressure ladder: an explicit escalation state machine.
//!
//! The paper's allocator recovers from exhaustion *online*: low-memory
//! flushes push per-CPU caches to the global layer, the global layer spills
//! to the coalesce-to-page layer, and the coalescing layers return whole
//! pages (and vmblks) to the system. This module makes that escalation an
//! explicit, observable state machine instead of an ad-hoc retry:
//!
//! * **Level 0** — no pressure; allocations never touch the ladder.
//! * **Rung 1** — the failing CPU flushes its own caches and posts drain
//!   requests to every other CPU (the reclaim-IPI stand-in).
//! * **Rung 2** — every global pool is spilled down to `gbltarget`, feeding
//!   the page layer so full pages can coalesce and release frames.
//! * **Rung 3** — full reclaim: the global pools are drained entirely
//!   through the coalescing layers.
//!
//! Entry is driven by watermarks on the physical pool (`avail < pct% of
//! capacity`, one percentage per rung) — but a failed backend allocation
//! always escalates at least one rung past the current level, so exhaustion
//! that the watermarks cannot see (virtual-space exhaustion, injected
//! faults) still climbs to a full reclaim. De-escalation happens one step
//! at a time on successful slow-path operations, gated by hysteresis: the
//! pool must recover `exit_margin_pct` *past* the rung's entry watermark,
//! so the ladder does not flap at a boundary.

use core::sync::atomic::{AtomicU8, Ordering};

use kmem_smp::EventCounter;

/// Deepest rung of the ladder.
const MAX_LEVEL: u8 = 3;

/// Watermarks and hysteresis for the pressure ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureConfig {
    /// Entry watermarks, percent of physical capacity: rung `i + 1` is
    /// indicated while `available < enter_pcts[i]% of capacity`. Must be
    /// non-increasing with depth.
    pub enter_pcts: [u8; 3],
    /// Hysteresis margin: leaving rung `i + 1` requires
    /// `available >= (enter_pcts[i] + exit_margin_pct)% of capacity`.
    pub exit_margin_pct: u8,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            enter_pcts: [25, 12, 6],
            exit_margin_pct: 5,
        }
    }
}

impl PressureConfig {
    /// Validates structural requirements.
    ///
    /// # Panics
    ///
    /// Panics on unusable watermarks (see [`crate::KmemConfig::validate`]).
    pub fn validate(&self) {
        assert!(
            self.enter_pcts[0] >= self.enter_pcts[1] && self.enter_pcts[1] >= self.enter_pcts[2],
            "pressure watermarks must be non-increasing with depth"
        );
        assert!(
            self.enter_pcts[0] as usize + self.exit_margin_pct as usize <= 100,
            "exit watermark above 100% could never de-escalate"
        );
    }
}

/// The shared ladder state: current level plus transition counters.
pub(crate) struct PressureLadder {
    cfg: PressureConfig,
    /// Current level, 0 (calm) through [`MAX_LEVEL`].
    level: AtomicU8,
    /// `escalations[i]` counts entries into rung `i + 1`.
    escalations: [EventCounter; 3],
    /// De-escalation steps taken (each one level, hysteresis-gated).
    deescalations: EventCounter,
    /// Failed allocations that found the ladder already at their target
    /// rung and re-applied its deepest action.
    reapplied: EventCounter,
}

impl PressureLadder {
    pub(crate) fn new(cfg: PressureConfig) -> Self {
        cfg.validate();
        PressureLadder {
            cfg,
            level: AtomicU8::new(0),
            escalations: [
                EventCounter::new(),
                EventCounter::new(),
                EventCounter::new(),
            ],
            deescalations: EventCounter::new(),
            reapplied: EventCounter::new(),
        }
    }

    /// Current level (gauge).
    pub(crate) fn level(&self) -> u8 {
        self.level.load(Ordering::Relaxed)
    }

    /// Rung indicated by the watermarks alone (0 when none is crossed).
    fn watermark(&self, avail: usize, cap: usize) -> u8 {
        let mut level = 0;
        for (i, &pct) in self.cfg.enter_pcts.iter().enumerate() {
            if (avail as u128) * 100 < (cap as u128) * u128::from(pct) {
                level = i as u8 + 1;
            }
        }
        level
    }

    /// Records a failed backend allocation: the ladder climbs to the
    /// watermark-indicated rung, or one rung past the current level if the
    /// watermarks trail behind (never below rung 1, never above rung 3).
    ///
    /// Returns `(previous, new)` levels; the caller runs the actions of
    /// rungs `previous + 1 ..= new`, or re-applies rung `new` when no rung
    /// was newly entered.
    pub(crate) fn escalate(&self, avail: usize, cap: usize) -> (u8, u8) {
        let wm = self.watermark(avail, cap);
        let cur = self.level.load(Ordering::Relaxed);
        let next = wm.max(1).max((cur + 1).min(MAX_LEVEL));
        let prev = self.level.fetch_max(next, Ordering::AcqRel);
        if next > prev {
            for rung in prev..next {
                self.escalations[rung as usize].inc();
            }
        } else {
            self.reapplied.inc();
        }
        (prev, next)
    }

    /// Records a successful slow-path operation: steps the ladder down one
    /// level if the pool has recovered past the current rung's exit
    /// watermark (entry percentage plus the hysteresis margin).
    pub(crate) fn relax(&self, avail: usize, cap: usize) {
        loop {
            let cur = self.level.load(Ordering::Acquire);
            if cur == 0 {
                return;
            }
            let exit_pct = u128::from(self.cfg.enter_pcts[cur as usize - 1])
                + u128::from(self.cfg.exit_margin_pct);
            if (avail as u128) * 100 < (cap as u128) * exit_pct {
                return;
            }
            if self
                .level
                .compare_exchange(cur, cur - 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.deescalations.inc();
                return;
            }
        }
    }

    pub(crate) fn escalations(&self) -> [u64; 3] {
        [
            self.escalations[0].get(),
            self.escalations[1].get(),
            self.escalations[2].get(),
        ]
    }

    pub(crate) fn deescalations(&self) -> u64 {
        self.deescalations.get()
    }

    pub(crate) fn reapplied(&self) -> u64 {
        self.reapplied.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> PressureLadder {
        PressureLadder::new(PressureConfig::default())
    }

    #[test]
    fn watermarks_map_availability_to_rungs() {
        let l = ladder();
        // 100 frames: 25/12/6 percent watermarks.
        assert_eq!(l.watermark(100, 100), 0);
        assert_eq!(l.watermark(25, 100), 0); // strict less-than
        assert_eq!(l.watermark(24, 100), 1);
        assert_eq!(l.watermark(11, 100), 2);
        assert_eq!(l.watermark(5, 100), 3);
        assert_eq!(l.watermark(0, 100), 3);
    }

    #[test]
    fn starvation_jumps_straight_to_the_deepest_rung() {
        let l = ladder();
        let (prev, next) = l.escalate(0, 100);
        assert_eq!((prev, next), (0, 3));
        assert_eq!(l.level(), 3);
        assert_eq!(l.escalations(), [1, 1, 1]);
        // A further failure at the same depth re-applies, not re-enters.
        let (prev, next) = l.escalate(0, 100);
        assert_eq!((prev, next), (3, 3));
        assert_eq!(l.reapplied(), 1);
        assert_eq!(l.escalations(), [1, 1, 1]);
    }

    #[test]
    fn failures_the_watermarks_cannot_see_still_climb() {
        // Plenty of frames free (e.g. virtual exhaustion or an injected
        // fault): each failure climbs exactly one rung.
        let l = ladder();
        assert_eq!(l.escalate(100, 100), (0, 1));
        assert_eq!(l.escalate(100, 100), (1, 2));
        assert_eq!(l.escalate(100, 100), (2, 3));
        assert_eq!(l.escalate(100, 100), (3, 3));
        assert_eq!(l.escalations(), [1, 1, 1]);
        assert_eq!(l.reapplied(), 1);
    }

    #[test]
    fn relax_requires_the_hysteresis_margin() {
        let l = ladder();
        l.escalate(20, 100); // rung 1 (watermark) — wait, 20 < 25 → wm 1
        assert_eq!(l.level(), 1);
        // Exit needs 25 + 5 = 30%: 29 is not enough, 30 is.
        l.relax(29, 100);
        assert_eq!(l.level(), 1);
        l.relax(30, 100);
        assert_eq!(l.level(), 0);
        assert_eq!(l.deescalations(), 1);
        // Relaxing at level 0 is a no-op.
        l.relax(100, 100);
        assert_eq!(l.deescalations(), 1);
    }

    #[test]
    fn relax_steps_one_level_at_a_time() {
        let l = ladder();
        l.escalate(0, 100);
        assert_eq!(l.level(), 3);
        l.relax(100, 100);
        assert_eq!(l.level(), 2);
        l.relax(100, 100);
        l.relax(100, 100);
        assert_eq!(l.level(), 0);
        assert_eq!(l.deescalations(), 3);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn validate_rejects_inverted_watermarks() {
        PressureConfig {
            enter_pcts: [10, 20, 5],
            exit_margin_pct: 5,
        }
        .validate();
    }
}
