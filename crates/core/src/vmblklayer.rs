//! The coalesce-to-vmblk layer (paper Figure 6).
//!
//! This layer manages large blocks of virtual memory ("vmblks", 4 MB in the
//! paper). Pages of virtual address space are allocated from vmblks as
//! needed; adjacent spans of free pages are coalesced as they are freed
//! using a boundary-tag-like scheme kept in the page descriptors; requests
//! for blocks larger than one page bypass the lower layers and are handled
//! here directly.
//!
//! Each vmblk is laid out as in Figure 6: a header (and the page-descriptor
//! array) occupying the first pages, followed by the data pages the
//! descriptors describe. The kernel space's dope vector maps any address in
//! the vmblk — a data block *or* a descriptor — back to the header, which
//! is the first level of the paper's two-level lookup; the second level is
//! plain offset arithmetic.
//!
//! Physical-frame accounting: every *data* page is claimed from the
//! [`kmem_vm::PhysPool`] when its span is allocated and credited back when
//! its span is freed, so a fully drained allocator provably holds no
//! physical memory beyond the headers of any vmblks it has retained (none,
//! with `release_empty_vmblks`). Header pages are claimed for the life of
//! the vmblk.

use core::ptr::{self, NonNull};
use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use kmem_smp::{faults, EventCounter, Faults, NodeId, SpinLock};
use kmem_vm::{KernelSpace, VmError, VmblkRegion, PAGE_SHIFT, PAGE_SIZE};

use crate::pagedesc::{PageDesc, PdKind, PdList, PdStack, PD_STRIDE};

/// Span lengths with exact-size freelists; longer spans share a first-fit
/// list. 64 pages = 256 KB covers every multi-page request the benchmarks
/// make while keeping the list array small.
const MAX_SEG: usize = 64;

/// Upper bound on pages parked in each node's lock-free whole-page cache.
/// The page layer churns single pages far more often than any other span
/// size, so a small cap absorbs nearly all of the traffic while bounding
/// how much virtual space sits outside the boundary-tag structure. The
/// cache is sharded by home node: a parked page waits on its frame's
/// node's stack, so a node-local request reuses a node-local frame.
const PAGE_CACHE_CAP: usize = 64;

/// Offset of the descriptor array within a vmblk.
const PD_OFFSET: usize = {
    let hdr = core::mem::size_of::<VmblkHeader>();
    let align = core::mem::align_of::<PageDesc>();
    (hdr + align - 1) & !(align - 1)
};

/// Per-vmblk header, stored at the base of the vmblk itself.
///
/// Fields written after initialization (`free_pages`, `next`) are atomics
/// so that lock-free readers holding `&VmblkHeader` (the standard free
/// path resolving a block address) never race a plain mutation.
pub struct VmblkHeader {
    region: VmblkRegion,
    header_pages: usize,
    ndata: usize,
    /// Home node of the header frames (written once at creation; data
    /// pages record their own homes in their descriptors).
    home: NodeId,
    free_pages: AtomicUsize,
    next: AtomicPtr<VmblkHeader>,
}

impl VmblkHeader {
    /// Number of data pages in this vmblk.
    pub fn ndata(&self) -> usize {
        self.ndata
    }

    /// Home node of this vmblk's header frames.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Currently free data pages.
    pub fn free_pages(&self) -> usize {
        self.free_pages.load(Ordering::Relaxed)
    }

    /// Address of data page `idx`.
    #[inline]
    fn data_addr(&self, idx: usize) -> *mut u8 {
        debug_assert!(idx < self.ndata);
        // SAFETY: the offset stays inside this vmblk's region.
        unsafe {
            self.region
                .base()
                .as_ptr()
                .add((self.header_pages + idx) << PAGE_SHIFT)
        }
    }

    /// Descriptor of data page `idx`.
    #[inline]
    fn pd(&self, idx: usize) -> *mut PageDesc {
        debug_assert!(idx < self.ndata);
        // SAFETY: the descriptor array lies inside this vmblk's header
        // area, sized for `ndata` descriptors.
        unsafe { self.region.base().as_ptr().add(PD_OFFSET + idx * PD_STRIDE) }.cast()
    }

    /// Index of `pd` within this vmblk's descriptor array.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `pd` is not one of this vmblk's
    /// descriptors.
    pub fn pd_index_of(&self, pd: &PageDesc) -> usize {
        let base = self.region.base().as_ptr() as usize + PD_OFFSET;
        let addr = pd as *const PageDesc as usize;
        debug_assert!(addr >= base && (addr - base).is_multiple_of(PD_STRIDE));
        let idx = (addr - base) / PD_STRIDE;
        debug_assert!(idx < self.ndata);
        idx
    }

    /// Address of data page `idx`, as a `NonNull` for span calls.
    pub fn data_page(&self, idx: usize) -> NonNull<u8> {
        // SAFETY: data addresses are interior to the reservation, never
        // null.
        unsafe { NonNull::new_unchecked(self.data_addr(idx)) }
    }

    /// Index of the data page containing `addr`.
    #[inline]
    fn page_index(&self, addr: usize) -> usize {
        let base = self.region.base().as_ptr() as usize;
        debug_assert!(addr >= base && addr < base + self.region.size());
        let page = (addr - base) >> PAGE_SHIFT;
        debug_assert!(page >= self.header_pages, "address inside vmblk header");
        page - self.header_pages
    }
}

/// Computes `(header_pages, data_pages)` for a vmblk of `total_pages`.
fn geometry(total_pages: usize) -> (usize, usize) {
    let mut h = 1;
    while h * PAGE_SIZE < PD_OFFSET + (total_pages - h) * PD_STRIDE {
        h += 1;
        assert!(h < total_pages, "vmblk too small for its own descriptors");
    }
    (h, total_pages - h)
}

/// Statistics for the vmblk layer.
#[derive(Default)]
pub struct VmblkStats {
    /// vmblks carved out of the kernel space.
    pub vmblks_created: EventCounter,
    /// vmblks returned to the kernel space.
    pub vmblks_released: EventCounter,
    /// Page spans handed out (block pages and large allocations).
    pub span_allocs: EventCounter,
    /// Page spans returned.
    pub span_frees: EventCounter,
    /// Single-page allocations served by the lock-free page cache
    /// (no boundary-tag lock taken).
    pub cache_hits: EventCounter,
    /// Single-page frees parked on the lock-free page cache
    /// (no boundary-tag lock taken).
    pub cache_puts: EventCounter,
}

struct VmInner {
    /// `lists[k]` holds free spans of exactly `k` pages for `1 <= k <=
    /// MAX_SEG`; `lists[0]` holds longer spans, searched first-fit.
    lists: Box<[PdList]>,
    /// All live vmblks (headers), for verification and teardown.
    vmblks: *mut VmblkHeader,
    nvmblks: usize,
}

// SAFETY: `VmInner` is only reachable through the layer's spinlock.
unsafe impl Send for VmInner {}

/// The coalesce-to-vmblk layer.
pub struct VmblkLayer {
    space: Arc<KernelSpace>,
    inner: SpinLock<VmInner>,
    release_empty: bool,
    /// Lock-free caches of recently freed whole pages ([`PdKind::Cached`]
    /// descriptors), fronting the boundary-tag lock — one per NUMA node,
    /// keyed by the parked page's home node. A cached page's physical
    /// frame is *released* and the page is neither in a span freelist nor
    /// counted in its header's `free_pages` — which guarantees its vmblk
    /// can never be released while it is parked.
    page_cache: Box<[PdStack]>,
    cache_len: Box<[AtomicUsize]>,
    cache_enabled: bool,
    faults: Faults,
    stats: VmblkStats,
}

impl VmblkLayer {
    /// Creates an empty layer over `space` (whole-page cache disabled:
    /// every span operation goes through the boundary-tag lock).
    pub fn new(space: Arc<KernelSpace>, release_empty: bool) -> Self {
        VmblkLayer::build(space, release_empty, false, Faults::none())
    }

    /// As [`new`](VmblkLayer::new) with the lock-free whole-page cache
    /// enabled, wired to a fault-injection plan (consults `vmblk.cache`
    /// on both the park and reuse directions).
    pub fn new_with_cache(space: Arc<KernelSpace>, release_empty: bool, faults: Faults) -> Self {
        VmblkLayer::build(space, release_empty, true, faults)
    }

    fn build(
        space: Arc<KernelSpace>,
        release_empty: bool,
        cache_enabled: bool,
        faults: Faults,
    ) -> Self {
        let nnodes = space.phys().nnodes();
        VmblkLayer {
            space,
            inner: SpinLock::new(VmInner {
                lists: (0..=MAX_SEG).map(|_| PdList::new()).collect(),
                vmblks: ptr::null_mut(),
                nvmblks: 0,
            }),
            release_empty,
            page_cache: (0..nnodes).map(|_| PdStack::new()).collect(),
            cache_len: (0..nnodes).map(|_| AtomicUsize::new(0)).collect(),
            cache_enabled,
            faults,
            stats: VmblkStats::default(),
        }
    }

    /// The kernel space this layer carves from.
    pub fn space(&self) -> &KernelSpace {
        &self.space
    }

    /// Layer statistics.
    pub fn stats(&self) -> &VmblkStats {
        &self.stats
    }

    /// The largest span (in pages) a single vmblk can serve.
    pub fn max_span_pages(&self) -> usize {
        let total = self.space.vmblk_size() >> PAGE_SHIFT;
        geometry(total).1
    }

    /// Resolves the vmblk header covering `addr` via the dope vector.
    ///
    /// Returns `None` for addresses this allocator does not manage.
    #[inline]
    pub fn header_of(&self, addr: usize) -> Option<&VmblkHeader> {
        let tag = self.space.dope_lookup(addr)?;
        // SAFETY: dope tags are only ever header addresses of *published*
        // vmblks; the header outlives its publication.
        Some(unsafe { &*(tag as *const VmblkHeader) })
    }

    /// Resolves the page descriptor covering `addr`.
    #[inline]
    pub fn pd_of(&self, addr: usize) -> Option<&PageDesc> {
        let hdr = self.header_of(addr)?;
        let idx = hdr.page_index(addr);
        // SAFETY: `pd` points into the live header area of `hdr`.
        Some(unsafe { &*hdr.pd(idx) })
    }

    /// Allocates a span of `npages` data pages (claiming physical frames),
    /// returning its base address and head descriptor.
    ///
    /// Single-page requests are served from the lock-free page cache when
    /// one is parked there, skipping the boundary-tag lock entirely.
    pub fn alloc_span(&self, npages: usize) -> Result<(NonNull<u8>, &PageDesc), VmError> {
        self.alloc_span_on(npages, NodeId::new(0))
    }

    /// As [`VmblkLayer::alloc_span`], preferring physical frames homed on
    /// node `preferred`. A claim never splits across nodes: the whole span
    /// is backed by one node (falling back in wrap-around order when the
    /// preferred node is exhausted), and that node is recorded as the home
    /// of every page of the span.
    pub fn alloc_span_on(
        &self,
        npages: usize,
        preferred: NodeId,
    ) -> Result<(NonNull<u8>, &PageDesc), VmError> {
        assert!(npages >= 1);
        if npages == 1 && self.cache_enabled && !self.faults.hit(faults::VMBLK_CACHE) {
            if let Some(pd) = self.pop_cached(preferred) {
                // SAFETY: the pop transferred possession of the parked
                // descriptor to us.
                let pdr = unsafe { &*pd };
                debug_assert_eq!(pdr.kind(), PdKind::Cached);
                // Re-back the page on its own home node when possible, so
                // the cache hit keeps the frame where the page came from.
                match self.space.phys().claim_on(pdr.home_node(), 1) {
                    Ok(node) => {
                        pdr.set_home_node(node);
                        pdr.set_kind(PdKind::Unused);
                        self.stats.cache_hits.inc();
                        self.stats.span_allocs.inc();
                        let (hdr, idx, _) = self.locate(pd, 1);
                        // SAFETY: `hdr` is a live published header (its
                        // vmblk cannot be released while a page is
                        // cached).
                        let addr = unsafe { &*hdr }.data_page(idx);
                        return Ok((addr, pdr));
                    }
                    Err(e) => {
                        // No frame to back it: park the page again.
                        let home = pdr.home_node().index();
                        self.cache_len[home].fetch_add(1, Ordering::Relaxed);
                        // SAFETY: we possess the descriptor.
                        unsafe { self.page_cache[home].push(pd) };
                        return Err(e);
                    }
                }
            }
        }
        // Claim the frames first: on failure nothing needs undoing, and a
        // span is never visible in an allocated-but-unbacked state.
        let node = self.space.phys().claim_on(preferred, npages)?;
        let mut inner = self.inner.lock();
        let found = match self.find_span(&mut inner, npages) {
            Some(found) => found,
            None => {
                // Pull parked cache pages back into the boundary-tag
                // structure before carving a new vmblk: merged, they may
                // satisfy the request (or free a whole vmblk).
                let refound = if self.drain_cache_locked(&mut inner) > 0 {
                    self.find_span(&mut inner, npages)
                } else {
                    None
                };
                match refound {
                    Some(found) => found,
                    None => {
                        match self.create_vmblk(&mut inner, preferred) {
                            Ok(()) => {}
                            Err(e) => {
                                drop(inner);
                                self.space.phys().release_on(node, npages);
                                return Err(e);
                            }
                        }
                        match self.find_span(&mut inner, npages) {
                            Some(found) => found,
                            None => {
                                // Fresh vmblk still too small: the request
                                // exceeds a vmblk's data capacity.
                                drop(inner);
                                self.space.phys().release_on(node, npages);
                                return Err(VmError::OutOfVirtual);
                            }
                        }
                    }
                }
            }
        };
        let (hdr, idx, len) = found;
        // SAFETY: vm lock held; the span was found in our lists.
        unsafe {
            self.remove_free_span(&mut inner, hdr, idx, len);
            if len > npages {
                self.insert_free_span(&mut inner, hdr, idx + npages, len - npages);
            }
        }
        // SAFETY: `hdr` is a live published header.
        let hdr_ref = unsafe { &*hdr };
        hdr_ref.free_pages.fetch_sub(npages, Ordering::Relaxed);
        // Every page of the span records its frame's home, so any
        // sub-span the caller splits out later still frees to the right
        // node.
        for i in idx..idx + npages {
            // SAFETY: `pd` points into the live header area.
            unsafe { &*hdr_ref.pd(i) }.set_home_node(node);
        }
        self.stats.span_allocs.inc();
        let addr = hdr_ref.data_addr(idx);
        // SAFETY: data addresses are non-null (interior of a reservation).
        let nn = unsafe { NonNull::new_unchecked(addr) };
        // SAFETY: `pd` points into the live header area.
        let pd = unsafe { &*hdr_ref.pd(idx) };
        Ok((nn, pd))
    }

    /// Pops one parked page, preferring `preferred`'s cache and falling
    /// back to the other nodes' caches in wrap-around order.
    fn pop_cached(&self, preferred: NodeId) -> Option<*mut PageDesc> {
        let nn = self.page_cache.len();
        for k in 0..nn {
            let i = (preferred.index() + k) % nn;
            let (popped, _) = self.page_cache[i].pop();
            if let Some(pd) = popped {
                self.cache_len[i].fetch_sub(1, Ordering::Relaxed);
                return Some(pd);
            }
        }
        None
    }

    /// Frees a span of `npages` starting at `addr`, coalescing with free
    /// neighbours and releasing the physical frames.
    ///
    /// # Safety
    ///
    /// `addr` must be the base of a span previously returned by
    /// [`VmblkLayer::alloc_span`] with the same `npages` (or a whole
    /// sub-span the caller split out itself, with consistent accounting),
    /// with no remaining references into it.
    pub unsafe fn free_span(&self, addr: NonNull<u8>, npages: usize) {
        let hdr = self
            .header_of(addr.as_ptr() as usize)
            .expect("span address not managed by this allocator");
        let idx = hdr.page_index(addr.as_ptr() as usize);
        debug_assert!(idx + npages <= hdr.ndata);
        // The span's frames all live on the node its head descriptor
        // records (claims never split across nodes).
        // SAFETY: the span is ours per the function contract.
        let home = unsafe { &*hdr.pd(idx) }.home_node();
        if npages == 1 && self.cache_enabled && !self.faults.hit(faults::VMBLK_CACHE) {
            if self.cache_len[home.index()].fetch_add(1, Ordering::Relaxed) < PAGE_CACHE_CAP {
                // Park the whole page on its home node's lock-free cache:
                // frame released, page left outside the span structure
                // (and outside `free_pages`, so its vmblk stays pinned
                // while parked).
                self.stats.span_frees.inc();
                self.stats.cache_puts.inc();
                let pd = hdr.pd(idx);
                // SAFETY: the span is ours per the function contract.
                unsafe { &*pd }.set_kind(PdKind::Cached);
                self.space.phys().release_on(home, 1);
                // SAFETY: we possess the descriptor until the push
                // publishes it.
                unsafe { self.page_cache[home.index()].push(pd) };
                return;
            }
            // Cap overshoot: undo our reservation, take the locked path.
            self.cache_len[home.index()].fetch_sub(1, Ordering::Relaxed);
        }
        self.space.phys().release_on(home, npages);
        self.stats.span_frees.inc();
        let hdr_ptr = hdr as *const VmblkHeader as *mut VmblkHeader;
        let mut inner = self.inner.lock();
        // SAFETY: lock held; the span is ours per the function contract.
        unsafe { self.merge_free_locked(&mut inner, hdr_ptr, idx, npages) };
    }

    /// Merges the free span `[idx, idx + len)` of `hdr` into the
    /// boundary-tag structure, coalescing with free neighbours, and
    /// releases the vmblk if it became entirely free. Physical frames are
    /// NOT touched — callers account for them (the locked free path
    /// releases them; the cache drain released them at park time).
    ///
    /// # Safety
    ///
    /// vm lock held; the pages are free, unlisted, and unreferenced.
    unsafe fn merge_free_locked(
        &self,
        inner: &mut VmInner,
        hdr_ptr: *mut VmblkHeader,
        mut idx: usize,
        npages: usize,
    ) {
        // SAFETY: `hdr_ptr` is a live published header.
        let hdr = unsafe { &*hdr_ptr };
        let mut len = npages;
        // Coalesce forward: does a free span start right after ours?
        if idx + len < hdr.ndata {
            // SAFETY: descriptor of a data page of a live vmblk.
            let after = unsafe { &*hdr.pd(idx + len) };
            if after.kind() == PdKind::SpanFreeHead {
                // SAFETY: vm lock held.
                let alen = unsafe { after.inner() }.span_pages as usize;
                // SAFETY: vm lock held; (idx+len, alen) is a listed span.
                unsafe { self.remove_free_span(inner, hdr_ptr, idx + len, alen) };
                len += alen;
            }
        }
        // Coalesce backward: does a free span end right before ours?
        if idx > 0 {
            // SAFETY: descriptor of a data page of a live vmblk.
            let before = unsafe { &*hdr.pd(idx - 1) };
            match before.kind() {
                PdKind::SpanFreeTail => {
                    // SAFETY: vm lock held.
                    let blen = unsafe { before.inner() }.span_pages as usize;
                    let bstart = idx - blen;
                    // SAFETY: vm lock held; (bstart, blen) is a listed span.
                    unsafe { self.remove_free_span(inner, hdr_ptr, bstart, blen) };
                    idx = bstart;
                    len += blen;
                }
                PdKind::SpanFreeHead => {
                    // A head with no tail after it is a one-page span.
                    // SAFETY: vm lock held.
                    debug_assert_eq!(unsafe { before.inner() }.span_pages, 1);
                    // SAFETY: vm lock held; (idx-1, 1) is a listed span.
                    unsafe { self.remove_free_span(inner, hdr_ptr, idx - 1, 1) };
                    idx -= 1;
                    len += 1;
                }
                _ => {}
            }
        }
        // SAFETY: vm lock held; the merged span is wholly ours.
        unsafe { self.insert_free_span(inner, hdr_ptr, idx, len) };
        let now_free = hdr.free_pages.fetch_add(npages, Ordering::Relaxed) + npages;

        if self.release_empty && now_free == hdr.ndata {
            // SAFETY: vm lock held; the vmblk is entirely free.
            unsafe { self.release_vmblk(inner, hdr_ptr) };
        }
    }

    /// Pulls every parked page off the lock-free cache and merges it back
    /// into the boundary-tag structure (releasing any vmblk that becomes
    /// entirely free). Returns the number of pages drained.
    ///
    /// A vmblk can only become fully free once *all* of its cached pages
    /// have been drained — parked pages are excluded from `free_pages` —
    /// so a popped descriptor's header is always still live here.
    fn drain_cache_locked(&self, inner: &mut VmInner) -> usize {
        let mut drained = 0;
        for (cache, len) in self.page_cache.iter().zip(self.cache_len.iter()) {
            while let (Some(pd), _) = cache.pop() {
                len.fetch_sub(1, Ordering::Relaxed);
                drained += 1;
                // SAFETY: the pop transferred possession to us.
                let pdr = unsafe { &*pd };
                debug_assert_eq!(pdr.kind(), PdKind::Cached);
                pdr.set_kind(PdKind::Unused);
                let (hdr, idx, _) = self.locate(pd, 1);
                // SAFETY: lock held; the parked page is free and unlisted.
                // Its frame was released at park time, so no phys
                // accounting.
                unsafe { self.merge_free_locked(inner, hdr, idx, 1) };
            }
        }
        drained
    }

    /// Drains the whole-page cache into the span structure — the reclaim
    /// hook for arena teardown and memory-pressure response.
    pub fn drain_page_cache(&self) {
        let mut inner = self.inner.lock();
        self.drain_cache_locked(&mut inner);
    }

    /// Allocates a block larger than the largest size class: a dedicated
    /// span with its head descriptor marked [`PdKind::Large`], as in the
    /// paper ("requests for blocks of memory larger than one page bypass
    /// layers 1 through 3").
    pub fn alloc_large(&self, bytes: usize) -> Result<NonNull<u8>, VmError> {
        self.alloc_large_on(bytes, NodeId::new(0))
    }

    /// As [`VmblkLayer::alloc_large`], preferring frames homed on
    /// `preferred`.
    pub fn alloc_large_on(&self, bytes: usize, preferred: NodeId) -> Result<NonNull<u8>, VmError> {
        let npages = bytes.div_ceil(PAGE_SIZE);
        let (addr, pd) = self.alloc_span_on(npages, preferred)?;
        // SAFETY: we own the span; vm lock not required for a page no
        // other layer can see yet.
        unsafe { pd.inner() }.span_pages = npages as u32;
        pd.set_kind(PdKind::Large);
        Ok(addr)
    }

    /// Frees a block obtained from [`VmblkLayer::alloc_large`], returning
    /// the span size in pages.
    ///
    /// # Safety
    ///
    /// `addr` must come from `alloc_large` on this layer, not yet freed,
    /// with no remaining references into the block.
    pub unsafe fn free_large(&self, addr: NonNull<u8>) -> usize {
        let pd = self
            .pd_of(addr.as_ptr() as usize)
            .expect("large-block address not managed by this allocator");
        assert_eq!(
            pd.kind(),
            PdKind::Large,
            "free of a non-large (or corrupted) block"
        );
        // SAFETY: the caller owns the allocated span; its descriptor is
        // not reachable by any layer until we free it below.
        let npages = unsafe { pd.inner() }.span_pages as usize;
        pd.set_kind(PdKind::Unused);
        // SAFETY: forwarded caller contract; span covers `npages`.
        unsafe { self.free_span(addr, npages) };
        npages
    }

    /// Number of live vmblks.
    pub fn nvmblks(&self) -> usize {
        self.inner.lock().nvmblks
    }

    /// Sums free-span pages across all lists (verification).
    pub fn free_span_pages(&self) -> usize {
        let inner = self.inner.lock();
        let mut total = 0;
        for list in inner.lists.iter() {
            // SAFETY: vm lock held for the whole iteration.
            for pd in unsafe { list.iter() } {
                // SAFETY: vm lock held.
                total += unsafe { (*pd).inner() }.span_pages as usize;
            }
        }
        total
    }

    /// Runs `f` on every live vmblk header (verification).
    pub fn for_each_vmblk(&self, mut f: impl FnMut(&VmblkHeader)) {
        let inner = self.inner.lock();
        let mut cur = inner.vmblks;
        while !cur.is_null() {
            // SAFETY: headers on the list are live while the lock is held.
            let hdr = unsafe { &*cur };
            f(hdr);
            cur = hdr.next.load(Ordering::Relaxed);
        }
    }

    /// Exhaustively checks the layer's structural invariants.
    ///
    /// Walks every vmblk page by page and asserts: spans are well formed
    /// (head/tail tags consistent, interiors unmarked), **no two free
    /// spans are adjacent** (i.e. coalescing never missed a merge), the
    /// per-vmblk free-page counts match the walk, the span freelists
    /// account for exactly the free pages, and the physical pool's claimed
    /// frames equal headers plus in-use data pages.
    ///
    /// Callers must be quiesced (no concurrent allocator traffic), since
    /// the physical-pool comparison spans multiple locks.
    ///
    /// # Panics
    ///
    /// Panics on any violation.
    pub fn verify(&self) {
        let inner = self.inner.lock();
        let mut walked_free = 0usize;
        let mut expected_phys = 0usize;
        let mut cur = inner.vmblks;
        while !cur.is_null() {
            // SAFETY: headers on the list are live while the lock is held.
            let hdr = unsafe { &*cur };
            let mut idx = 0;
            let mut free_here = 0;
            let mut cached_here = 0;
            while idx < hdr.ndata {
                // SAFETY: descriptor of a data page of a live vmblk.
                let pd = unsafe { &*hdr.pd(idx) };
                match pd.kind() {
                    PdKind::BlockPage => idx += 1,
                    PdKind::Cached => {
                        // Parked on the page cache: frame released, page
                        // outside the span structure and `free_pages`.
                        cached_here += 1;
                        idx += 1;
                    }
                    PdKind::Large => {
                        // SAFETY: vm lock held.
                        let l = unsafe { pd.inner() }.span_pages as usize;
                        assert!(l >= 1 && idx + l <= hdr.ndata, "bad large span");
                        idx += l;
                    }
                    PdKind::SpanFreeHead => {
                        // SAFETY: vm lock held.
                        let l = unsafe { pd.inner() }.span_pages as usize;
                        assert!(l >= 1 && idx + l <= hdr.ndata, "bad free span");
                        for j in idx + 1..idx + l - 1 {
                            // SAFETY: descriptor of a live vmblk.
                            let interior = unsafe { &*hdr.pd(j) };
                            assert_eq!(
                                interior.kind(),
                                PdKind::Unused,
                                "marked descriptor inside a free span"
                            );
                        }
                        if l >= 2 {
                            // SAFETY: descriptor of a live vmblk.
                            let tail = unsafe { &*hdr.pd(idx + l - 1) };
                            assert_eq!(tail.kind(), PdKind::SpanFreeTail, "missing tail tag");
                            // SAFETY: vm lock held.
                            assert_eq!(
                                unsafe { tail.inner() }.span_pages as usize,
                                l,
                                "tail tag length mismatch"
                            );
                        }
                        if idx + l < hdr.ndata {
                            // SAFETY: descriptor of a live vmblk.
                            let after = unsafe { &*hdr.pd(idx + l) };
                            assert_ne!(
                                after.kind(),
                                PdKind::SpanFreeHead,
                                "adjacent free spans were not coalesced"
                            );
                        }
                        free_here += l;
                        idx += l;
                    }
                    other => panic!("unexpected descriptor kind {other:?} at page {idx}"),
                }
            }
            assert_eq!(free_here, hdr.free_pages(), "free-page count drifted");
            walked_free += free_here;
            expected_phys += hdr.header_pages + hdr.ndata - free_here - cached_here;
            cur = hdr.next.load(Ordering::Relaxed);
        }
        // Span lists account for exactly the walked free pages.
        let mut listed_free = 0usize;
        for list in inner.lists.iter() {
            // SAFETY: vm lock held for the whole iteration.
            for pd in unsafe { list.iter() } {
                // SAFETY: vm lock held.
                listed_free += unsafe { (*pd).inner() }.span_pages as usize;
            }
        }
        assert_eq!(listed_free, walked_free, "span freelists out of sync");
        assert_eq!(
            self.space.phys().in_use(),
            expected_phys,
            "physical-frame accounting drifted"
        );
    }

    fn bucket(len: usize) -> usize {
        if len <= MAX_SEG {
            len
        } else {
            0
        }
    }

    /// Finds (without detaching) a free span of at least `npages`.
    /// Returns `(header, start index, span length)`.
    fn find_span(
        &self,
        inner: &mut VmInner,
        npages: usize,
    ) -> Option<(*mut VmblkHeader, usize, usize)> {
        // Exact and near-exact lists first.
        for k in npages..=MAX_SEG {
            if let Some(pd) = inner.lists[k].front() {
                return Some(self.locate(pd, k));
            }
        }
        // First fit among the long spans.
        // SAFETY: vm lock held (we have `&mut VmInner`).
        for pd in unsafe { inner.lists[0].iter() } {
            // SAFETY: vm lock held.
            let len = unsafe { (*pd).inner() }.span_pages as usize;
            if len >= npages {
                return Some(self.locate(pd, len));
            }
        }
        None
    }

    /// Maps a descriptor pointer back to `(header, page index, len)` using
    /// the dope vector (descriptors live inside their vmblk, so the same
    /// two-level lookup that resolves blocks resolves them).
    fn locate(&self, pd: *mut PageDesc, len: usize) -> (*mut VmblkHeader, usize, usize) {
        let tag = self
            .space
            .dope_lookup(pd as usize)
            .expect("descriptor of an unpublished vmblk");
        let hdr = tag as *mut VmblkHeader;
        let idx = (pd as usize - (hdr as usize + PD_OFFSET)) / PD_STRIDE;
        (hdr, idx, len)
    }

    /// Links a free span into the lists and writes its boundary tags.
    ///
    /// # Safety
    ///
    /// vm lock held; the pages `[idx, idx + len)` of `hdr` are free and in
    /// no list.
    unsafe fn insert_free_span(
        &self,
        inner: &mut VmInner,
        hdr: *mut VmblkHeader,
        idx: usize,
        len: usize,
    ) {
        debug_assert!(len >= 1);
        // SAFETY: `hdr` is live; `idx` in range per contract.
        let hdr_ref = unsafe { &*hdr };
        let head = hdr_ref.pd(idx);
        // SAFETY: vm lock held per contract.
        unsafe {
            (*head).inner().span_pages = len as u32;
            inner.lists[Self::bucket(len)].push_front(head);
        }
        // SAFETY: as above.
        unsafe { &*head }.set_kind(PdKind::SpanFreeHead);
        if len >= 2 {
            let tail = hdr_ref.pd(idx + len - 1);
            // SAFETY: vm lock held per contract.
            unsafe { (*tail).inner().span_pages = len as u32 };
            // SAFETY: as above.
            unsafe { &*tail }.set_kind(PdKind::SpanFreeTail);
        }
    }

    /// Detaches a free span from the lists and clears its boundary tags.
    ///
    /// # Safety
    ///
    /// vm lock held; `(hdr, idx, len)` is a listed free span.
    unsafe fn remove_free_span(
        &self,
        inner: &mut VmInner,
        hdr: *mut VmblkHeader,
        idx: usize,
        len: usize,
    ) {
        // SAFETY: `hdr` is live; `idx` in range per contract.
        let hdr_ref = unsafe { &*hdr };
        let head = hdr_ref.pd(idx);
        debug_assert_eq!(unsafe { &*head }.kind(), PdKind::SpanFreeHead);
        // SAFETY: vm lock held; `head` is listed per contract.
        unsafe { inner.lists[Self::bucket(len)].remove(head) };
        // SAFETY: as above.
        unsafe { &*head }.set_kind(PdKind::Unused);
        if len >= 2 {
            let tail = hdr_ref.pd(idx + len - 1);
            debug_assert_eq!(unsafe { &*tail }.kind(), PdKind::SpanFreeTail);
            // SAFETY: as above.
            unsafe { &*tail }.set_kind(PdKind::Unused);
        }
    }

    /// Carves, initializes, and publishes a new vmblk (header frames
    /// preferring node `preferred`); its whole data area becomes one free
    /// span.
    fn create_vmblk(&self, inner: &mut VmInner, preferred: NodeId) -> Result<(), VmError> {
        let region = self.space.alloc_vmblk()?;
        let total_pages = region.size() >> PAGE_SHIFT;
        let (header_pages, ndata) = geometry(total_pages);
        let home = match self.space.phys().claim_on(preferred, header_pages) {
            Ok(node) => node,
            Err(e) => {
                self.space.free_vmblk(region);
                return Err(e);
            }
        };
        let base = region.base().as_ptr();
        // SAFETY: the region is ours; the header fits in the header pages.
        unsafe {
            base.cast::<VmblkHeader>().write(VmblkHeader {
                region,
                header_pages,
                ndata,
                home,
                free_pages: AtomicUsize::new(ndata),
                next: AtomicPtr::new(inner.vmblks),
            });
        }
        let hdr = base.cast::<VmblkHeader>();
        for i in 0..ndata {
            // SAFETY: descriptor slots are inside the header area we own.
            unsafe { PageDesc::init((*hdr).pd(i)) };
        }
        inner.vmblks = hdr;
        inner.nvmblks += 1;
        // Publish *before* inserting the span: `locate` resolves
        // descriptors through the dope vector.
        self.space.set_dope(region.index(), hdr as usize);
        // SAFETY: vm lock held; the whole data area is free and unlisted.
        unsafe { self.insert_free_span(inner, hdr, 0, ndata) };
        self.stats.vmblks_created.inc();
        Ok(())
    }

    /// Returns a fully free vmblk to the kernel space.
    ///
    /// # Safety
    ///
    /// vm lock held; every data page of `hdr` is free (one listed span).
    unsafe fn release_vmblk(&self, inner: &mut VmInner, hdr: *mut VmblkHeader) {
        // SAFETY: `hdr` is live until `free_vmblk` below.
        let hdr_ref = unsafe { &*hdr };
        let region = hdr_ref.region;
        let header_pages = hdr_ref.header_pages;
        let home = hdr_ref.home;
        let ndata = hdr_ref.ndata;
        // SAFETY: vm lock held; the vmblk-wide span is listed per contract.
        unsafe { self.remove_free_span(inner, hdr, 0, ndata) };
        // Unlink from the vmblk list.
        let mut cur = &mut inner.vmblks;
        loop {
            debug_assert!(!cur.is_null(), "vmblk missing from its own list");
            if *cur == hdr {
                // SAFETY: `*cur` is live while on the list.
                *cur = unsafe { (**cur).next.load(Ordering::Relaxed) };
                break;
            }
            // SAFETY: list members are live.
            cur = unsafe { &mut *(**cur).next.as_ptr() };
        }
        inner.nvmblks -= 1;
        self.stats.vmblks_released.inc();
        self.space.phys().release_on(home, header_pages);
        self.space.free_vmblk(region);
    }
}

impl Drop for VmblkLayer {
    fn drop(&mut self) {
        // Nothing to do: the reservation and the accounting pool belong to
        // the kernel space, which outlives this layer via the `Arc`.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem_vm::SpaceConfig;

    fn layer() -> VmblkLayer {
        // 16 KB vmblks (4 pages) inside a 1 MB space.
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(256),
        ));
        VmblkLayer::new(space, true)
    }

    #[test]
    fn geometry_single_header_page_for_tiny_vmblks() {
        // 4 pages: header 1, data 3.
        assert_eq!(geometry(4), (1, 3));
        // The paper's 4 MB vmblk: 1024 pages, 64-byte descriptors fit in
        // 16 pages alongside the header.
        let (h, d) = geometry(1024);
        assert_eq!(h + d, 1024);
        assert!(h * PAGE_SIZE >= PD_OFFSET + d * PD_STRIDE);
        assert!((h - 1) * PAGE_SIZE < PD_OFFSET + (d + 1) * PD_STRIDE);
    }

    #[test]
    fn alloc_free_single_page_round_trip() {
        let l = layer();
        let before = l.space().phys().in_use();
        assert_eq!(before, 0);
        let (addr, pd) = l.alloc_span(1).unwrap();
        assert_eq!(pd.kind(), PdKind::Unused);
        // One data frame plus one header frame.
        assert_eq!(l.space().phys().in_use(), 2);
        assert_eq!(l.nvmblks(), 1);
        // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(addr, 1) };
        // Fully free vmblk is released: all frames returned.
        assert_eq!(l.space().phys().in_use(), 0);
        assert_eq!(l.nvmblks(), 0);
    }

    #[test]
    fn spans_coalesce_in_any_free_order() {
        let l = layer();
        // Three single pages from one 3-page data area.
        let (a, _) = l.alloc_span(1).unwrap();
        let (b, _) = l.alloc_span(1).unwrap();
        let (c, _) = l.alloc_span(1).unwrap();
        assert_eq!(l.nvmblks(), 1);
        // Free in middle-last-first order: must coalesce back to one span
        // and release the vmblk.
        // SAFETY: spans just allocated, unreferenced.
        unsafe {
            l.free_span(b, 1);
            l.free_span(c, 1);
            assert_eq!(l.nvmblks(), 1);
            l.free_span(a, 1);
        }
        assert_eq!(l.nvmblks(), 0);
        assert_eq!(l.space().phys().in_use(), 0);
    }

    #[test]
    fn multi_page_span_and_split() {
        let l = layer();
        let (a, _) = l.alloc_span(2).unwrap();
        let (b, _) = l.alloc_span(1).unwrap();
        // Same vmblk: 3 data pages split 2 + 1.
        assert_eq!(l.nvmblks(), 1);
        // SAFETY: spans just allocated, unreferenced.
        unsafe {
            l.free_span(a, 2);
            l.free_span(b, 1);
        }
        assert_eq!(l.nvmblks(), 0);
    }

    #[test]
    fn spills_into_second_vmblk() {
        let l = layer();
        let mut spans = Vec::new();
        for _ in 0..4 {
            spans.push(l.alloc_span(1).unwrap().0);
        }
        assert_eq!(l.nvmblks(), 2);
        for s in spans {
            // SAFETY: spans just allocated, unreferenced.
            unsafe { l.free_span(s, 1) };
        }
        assert_eq!(l.nvmblks(), 0);
        assert_eq!(l.space().phys().in_use(), 0);
    }

    #[test]
    fn large_alloc_round_trip_and_pd_marking() {
        let l = layer();
        let addr = l.alloc_large(2 * PAGE_SIZE + 1).unwrap();
        let pd = l.pd_of(addr.as_ptr() as usize).unwrap();
        assert_eq!(pd.kind(), PdKind::Large);
        // 3 data frames + 1 header frame.
        assert_eq!(l.space().phys().in_use(), 4);
        // SAFETY: block just allocated, unreferenced.
        let pages = unsafe { l.free_large(addr) };
        assert_eq!(pages, 3);
        assert_eq!(l.space().phys().in_use(), 0);
    }

    #[test]
    fn request_beyond_vmblk_capacity_fails_cleanly() {
        let l = layer();
        // Data capacity is 3 pages.
        assert_eq!(l.max_span_pages(), 3);
        let err = l.alloc_span(4).unwrap_err();
        assert_eq!(err, VmError::OutOfVirtual);
        // Nothing leaked: the probe vmblk stays but holds no claimed data
        // frames beyond its header... in fact the failed path releases
        // everything it claimed.
        let in_use = l.space().phys().in_use();
        // One empty vmblk may remain cached (created during the attempt).
        l.for_each_vmblk(|h| assert_eq!(h.free_pages(), h.ndata()));
        assert!(in_use <= 1);
    }

    #[test]
    fn phys_exhaustion_fails_before_touching_spans() {
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(3),
        ));
        let l = VmblkLayer::new(space, true);
        // Header takes 1 frame; 2 data frames remain.
        let (a, _) = l.alloc_span(1).unwrap();
        let (_b, _) = l.alloc_span(1).unwrap();
        assert!(matches!(
            l.alloc_span(1),
            Err(VmError::OutOfPhysical { .. })
        ));
        // Freeing lets allocation succeed again.
        // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(a, 1) };
        let (_c, _) = l.alloc_span(1).unwrap();
    }

    #[test]
    fn header_and_pd_lookup_resolve_interior_addresses() {
        let l = layer();
        let (addr, _) = l.alloc_span(2).unwrap();
        let mid = addr.as_ptr() as usize + PAGE_SIZE + 17;
        let hdr = l.header_of(mid).unwrap();
        assert_eq!(hdr.ndata(), 3);
        assert!(l.pd_of(mid).is_some());
        // Unmanaged addresses resolve to None.
        let foreign = Box::new(0u8);
        assert!(l.header_of(&*foreign as *const u8 as usize).is_none());
        // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(addr, 2) };
    }

    #[test]
    fn keep_empty_vmblks_when_configured() {
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(256),
        ));
        let l = VmblkLayer::new(space, false);
        let (a, _) = l.alloc_span(1).unwrap();
        // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(a, 1) };
        assert_eq!(l.nvmblks(), 1);
        // Data frames returned; header frame retained.
        assert_eq!(l.space().phys().in_use(), 1);
        // And the retained vmblk is reused, not leaked.
        let (_b, _) = l.alloc_span(2).unwrap();
        assert_eq!(l.nvmblks(), 1);
    }

    fn cached_layer(faults: Faults) -> VmblkLayer {
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(256),
        ));
        VmblkLayer::new_with_cache(space, true, faults)
    }

    #[test]
    fn page_cache_parks_and_reuses_whole_pages() {
        let l = cached_layer(Faults::none());
        let (a, _) = l.alloc_span(1).unwrap();
        // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(a, 1) };
        // Parked, not merged: the vmblk stays pinned (header frame only),
        // the data frame is already back in the pool.
        assert_eq!(l.nvmblks(), 1);
        assert_eq!(l.space().phys().in_use(), 1);
        assert_eq!(l.stats().cache_puts.get(), 1);
        l.verify();
        // The next single-page request is served straight from the cache.
        let (b, _) = l.alloc_span(1).unwrap();
        assert_eq!(b, a);
        assert_eq!(l.stats().cache_hits.get(), 1);
        // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(b, 1) };
        l.drain_page_cache();
        // Drained: the page merges back, the vmblk becomes entirely free
        // and is released.
        assert_eq!(l.nvmblks(), 0);
        assert_eq!(l.space().phys().in_use(), 0);
        l.verify();
    }

    #[test]
    fn span_request_drains_cache_into_merge_path() {
        let l = cached_layer(Faults::none());
        let (a, _) = l.alloc_span(1).unwrap();
        let (b, _) = l.alloc_span(1).unwrap();
        let (c, _) = l.alloc_span(1).unwrap();
        // SAFETY: spans just allocated, unreferenced.
        unsafe {
            l.free_span(a, 1);
            l.free_span(b, 1);
            l.free_span(c, 1);
        }
        // All three pages parked: no free span anywhere.
        assert_eq!(l.stats().cache_puts.get(), 3);
        assert_eq!(l.free_span_pages(), 0);
        // A multi-page request cannot hit the cache; the slow path drains
        // the parked pages back into the boundary-tag structure, where
        // they coalesce, before carving a new vmblk.
        let d = l.alloc_large(2 * PAGE_SIZE).unwrap();
        l.verify();
        // SAFETY: block just allocated, unreferenced.
        unsafe { l.free_large(d) };
        l.drain_page_cache();
        assert_eq!(l.nvmblks(), 0);
        assert_eq!(l.space().phys().in_use(), 0);
    }

    #[test]
    fn vmblk_cache_fault_covers_put_and_get_paths() {
        let faults = Faults::with_plan();
        let plan = Arc::clone(faults.plan().unwrap());
        let l = cached_layer(faults);
        plan.set(
            kmem_smp::faults::VMBLK_CACHE,
            kmem_smp::FailPolicy::Script(vec![false, false, true, true, false, false]),
        );
        let (a, _) = l.alloc_span(1).unwrap(); // consult 1: cache empty anyway
                                               // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(a, 1) }; // consult 2: parked
        assert_eq!(l.stats().cache_puts.get(), 1);
        // Fault on the get: the parked page is ignored, the boundary-tag
        // path serves a different page of the same vmblk.
        let (b, _) = l.alloc_span(1).unwrap(); // consult 3: FIRE
        assert_ne!(b, a);
        assert_eq!(l.stats().cache_hits.get(), 0);
        // Fault on the put: the free takes the locked merge path.
        // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(b, 1) }; // consult 4: FIRE
        assert_eq!(l.stats().cache_puts.get(), 1);
        l.verify();
        // Faults exhausted: the cache works again end to end.
        let (c, _) = l.alloc_span(1).unwrap(); // consult 5: cache hit
        assert_eq!(c, a);
        assert_eq!(l.stats().cache_hits.get(), 1);
        // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(c, 1) }; // consult 6: parked
        let st = plan
            .site_stats()
            .into_iter()
            .find(|s| s.site == kmem_smp::faults::VMBLK_CACHE)
            .unwrap();
        assert_eq!((st.hits, st.fired), (6, 2));
        l.drain_page_cache();
        assert_eq!(l.space().phys().in_use(), 0);
        l.verify();
    }

    #[test]
    fn node_preference_places_and_returns_frames_on_the_home_node() {
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20)
                .vmblk_shift(14)
                .phys_pages(256)
                .nodes(2),
        ));
        let l = VmblkLayer::new(space, true);
        let one = NodeId::new(1);
        let (a, pd) = l.alloc_span_on(1, one).unwrap();
        assert_eq!(pd.home_node(), one);
        // Header and data frames both landed on the preferred node.
        assert_eq!(l.space().phys().node(one).in_use(), 2);
        assert_eq!(l.space().phys().node(NodeId::new(0)).in_use(), 0);
        // SAFETY: span just allocated, unreferenced.
        unsafe { l.free_span(a, 1) };
        // Release went back to the same node: both shards read zero.
        assert_eq!(l.space().phys().in_use(), 0);
        assert_eq!(l.space().phys().node(one).in_use(), 0);
    }

    #[test]
    fn page_cache_is_sharded_by_home_node() {
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(1 << 20)
                .vmblk_shift(14)
                .phys_pages(256)
                .nodes(2),
        ));
        let l = VmblkLayer::new_with_cache(space, true, Faults::none());
        let (n0, n1) = (NodeId::new(0), NodeId::new(1));
        let (a, pda) = l.alloc_span_on(1, n0).unwrap();
        let (b, pdb) = l.alloc_span_on(1, n1).unwrap();
        assert_eq!(pda.home_node(), n0);
        assert_eq!(pdb.home_node(), n1);
        // SAFETY: spans just allocated, unreferenced.
        unsafe {
            l.free_span(a, 1);
            l.free_span(b, 1);
        }
        assert_eq!(l.stats().cache_puts.get(), 2);
        // A node-1 request takes the page parked on node 1's cache...
        let (c, pdc) = l.alloc_span_on(1, n1).unwrap();
        assert_eq!(c, b);
        assert_eq!(pdc.home_node(), n1);
        // ...and with that cache empty, the node-0 page is the fallback.
        let (d, _) = l.alloc_span_on(1, n1).unwrap();
        assert_eq!(d, a);
        assert_eq!(l.stats().cache_hits.get(), 2);
        // SAFETY: spans just allocated, unreferenced.
        unsafe {
            l.free_span(c, 1);
            l.free_span(d, 1);
        }
        l.drain_page_cache();
        assert_eq!(l.space().phys().in_use(), 0);
        l.verify();
    }

    #[test]
    fn free_span_accounting_matches_walker() {
        let l = layer();
        let (a, _) = l.alloc_span(1).unwrap();
        assert_eq!(l.free_span_pages(), 2);
        let (b, _) = l.alloc_span(2).unwrap();
        assert_eq!(l.free_span_pages(), 0);
        // SAFETY: spans just allocated, unreferenced.
        unsafe {
            l.free_span(a, 1);
            l.free_span(b, 2);
        }
        assert_eq!(l.free_span_pages(), 0); // vmblk released entirely
    }
}
