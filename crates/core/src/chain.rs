//! Counted chains of free blocks — the unit of transfer between layers.
//!
//! The paper's key amortization is that "blocks are moved in target-sized
//! groups, preventing unnecessary linked-list operations": a whole chain of
//! `target` blocks moves between the per-CPU and global layers with O(1)
//! pointer surgery. A [`Chain`] is such a group: an intrusive singly linked
//! list with head, tail, and count, so push/pop are O(1) at the head and
//! concatenation is O(1) via the tail.
//!
//! Every chain carries the [`LinkKey`] its links are encoded under. With
//! the plain key (the default profile) link accesses compile to the bare
//! loads and stores they always were; with a hardened key every decoded
//! link is checked for *plausibility* before the chain walks into it, and
//! a clobbered link surfaces as a latched [`ChainFault`] (alloc path) or
//! a typed [`Chain::try_split_first`] error (regroup paths) instead of a
//! wild dereference. All walks were already bounded by the chain's
//! counted length, so a corrupt link can truncate a walk but never turn
//! it into an unbounded loop.

use core::ptr;

use crate::block::{self, LinkKey};

/// A clobbered-link detection latched by a chain operation.
///
/// `addr` is the block whose link word decoded to an implausible value;
/// `lost` is how many blocks (including that one) the chain sank — they
/// are unreachable through the corrupt link, so the chain drops them from
/// its accounting rather than dereference garbage. The arena adds `lost`
/// to its per-class sunk-block count so conservation stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainFault {
    /// Address of the block with the corrupt link word.
    pub addr: usize,
    /// Blocks sunk (made unreachable) by the detection.
    pub lost: usize,
}

/// A counted, intrusive, singly linked chain of free blocks.
///
/// Owns the blocks it links (they are free memory belonging to the
/// allocator); all blocks in one chain belong to the same size class and
/// are linked under the same [`LinkKey`].
pub struct Chain {
    head: *mut u8,
    tail: *mut u8,
    len: usize,
    key: LinkKey,
    fault: Option<ChainFault>,
}

// SAFETY: a `Chain` owns its free blocks outright; sending it to another
// thread transfers that ownership wholesale, the same way the global layer
// hands chains between CPUs.
unsafe impl Send for Chain {}

impl Chain {
    /// Creates an empty chain with the plain (identity) link encoding.
    pub const fn new() -> Self {
        Chain::new_keyed(LinkKey::PLAIN)
    }

    /// Creates an empty chain whose links are encoded under `key`.
    pub const fn new_keyed(key: LinkKey) -> Self {
        Chain {
            head: ptr::null_mut(),
            tail: ptr::null_mut(),
            len: 0,
            key,
            fault: None,
        }
    }

    /// The link encoding key of this chain.
    #[inline]
    pub fn key(&self) -> LinkKey {
        self.key
    }

    /// Number of blocks in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns whether the chain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Takes the fault latched by a failed [`Chain::pop`] link check, if
    /// any. The arena consults this after a miss on the hardened alloc
    /// path to turn the sunk blocks into a typed corruption report.
    #[inline]
    pub fn take_fault(&mut self) -> Option<ChainFault> {
        self.fault.take()
    }

    /// Sinks the whole chain: the blocks are unreachable (a link among
    /// them is corrupt), so drop them from the accounting and latch the
    /// fault for the owner to report.
    fn sink(&mut self, addr: usize) -> ChainFault {
        let fault = ChainFault {
            addr,
            lost: self.len,
        };
        self.fault = Some(fault);
        self.head = ptr::null_mut();
        self.tail = ptr::null_mut();
        self.len = 0;
        fault
    }

    /// Pushes a free block onto the head.
    ///
    /// # Safety
    ///
    /// `block` must be a free block of this chain's size class, owned by
    /// the caller, and in no other list.
    #[inline]
    pub unsafe fn push(&mut self, block: *mut u8) {
        debug_assert!(!block.is_null());
        // SAFETY: `block` is a free block per the contract.
        unsafe { block::write_next(block, self.head, self.key) };
        if self.head.is_null() {
            self.tail = block;
        }
        self.head = block;
        self.len += 1;
    }

    /// Returns the head block without removing it.
    #[inline]
    pub fn peek(&self) -> Option<*mut u8> {
        (!self.head.is_null()).then_some(self.head)
    }

    /// Pops a block from the head.
    ///
    /// Under a hardened key the head's decoded link is checked before it
    /// becomes the new head: an implausible link means the freed head was
    /// scribbled on, so the chain sinks itself (head included — its link
    /// word is gone, and the rest are unreachable through it), latches a
    /// [`ChainFault`], and returns `None`.
    #[inline]
    pub fn pop(&mut self) -> Option<*mut u8> {
        if self.head.is_null() {
            return None;
        }
        let block = self.head;
        // SAFETY: `block` is the head of this chain, so it is a free block
        // whose link word we wrote.
        let next = unsafe { block::read_next(block, self.key) };
        if !self.key.is_plain() && !self.key.plausible(next) {
            self.sink(block as usize);
            return None;
        }
        self.head = next;
        if self.head.is_null() {
            self.tail = ptr::null_mut();
        }
        self.len -= 1;
        Some(block)
    }

    /// Appends `other` in O(1); `other` becomes empty (its key is kept).
    ///
    /// # Panics
    ///
    /// Under a hardened key, panics if `self`'s tail link was clobbered
    /// (it must decode to null): splicing through it would silently lose
    /// the appended blocks.
    pub fn append(&mut self, other: &mut Chain) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            // Adopt `other` wholesale (blocks, key, any latched fault),
            // but leave `other` its key for reuse.
            let other_key = other.key;
            *self = core::mem::take(other);
            other.key = other_key;
            return;
        }
        if !self.key.is_plain() {
            // SAFETY: `self.tail` is the last block of a chain we own.
            let tail_next = unsafe { block::read_next(self.tail, self.key) };
            assert!(
                tail_next.is_null(),
                "corrupted freelist link: tail {:p} of a {}-block chain no \
                 longer ends the list",
                self.tail,
                self.len
            );
        }
        // SAFETY: `self.tail` is the last block of a non-empty chain we
        // own, and `other.head` is a free block we are taking ownership of.
        unsafe { block::write_next(self.tail, other.head, self.key) };
        self.tail = other.tail;
        self.len += other.len;
        // The blocks now belong to `self`; clear `other` without dropping
        // (assignment would trip the leak detector on the stale length).
        other.forget();
    }

    /// Takes the whole chain, leaving `self` empty but keeping its key.
    #[inline]
    pub fn take(&mut self) -> Chain {
        let key = self.key;
        let taken = core::mem::take(self);
        self.key = key;
        taken
    }

    /// Splits off and returns the first `n` blocks (walks `n` links).
    ///
    /// This is the O(`target`) operation the global layer's *bucket list*
    /// performs to regroup odd blocks into target-sized chains.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()` or `n == 0`, or — under a hardened
    /// key — if the walk meets a corrupted link (callers that can turn
    /// that into a typed error use [`Chain::try_split_first`]).
    pub fn split_first(&mut self, n: usize) -> Chain {
        match self.try_split_first(n) {
            Ok(chain) => chain,
            Err(fault) => panic!(
                "corrupted freelist link at {:#x} ({} blocks sunk)",
                fault.addr, fault.lost
            ),
        }
    }

    /// Splits off the first `n` blocks, validating every link the walk
    /// reads when the key is hardened. On a corrupt link the whole chain
    /// is sunk (nothing past the clobbered word is reachable, and blocks
    /// before it may alias the corruption) and the fault is returned; the
    /// caller reports it and accounts the lost blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()` or `n == 0`.
    pub fn try_split_first(&mut self, n: usize) -> Result<Chain, ChainFault> {
        assert!(n > 0 && n <= self.len, "split_first out of range");
        let validate = !self.key.is_plain();
        if n == self.len && !validate {
            return Ok(self.take());
        }
        let head = self.head;
        let mut tail = head;
        // The walk is bounded by the chain's counted length (`n` links),
        // never by trusting the links themselves.
        for _ in 1..n {
            // SAFETY: we stay within the first `n` blocks of a chain we
            // own, all of which have valid link words.
            let next = unsafe { block::read_next(tail, self.key) };
            if validate && (!self.key.plausible(next) || next.is_null()) {
                return Err(self.sink(tail as usize));
            }
            tail = next;
        }
        // SAFETY: `tail` is a block we own; cutting the link here detaches
        // the prefix.
        let rest_head = unsafe { block::read_next(tail, self.key) };
        if n == self.len {
            // Whole-chain split under a hardened key: the walk above
            // validated every interior link, and the tail must still end
            // the list.
            if !rest_head.is_null() {
                return Err(self.sink(tail as usize));
            }
            return Ok(self.take());
        }
        if validate && (!self.key.plausible(rest_head) || rest_head.is_null()) {
            return Err(self.sink(tail as usize));
        }
        // SAFETY: as above.
        unsafe { block::write_next(tail, ptr::null_mut(), self.key) };
        self.head = rest_head;
        self.len -= n;
        Ok(Chain {
            head,
            tail,
            len: n,
            key: self.key,
            fault: None,
        })
    }

    /// Decomposes the chain into `(head, tail, len)` raw parts without
    /// running the leak detector — the lock-free global stack threads the
    /// blocks through itself and rebuilds the chain with
    /// [`Chain::from_raw`] on pop.
    pub(crate) fn into_raw(mut self) -> (*mut u8, *mut u8, usize) {
        let parts = (self.head, self.tail, self.len);
        self.forget();
        parts
    }

    /// Reassembles a chain from raw parts.
    ///
    /// # Safety
    ///
    /// `(head, tail, len)` must describe a well-formed chain the caller
    /// owns: `len` blocks linked head-to-tail under `key` with a null
    /// final link — e.g. parts from [`Chain::into_raw`] whose links were
    /// restored.
    pub(crate) unsafe fn from_raw(head: *mut u8, tail: *mut u8, len: usize, key: LinkKey) -> Chain {
        debug_assert!(!head.is_null() && !tail.is_null() && len > 0);
        Chain {
            head,
            tail,
            len,
            key,
            fault: None,
        }
    }

    /// Abandons the chain's blocks without returning them to any layer.
    ///
    /// Only for arena teardown, where the whole reservation is released at
    /// once and per-block bookkeeping no longer matters.
    pub fn forget(&mut self) {
        self.head = ptr::null_mut();
        self.tail = ptr::null_mut();
        self.len = 0;
    }

    /// Iterates over the block pointers without consuming the chain
    /// (verification and tests only).
    pub fn iter(&self) -> ChainIter<'_> {
        ChainIter {
            next: self.head,
            remaining: self.len,
            key: self.key,
            _chain: core::marker::PhantomData,
        }
    }
}

impl core::fmt::Debug for Chain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Chain(len={})", self.len)
    }
}

impl Default for Chain {
    fn default() -> Self {
        Chain::new()
    }
}

impl Drop for Chain {
    fn drop(&mut self) {
        // Chains of real blocks must be given back to a layer, never
        // dropped: dropping would leak the blocks out of the arena's
        // accounting. (Empty chains are dropped constantly.)
        debug_assert!(
            self.is_empty(),
            "dropped a chain still holding {} blocks",
            self.len
        );
    }
}

/// Iterator over the blocks of a [`Chain`].
pub struct ChainIter<'a> {
    next: *mut u8,
    remaining: usize,
    key: LinkKey,
    _chain: core::marker::PhantomData<&'a Chain>,
}

impl Iterator for ChainIter<'_> {
    type Item = *mut u8;

    fn next(&mut self) -> Option<*mut u8> {
        if self.remaining == 0 {
            return None;
        }
        let block = self.next;
        debug_assert!(!block.is_null());
        // SAFETY: the borrowed chain owns `block`; its link word is valid.
        self.next = unsafe { block::read_next(block, self.key) };
        self.remaining -= 1;
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake block, 16-aligned like real carved blocks: hardened keys
    /// reject links that are not `MIN_BLOCK`-aligned.
    #[derive(Clone)]
    #[repr(align(16))]
    struct Block([u8; 32]);

    // Boxed so each block keeps a stable address while the Vec grows.
    #[expect(clippy::vec_box)]
    /// Backing store for fake blocks.
    fn arena(n: usize) -> Vec<Box<Block>> {
        (0..n).map(|_| Box::new(Block([0u8; 32]))).collect()
    }

    fn chain_of(blocks: &mut [Box<Block>]) -> Chain {
        let mut c = Chain::new();
        for b in blocks {
            // SAFETY: each boxed block is owned and disjoint.
            unsafe { c.push(b.0.as_mut_ptr()) };
        }
        c
    }

    /// A hardened key whose reservation bounds cover the fake blocks.
    fn key_over(blocks: &[Box<Block>]) -> LinkKey {
        let lo = blocks
            .iter()
            .map(|b| b.0.as_ptr() as usize)
            .min()
            .unwrap_or(0);
        let hi = blocks
            .iter()
            .map(|b| b.0.as_ptr() as usize)
            .max()
            .unwrap_or(0);
        LinkKey::hardened(0x0dd5_eed5_0fa2_0a55_u64 as usize, lo, hi + 32)
    }

    fn keyed_chain_of(key: LinkKey, blocks: &mut [Box<Block>]) -> Chain {
        let mut c = Chain::new_keyed(key);
        for b in blocks {
            // SAFETY: each boxed block is owned and disjoint.
            unsafe { c.push(b.0.as_mut_ptr()) };
        }
        c
    }

    fn drain(mut c: Chain) -> Vec<*mut u8> {
        let mut v = Vec::new();
        while let Some(b) = c.pop() {
            v.push(b);
        }
        v
    }

    #[test]
    fn push_pop_is_lifo() {
        let mut store = arena(3);
        let ptrs: Vec<_> = store.iter_mut().map(|b| b.0.as_mut_ptr()).collect();
        let mut c = chain_of(&mut store);
        assert_eq!(c.len(), 3);
        assert_eq!(c.pop(), Some(ptrs[2]));
        assert_eq!(c.pop(), Some(ptrs[1]));
        assert_eq!(c.pop(), Some(ptrs[0]));
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn keyed_chain_round_trips_like_plain() {
        let mut store = arena(5);
        let key = key_over(&store);
        let ptrs: Vec<_> = store.iter_mut().map(|b| b.0.as_mut_ptr()).collect();
        let mut c = keyed_chain_of(key, &mut store);
        assert_eq!(c.iter().collect::<Vec<_>>().len(), 5);
        let first = c.split_first(2);
        assert_eq!(first.len(), 2);
        assert_eq!(first.key(), key);
        assert_eq!(drain(first), vec![ptrs[4], ptrs[3]]);
        assert_eq!(drain(c), vec![ptrs[2], ptrs[1], ptrs[0]]);
    }

    #[test]
    fn keyed_pop_sinks_on_clobbered_link() {
        let mut store = arena(4);
        let key = key_over(&store);
        let mut c = keyed_chain_of(key, &mut store);
        let head = c.peek().unwrap();
        // A use-after-free scribble over the head's (encoded) link word.
        // SAFETY: the fake block is owned by the test.
        unsafe { (head as *mut usize).write(0x4141_4141_4141_4141) };
        assert_eq!(c.pop(), None, "a clobbered link must not be walked");
        assert!(c.is_empty(), "the unreachable remainder is sunk");
        let fault = c.take_fault().expect("fault must be latched");
        assert_eq!(fault.addr, head as usize);
        assert_eq!(fault.lost, 4);
        assert!(c.take_fault().is_none(), "take_fault drains the latch");
    }

    #[test]
    fn keyed_split_returns_typed_fault_on_clobbered_link() {
        let mut store = arena(5);
        let key = key_over(&store);
        let mut c = keyed_chain_of(key, &mut store);
        let second = c.iter().nth(1).unwrap();
        // SAFETY: the fake block is owned by the test.
        unsafe { (second as *mut usize).write(!0) };
        let fault = c.try_split_first(4).unwrap_err();
        assert_eq!(fault.addr, second as usize);
        assert_eq!(fault.lost, 5);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "corrupted freelist link")]
    fn keyed_split_first_panics_on_clobbered_link() {
        let mut store = arena(3);
        let key = key_over(&store);
        let mut c = keyed_chain_of(key, &mut store);
        let head = c.peek().unwrap();
        // SAFETY: the fake block is owned by the test.
        unsafe { (head as *mut usize).write(0xbad0_beef) };
        let _ = c.split_first(2);
    }

    #[test]
    #[should_panic(expected = "corrupted freelist link")]
    fn keyed_append_panics_on_clobbered_tail() {
        let mut s1 = arena(2);
        let mut s2 = arena(2);
        let all: Vec<_> = s1.iter().chain(s2.iter()).cloned().collect();
        let key = key_over(&all);
        // The panic unwinds past chains still holding blocks; ManuallyDrop
        // keeps their leak-detecting Drop from turning that into an abort
        // (the blocks themselves are owned by the test arenas).
        let mut a = core::mem::ManuallyDrop::new(keyed_chain_of(key, &mut s1));
        let mut b = core::mem::ManuallyDrop::new(keyed_chain_of(key, &mut s2));
        let tail = a.iter().last().unwrap();
        // SAFETY: the fake block is owned by the test.
        unsafe { (tail as *mut usize).write(0x1337) };
        a.append(&mut b);
    }

    #[test]
    fn take_preserves_the_key() {
        let mut store = arena(2);
        let key = key_over(&store);
        let mut c = keyed_chain_of(key, &mut store);
        let taken = c.take();
        assert_eq!(taken.key(), key);
        assert_eq!(c.key(), key, "the emptied chain keeps its key");
        // Refill the original through push: links must use the same key.
        let mut more = arena(1);
        // SAFETY: owned fake block.
        unsafe { c.push(more[0].0.as_mut_ptr()) };
        assert_eq!(c.len(), 1);
        drain(taken);
        drain(c);
    }

    #[test]
    fn append_is_order_preserving_and_emptying() {
        let mut s1 = arena(2);
        let mut s2 = arena(2);
        let mut a = chain_of(&mut s1);
        let mut b = chain_of(&mut s2);
        let expect: Vec<_> = s1
            .iter_mut()
            .rev()
            .chain(s2.iter_mut().rev())
            .map(|x| x.0.as_mut_ptr())
            .collect();
        a.append(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.len(), 4);
        assert_eq!(drain(a), expect);
    }

    #[test]
    fn append_into_empty_moves() {
        let mut s = arena(2);
        let key = key_over(&s);
        let mut a = Chain::new_keyed(key);
        let mut b = keyed_chain_of(key, &mut s);
        a.append(&mut b);
        assert_eq!(a.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.key(), key, "append leaves the emptied chain its key");
        // Tail is usable after the move: push then pop everything.
        let mut extra = arena(1);
        let mut c = Chain::new_keyed(key);
        // SAFETY: owned fake block.
        unsafe { c.push(extra[0].0.as_mut_ptr()) };
        c.append(&mut a);
        assert_eq!(c.len(), 3);
        assert_eq!(drain(c).len(), 3);
    }

    #[test]
    fn split_first_takes_prefix() {
        let mut s = arena(5);
        let mut c = chain_of(&mut s);
        let all: Vec<_> = c.iter().collect();
        let first = c.split_first(2);
        assert_eq!(first.len(), 2);
        assert_eq!(c.len(), 3);
        assert_eq!(drain(first), all[..2].to_vec());
        assert_eq!(drain(c), all[2..].to_vec());
    }

    #[test]
    fn split_first_whole_chain() {
        let mut s = arena(3);
        let mut c = chain_of(&mut s);
        let first = c.split_first(3);
        assert_eq!(first.len(), 3);
        assert!(c.is_empty());
        drain(first);
    }

    #[test]
    fn tail_is_valid_after_split() {
        let mut s = arena(4);
        let mut c = chain_of(&mut s);
        let pre = c.split_first(2);
        // Appending to the remainder exercises its tail pointer.
        let mut more = arena(1);
        let mut m = chain_of(&mut more);
        c.append(&mut m);
        assert_eq!(c.len(), 3);
        drain(pre);
        drain(c);
    }

    #[test]
    fn iter_matches_pop_order() {
        let mut s = arena(4);
        let mut c = chain_of(&mut s);
        let via_iter: Vec<_> = c.iter().collect();
        let via_pop: Vec<_> = {
            let mut v = Vec::new();
            while let Some(b) = c.pop() {
                v.push(b);
            }
            v
        };
        assert_eq!(via_iter, via_pop);
    }

    #[test]
    #[should_panic(expected = "still holding")]
    #[cfg(debug_assertions)]
    fn dropping_nonempty_chain_is_caught() {
        let mut s = arena(1);
        let c = chain_of(&mut s);
        drop(c);
    }
}
