//! Counted chains of free blocks — the unit of transfer between layers.
//!
//! The paper's key amortization is that "blocks are moved in target-sized
//! groups, preventing unnecessary linked-list operations": a whole chain of
//! `target` blocks moves between the per-CPU and global layers with O(1)
//! pointer surgery. A [`Chain`] is such a group: an intrusive singly linked
//! list with head, tail, and count, so push/pop are O(1) at the head and
//! concatenation is O(1) via the tail.

use core::ptr;

use crate::block;

/// A counted, intrusive, singly linked chain of free blocks.
///
/// Owns the blocks it links (they are free memory belonging to the
/// allocator); all blocks in one chain belong to the same size class.
pub struct Chain {
    head: *mut u8,
    tail: *mut u8,
    len: usize,
}

// SAFETY: a `Chain` owns its free blocks outright; sending it to another
// thread transfers that ownership wholesale, the same way the global layer
// hands chains between CPUs.
unsafe impl Send for Chain {}

impl Chain {
    /// Creates an empty chain.
    pub const fn new() -> Self {
        Chain {
            head: ptr::null_mut(),
            tail: ptr::null_mut(),
            len: 0,
        }
    }

    /// Number of blocks in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns whether the chain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a free block onto the head.
    ///
    /// # Safety
    ///
    /// `block` must be a free block of this chain's size class, owned by
    /// the caller, and in no other list.
    #[inline]
    pub unsafe fn push(&mut self, block: *mut u8) {
        debug_assert!(!block.is_null());
        // SAFETY: `block` is a free block per the contract.
        unsafe { block::write_next(block, self.head) };
        if self.head.is_null() {
            self.tail = block;
        }
        self.head = block;
        self.len += 1;
    }

    /// Returns the head block without removing it.
    #[inline]
    pub fn peek(&self) -> Option<*mut u8> {
        (!self.head.is_null()).then_some(self.head)
    }

    /// Pops a block from the head.
    #[inline]
    pub fn pop(&mut self) -> Option<*mut u8> {
        if self.head.is_null() {
            return None;
        }
        let block = self.head;
        // SAFETY: `block` is the head of this chain, so it is a free block
        // whose link word we wrote.
        self.head = unsafe { block::read_next(block) };
        if self.head.is_null() {
            self.tail = ptr::null_mut();
        }
        self.len -= 1;
        Some(block)
    }

    /// Appends `other` in O(1); `other` becomes empty.
    pub fn append(&mut self, other: &mut Chain) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = core::mem::take(other);
            return;
        }
        // SAFETY: `self.tail` is the last block of a non-empty chain we
        // own, and `other.head` is a free block we are taking ownership of.
        unsafe { block::write_next(self.tail, other.head) };
        self.tail = other.tail;
        self.len += other.len;
        // The blocks now belong to `self`; clear `other` without dropping
        // (assignment would trip the leak detector on the stale length).
        other.forget();
    }

    /// Takes the whole chain, leaving `self` empty.
    #[inline]
    pub fn take(&mut self) -> Chain {
        core::mem::take(self)
    }

    /// Splits off and returns the first `n` blocks (walks `n` links).
    ///
    /// This is the O(`target`) operation the global layer's *bucket list*
    /// performs to regroup odd blocks into target-sized chains.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()` or `n == 0`.
    pub fn split_first(&mut self, n: usize) -> Chain {
        assert!(n > 0 && n <= self.len, "split_first out of range");
        if n == self.len {
            return self.take();
        }
        let head = self.head;
        let mut tail = head;
        for _ in 1..n {
            // SAFETY: we stay within the first `n` blocks of a chain we
            // own, all of which have valid link words.
            tail = unsafe { block::read_next(tail) };
        }
        // SAFETY: `tail` is a block we own; cutting the link here detaches
        // the prefix.
        let rest_head = unsafe { block::read_next(tail) };
        // SAFETY: as above.
        unsafe { block::write_next(tail, ptr::null_mut()) };
        self.head = rest_head;
        self.len -= n;
        Chain { head, tail, len: n }
    }

    /// Decomposes the chain into `(head, tail, len)` raw parts without
    /// running the leak detector — the lock-free global stack threads the
    /// blocks through itself and rebuilds the chain with
    /// [`Chain::from_raw`] on pop.
    pub(crate) fn into_raw(mut self) -> (*mut u8, *mut u8, usize) {
        let parts = (self.head, self.tail, self.len);
        self.forget();
        parts
    }

    /// Reassembles a chain from raw parts.
    ///
    /// # Safety
    ///
    /// `(head, tail, len)` must describe a well-formed chain the caller
    /// owns: `len` blocks linked head-to-tail with a null final link —
    /// e.g. parts from [`Chain::into_raw`] whose links were restored.
    pub(crate) unsafe fn from_raw(head: *mut u8, tail: *mut u8, len: usize) -> Chain {
        debug_assert!(!head.is_null() && !tail.is_null() && len > 0);
        Chain { head, tail, len }
    }

    /// Abandons the chain's blocks without returning them to any layer.
    ///
    /// Only for arena teardown, where the whole reservation is released at
    /// once and per-block bookkeeping no longer matters.
    pub fn forget(&mut self) {
        self.head = ptr::null_mut();
        self.tail = ptr::null_mut();
        self.len = 0;
    }

    /// Iterates over the block pointers without consuming the chain
    /// (verification and tests only).
    pub fn iter(&self) -> ChainIter<'_> {
        ChainIter {
            next: self.head,
            remaining: self.len,
            _chain: core::marker::PhantomData,
        }
    }
}

impl core::fmt::Debug for Chain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Chain(len={})", self.len)
    }
}

impl Default for Chain {
    fn default() -> Self {
        Chain::new()
    }
}

impl Drop for Chain {
    fn drop(&mut self) {
        // Chains of real blocks must be given back to a layer, never
        // dropped: dropping would leak the blocks out of the arena's
        // accounting. (Empty chains are dropped constantly.)
        debug_assert!(
            self.is_empty(),
            "dropped a chain still holding {} blocks",
            self.len
        );
    }
}

/// Iterator over the blocks of a [`Chain`].
pub struct ChainIter<'a> {
    next: *mut u8,
    remaining: usize,
    _chain: core::marker::PhantomData<&'a Chain>,
}

impl Iterator for ChainIter<'_> {
    type Item = *mut u8;

    fn next(&mut self) -> Option<*mut u8> {
        if self.remaining == 0 {
            return None;
        }
        let block = self.next;
        debug_assert!(!block.is_null());
        // SAFETY: the borrowed chain owns `block`; its link word is valid.
        self.next = unsafe { block::read_next(block) };
        self.remaining -= 1;
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Boxed so each block keeps a stable address while the Vec grows.
    #[expect(clippy::vec_box)]
    /// Backing store for fake blocks.
    fn arena(n: usize) -> Vec<Box<[u8; 32]>> {
        (0..n).map(|_| Box::new([0u8; 32])).collect()
    }

    fn chain_of(blocks: &mut [Box<[u8; 32]>]) -> Chain {
        let mut c = Chain::new();
        for b in blocks {
            // SAFETY: each boxed array is an owned, disjoint fake block.
            unsafe { c.push(b.as_mut_ptr()) };
        }
        c
    }

    fn drain(mut c: Chain) -> Vec<*mut u8> {
        let mut v = Vec::new();
        while let Some(b) = c.pop() {
            v.push(b);
        }
        v
    }

    #[test]
    fn push_pop_is_lifo() {
        let mut store = arena(3);
        let ptrs: Vec<_> = store.iter_mut().map(|b| b.as_mut_ptr()).collect();
        let mut c = chain_of(&mut store);
        assert_eq!(c.len(), 3);
        assert_eq!(c.pop(), Some(ptrs[2]));
        assert_eq!(c.pop(), Some(ptrs[1]));
        assert_eq!(c.pop(), Some(ptrs[0]));
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn append_is_order_preserving_and_emptying() {
        let mut s1 = arena(2);
        let mut s2 = arena(2);
        let mut a = chain_of(&mut s1);
        let mut b = chain_of(&mut s2);
        let expect: Vec<_> = s1
            .iter_mut()
            .rev()
            .chain(s2.iter_mut().rev())
            .map(|x| x.as_mut_ptr())
            .collect();
        a.append(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.len(), 4);
        assert_eq!(drain(a), expect);
    }

    #[test]
    fn append_into_empty_moves() {
        let mut s = arena(2);
        let mut a = Chain::new();
        let mut b = chain_of(&mut s);
        a.append(&mut b);
        assert_eq!(a.len(), 2);
        assert!(b.is_empty());
        // Tail is usable after the move: push then pop everything.
        let mut extra = arena(1);
        let mut c = chain_of(&mut extra);
        c.append(&mut a);
        assert_eq!(c.len(), 3);
        assert_eq!(drain(c).len(), 3);
    }

    #[test]
    fn split_first_takes_prefix() {
        let mut s = arena(5);
        let mut c = chain_of(&mut s);
        let all: Vec<_> = c.iter().collect();
        let first = c.split_first(2);
        assert_eq!(first.len(), 2);
        assert_eq!(c.len(), 3);
        assert_eq!(drain(first), all[..2].to_vec());
        assert_eq!(drain(c), all[2..].to_vec());
    }

    #[test]
    fn split_first_whole_chain() {
        let mut s = arena(3);
        let mut c = chain_of(&mut s);
        let first = c.split_first(3);
        assert_eq!(first.len(), 3);
        assert!(c.is_empty());
        drain(first);
    }

    #[test]
    fn tail_is_valid_after_split() {
        let mut s = arena(4);
        let mut c = chain_of(&mut s);
        let pre = c.split_first(2);
        // Appending to the remainder exercises its tail pointer.
        let mut more = arena(1);
        let mut m = chain_of(&mut more);
        c.append(&mut m);
        assert_eq!(c.len(), 3);
        drain(pre);
        drain(c);
    }

    #[test]
    fn iter_matches_pop_order() {
        let mut s = arena(4);
        let mut c = chain_of(&mut s);
        let via_iter: Vec<_> = c.iter().collect();
        let via_pop: Vec<_> = {
            let mut v = Vec::new();
            while let Some(b) = c.pop() {
                v.push(b);
            }
            v
        };
        assert_eq!(via_iter, via_pop);
    }

    #[test]
    #[should_panic(expected = "still holding")]
    #[cfg(debug_assertions)]
    fn dropping_nonempty_chain_is_caught() {
        let mut s = arena(1);
        let c = chain_of(&mut s);
        drop(c);
    }
}
