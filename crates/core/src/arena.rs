//! Arena wiring and the public `kmem_alloc`/`kmem_free` interface.
//!
//! A [`KmemArena`] owns the four layers (Figure 4 of the paper: per-CPU
//! cache array → per-class global pools → per-class coalesce-to-page →
//! coalesce-to-vmblk) and hands out [`CpuHandle`]s, each of which is the
//! exclusive access path to one virtual CPU's caches.

use core::cell::UnsafeCell;
use core::marker::PhantomData;
use core::ptr::NonNull;
use core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use kmem_smp::{
    faults, CachePadded, ClaimError, CpuClaim, CpuId, CpuRegistry, EventCounter, Faults, NodeId,
    PerCpu, Topology,
};
use kmem_vm::{KernelSpace, PAGE_SIZE};

use crate::block::{self, LinkKey};
use crate::chain::Chain;
use crate::config::{HardenedConfig, KmemConfig};
use crate::cookie::Cookie;
use crate::error::{AllocError, CorruptionSite};
use crate::global::GlobalPool;
use crate::maint::{MaintKeys, MaintState, MaintWork};
use crate::pagedesc::PdKind;
use crate::pagelayer::PageLayer;
use crate::percpu::{CacheStats, CpuCache, QuarantineVerdict};
use crate::pressure::PressureLadder;
use crate::sizeclass::SizeClasses;
use crate::snapshot::{
    CacheCounts, ClassSnapshot, GlobalCounts, KmemSnapshot, MaintCounts, NodeCounts, PageCounts,
};
use crate::stats::KmemStats;
use crate::vmblklayer::VmblkLayer;

/// Why a cache flush ran, for statistics attribution.
#[derive(Clone, Copy)]
enum FlushCause {
    /// Public API call or CPU teardown.
    Explicit,
    /// Honouring another CPU's drain request.
    Drain,
    /// This CPU's own low-memory retry path.
    LowMemory,
}

/// Arena identity counter (cookie validation across arenas).
static NEXT_ARENA_ID: AtomicU64 = AtomicU64::new(1);

/// splitmix64 finalizer: derives the per-arena link secret and carve
/// shuffle seed from the configured hardened seed and the arena id.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-CPU slot: one cache per size class plus the drain-request flag.
pub(crate) struct CpuSlot {
    caches: Box<[UnsafeCell<CpuCache>]>,
    /// Hit/miss counters, one per class; kept outside the `UnsafeCell` so
    /// statistics snapshots never alias the owner's cache borrow.
    stats: Box<[CacheStats]>,
    /// Set by *other* CPUs under memory pressure; the owner checks it on
    /// every operation (the userspace stand-in for a reclaim IPI).
    drain: AtomicBool,
}

// SAFETY: the `UnsafeCell`s are only dereferenced by the thread holding the
// `CpuClaim` for this slot's CPU (see `CpuHandle::cache_mut`), which makes
// all access single-threaded in practice. The atomic flag is safe to share.
unsafe impl Sync for CpuSlot {}

/// Per-node refill/spill attribution (arena-wide, not per class): how a
/// node's CPUs refilled their caches and how much their shards spilled to
/// the shared page layer. Gauges come from the shards themselves.
pub(crate) struct NodeStats {
    /// Refill chains taken from this node's own shard.
    pub(crate) local_refills: EventCounter,
    /// Refill chains stolen from a remote node's shard.
    pub(crate) stolen_refills: EventCounter,
    /// Blocks spilled from this node's shards down to the (shared)
    /// coalesce-to-page layer — each one a frame-locality loss.
    pub(crate) remote_spills: EventCounter,
}

pub(crate) struct ArenaInner {
    id: u64,
    classes: SizeClasses,
    space: Arc<KernelSpace>,
    vm: VmblkLayer,
    /// CPU → node map; `Topology::single` when `nodes == 1`.
    topology: Topology,
    /// Global pools, one *shard* per (class, node) in node-minor order:
    /// `globals[class * nnodes + node]`. With one node this is exactly the
    /// old one-pool-per-class layout.
    globals: Box<[CachePadded<GlobalPool>]>,
    node_stats: Box<[NodeStats]>,
    pages: Box<[CachePadded<PageLayer>]>,
    slots: PerCpu<CpuSlot>,
    registry: Arc<CpuRegistry>,
    max_large: usize,
    large_allocs: EventCounter,
    large_frees: EventCounter,
    /// Failpoint handle shared with the vm substrate; consulted at the
    /// global-get, page-get, spill, and refill boundaries.
    faults: Faults,
    /// The memory-pressure escalation state machine.
    pressure: PressureLadder,
    /// The hardened-profile knobs this arena runs with (DESIGN.md §12).
    hardened: HardenedConfig,
    /// Per-class blocks deliberately leaked after a corruption detection:
    /// a chain walk that hit an implausible link sinks the unreachable
    /// remainder, and verify-on-alloc refuses a block whose poison was
    /// overwritten. The conservation check counts these as a known loss —
    /// the alternative (re-threading a block whose contents lied once)
    /// would hand the corruption a second chance.
    sunk: Box<[AtomicUsize]>,
    /// Blocks currently parked in per-CPU quarantine rings, arena-wide.
    /// A racy gauge for snapshots; per-class exact reads go through
    /// [`ArenaInner::quarantined_blocks`] under quiescence.
    quarantined: AtomicUsize,
    /// Corruption detections reported, all sites.
    corruption_reports: EventCounter,
    /// Poison-based detections (double free by poison, use-after-free).
    poison_hits: EventCounter,
    /// Encoded-link detections (implausible decodes, sunk chains).
    encode_faults: EventCounter,
    /// Maintenance-core state (mailbox + key layout) when the arena was
    /// configured with [`crate::config::MaintConfig::on`]; `None` keeps
    /// every slow-path site on its classic inline behaviour.
    maint: Option<MaintState>,
}

impl Drop for ArenaInner {
    fn drop(&mut self) {
        // Free blocks still cached in chains point into the reservation,
        // which is about to be released wholesale; abandon them so the
        // chain leak-detector does not fire.
        for (_, slot) in self.slots.iter() {
            for cell in slot.caches.iter() {
                // SAFETY: `drop` has `&mut self`: no CPU handle can exist
                // (they hold an `Arc` keeping the arena alive).
                let cache = unsafe { &mut *cell.get() };
                cache.flush().forget();
            }
        }
        for pool in self.globals.iter() {
            pool.drain_all().forget();
        }
    }
}

/// The allocator arena: create one per "kernel".
///
/// Cloning the handle is cheap (`Arc`); the arena is destroyed when the
/// last handle **and** the last [`CpuHandle`] are dropped.
#[derive(Clone)]
pub struct KmemArena {
    inner: Arc<ArenaInner>,
}

impl KmemArena {
    /// Builds an arena from `config`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see
    /// [`KmemConfig::validate`]) — configurations are developer input.
    pub fn new(config: KmemConfig) -> Result<KmemArena, AllocError> {
        config.validate();
        let faults = config.faults.clone();
        let topology = config.topology();
        // The physical pool is sharded exactly like the global layer, so
        // the arena's node count overrides whatever the space config says.
        let space = Arc::new(KernelSpace::new_with_faults(
            config.space.nodes(config.nodes),
            faults.clone(),
        ));
        let vm = VmblkLayer::new_with_cache(
            Arc::clone(&space),
            config.release_empty_vmblks,
            faults.clone(),
        );
        let max_large = vm.max_span_pages() * PAGE_SIZE;
        let nnodes = topology.nnodes();
        let id = NEXT_ARENA_ID.fetch_add(1, Ordering::Relaxed);
        let hardened = config.hardened;
        // Per-arena secret: the configured seed mixed with the arena id,
        // so same-seed arenas still encode differently. The key's bounds
        // are the whole reservation — every freelist link must decode to
        // null or an in-reservation, block-aligned address.
        let mixed = mix64(hardened.seed ^ (id.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        let key = if hardened.encode {
            let base = space.base_addr();
            LinkKey::hardened(
                mixed as usize,
                base,
                base + space.nvmblks() * space.vmblk_size(),
            )
        } else {
            LinkKey::PLAIN
        };
        let shuffle_seed = hardened
            .randomize
            .then(|| mix64(mixed ^ 0xc0de_5eed_0bad_cafe));
        let mut globals = Vec::with_capacity(config.classes.len() * nnodes);
        for c in &config.classes {
            for _ in 0..nnodes {
                globals.push(CachePadded::new(GlobalPool::new_hardened(
                    c.target,
                    c.gbltarget,
                    faults.clone(),
                    key,
                )));
            }
        }
        let globals = globals.into_boxed_slice();
        let node_stats = (0..nnodes)
            .map(|_| NodeStats {
                local_refills: EventCounter::new(),
                stolen_refills: EventCounter::new(),
                remote_spills: EventCounter::new(),
            })
            .collect();
        let pages = config
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                CachePadded::new(PageLayer::new_hardened(
                    i,
                    c.size,
                    config.radix_pages,
                    faults.clone(),
                    key,
                    shuffle_seed,
                    hardened.poison,
                ))
            })
            .collect();
        let slots = PerCpu::new(config.ncpus, |_| CpuSlot {
            caches: config
                .classes
                .iter()
                .map(|c| {
                    UnsafeCell::new(CpuCache::new_hardened(
                        c.target,
                        config.split_freelist,
                        key,
                        hardened.quarantine,
                    ))
                })
                .collect(),
            stats: config
                .classes
                .iter()
                .map(|_| CacheStats::default())
                .collect(),
            drain: AtomicBool::new(false),
        });
        let sunk = (0..config.classes.len())
            .map(|_| AtomicUsize::new(0))
            .collect();
        let registry = CpuRegistry::new(config.ncpus);
        let maint = config
            .maint
            .enabled
            .then(|| MaintState::new(MaintKeys::new(config.classes.len(), nnodes, config.ncpus)));
        let classes = SizeClasses::new(config.classes);
        Ok(KmemArena {
            inner: Arc::new(ArenaInner {
                id,
                classes,
                space,
                vm,
                topology,
                globals,
                node_stats,
                pages,
                slots,
                registry,
                max_large,
                large_allocs: EventCounter::new(),
                large_frees: EventCounter::new(),
                faults,
                pressure: PressureLadder::new(config.pressure),
                hardened,
                sunk,
                quarantined: AtomicUsize::new(0),
                corruption_reports: EventCounter::new(),
                poison_hits: EventCounter::new(),
                encode_faults: EventCounter::new(),
                maint,
            }),
        })
    }

    /// Number of virtual CPUs.
    pub fn ncpus(&self) -> usize {
        self.inner.registry.ncpus()
    }

    /// Number of size classes (verification harnesses size their
    /// per-class tables with this; see [`crate::verify`]).
    pub fn nclasses(&self) -> usize {
        self.inner.classes.len()
    }

    /// The CPU/node topology the arena was built with.
    pub fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    /// Number of NUMA nodes (global-pool and physical-pool shards).
    pub fn nnodes(&self) -> usize {
        self.inner.nnodes()
    }

    /// Registers the calling context as the lowest-numbered free CPU.
    pub fn register_cpu(&self) -> Result<CpuHandle, ClaimError> {
        let claim = self.inner.registry.claim_any()?;
        Ok(self.handle(claim))
    }

    /// Registers the calling context as a specific CPU.
    pub fn register_cpu_on(&self, cpu: CpuId) -> Result<CpuHandle, ClaimError> {
        let claim = self.inner.registry.claim(cpu)?;
        Ok(self.handle(claim))
    }

    fn handle(&self, claim: CpuClaim) -> CpuHandle {
        let cpu = claim.cpu();
        CpuHandle {
            cpu,
            node: self.inner.topology.node_of(cpu),
            claim,
            inner: Arc::clone(&self.inner),
            _not_sync: PhantomData,
        }
    }

    /// The paper's `kmem_alloc_get_cookie`: resolves `size` to an opaque
    /// cookie for the fast-path interface. Returns `None` for sizes that
    /// no class serves (zero, or larger than the largest class).
    pub fn cookie_for(&self, size: usize) -> Option<Cookie> {
        let class = self.inner.classes.class_for(size)?;
        Some(Cookie {
            class: class as u32,
            size: self.inner.classes.class(class).size as u32,
            arena_id: self.inner.id,
        })
    }

    /// Largest request (in bytes) this arena can serve.
    pub fn max_alloc_size(&self) -> usize {
        self.inner.max_large
    }

    /// The kernel space (physical pool accounting, dope vector) backing
    /// this arena.
    pub fn space(&self) -> &KernelSpace {
        &self.inner.space
    }

    /// Pushes every block held by the *global* pools down through the
    /// coalescing layers, releasing any pages (and vmblks) that drain
    /// completely.
    ///
    /// Together with [`CpuHandle::flush`] on each registered CPU this
    /// returns all idle memory to the system — the "database
    /// reorganization at night" half of the paper's cyclic workload, where
    /// memory cached for small blocks must become available to user
    /// processes.
    pub fn reclaim(&self) {
        self.inner.reclaim_all();
    }

    /// The failpoint handle this arena (and its vm substrate) consults;
    /// arm it through [`Faults::plan`] to force failures at any layer
    /// boundary. Dormant unless the arena was configured with
    /// [`Faults::with_plan`].
    pub fn faults(&self) -> &Faults {
        &self.inner.faults
    }

    /// Current memory-pressure ladder level: 0 (calm) through 3 (a full
    /// reclaim ran and the pool has not yet recovered past the exit
    /// watermark).
    pub fn pressure_level(&self) -> u8 {
        self.inner.pressure.level()
    }

    /// Number of CPUs with an unserviced drain request. After every
    /// registered CPU runs an operation or [`CpuHandle::poll`], this must
    /// be zero — a flag that stays set would mean the drain protocol
    /// wedged (the fault-injection torture asserts exactly this).
    pub fn pending_drains(&self) -> usize {
        let mut pending = 0;
        for (_, slot) in self.inner.slots.iter() {
            if slot.drain.load(Ordering::Relaxed) {
                pending += 1;
            }
        }
        pending
    }

    /// Full counter sweep: every (CPU, class) cache, every global pool and
    /// page layer, plus arena-wide gauges. Lock-free and zero-cost to the
    /// running CPUs; see [`crate::snapshot`] for the consistency model and
    /// [`KmemSnapshot::delta`] for interval views.
    pub fn snapshot(&self) -> KmemSnapshot {
        let inner = &self.inner;
        let classes = (0..inner.classes.len())
            .map(|idx| {
                let cfg = inner.classes.class(idx);
                ClassSnapshot {
                    size: cfg.size,
                    target: cfg.target,
                    gbltarget: cfg.gbltarget,
                    per_cpu: inner
                        .slots
                        .collect(|_, slot| CacheCounts::read(&slot.stats[idx])),
                    global: GlobalCounts::read_merged(
                        inner.shards(idx).iter().map(|pool| pool.stats()),
                    ),
                    page: PageCounts::read(inner.pages[idx].stats()),
                }
            })
            .collect();
        let nodes = (0..inner.nnodes())
            .map(|n| {
                let node = NodeId::new(n);
                let stats = &inner.node_stats[n];
                NodeCounts {
                    shard_blocks: (0..inner.classes.len())
                        .map(|class| inner.shard(class, node).len())
                        .sum(),
                    local_refills: stats.local_refills.get(),
                    stolen_refills: stats.stolen_refills.get(),
                    remote_spills: stats.remote_spills.get(),
                }
            })
            .collect();
        let (fault_hits, fault_fired) = inner.faults.totals();
        KmemSnapshot {
            classes,
            nodes,
            large_allocs: inner.large_allocs.get(),
            large_frees: inner.large_frees.get(),
            vmblk_cache_hits: inner.vm.stats().cache_hits.get(),
            vmblk_cache_puts: inner.vm.stats().cache_puts.get(),
            vmblks_live: inner.vm.nvmblks(),
            phys_in_use: inner.space.phys().in_use(),
            phys_capacity: inner.space.phys().capacity(),
            pressure_level: inner.pressure.level(),
            pressure_escalations: inner.pressure.escalations(),
            pressure_deescalations: inner.pressure.deescalations(),
            pressure_reapplied: inner.pressure.reapplied(),
            fault_hits,
            fault_fired,
            corruption_reports: inner.corruption_reports.get(),
            poison_hits: inner.poison_hits.get(),
            encode_faults: inner.encode_faults.get(),
            quarantine_len: inner.quarantined.load(Ordering::Relaxed),
            maint: inner.maint_counts(),
        }
    }

    /// Whether this arena was built with the maintenance core enabled
    /// ([`crate::config::MaintConfig::on`]).
    pub fn maint_enabled(&self) -> bool {
        self.inner.maint.is_some()
    }

    /// Work items currently queued in the maintenance mailbox (0 when the
    /// core is disabled). A racy gauge: posts race the drainer.
    pub fn maint_backlog(&self) -> usize {
        self.inner
            .maint
            .as_ref()
            .map_or(0, |m| m.mailbox.backlog() as usize)
    }

    /// Drains the maintenance mailbox once, running every queued work item
    /// inline on the calling thread, and returns the number of items run.
    /// Returns 0 when the core is disabled, when the mailbox is empty, or
    /// when another thread is already draining (single-consumer).
    ///
    /// This is the explicit pump for hermetic tests and single-threaded
    /// harnesses; production-shaped runs use
    /// [`KmemArena::start_maint_thread`] instead. Any thread may pump —
    /// the work only touches the locked global/page layers and the
    /// per-CPU drain flags, never a CPU's caches.
    pub fn maint_poll(&self) -> usize {
        let inner = &*self.inner;
        let Some(maint) = &inner.maint else {
            return 0;
        };
        let keys = maint.keys;
        maint.mailbox.try_drain(|key, _payload| {
            let spill_from = |class: usize, node: usize, spill: Option<Chain>| {
                if let Some(spill) = spill {
                    inner.node_stats[node].remote_spills.add(spill.len() as u64);
                    // SAFETY: spilled blocks are free blocks of `class`.
                    unsafe {
                        inner.pages[class].free_chain(&inner.vm, spill);
                    }
                }
            };
            match keys.work(key) {
                MaintWork::Regroup { class, node } => {
                    let pool = inner.shard(class, NodeId::new(node));
                    spill_from(class, node, pool.maint_regroup());
                }
                MaintWork::Trim { class, node } => {
                    let pool = inner.shard(class, NodeId::new(node));
                    spill_from(class, node, pool.maint_trim());
                }
                MaintWork::Spill { class, node } => {
                    let pool = inner.shard(class, NodeId::new(node));
                    let bound = pool.gbltarget();
                    spill_from(class, node, pool.maint_spill(bound));
                }
                MaintWork::DrainCpu { cpu } => {
                    inner
                        .slots
                        .get(CpuId::new(cpu))
                        .drain
                        .store(true, Ordering::Relaxed);
                }
                MaintWork::Coalesce { class } => {
                    inner.pages[class].flush_full_pages(&inner.vm);
                }
            }
        })
    }

    /// Spawns the maintenance core: a thread that pumps
    /// [`KmemArena::maint_poll`] until the returned guard is dropped
    /// (which stops the thread, runs one final drain, and joins it).
    /// Returns `None` when the arena was built without the core.
    pub fn start_maint_thread(&self) -> Option<MaintPump> {
        self.inner.maint.as_ref()?;
        let stop = Arc::new(AtomicBool::new(false));
        let arena = self.clone();
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("kmem-maint".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    if arena.maint_poll() == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
                // Final sweep: nothing posted before `stop` is stranded.
                arena.maint_poll();
            })
            .expect("spawn kmem-maint thread");
        Some(MaintPump {
            stop,
            handle: Some(handle),
        })
    }

    /// Snapshot of per-layer statistics (the paper's miss-rate inputs),
    /// rolled up over CPUs. A convenience wrapper over
    /// [`KmemArena::snapshot`].
    pub fn stats(&self) -> KmemStats {
        self.snapshot().aggregate()
    }

    pub(crate) fn inner(&self) -> &ArenaInner {
        &self.inner
    }
}

/// Guard for the maintenance-core thread
/// ([`KmemArena::start_maint_thread`]): dropping it stops the thread,
/// drains any remaining mailbox items, and joins.
pub struct MaintPump {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MaintPump {
    /// Stops and joins the maintenance thread (same as dropping the
    /// guard, but explicit at call sites that want the join visible).
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for MaintPump {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl ArenaInner {
    /// Maintenance-core counters for snapshots: mailbox flow plus the
    /// epoch-batched drain counters summed over every global shard.
    pub(crate) fn maint_counts(&self) -> MaintCounts {
        let (batch_drains, batched_chains) =
            self.globals
                .iter()
                .fold((0u64, 0u64), |(drains, chains), pool| {
                    let stats = pool.stats();
                    (
                        drains + stats.batch_drains.get(),
                        chains + stats.batched_chains.get(),
                    )
                });
        let (posted, deduped, drained, backlog) = match &self.maint {
            Some(m) => (
                m.mailbox.posted(),
                m.mailbox.deduped(),
                m.mailbox.drained(),
                m.mailbox.backlog() as usize,
            ),
            None => (0, 0, 0, 0),
        };
        MaintCounts {
            enabled: self.maint.is_some(),
            posted,
            deduped,
            drained,
            backlog,
            batch_drains,
            batched_chains,
        }
    }

    pub(crate) fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    pub(crate) fn nnodes(&self) -> usize {
        self.topology.nnodes()
    }

    pub(crate) fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The global-pool shard for (`class`, `node`).
    #[inline]
    pub(crate) fn shard(&self, class: usize, node: NodeId) -> &GlobalPool {
        &self.globals[class * self.nnodes() + node.index()]
    }

    /// All of `class`'s shards, node-minor.
    #[inline]
    pub(crate) fn shards(&self, class: usize) -> &[CachePadded<GlobalPool>] {
        let nn = self.nnodes();
        &self.globals[class * nn..(class + 1) * nn]
    }

    /// Total blocks in the global layer for `class`, summed over shards.
    pub(crate) fn global_blocks(&self, class: usize) -> usize {
        self.shards(class).iter().map(|pool| pool.len()).sum()
    }

    /// Drains every global shard through the coalescing layers (rung 3 of
    /// the pressure ladder, and [`KmemArena::reclaim`]).
    fn reclaim_all(&self) {
        for class in 0..self.classes.len() {
            for pool in self.shards(class) {
                let chain = pool.drain_all();
                if !chain.is_empty() {
                    // SAFETY: drained blocks are free blocks of `class`.
                    unsafe {
                        self.pages[class].free_chain(&self.vm, chain);
                    }
                }
            }
            // Settle fault-deferred (or freshly drained-to-full) pages so
            // idle memory actually leaves the page layer.
            self.pages[class].flush_full_pages(&self.vm);
        }
        // And un-park the whole-page cache so empty vmblks can release.
        self.vm.drain_page_cache();
    }

    pub(crate) fn vm(&self) -> &VmblkLayer {
        &self.vm
    }

    pub(crate) fn globals(&self) -> &[CachePadded<GlobalPool>] {
        &self.globals
    }

    pub(crate) fn pages(&self) -> &[CachePadded<PageLayer>] {
        &self.pages
    }

    /// Sums cached blocks per class across CPUs (verification; must be
    /// called while no CPU is mutating its caches).
    pub(crate) fn cached_blocks(&self, class: usize) -> usize {
        let mut total = 0;
        for (_, slot) in self.slots.iter() {
            // SAFETY: quiescence per the function contract.
            total += unsafe { &*slot.caches[class].get() }.len();
        }
        total
    }

    /// Reports a detected heap corruption: bumps the counters, then either
    /// panics with the report (`hardened.panic_on_corruption`) or returns
    /// the typed error for the caller to surface or drop.
    #[cold]
    pub(crate) fn report_corruption(&self, site: CorruptionSite, addr: usize) -> AllocError {
        self.corruption_reports.inc();
        match site {
            CorruptionSite::PoisonOverwrite | CorruptionSite::DoubleFreePoison => {
                self.poison_hits.inc();
            }
            CorruptionSite::FreelistLink => self.encode_faults.inc(),
            _ => {}
        }
        let err = AllocError::Corruption { site, addr };
        if self.hardened.panic_on_corruption {
            panic!("{err}");
        }
        err
    }

    /// Blocks of `class` deliberately leaked after corruption detections:
    /// the arena-level sinks plus every global shard's.
    pub(crate) fn sunk_blocks(&self, class: usize) -> usize {
        self.sunk[class].load(Ordering::Relaxed)
            + self
                .shards(class)
                .iter()
                .map(|pool| pool.sunk())
                .sum::<usize>()
    }

    /// Blocks of `class` parked in quarantine rings, summed across CPUs
    /// (verification; quiescence as for [`ArenaInner::cached_blocks`]).
    pub(crate) fn quarantined_blocks(&self, class: usize) -> usize {
        let mut total = 0;
        for (_, slot) in self.slots.iter() {
            // SAFETY: quiescence per the function contract.
            total += unsafe { &*slot.caches[class].get() }.quarantine_len();
        }
        total
    }

    /// Checks every CPU's split-freelist bounds for `class` (verification;
    /// quiescence as for [`ArenaInner::cached_blocks`]).
    ///
    /// # Panics
    ///
    /// Panics if any half of any cache exceeds its `target`.
    pub(crate) fn check_cache_bounds(&self, class: usize) {
        let target = self.classes.class(class).target;
        for (cpu, slot) in self.slots.iter() {
            // SAFETY: quiescence per the function contract.
            let cache = unsafe { &*slot.caches[class].get() };
            let (main, aux) = cache.shape();
            assert!(
                main <= 2 * target && aux <= target,
                "{cpu} class {class}: cache shape ({main}, {aux}) exceeds target {target}"
            );
        }
    }
}

/// The per-CPU allocation interface.
///
/// One live handle exists per virtual CPU; it is `Send` (the CPU identity
/// may migrate) but deliberately **not** `Sync` — two threads acting as the
/// same CPU would break the layer-1 exclusion the paper relies on.
pub struct CpuHandle {
    inner: Arc<ArenaInner>,
    #[expect(dead_code)] // Held for its `Drop`: releases the CPU claim.
    claim: CpuClaim,
    cpu: CpuId,
    /// This CPU's home node under the arena topology, cached so the
    /// refill and spill paths never recompute the mapping.
    node: NodeId,
    /// `Cell` suppresses `Sync` while leaving the handle `Send`.
    _not_sync: PhantomData<core::cell::Cell<()>>,
}

impl CpuHandle {
    /// This handle's CPU.
    #[inline]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// This handle's home NUMA node.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The arena this handle allocates from.
    pub fn arena(&self) -> KmemArena {
        KmemArena {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Grants mutable access to this CPU's cache for `class`.
    ///
    /// # Safety
    ///
    /// The returned reference must not overlap another `cache_mut` borrow
    /// of the same class (internal callers keep each borrow scoped to one
    /// operation). Exclusivity across threads is guaranteed by the
    /// [`CpuClaim`] plus `!Sync`.
    #[expect(clippy::mut_from_ref)]
    #[inline]
    unsafe fn cache_mut(&self, class: usize) -> &mut CpuCache {
        let slot = self.inner.slots.get(self.cpu);
        // SAFETY: see above.
        unsafe { &mut *slot.caches[class].get() }
    }

    /// Honours a pending drain request, if any.
    #[inline]
    fn check_drain(&self) {
        let slot = self.inner.slots.get(self.cpu);
        if slot.drain.load(Ordering::Relaxed) {
            slot.drain.store(false, Ordering::Relaxed);
            self.flush_with_cause(FlushCause::Drain);
        }
    }

    /// The standard System V interface: allocates at least `size` bytes.
    ///
    /// The returned block is aligned to the class block size (a power of
    /// two ≥ 16) or to the page size for multi-page requests, and its
    /// contents are uninitialized.
    #[inline]
    pub fn alloc(&self, size: usize) -> Result<NonNull<u8>, AllocError> {
        self.check_drain();
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        match self.inner.classes.class_for(size) {
            Some(class) => self.alloc_class(class, size),
            None => self.alloc_large(size),
        }
    }

    /// Like [`CpuHandle::alloc`], with the block zeroed.
    ///
    /// (The classic `kmem_zalloc`.) Zeroing covers the whole class block,
    /// so the caller may rely on `class_size(size)` zeroed bytes.
    pub fn alloc_zeroed(&self, size: usize) -> Result<NonNull<u8>, AllocError> {
        let p = self.alloc(size)?;
        let span = match self.inner.classes.class_for(size) {
            Some(class) => self.inner.classes.class(class).size,
            None => size.div_ceil(PAGE_SIZE) * PAGE_SIZE,
        };
        // SAFETY: the allocation spans the full class block (or whole
        // pages for large requests).
        unsafe { core::ptr::write_bytes(p.as_ptr(), 0, span) };
        Ok(p)
    }

    /// `kmem_alloc(..., KM_SLEEP)`: retries under memory pressure instead
    /// of failing, backing off between attempts so other CPUs can run and
    /// honour the drain requests the pressure ladder posts.
    ///
    /// Each failed attempt escalates the ladder (which posts drains once
    /// per climb, not once per attempt) and is counted in the class's
    /// `sleep_retries`; the loop then spins a capped, exponentially
    /// growing number of iterations and yields — spin/yield only, no
    /// wall-clock sleeps, so tests stay fast and repeatable.
    ///
    /// Returns `Err` only for unservable requests (zero size, too large)
    /// or after `max_attempts` exhausted retries — a deadlock guard the
    /// kernel version does not have, because a kernel can block forever.
    pub fn alloc_sleep(&self, size: usize, max_attempts: usize) -> Result<NonNull<u8>, AllocError> {
        const SPIN_CAP: u32 = 1 << 10;
        let class = self.inner.classes.class_for(size);
        let mut last = AllocError::OutOfMemory { requested: size };
        let mut spins: u32 = 1;
        for _ in 0..max_attempts.max(1) {
            match self.alloc(size) {
                Ok(p) => return Ok(p),
                Err(
                    e @ (AllocError::ZeroSize
                    | AllocError::TooLarge { .. }
                    | AllocError::Corruption { .. }),
                ) => return Err(e),
                Err(e) => {
                    last = e;
                    if let Some(class) = class {
                        // After the alloc's own `alloc_fail` bump, so a
                        // live reader sees `sleep_retries <= alloc_fail`.
                        self.inner.slots.get(self.cpu).stats[class]
                            .sleep_retries
                            .bump();
                    }
                    for _ in 0..spins {
                        core::hint::spin_loop();
                    }
                    std::thread::yield_now();
                    spins = (spins * 2).min(SPIN_CAP);
                }
            }
        }
        Err(last)
    }

    /// The paper's `KMEM_ALLOC_COOKIE`: the lean fast path for sizes
    /// resolved ahead of time.
    #[inline]
    pub fn alloc_cookie(&self, cookie: Cookie) -> Result<NonNull<u8>, AllocError> {
        self.check_drain();
        self.check_cookie(cookie)?;
        self.alloc_class(cookie.class as usize, cookie.size as usize)
    }

    /// Validates a cookie's arena identity: a debug assertion in the
    /// default profile (zero release cost), a reported corruption under
    /// any hardened defense — a foreign cookie's class index would walk
    /// another arena's layout over this arena's freelists.
    #[inline]
    fn check_cookie(&self, cookie: Cookie) -> Result<(), AllocError> {
        if cookie.arena_id != self.inner.id {
            debug_assert!(false, "cookie used on a different arena");
            if self.inner.hardened.any() {
                return Err(self
                    .inner
                    .report_corruption(CorruptionSite::CookieArena, cookie.arena_id as usize));
            }
        }
        Ok(())
    }

    #[inline]
    fn alloc_class(&self, class: usize, size: usize) -> Result<NonNull<u8>, AllocError> {
        let inner = &*self.inner;
        let stats = &inner.slots.get(self.cpu).stats[class];
        let nth = stats.alloc.bump();
        // SAFETY: borrow scoped to this operation.
        let cache = unsafe { self.cache_mut(class) };
        let block = match cache.alloc() {
            Some(b) => {
                // Occupancy shape sampling, 1 in 64 on the hit path (the
                // cold paths below sample unconditionally).
                if nth & 63 == 0 {
                    stats.sample_occupancy(cache.len(), 2 * cache.target());
                }
                b
            }
            None => {
                if let Some(fault) = cache.take_fault() {
                    // A chain walk hit an implausible encoded link: the
                    // unreachable remainder was sunk by the chain; account
                    // the loss and surface the detection.
                    inner.sunk[class].fetch_add(fault.lost, Ordering::Relaxed);
                    return Err(inner.report_corruption(CorruptionSite::FreelistLink, fault.addr));
                }
                stats.alloc_miss.bump();
                self.alloc_class_slow(class, size)?
            }
        };
        if inner.hardened.poison {
            // SAFETY: `block` came off a freelist of this arena and spans
            // the full class size.
            if let Err(word) =
                unsafe { block::verify_free_poison(block, inner.classes.class(class).size) }
            {
                // Someone wrote through a freed block. The block's words
                // can no longer be trusted as data or links: sink it.
                inner.sunk[class].fetch_add(1, Ordering::Relaxed);
                return Err(inner.report_corruption(CorruptionSite::PoisonOverwrite, word));
            }
            // SAFETY: as above.
            unsafe { block::clear_poison_word(block) };
        } else {
            // SAFETY: `block` came off a freelist of this arena.
            unsafe { block::check_and_clear_poison_on_alloc(block) };
        }
        // SAFETY: freelist blocks are interior to the reservation.
        Ok(unsafe { NonNull::new_unchecked(block) })
    }

    /// One pass down the refill ladder: this node's global shard first,
    /// then a steal from the most-loaded remote shard, then the
    /// coalesce-to-page layer — each behind its failpoint, so injected
    /// faults exercise every fall-through combination.
    fn take_chain(&self, class: usize, target: usize) -> Option<Chain> {
        let inner = &*self.inner;
        let node_stats = &inner.node_stats[self.node.index()];
        // The shard consults `faults::GLOBAL_GET` itself, on both its CAS
        // fast path and its locked slow path.
        if let Some(chain) = inner.shard(class, self.node).get_chain() {
            node_stats.local_refills.inc();
            return Some(chain);
        }
        // Work-stealing overflow: pick the remote shard with the most
        // blocks (a racy read — the steal itself is a single tag-CAS, so a
        // stale choice costs at worst one extra miss, never correctness)
        // and take one whole target-sized chain from it.
        if inner.nnodes() > 1 && !inner.faults.hit(faults::GLOBAL_STEAL) {
            let shards = inner.shards(class);
            let victim = shards
                .iter()
                .enumerate()
                .filter(|&(n, _)| n != self.node.index())
                .map(|(n, pool)| (pool.len(), n))
                .max()
                .filter(|&(len, _)| len > 0);
            if let Some((_, n)) = victim {
                if let Some(chain) = shards[n].steal_chain() {
                    node_stats.stolen_refills.inc();
                    return Some(chain);
                }
            }
        }
        // The page layer consults `faults::PAGE_GET` on both its pop path
        // and its vmblk slow path.
        inner.pages[class]
            .alloc_chain_on(&inner.vm, target, self.node)
            .ok()
    }

    /// Escalates the pressure ladder after a failed backend allocation and
    /// runs the actions of every newly entered rung — or re-applies the
    /// deepest rung when the ladder was already at this depth, so repeated
    /// failures do not re-flush or re-post drain requests.
    #[cold]
    fn escalate_pressure(&self) {
        let phys = self.inner.space.phys();
        let (prev, next) = self
            .inner
            .pressure
            .escalate(phys.available(), phys.capacity());
        let from = if next > prev { prev + 1 } else { next };
        for rung in from..=next {
            match rung {
                1 => {
                    // Rung 1: flush our own caches and ask every other CPU
                    // to drain — posted once per climb, not per attempt.
                    // With the maintenance core the requests go through the
                    // mailbox (one dedup key per CPU), so a climb storm
                    // across CPUs still collapses to one item per target.
                    self.flush_with_cause(FlushCause::LowMemory);
                    if let Some(maint) = &self.inner.maint {
                        for (cpu, _) in self.inner.slots.iter() {
                            if cpu != self.cpu {
                                maint.post(MaintWork::DrainCpu { cpu: cpu.index() });
                            }
                        }
                    } else {
                        self.request_drain();
                    }
                }
                2 => {
                    // Rung 2: trim every global shard to `gbltarget` so
                    // the page layer can coalesce and release frames —
                    // posted per shard (plus a coalesce pass per class)
                    // when the maintenance core owns the locked paths.
                    let nn = self.inner.nnodes();
                    if let Some(maint) = &self.inner.maint {
                        for class in 0..self.inner.classes.len() {
                            for node in 0..nn {
                                maint.post(MaintWork::Spill { class, node });
                            }
                            maint.post(MaintWork::Coalesce { class });
                        }
                    } else {
                        for (idx, pool) in self.inner.globals.iter().enumerate() {
                            if let Some(spill) = pool.spill_to(pool.gbltarget()) {
                                let class = idx / nn;
                                // SAFETY: spilled blocks are free blocks of
                                // `class` (shards are node-minor per class).
                                unsafe {
                                    self.inner.pages[class].free_chain(&self.inner.vm, spill);
                                }
                            }
                        }
                    }
                }
                _ => {
                    // Rung 3: full reclaim — drain the global pools
                    // entirely through the coalescing layers.
                    self.inner.reclaim_all();
                }
            }
        }
    }

    /// Steps the ladder down (with hysteresis) after a successful cold
    /// operation. A single relaxed load when the ladder is calm, so the
    /// cache-hit fast paths never reach it and the cold paths barely
    /// notice it.
    #[inline]
    fn relax_pressure(&self) {
        if self.inner.pressure.level() == 0 {
            return;
        }
        let phys = self.inner.space.phys();
        self.inner.pressure.relax(phys.available(), phys.capacity());
    }

    /// Refills the cache from the global layer (or below) and returns the
    /// first block.
    #[cold]
    fn alloc_class_slow(&self, class: usize, size: usize) -> Result<*mut u8, AllocError> {
        let stats = &self.inner.slots.get(self.cpu).stats[class];
        let target = self.inner.shard(class, self.node).target();
        let chain = match self.take_chain(class, target) {
            Some(chain) => chain,
            None => {
                // Low memory: escalate the pressure ladder (drains, global
                // spill, full reclaim) and retry the layers once.
                self.escalate_pressure();
                match self.take_chain(class, target) {
                    Some(chain) => chain,
                    None => {
                        stats.alloc_fail.bump();
                        return Err(AllocError::OutOfMemory { requested: size });
                    }
                }
            }
        };
        debug_assert!(!chain.is_empty());
        if self.inner.faults.hit(faults::PERCPU_REFILL) {
            // Injected refill failure. The chain must not be dropped:
            // route it back through the global layer so every block stays
            // accounted for, and surface the typed error. No `refill` is
            // counted, so `refill + alloc_fail == alloc_miss` still holds
            // at quiescence.
            self.return_chain(class, chain);
            stats.alloc_fail.bump();
            return Err(AllocError::OutOfMemory { requested: size });
        }
        // Write order matters for live snapshots: `refill` (the bound)
        // before `refill_short` (the detail it bounds).
        stats.refill.bump();
        if chain.len() < target {
            stats.refill_short.bump();
        }
        stats.refill_blocks.add(chain.len() as u64);
        // SAFETY: borrow scoped to this operation.
        let cache = unsafe { self.cache_mut(class) };
        let block = cache.refill(chain);
        stats.sample_occupancy(cache.len(), 2 * cache.target());
        self.relax_pressure();
        Ok(block)
    }

    /// Allocates a multi-page block directly from the vmblk layer
    /// ("requests for blocks of memory larger than one page bypass layers
    /// 1 through 3").
    #[cold]
    fn alloc_large(&self, size: usize) -> Result<NonNull<u8>, AllocError> {
        if size > self.inner.max_large {
            return Err(AllocError::TooLarge {
                requested: size,
                max: self.inner.max_large,
            });
        }
        match self.inner.vm.alloc_large_on(size, self.node) {
            Ok(p) => {
                self.inner.large_allocs.inc();
                self.relax_pressure();
                Ok(p)
            }
            Err(_) => {
                self.escalate_pressure();
                self.inner
                    .vm
                    .alloc_large_on(size, self.node)
                    .inspect(|_| self.inner.large_allocs.inc())
                    .map_err(|_| AllocError::OutOfMemory { requested: size })
            }
        }
    }

    /// The standard free: the block's size class is recovered from its
    /// page descriptor through the dope vector (paper Figure 6).
    ///
    /// # Safety
    ///
    /// `ptr` must have been returned by an allocation method of *this
    /// arena*, not yet freed, and no references into the block may outlive
    /// this call.
    #[inline]
    pub unsafe fn free(&self, ptr: NonNull<u8>) {
        // A hardened detection (double free, foreign poison) is counted
        // and the free dropped; callers that want the typed report use
        // `free_checked`.
        // SAFETY: forwarded caller contract.
        let _ = unsafe { self.free_checked(ptr) };
    }

    /// Like [`CpuHandle::free`], surfacing hardened corruption detections
    /// as [`AllocError::Corruption`] instead of count-and-drop. Always
    /// `Ok(())` in the default profile.
    ///
    /// # Safety
    ///
    /// As for [`CpuHandle::free`].
    #[inline]
    pub unsafe fn free_checked(&self, ptr: NonNull<u8>) -> Result<(), AllocError> {
        self.check_drain();
        let pd = self
            .inner
            .vm
            .pd_of(ptr.as_ptr() as usize)
            .expect("free of a pointer this arena does not manage");
        match pd.kind() {
            PdKind::BlockPage => {
                let class = pd.class();
                // SAFETY: forwarded caller contract.
                unsafe { self.free_class(class, ptr.as_ptr()) }
            }
            PdKind::Large => {
                self.inner.large_frees.inc();
                // SAFETY: forwarded caller contract.
                unsafe { self.inner.vm.free_large(ptr) };
                Ok(())
            }
            other => panic!("free of a block in a page of kind {other:?}"),
        }
    }

    /// System V `kmem_free(addr, size)`: like [`CpuHandle::free`] but with
    /// the size supplied by the caller, skipping the descriptor lookup for
    /// class-sized blocks.
    ///
    /// # Safety
    ///
    /// As for [`CpuHandle::free`]; additionally `size` must be the size
    /// passed to the matching allocation call.
    #[inline]
    pub unsafe fn free_sized(&self, ptr: NonNull<u8>, size: usize) {
        self.check_drain();
        match self.inner.classes.class_for(size) {
            // SAFETY: forwarded caller contract.
            Some(class) => {
                let _ = unsafe { self.free_class(class, ptr.as_ptr()) };
            }
            None => {
                self.inner.large_frees.inc();
                // SAFETY: forwarded caller contract.
                unsafe { self.inner.vm.free_large(ptr) };
            }
        }
    }

    /// The paper's `KMEM_FREE_COOKIE`: frees with no size lookup at all.
    ///
    /// # Safety
    ///
    /// As for [`CpuHandle::free`]; additionally `cookie` must be the
    /// cookie used for the matching allocation.
    #[inline]
    pub unsafe fn free_cookie(&self, ptr: NonNull<u8>, cookie: Cookie) {
        self.check_drain();
        if self.check_cookie(cookie).is_err() {
            // Reported; freeing through a foreign cookie's class index
            // would corrupt a freelist, so the block is dropped instead.
            return;
        }
        // SAFETY: forwarded caller contract.
        let _ = unsafe { self.free_class(cookie.class as usize, ptr.as_ptr()) };
    }

    /// # Safety
    ///
    /// `block` is an allocated block of `class` from this arena, unaliased.
    #[inline]
    unsafe fn free_class(&self, class: usize, block: *mut u8) -> Result<(), AllocError> {
        let inner = &*self.inner;
        let stats = &inner.slots.get(self.cpu).stats[class];
        let nth = stats.free.bump();
        if inner.hardened.poison {
            // SAFETY: caller owns the (allocated) block.
            if unsafe { block::is_free_poisoned(block) } {
                // The block still carries its free poison: it was never
                // re-allocated since the last free, so this free is a
                // duplicate (or a forged pointer at a freed block). It is
                // already on a freelist — drop this free.
                return Err(
                    inner.report_corruption(CorruptionSite::DoubleFreePoison, block as usize)
                );
            }
            // SAFETY: caller owns the block, which spans the class size.
            unsafe { block::poison_free(block, inner.classes.class(class).size) };
        } else {
            // SAFETY: caller owns the (allocated) block.
            unsafe {
                // With a quarantine ring configured, ring hits are the
                // double-free defense and must surface as typed reports;
                // the debug assertion would fire first and mask them.
                if inner.hardened.quarantine == 0 {
                    block::check_not_double_free(block);
                }
                block::poison(block);
            }
        }
        // SAFETY: borrow scoped to this operation.
        let cache = unsafe { self.cache_mut(class) };
        let mut park = block;
        if cache.has_quarantine() {
            match cache.quarantine_check_insert(block) {
                QuarantineVerdict::Hit => {
                    return Err(inner
                        .report_corruption(CorruptionSite::DoubleFreeQuarantine, block as usize));
                }
                QuarantineVerdict::Parked => {
                    inner.quarantined.fetch_add(1, Ordering::Relaxed);
                    if nth & 63 == 0 {
                        stats.sample_occupancy(cache.len(), 2 * cache.target());
                    }
                    return Ok(());
                }
                // The ring is full: the oldest resident leaves quarantine
                // and continues down the normal free path in this block's
                // stead.
                QuarantineVerdict::Evicted(old) => park = old,
            }
        }
        // SAFETY: `park` is free as of this call and in no list.
        if let Some(chain) = unsafe { cache.free(park) } {
            stats.free_miss.bump();
            self.return_chain(class, chain);
        } else if nth & 63 == 0 {
            // Occupancy shape sampling, 1 in 64 on the hit path.
            stats.sample_occupancy(cache.len(), 2 * cache.target());
        }
        Ok(())
    }

    /// Hands an overflow chain to this node's global shard, cascading any
    /// spill into the (shared) coalesce-to-page layer.
    ///
    /// With the maintenance core enabled the spill half is deferred: the
    /// chain is pushed (or appended) wait-free and a `Trim`/`Regroup` item
    /// is posted instead of taking the trim path inline, so the hot CPU
    /// never pays for the locked regroup/spill work.
    #[cold]
    fn return_chain(&self, class: usize, chain: Chain) {
        let pool = self.inner.shard(class, self.node);
        let node_stats = &self.inner.node_stats[self.node.index()];
        if let Some(maint) = &self.inner.maint {
            let node = self.node.index();
            if chain.len() == pool.target() {
                if pool.put_chain_deferred(chain) {
                    maint.post(MaintWork::Trim { class, node });
                }
            } else if pool.put_odd_deferred(chain) {
                maint.post(MaintWork::Regroup { class, node });
            }
            if self.inner.faults.hit(faults::GLOBAL_SPILL) {
                // The inline profile forces an early trim here; the
                // deferred profile posts the equivalent spill item so the
                // fault schedule still drives the spill/coalesce path.
                maint.post(MaintWork::Spill { class, node });
            }
            return;
        }
        let spill = if chain.len() == pool.target() {
            pool.put_chain(chain)
        } else {
            pool.put_odd(chain)
        };
        if let Some(spill) = spill {
            node_stats.remote_spills.add(spill.len() as u64);
            // SAFETY: spilled blocks are free blocks of this class.
            unsafe {
                self.inner.pages[class].free_chain(&self.inner.vm, spill);
            }
        }
        if self.inner.faults.hit(faults::GLOBAL_SPILL) {
            // The spill boundary cannot "fail" without dropping blocks, so
            // injection here perturbs *placement* instead: force an early
            // trim to `gbltarget`, driving the spill/coalesce path at
            // arbitrary points in the schedule.
            if let Some(forced) = pool.spill_to(pool.gbltarget()) {
                node_stats.remote_spills.add(forced.len() as u64);
                // SAFETY: spilled blocks are free blocks of this class.
                unsafe {
                    self.inner.pages[class].free_chain(&self.inner.vm, forced);
                }
            }
        }
        // No relax here: return_chain runs inside rung-1 flushes, and a
        // de-escalation driven by the escalation's own actions would undo
        // the climb before the retry. Successful slow-path *allocations*
        // relax the ladder instead.
    }

    /// Flushes every per-CPU cache of this CPU into the global layer
    /// (low-memory operation; also useful before dropping the handle if
    /// the arena should shrink).
    pub fn flush(&self) {
        self.flush_with_cause(FlushCause::Explicit);
    }

    /// [`CpuHandle::flush`] with the triggering cause recorded per class.
    /// Flushes that evict nothing are not counted (every counted flush
    /// contributes at least one block to `flush_blocks`).
    fn flush_with_cause(&self, cause: FlushCause) {
        let slot = self.inner.slots.get(self.cpu);
        for class in 0..self.inner.classes.len() {
            // SAFETY: borrow scoped to this operation.
            let cache = unsafe { self.cache_mut(class) };
            let stats = &slot.stats[class];
            stats.sample_occupancy(cache.len(), 2 * cache.target());
            let parked = cache.quarantine_len();
            let all = cache.flush();
            if parked > 0 {
                // Quarantined blocks re-entered circulation with the flush.
                self.inner.quarantined.fetch_sub(parked, Ordering::Relaxed);
            }
            if !all.is_empty() {
                match cause {
                    FlushCause::Explicit => stats.flush_explicit.bump(),
                    FlushCause::Drain => stats.flush_drain.bump(),
                    FlushCause::LowMemory => stats.flush_lowmem.bump(),
                };
                stats.flush_blocks.add(all.len() as u64);
                self.return_chain(class, all);
            }
        }
    }

    /// Cooperative scheduling point: honours pending drain requests.
    ///
    /// Idle CPUs should call this periodically so that memory cached on
    /// their behalf can reach CPUs under pressure — the userspace analogue
    /// of servicing a reclaim IPI.
    pub fn poll(&self) {
        self.check_drain();
    }

    /// Requests that every *other* CPU drain its caches at its next
    /// operation or [`CpuHandle::poll`].
    pub fn request_drain(&self) {
        for (cpu, slot) in self.inner.slots.iter() {
            if cpu != self.cpu {
                slot.drain.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Blocks cached by this CPU across all classes (tests).
    pub fn cached_blocks(&self) -> usize {
        (0..self.inner.classes.len())
            // SAFETY: read-only peek at our own caches.
            .map(|c| unsafe { self.cache_mut(c) }.len())
            .sum()
    }

    /// `(main, aux)` lengths of this CPU's cache for `class` (tests — the
    /// paper's split-freelist bound is that each stays ≤ `target`).
    pub fn cache_shape(&self, class: usize) -> (usize, usize) {
        // SAFETY: read-only peek at our own cache.
        unsafe { self.cache_mut(class) }.shape()
    }
}

impl Drop for CpuHandle {
    fn drop(&mut self) {
        // A departing CPU (handle dropped = CPU going offline) drains its
        // caches into the global layer, exactly as a kernel CPU-offline
        // path would; otherwise its cached blocks would be stranded until
        // the CPU id is claimed again.
        self.flush();
    }
}

impl core::fmt::Debug for CpuHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CpuHandle({})", self.cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_arena, verify_conservation, verify_empty};

    fn arena() -> KmemArena {
        KmemArena::new(KmemConfig::small()).unwrap()
    }

    #[test]
    fn alloc_free_round_trip_standard() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        let p = cpu.alloc(50).unwrap();
        // The 50-byte request lands in the 64-byte class: alignment holds.
        assert_eq!(p.as_ptr() as usize % 64, 0);
        // The block is writable over its full class size.
        // SAFETY: freshly allocated 64-byte block.
        unsafe { core::ptr::write_bytes(p.as_ptr(), 0xa5, 64) };
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(p) };
        verify_arena(&a);
    }

    #[test]
    fn immediate_reuse_hits_cache() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        let p = cpu.alloc(128).unwrap();
        // SAFETY: allocated above.
        unsafe { cpu.free(p) };
        let q = cpu.alloc(128).unwrap();
        // LIFO per-CPU cache: the same block comes straight back.
        assert_eq!(p, q);
        // SAFETY: allocated above.
        unsafe { cpu.free(q) };
        let stats = a.stats();
        let c128 = stats.classes.iter().find(|c| c.size == 128).unwrap();
        assert_eq!(c128.cpu_alloc.accesses, 2);
        assert_eq!(c128.cpu_alloc.misses, 1); // only the first
    }

    #[test]
    fn cookie_interface_round_trip() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        let cookie = a.cookie_for(100).unwrap();
        assert_eq!(cookie.block_size(), 128);
        let p = cpu.alloc_cookie(cookie).unwrap();
        // SAFETY: allocated with this cookie.
        unsafe { cpu.free_cookie(p, cookie) };
        // Cookie and standard interfaces share the same pools.
        let q = cpu.alloc(100).unwrap();
        assert_eq!(p, q);
        // SAFETY: allocated above.
        unsafe { cpu.free_sized(q, 100) };
        verify_arena(&a);
    }

    #[test]
    fn cookie_for_rejects_unservable_sizes() {
        let a = arena();
        assert!(a.cookie_for(0).is_none());
        assert!(a.cookie_for(4097).is_none());
        assert!(a.cookie_for(4096).is_some());
    }

    #[test]
    fn zero_size_and_too_large_are_typed_errors() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        assert_eq!(cpu.alloc(0).unwrap_err(), AllocError::ZeroSize);
        let max = a.max_alloc_size();
        assert!(matches!(
            cpu.alloc(max + 1).unwrap_err(),
            AllocError::TooLarge { .. }
        ));
    }

    #[test]
    fn large_allocations_bypass_the_class_layers() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        let p = cpu.alloc(3 * PAGE_SIZE).unwrap();
        assert_eq!(p.as_ptr() as usize % PAGE_SIZE, 0);
        // SAFETY: 3 pages were allocated.
        unsafe { core::ptr::write_bytes(p.as_ptr(), 0x5a, 3 * PAGE_SIZE) };
        let stats = a.stats();
        assert_eq!(stats.large_allocs, 1);
        assert!(stats.classes.iter().all(|c| c.cpu_alloc.accesses == 0));
        // Standard free resolves it through the page descriptor.
        // SAFETY: allocated above.
        unsafe { cpu.free(p) };
        assert_eq!(a.stats().large_frees, 1);
        verify_empty(&a);
    }

    #[test]
    fn cross_cpu_alloc_here_free_there() {
        let a = arena();
        let cpu0 = a.register_cpu().unwrap();
        let cpu1 = a.register_cpu().unwrap();
        // CPU 0 allocates many blocks; CPU 1 frees them all (the pattern
        // the global layer exists for).
        let blocks: Vec<_> = (0..200).map(|_| cpu0.alloc(256).unwrap()).collect();
        for p in blocks {
            // SAFETY: allocated by cpu0, freed exactly once by cpu1.
            unsafe { cpu1.free(p) };
        }
        verify_arena(&a);
        let held = vec![0; a.inner().classes().len()];
        verify_conservation(&a, &held);
        // Blocks flowed back: CPU 0 can allocate them again.
        let again: Vec<_> = (0..200).map(|_| cpu0.alloc(256).unwrap()).collect();
        for p in again {
            // SAFETY: allocated above.
            unsafe { cpu0.free(p) };
        }
        verify_arena(&a);
    }

    #[test]
    fn threads_can_carry_handles() {
        let a = arena();
        let mut join = Vec::new();
        for _ in 0..4 {
            let handle = a.register_cpu().unwrap();
            join.push(std::thread::spawn(move || {
                let mut held = Vec::new();
                for i in 0..2000usize {
                    let size = 16 << (i % 5);
                    held.push((handle.alloc(size).unwrap(), size));
                    if held.len() > 32 {
                        let (p, _s) = held.swap_remove(i % held.len());
                        // SAFETY: allocated above, freed once.
                        unsafe { handle.free(p) };
                    }
                }
                for (p, s) in held {
                    // SAFETY: allocated above, freed once.
                    unsafe { handle.free_sized(p, s) };
                }
            }));
        }
        for j in join {
            j.join().unwrap();
        }
        verify_arena(&a);
        verify_conservation(&a, &vec![0; a.inner().classes().len()]);
    }

    #[test]
    fn flush_and_reclaim_release_all_physical_memory() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        let blocks: Vec<_> = (0..500).map(|_| cpu.alloc(512).unwrap()).collect();
        assert!(a.space().phys().in_use() > 0);
        for p in blocks {
            // SAFETY: allocated above.
            unsafe { cpu.free(p) };
        }
        // Caches and global pools retain bounded amounts...
        assert!(a.space().phys().in_use() > 0);
        // ...until flushed and reclaimed.
        cpu.flush();
        a.reclaim();
        verify_empty(&a);
    }

    #[test]
    fn exhaustion_returns_oom_and_recovers_after_free() {
        // Tiny pool: 16 KB vmblks, 8 physical frames.
        let cfg = KmemConfig::new(
            1,
            kmem_vm::SpaceConfig::new(1 << 20)
                .vmblk_shift(14)
                .phys_pages(8),
        );
        let a = KmemArena::new(cfg).unwrap();
        let cpu = a.register_cpu().unwrap();
        let mut held = Vec::new();
        loop {
            match cpu.alloc(2048) {
                Ok(p) => held.push(p),
                Err(AllocError::OutOfMemory { requested }) => {
                    assert_eq!(requested, 2048);
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(!held.is_empty());
        // Free one block: allocation works again (the flush-retry path
        // reclaims the caller's own cache too).
        let p = held.pop().unwrap();
        // SAFETY: allocated above.
        unsafe { cpu.free(p) };
        let q = cpu.alloc(2048).unwrap();
        held.push(q);
        for p in held {
            // SAFETY: allocated above.
            unsafe { cpu.free(p) };
        }
        cpu.flush();
        a.reclaim();
        verify_empty(&a);
    }

    #[test]
    fn drain_request_recovers_memory_cached_on_other_cpus() {
        // All memory fits in CPU 1's caches; CPU 0 must be able to get it
        // back ("any given CPU must be able to allocate the last
        // remaining buffer").
        let cfg = KmemConfig::new(
            2,
            kmem_vm::SpaceConfig::new(1 << 20)
                .vmblk_shift(14)
                .phys_pages(4),
        )
        .set_class(1024, 8, 8);
        let a = KmemArena::new(cfg).unwrap();
        let cpu0 = a.register_cpu().unwrap();
        let cpu1 = a.register_cpu().unwrap();
        // CPU 1 allocates and frees: blocks end up cached on CPU 1.
        let held: Vec<_> = (0..8).map(|_| cpu1.alloc(1024).unwrap()).collect();
        for p in held {
            // SAFETY: allocated above.
            unsafe { cpu1.free(p) };
        }
        assert!(cpu1.cached_blocks() > 0);
        // CPU 0 wants everything; its first try may fail but must set the
        // drain flag; once CPU 1 polls, CPU 0 succeeds.
        let mut got = Vec::new();
        loop {
            match cpu0.alloc(1024) {
                Ok(p) => got.push(p),
                Err(_) => {
                    if cpu1.cached_blocks() == 0 {
                        break;
                    }
                    cpu1.poll(); // services the drain request
                }
            }
        }
        // CPU 0 ends up holding every block the pool can back (3 data
        // pages were available; header takes the 4th frame).
        assert!(got.len() >= 3, "only got {} blocks", got.len());
        for p in got {
            // SAFETY: allocated above.
            unsafe { cpu0.free(p) };
        }
        cpu0.flush();
        cpu1.flush();
        a.reclaim();
        verify_empty(&a);
    }

    #[test]
    fn injected_refill_failure_conserves_blocks_and_surfaces_typed_error() {
        use kmem_smp::FailPolicy;

        // Regression (fault audit): a refill fault between take_chain and
        // cache.refill used to be un-testable; the chain it holds must be
        // routed back, not dropped.
        let cfg = KmemConfig {
            faults: Faults::with_plan(),
            ..KmemConfig::small()
        };
        let a = KmemArena::new(cfg).unwrap();
        let cpu = a.register_cpu().unwrap();
        // Warm the global layer: allocate, free, flush.
        let held: Vec<_> = (0..20).map(|_| cpu.alloc(256).unwrap()).collect();
        for p in held {
            // SAFETY: allocated above, freed once.
            unsafe { cpu.free(p) };
        }
        cpu.flush();
        let global_before = a.inner().globals()[4].len(); // class 256
        assert!(global_before > 0);
        a.faults()
            .plan()
            .unwrap()
            .set(faults::PERCPU_REFILL, FailPolicy::Script(vec![true]));
        let err = cpu.alloc(256).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { requested: 256 }));
        // Nothing reached the cache and nothing leaked: the chain the
        // failed refill held went back to the global/page layers.
        assert_eq!(cpu.cached_blocks(), 0);
        verify_arena(&a);
        verify_conservation(&a, &vec![0; a.inner().classes().len()]);
        // The fault was one-shot: service resumes.
        let p = cpu.alloc(256).unwrap();
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(p) };
        let snap = a.snapshot();
        assert_eq!(snap.fault_fired, 1);
        cpu.flush();
        a.reclaim();
        snap.check_live().unwrap();
    }

    #[test]
    fn injected_layer_misses_fall_through_and_recover() {
        use kmem_smp::FailPolicy;

        let cfg = KmemConfig {
            faults: Faults::with_plan(),
            ..KmemConfig::small()
        };
        let a = KmemArena::new(cfg).unwrap();
        let cpu = a.register_cpu().unwrap();
        let plan = a.faults().plan().unwrap().clone();
        // A global-layer fault is invisible to callers while the page
        // layer can still refill.
        plan.set(faults::GLOBAL_GET, FailPolicy::EveryNth(1));
        let p = cpu.alloc(128).unwrap();
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(p) };
        plan.set(faults::GLOBAL_GET, FailPolicy::Off);
        // Faulting both page-layer attempts (initial + post-escalation
        // retry) turns a healthy arena into a typed OOM...
        plan.set(faults::PAGE_GET, FailPolicy::Script(vec![true, true]));
        let err = cpu.alloc(4096).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { requested: 4096 }));
        // ...and the escalation was recorded by the ladder.
        assert!(a.pressure_level() >= 1);
        assert!(a.snapshot().pressure_escalations[0] >= 1);
        // The script is spent: service resumes, and successes relax the
        // ladder back to calm (the pool was never actually short).
        let q = cpu.alloc(4096).unwrap();
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(q) };
        assert_eq!(a.pressure_level(), 0);
        verify_arena(&a);
        cpu.flush();
        a.reclaim();
        verify_empty(&a);
    }

    #[test]
    fn forced_spill_faults_keep_conservation() {
        use kmem_smp::FailPolicy;

        // GLOBAL_SPILL injection trims the pool early on every return;
        // blocks must land in the page layer, never vanish.
        let cfg = KmemConfig {
            faults: Faults::with_plan(),
            ..KmemConfig::small()
        };
        let a = KmemArena::new(cfg).unwrap();
        let cpu = a.register_cpu().unwrap();
        a.faults()
            .plan()
            .unwrap()
            .set(faults::GLOBAL_SPILL, FailPolicy::EveryNth(2));
        for round in 0..5 {
            let held: Vec<_> = (0..64).map(|_| cpu.alloc(64).unwrap()).collect();
            for p in held {
                // SAFETY: allocated above, freed once.
                unsafe { cpu.free(p) };
            }
            if round % 2 == 0 {
                cpu.flush();
            }
        }
        verify_arena(&a);
        verify_conservation(&a, &vec![0; a.inner().classes().len()]);
        cpu.flush();
        a.reclaim();
        verify_empty(&a);
    }

    #[test]
    fn stats_roll_up_by_class() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        for _ in 0..10 {
            let p = cpu.alloc(32).unwrap();
            // SAFETY: allocated above.
            unsafe { cpu.free(p) };
        }
        let stats = a.stats();
        let c32 = stats.classes.iter().find(|c| c.size == 32).unwrap();
        assert_eq!(c32.cpu_alloc.accesses, 10);
        assert_eq!(c32.cpu_free.accesses, 10);
        assert_eq!(c32.cpu_alloc.misses, 1);
        assert!(c32.cpu_alloc.miss_rate() <= 0.1 + f64::EPSILON);
        assert_eq!(stats.total_allocs(), 10);
    }

    #[test]
    fn alloc_zeroed_really_zeroes_the_class_block() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        // Dirty a block, free it, and get it back zeroed.
        let p = cpu.alloc(100).unwrap();
        // SAFETY: 128-byte class block.
        unsafe { core::ptr::write_bytes(p.as_ptr(), 0xFF, 128) };
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(p) };
        let q = cpu.alloc_zeroed(100).unwrap();
        assert_eq!(p, q); // same block, straight from the cache
                          // SAFETY: live 128-byte block.
        let bytes = unsafe { core::slice::from_raw_parts(q.as_ptr(), 128) };
        assert!(bytes.iter().all(|&b| b == 0));
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(q) };
        // Multi-page requests zero whole pages.
        let big = cpu.alloc_zeroed(2 * PAGE_SIZE).unwrap();
        // SAFETY: live 2-page block.
        let bytes = unsafe { core::slice::from_raw_parts(big.as_ptr(), 2 * PAGE_SIZE) };
        assert!(bytes.iter().all(|&b| b == 0));
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(big) };
    }

    #[test]
    fn alloc_sleep_succeeds_after_a_peer_frees() {
        let cfg = KmemConfig::new(
            2,
            kmem_vm::SpaceConfig::new(1 << 20)
                .vmblk_shift(14)
                .phys_pages(4),
        );
        let a = KmemArena::new(cfg).unwrap();
        let holder = a.register_cpu().unwrap();
        let sleeper = a.register_cpu().unwrap();
        // The holder takes everything. (Addresses, so the vector can move
        // into the freeing thread; ownership of the blocks moves with it.)
        let mut held: Vec<usize> = Vec::new();
        while let Ok(p) = holder.alloc(4096) {
            held.push(p.as_ptr() as usize);
        }
        assert!(matches!(
            sleeper.alloc(4096),
            Err(AllocError::OutOfMemory { .. })
        ));
        // A peer thread frees one block shortly; the sleeper retries
        // until it appears.
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::yield_now();
                for addr in held {
                    let p = NonNull::new(addr as *mut u8).unwrap();
                    // SAFETY: allocated above, freed once.
                    unsafe { holder.free(p) };
                }
                holder.flush();
            });
            let p = sleeper.alloc_sleep(4096, 1_000_000).unwrap();
            // SAFETY: allocated above, freed once.
            unsafe { sleeper.free(p) };
        });
        // Unservable requests fail immediately, not after retries.
        assert!(matches!(
            sleeper.alloc_sleep(0, 100),
            Err(AllocError::ZeroSize)
        ));
    }

    #[test]
    fn class_blocks_are_aligned_to_their_size() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        for shift in 4..=12 {
            let size = 1usize << shift;
            let p = cpu.alloc(size).unwrap();
            assert_eq!(
                p.as_ptr() as usize % size,
                0,
                "{size}-byte block misaligned"
            );
            // SAFETY: allocated above, freed once.
            unsafe { cpu.free_sized(p, size) };
        }
    }

    #[test]
    fn free_and_free_sized_are_interchangeable() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        // Alloc with the standard interface, free with the sized one, and
        // vice versa — both route to the same class.
        let p = cpu.alloc(300).unwrap();
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free_sized(p, 300) };
        let q = cpu.alloc(300).unwrap();
        assert_eq!(p, q);
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(q) };
        let r = cpu.alloc_cookie(a.cookie_for(300).unwrap()).unwrap();
        assert_eq!(q, r);
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(r) };
        verify_arena(&a);
    }

    #[test]
    fn custom_class_ladders_work() {
        // Only two classes; everything between 65 and 1024 bytes rounds
        // to 1024, larger requests go to the vmblk layer.
        let cfg = KmemConfig {
            classes: vec![
                crate::config::ClassConfig::with_heuristics(64),
                crate::config::ClassConfig::with_heuristics(1024),
            ],
            ..KmemConfig::small()
        };
        let a = KmemArena::new(cfg).unwrap();
        let cpu = a.register_cpu().unwrap();
        let p = cpu.alloc(65).unwrap();
        assert_eq!(p.as_ptr() as usize % 1024, 0);
        let big = cpu.alloc(1025).unwrap(); // beyond the ladder: large path
        assert_eq!(big.as_ptr() as usize % PAGE_SIZE, 0);
        assert_eq!(a.stats().large_allocs, 1);
        // SAFETY: allocated above, freed once each.
        unsafe {
            cpu.free(p);
            cpu.free(big);
        }
        cpu.flush();
        a.reclaim();
        verify_empty(&a);
    }

    #[test]
    fn retained_vmblks_are_reused_when_release_is_off() {
        let cfg = KmemConfig {
            release_empty_vmblks: false,
            ..KmemConfig::small()
        };
        let a = KmemArena::new(cfg).unwrap();
        let cpu = a.register_cpu().unwrap();
        let p = cpu.alloc(4096).unwrap();
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(p) };
        cpu.flush();
        a.reclaim();
        // The vmblk is retained (its header frame stays claimed)...
        let stats = a.stats();
        assert_eq!(stats.vmblks_live, 1);
        assert!(stats.phys_in_use > 0);
        // ...and gets reused rather than growing the footprint.
        let q = cpu.alloc(4096).unwrap();
        assert_eq!(a.stats().vmblks_live, 1);
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(q) };
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different arena")]
    fn cookies_do_not_cross_arenas() {
        let a = arena();
        let b = arena();
        let cookie_a = a.cookie_for(64).unwrap();
        let cpu_b = b.register_cpu().unwrap();
        let _ = cpu_b.alloc_cookie(cookie_a);
    }

    #[test]
    fn handles_are_send_and_arena_is_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<CpuHandle>();
        assert_send::<KmemArena>();
        assert_sync::<KmemArena>();
    }

    #[test]
    fn dropping_a_handle_drains_its_caches() {
        let a = arena();
        {
            let cpu = a.register_cpu().unwrap();
            let p = cpu.alloc(64).unwrap();
            // SAFETY: allocated above, freed once.
            unsafe { cpu.free(p) };
            assert!(cpu.cached_blocks() > 0);
        }
        // The departed CPU left nothing behind; a reclaim returns every
        // frame.
        a.reclaim();
        verify_empty(&a);
        // And the CPU id is reusable with a clean cache.
        let cpu = a.register_cpu().unwrap();
        assert_eq!(cpu.cached_blocks(), 0);
    }

    #[test]
    fn registering_more_cpus_than_configured_fails() {
        let a = arena();
        let _h: Vec<_> = (0..4).map(|_| a.register_cpu().unwrap()).collect();
        assert!(a.register_cpu().is_err());
    }

    #[test]
    #[should_panic(expected = "does not manage")]
    fn freeing_foreign_pointer_is_caught() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        let foreign = Box::new([0u8; 64]);
        let ptr = NonNull::from(&foreign[0]);
        // SAFETY: intentionally violates the contract to check the guard
        // rail; the pointer is valid memory, just not arena memory.
        unsafe { cpu.free(ptr) };
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught_in_debug() {
        let a = arena();
        let cpu = a.register_cpu().unwrap();
        let p = cpu.alloc(64).unwrap();
        // SAFETY: first free is legitimate; the second intentionally
        // violates the contract to check the poison guard rail.
        unsafe {
            cpu.free(p);
            cpu.free(p);
        }
    }
}
