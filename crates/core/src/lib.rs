//! The McKenney–Slingwine kernel memory allocator.
//!
//! This crate reproduces the allocator of *Efficient Kernel Memory
//! Allocation on Shared-Memory Multiprocessors* (McKenney & Slingwine,
//! USENIX Winter 1993): a general-purpose `kmem_alloc`/`kmem_free` built
//! from four layers, where the lower layers are optimized for speed and the
//! upper layers for coalescing (paper Figure 1):
//!
//! 1. **Per-CPU caching layer** ([`percpu`]) — per-(CPU, size-class) caches
//!    with a *split freelist* (`main`/`aux`, each bounded by `target`).
//!    No locks; the only "synchronization" is the non-reentrancy that
//!    interrupt disabling provides in a kernel.
//! 2. **Global layer** ([`global`]) — per size class, ready `target`-sized
//!    chains kept on a lock-free Treiber stack (get = one tag-CAS pop,
//!    put = one tag-CAS push), plus a spinlocked bucket list that regroups
//!    odd chains; bounded by `2 * gbltarget` blocks, enforced exactly on
//!    the slow path and approximately (per-CPU transient overshoot) on the
//!    fast path.
//! 3. **Coalesce-to-page layer** ([`pagelayer`]) — per-page freelists and
//!    free counts; pages radix-sorted by free count so the fullest pages
//!    are allocated from first; a fully free page returns its physical
//!    frame to the system immediately.
//! 4. **Coalesce-to-vmblk layer** ([`vmblklayer`]) — 4 MB vmblks of virtual
//!    space, page descriptors with boundary tags, span coalescing, and
//!    direct handling of multi-page allocations.
//!
//! The **cookie** interface ([`cookie`]) reproduces the paper's
//! `kmem_alloc_get_cookie` / `KMEM_ALLOC_COOKIE` / `KMEM_FREE_COOKIE`:
//! callers that know a request size ahead of time obtain an opaque cookie
//! and skip the size-to-class mapping on both alloc and free.
//!
//! # Quick start
//!
//! ```
//! use kmem::{KmemArena, KmemConfig};
//!
//! let arena = KmemArena::new(KmemConfig::small()).unwrap();
//! let cpu = arena.register_cpu().unwrap();
//!
//! // Standard System V style interface.
//! let p = cpu.alloc(50).unwrap();
//! // SAFETY: `p` came from `alloc` on this arena and is freed once.
//! unsafe { cpu.free(p) };
//!
//! // Cookie interface for sizes known "at compile time".
//! let cookie = arena.cookie_for(64).unwrap();
//! let q = cpu.alloc_cookie(cookie).unwrap();
//! // SAFETY: `q` came from `alloc_cookie(cookie)` and is freed once.
//! unsafe { cpu.free_cookie(q, cookie) };
//! ```
//!
//! # Concurrency model
//!
//! A [`KmemArena`] is shared; each participating execution context
//! registers as one virtual CPU and receives a [`CpuHandle`]. The handle is
//! `Send` but not `Sync` and is the *only* path to that CPU's caches, which
//! is how this reproduction enforces the paper's rule that "CPUs are
//! prohibited from accessing other CPUs' per-CPU caches".

pub mod arena;
pub mod block;
pub mod chain;
pub mod config;
pub mod cookie;
pub mod error;
pub mod global;
pub mod maint;
pub mod object;
pub mod pagedesc;
pub mod pagelayer;
pub mod percpu;
pub mod pressure;
pub mod sizeclass;
pub mod snapshot;
pub mod stats;
pub mod verify;
pub mod vmblklayer;

pub use arena::{CpuHandle, KmemArena, MaintPump};
pub use config::{ClassConfig, HardenedConfig, KmemConfig, MaintConfig};
pub use cookie::Cookie;
pub use error::{AllocError, CorruptionSite, KmemError};
pub use kmem_smp::{faults, FailPolicy, FaultPlan, Faults};
pub use maint::{MaintKeys, MaintWork};
pub use object::{KBox, Obj, ObjectCache};
pub use pressure::PressureConfig;
pub use snapshot::{
    CacheCounts, ClassSnapshot, GlobalCounts, KmemSnapshot, MaintCounts, NodeCounts, PageCounts,
};
pub use stats::{ClassStats, KmemStats, LayerCounts};

/// Number of size classes in the paper's default configuration
/// (16 … 4096 bytes in powers of two).
pub const DEFAULT_NCLASSES: usize = 9;
