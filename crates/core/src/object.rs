//! Typed allocation on top of the raw block interface.
//!
//! Two conveniences a downstream kernel subsystem would reach for:
//!
//! * [`KBox`] — an RAII owner of a single `T` in arena memory, the safe
//!   face of `kmem_alloc(sizeof(T))`.
//! * [`ObjectCache`] — a pool of *constructed* objects over the arena.
//!   The paper notes that ad-hoc allocators remain beneficial "when the
//!   structures being allocated are subject to some complex but reusable
//!   initialization", with the STREAMS triplet as its example, and that
//!   such allocators should reuse the general-purpose allocator's code.
//!   `ObjectCache` is that pattern as a reusable component: objects keep
//!   their constructed state across free/alloc cycles (bounded), and the
//!   backing memory comes from (and overflows back to) the arena's cookie
//!   fast path.

use core::ops::{Deref, DerefMut};
use core::ptr::NonNull;

use kmem_smp::SpinLock;
use kmem_vm::PAGE_SIZE;

use crate::arena::{CpuHandle, KmemArena};
use crate::cookie::Cookie;
use crate::error::AllocError;

/// Layout sanity for arena-typed values.
fn check_layout<T>() -> Result<(), AllocError> {
    // Class blocks are aligned to their (power-of-two) size and at least
    // as big as the request, so `align <= size` suffices for class-sized
    // values; page alignment covers multi-page values.
    if core::mem::align_of::<T>() > PAGE_SIZE {
        return Err(AllocError::TooLarge {
            requested: core::mem::align_of::<T>(),
            max: PAGE_SIZE,
        });
    }
    Ok(())
}

/// An owned `T` stored in arena memory; the typed, safe face of
/// `kmem_alloc`/`kmem_free`.
///
/// The box borrows the [`CpuHandle`] it was allocated through, so frees
/// happen on a live CPU — mirroring how kernel code always frees in some
/// CPU's context.
///
/// # Examples
///
/// ```
/// use kmem::{KmemArena, KmemConfig};
/// use kmem::object::KBox;
///
/// let arena = KmemArena::new(KmemConfig::small()).unwrap();
/// let cpu = arena.register_cpu().unwrap();
/// let b = KBox::new(&cpu, [0u64; 8]).unwrap();
/// assert_eq!(b.len(), 8);
/// drop(b); // freed back to the arena
/// ```
pub struct KBox<'cpu, T> {
    ptr: NonNull<T>,
    cpu: &'cpu CpuHandle,
}

impl<'cpu, T> KBox<'cpu, T> {
    /// Allocates arena memory and moves `value` into it.
    pub fn new(cpu: &'cpu CpuHandle, value: T) -> Result<Self, AllocError> {
        check_layout::<T>()?;
        let size = core::mem::size_of::<T>().max(1);
        let raw = cpu.alloc(size)?.cast::<T>();
        // SAFETY: `raw` is a fresh allocation of at least `size` bytes
        // whose class (or page) alignment covers `align_of::<T>()`.
        unsafe { raw.as_ptr().write(value) };
        Ok(KBox { ptr: raw, cpu })
    }

    /// The raw pointer (valid while the box lives).
    pub fn as_ptr(&self) -> *mut T {
        self.ptr.as_ptr()
    }

    /// Moves the value out, freeing the arena block.
    pub fn into_inner(self) -> T {
        // SAFETY: the box owns an initialized `T`; we read it out exactly
        // once and release the block without running `drop` again.
        let value = unsafe { self.ptr.as_ptr().read() };
        let size = core::mem::size_of::<T>().max(1);
        // SAFETY: allocated in `new` with this size; freed exactly once.
        unsafe { self.cpu.free_sized(self.ptr.cast(), size) };
        core::mem::forget(self);
        value
    }
}

impl<T> Deref for KBox<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the box owns an initialized, exclusively held `T`.
        unsafe { self.ptr.as_ref() }
    }
}

impl<T> DerefMut for KBox<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`, plus `&mut self` gives exclusivity.
        unsafe { self.ptr.as_mut() }
    }
}

impl<T> Drop for KBox<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the box owns an initialized `T`; drop it in place, then
        // release the block exactly once.
        unsafe {
            core::ptr::drop_in_place(self.ptr.as_ptr());
            self.cpu
                .free_sized(self.ptr.cast(), core::mem::size_of::<T>().max(1));
        }
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for KBox<'_, T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        (**self).fmt(f)
    }
}

/// A bounded pool of constructed `T`s backed by the arena.
///
/// `get` prefers a previously constructed object (its state as the last
/// holder left it after `reset`); misses construct a fresh one in arena
/// memory. `Obj`s return to the pool on drop, up to `capacity`; overflow
/// objects are dropped and their blocks freed through the caller's CPU.
pub struct ObjectCache<T> {
    arena: KmemArena,
    cookie: Cookie,
    capacity: usize,
    ctor: Box<dyn Fn() -> T + Send + Sync>,
    /// Constructed, currently unowned objects.
    pool: SpinLock<Vec<NonNull<T>>>,
}

// SAFETY: pooled pointers are owned by the cache (no aliasing); the
// spinlock serializes pool access; `T` construction/destruction happens on
// the calling thread.
unsafe impl<T: Send> Send for ObjectCache<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for ObjectCache<T> {}

impl<T> ObjectCache<T> {
    /// Creates a cache of up to `capacity` constructed objects, built by
    /// `ctor`.
    ///
    /// # Panics
    ///
    /// Panics if `T` does not fit the arena's size classes (object caches
    /// are for small kernel records; multi-page objects should use
    /// [`CpuHandle::alloc`] directly).
    pub fn new(
        arena: &KmemArena,
        capacity: usize,
        ctor: impl Fn() -> T + Send + Sync + 'static,
    ) -> Self {
        check_layout::<T>().expect("object alignment exceeds a page");
        let size = core::mem::size_of::<T>().max(1);
        let cookie = arena
            .cookie_for(size)
            .expect("object caches hold class-sized records");
        ObjectCache {
            arena: arena.clone(),
            cookie,
            capacity,
            ctor: Box::new(ctor),
            pool: SpinLock::new(Vec::with_capacity(capacity)),
        }
    }

    /// The arena backing this cache.
    pub fn arena(&self) -> &KmemArena {
        &self.arena
    }

    /// Constructed objects currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }

    /// Takes a constructed object (pool hit) or constructs one (miss).
    pub fn get<'c>(&'c self, cpu: &'c CpuHandle) -> Result<Obj<'c, T>, AllocError> {
        if let Some(ptr) = self.pool.lock().pop() {
            return Ok(Obj {
                ptr,
                cache: self,
                cpu,
            });
        }
        let raw = cpu.alloc_cookie(self.cookie)?.cast::<T>();
        // SAFETY: fresh class block; size and alignment checked in `new`.
        unsafe { raw.as_ptr().write((self.ctor)()) };
        Ok(Obj {
            ptr: raw,
            cache: self,
            cpu,
        })
    }

    /// Drops every pooled object and frees its block via `cpu`.
    pub fn drain(&self, cpu: &CpuHandle) {
        let pooled = core::mem::take(&mut *self.pool.lock());
        for ptr in pooled {
            // SAFETY: pooled objects are constructed and unowned; each is
            // destroyed and freed exactly once.
            unsafe {
                core::ptr::drop_in_place(ptr.as_ptr());
                cpu.free_cookie(ptr.cast(), self.cookie);
            }
        }
    }
}

impl<T> Drop for ObjectCache<T> {
    fn drop(&mut self) {
        // Blocks still pooled at teardown are destroyed; their memory is
        // freed through a freshly registered CPU if one is available, and
        // otherwise intentionally leaked *into the arena* (the arena
        // reclaims everything wholesale when it drops).
        let pooled = core::mem::take(&mut *self.pool.lock());
        let cpu = self.arena.register_cpu().ok();
        for ptr in pooled {
            // SAFETY: pooled objects are constructed and unowned.
            unsafe { core::ptr::drop_in_place(ptr.as_ptr()) };
            if let Some(cpu) = &cpu {
                // SAFETY: the block came from this arena via our cookie.
                unsafe { cpu.free_cookie(ptr.cast(), self.cookie) };
            }
        }
    }
}

/// A checked-out object; returns to its cache on drop.
pub struct Obj<'c, T> {
    ptr: NonNull<T>,
    cache: &'c ObjectCache<T>,
    cpu: &'c CpuHandle,
}

impl<T> Obj<'_, T> {
    /// The raw pointer (valid while checked out).
    pub fn as_ptr(&self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T> Deref for Obj<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: a checked-out object is initialized and exclusively
        // held by this `Obj`.
        unsafe { self.ptr.as_ref() }
    }
}

impl<T> DerefMut for Obj<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`, plus `&mut self`.
        unsafe { self.ptr.as_mut() }
    }
}

impl<T> Drop for Obj<'_, T> {
    fn drop(&mut self) {
        let mut pool = self.cache.pool.lock();
        if pool.len() < self.cache.capacity {
            // Keep it constructed: the whole point of the cache.
            pool.push(self.ptr);
        } else {
            drop(pool);
            // SAFETY: the object is initialized and exclusively ours;
            // destroy and free exactly once.
            unsafe {
                core::ptr::drop_in_place(self.ptr.as_ptr());
                self.cpu.free_cookie(self.ptr.cast(), self.cache.cookie);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KmemConfig;
    use core::mem::MaybeUninit;
    use core::sync::atomic::{AtomicUsize, Ordering};

    fn setup() -> (KmemArena, CpuHandle) {
        let arena = KmemArena::new(KmemConfig::small()).unwrap();
        let cpu = arena.register_cpu().unwrap();
        (arena, cpu)
    }

    #[test]
    fn kbox_round_trip_and_drop() {
        let (arena, cpu) = setup();
        {
            let mut b = KBox::new(&cpu, vec![1, 2, 3]).unwrap();
            b.push(4);
            assert_eq!(&**b, &[1, 2, 3, 4]);
        }
        // The arena block came back (alloc again hits the cache).
        let stats = arena.stats();
        assert_eq!(stats.total_allocs(), stats.total_frees());
    }

    #[test]
    fn kbox_into_inner_moves_value() {
        let (_arena, cpu) = setup();
        let b = KBox::new(&cpu, String::from("kernel")).unwrap();
        let s = b.into_inner();
        assert_eq!(s, "kernel");
    }

    #[test]
    fn kbox_runs_destructors_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (_arena, cpu) = setup();
        drop(KBox::new(&cpu, D).unwrap());
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
        let v = KBox::new(&cpu, D).unwrap().into_inner();
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
        drop(v);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn kbox_handles_zero_sized_types() {
        let (_arena, cpu) = setup();
        let b = KBox::new(&cpu, ()).unwrap();
        drop(b);
    }

    /// A record with "complex but reusable initialization".
    struct Record {
        table: Vec<u32>,
        uses: usize,
    }

    #[test]
    fn object_cache_reuses_constructed_state() {
        static CTOR_CALLS: AtomicUsize = AtomicUsize::new(0);
        let (_arena, cpu) = setup();
        let arena = cpu.arena();
        let cache = ObjectCache::new(&arena, 4, || {
            CTOR_CALLS.fetch_add(1, Ordering::Relaxed);
            Record {
                table: (0..64).collect(),
                uses: 0,
            }
        });
        {
            let mut a = cache.get(&cpu).unwrap();
            a.uses += 1;
            assert_eq!(a.table.len(), 64);
        }
        assert_eq!(cache.pooled(), 1);
        {
            // Pool hit: the expensive table was NOT rebuilt, and the
            // object's state survived.
            let b = cache.get(&cpu).unwrap();
            assert_eq!(b.uses, 1);
        }
        assert_eq!(CTOR_CALLS.load(Ordering::Relaxed), 1);
        cache.drain(&cpu);
        assert_eq!(cache.pooled(), 0);
    }

    #[test]
    fn object_cache_overflow_frees_to_arena() {
        let (_arena, cpu) = setup();
        let arena = cpu.arena();
        let cache = ObjectCache::new(&arena, 2, || 0u64);
        let a = cache.get(&cpu).unwrap();
        let b = cache.get(&cpu).unwrap();
        let c = cache.get(&cpu).unwrap();
        drop(a);
        drop(b);
        drop(c); // over capacity: destroyed + freed
        assert_eq!(cache.pooled(), 2);
        cache.drain(&cpu);
        // All blocks came home.
        let stats = arena.stats();
        assert_eq!(stats.total_allocs(), stats.total_frees());
    }

    #[test]
    fn object_cache_is_shared_across_threads() {
        let (arena, _cpu) = setup();
        let cache = std::sync::Arc::new(ObjectCache::new(&arena, 8, || [0u8; 100]));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let arena = arena.clone();
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    let cpu = arena.register_cpu().unwrap();
                    for _ in 0..1000 {
                        let mut o = cache.get(&cpu).unwrap();
                        o[0] = o[0].wrapping_add(1);
                    }
                });
            }
        });
        let cpu = arena.register_cpu().unwrap();
        cache.drain(&cpu);
    }

    #[test]
    fn teardown_order_is_forgiving() {
        // Cache dropped after its CPUs are gone: objects still get
        // destroyed (via a fresh registration).
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let arena = KmemArena::new(KmemConfig::small()).unwrap();
        let cache = ObjectCache::new(&arena, 4, || D);
        {
            let cpu = arena.register_cpu().unwrap();
            let a = cache.get(&cpu).unwrap();
            let b = cache.get(&cpu).unwrap();
            drop(a);
            drop(b);
        }
        drop(cache);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn maybe_uninit_sized_records_fit_expected_classes() {
        // Documented behaviour: a KBox<T> consumes the class that covers
        // size_of::<T>().
        let (arena, cpu) = setup();
        let _b = KBox::new(&cpu, MaybeUninit::<[u8; 200]>::uninit()).unwrap();
        let stats = arena.stats();
        let c256 = stats.classes.iter().find(|c| c.size == 256).unwrap();
        assert_eq!(c256.cpu_alloc.accesses, 1);
    }
}
