//! Allocator errors.

use core::fmt;

use kmem_vm::VmError;

/// Where a hardened-profile corruption check fired.
///
/// Each site's [`fmt::Display`] string names the misuse the same way the
/// debug-build `debug_assert!` guards do ("double free", "use-after-free",
/// "different arena"), so `#[should_panic(expected = ...)]` tests match
/// across build profiles and detection mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionSite {
    /// A free of a block still sitting in the per-CPU quarantine ring.
    DoubleFreeQuarantine,
    /// A free of a block whose free-poison word is still intact — the
    /// block is already on some freelist.
    DoubleFreePoison,
    /// Verify-on-alloc found the free-poison pattern overwritten: the
    /// block was written to after it was freed.
    PoisonOverwrite,
    /// A freed block's encoded `next` word decoded to an implausible
    /// pointer: the intrusive freelist link was clobbered.
    FreelistLink,
    /// A cookie minted by one arena was presented to another.
    CookieArena,
}

impl fmt::Display for CorruptionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CorruptionSite::DoubleFreeQuarantine => "double free (quarantine hit)",
            CorruptionSite::DoubleFreePoison => "double free (free poison intact)",
            CorruptionSite::PoisonOverwrite => "use-after-free (free poison overwritten)",
            CorruptionSite::FreelistLink => "corrupted freelist link",
            CorruptionSite::CookieArena => "cookie used on a different arena",
        })
    }
}

/// Errors returned by allocation paths.
///
/// The paper's `kmem_alloc` can be called with `KM_NOSLEEP`, in which case
/// it returns `NULL` under memory pressure; this enum is the typed version
/// of that `NULL`, with enough detail to tell virtual from physical
/// exhaustion in tests — plus the hardened profile's typed corruption
/// report, the alternative to panicking on detected heap misuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KmemError {
    /// A zero-byte allocation was requested.
    ZeroSize,
    /// The request exceeds what the arena can ever satisfy.
    TooLarge {
        /// The requested size in bytes.
        requested: usize,
        /// The largest request this arena supports.
        max: usize,
    },
    /// Memory is exhausted (after per-CPU, global, page, and vmblk layers,
    /// including a flush of the caller's own per-CPU cache, all failed).
    OutOfMemory {
        /// The requested size in bytes.
        requested: usize,
    },
    /// The hardened profile detected heap corruption (double free,
    /// use-after-free, clobbered freelist link, cross-arena cookie).
    /// Returned instead of panicking when
    /// [`crate::config::HardenedConfig::panic_on_corruption`] is off.
    Corruption {
        /// Which check fired.
        site: CorruptionSite,
        /// Address of the offending block.
        addr: usize,
    },
}

/// Historical name for [`KmemError`]; every allocation API returns it.
pub type AllocError = KmemError;

impl fmt::Display for KmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KmemError::ZeroSize => write!(f, "zero-size allocation"),
            KmemError::TooLarge { requested, max } => {
                write!(f, "request of {requested} bytes exceeds maximum {max}")
            }
            KmemError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} bytes")
            }
            KmemError::Corruption { site, addr } => {
                write!(f, "kmem corruption: {site} at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for KmemError {}

impl From<VmError> for KmemError {
    fn from(_: VmError) -> Self {
        // Detail about which resource ran out is recorded in the VM stats;
        // allocation callers only observe memory exhaustion.
        KmemError::OutOfMemory { requested: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_sizes() {
        let s = KmemError::TooLarge {
            requested: 10,
            max: 5,
        }
        .to_string();
        assert!(s.contains("10") && s.contains('5'));
        assert!(KmemError::OutOfMemory { requested: 64 }
            .to_string()
            .contains("64"));
    }

    #[test]
    fn corruption_display_names_the_misuse() {
        // The should_panic phrases the misuse tests match on must survive
        // in the typed error's rendering, whatever the build profile.
        let cases = [
            (CorruptionSite::DoubleFreeQuarantine, "double free"),
            (CorruptionSite::DoubleFreePoison, "double free"),
            (CorruptionSite::PoisonOverwrite, "use-after-free"),
            (CorruptionSite::FreelistLink, "freelist link"),
            (CorruptionSite::CookieArena, "different arena"),
        ];
        for (site, phrase) in cases {
            let e = KmemError::Corruption { site, addr: 0x4000 };
            let s = e.to_string();
            assert!(s.contains(phrase), "{s:?} missing {phrase:?}");
            assert!(s.contains("0x4000"), "{s:?} missing the address");
        }
    }
}
