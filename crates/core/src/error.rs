//! Allocator errors.

use core::fmt;

use kmem_vm::VmError;

/// Errors returned by allocation paths.
///
/// The paper's `kmem_alloc` can be called with `KM_NOSLEEP`, in which case
/// it returns `NULL` under memory pressure; this enum is the typed version
/// of that `NULL`, with enough detail to tell virtual from physical
/// exhaustion in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// A zero-byte allocation was requested.
    ZeroSize,
    /// The request exceeds what the arena can ever satisfy.
    TooLarge {
        /// The requested size in bytes.
        requested: usize,
        /// The largest request this arena supports.
        max: usize,
    },
    /// Memory is exhausted (after per-CPU, global, page, and vmblk layers,
    /// including a flush of the caller's own per-CPU cache, all failed).
    OutOfMemory {
        /// The requested size in bytes.
        requested: usize,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::ZeroSize => write!(f, "zero-size allocation"),
            AllocError::TooLarge { requested, max } => {
                write!(f, "request of {requested} bytes exceeds maximum {max}")
            }
            AllocError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} bytes")
            }
        }
    }
}

impl std::error::Error for AllocError {}

impl From<VmError> for AllocError {
    fn from(_: VmError) -> Self {
        // Detail about which resource ran out is recorded in the VM stats;
        // allocation callers only observe memory exhaustion.
        AllocError::OutOfMemory { requested: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_sizes() {
        let s = AllocError::TooLarge {
            requested: 10,
            max: 5,
        }
        .to_string();
        assert!(s.contains("10") && s.contains('5'));
        assert!(AllocError::OutOfMemory { requested: 64 }
            .to_string()
            .contains("64"));
    }
}
