//! The global layer (paper Figure 3), lock-free on its common path.
//!
//! "The only purpose of the global layer is to support reasonable
//! performance in cases when one CPU allocates buffers of a given size,
//! which are then passed to other CPUs that free them. The global layer
//! allows the freed buffers to move back to the allocating CPU without
//! incurring the overhead of coalescing."
//!
//! Each size class has one [`GlobalPool`]. The ready `target`-sized
//! chains — the paper's `gblfree` list, and the only structure the
//! common CPU-to-CPU recycling pattern touches — live on a **lock-free
//! Treiber stack** whose head is a generation-tagged word
//! ([`kmem_smp::TaggedAtomic`]): [`GlobalPool::get_chain`] is a single
//! CAS pop and [`GlobalPool::put_chain`] of an exact-`target` chain is a
//! single CAS push, so the last lock on the alloc/free fast path is
//! gone. Chains stay intact on the stack by threading the stack link
//! through each chain head's first word and stashing the displaced
//! intra-chain link and the tail pointer in the spare (poison) words —
//! see [`crate::block::write_stash`].
//!
//! Everything else — the *bucket list* that regroups odd-sized chains
//! (from low-memory cache flushes), short pools, bound-exceeding puts,
//! and pressure-ladder spills — stays behind a narrow [`SpinLock`]ed
//! slow path. The `2 * gbltarget` bound is approximated on the fast path
//! by a block-count estimate *derived* from counters the pool already
//! keeps ([`GlobalPool::stack_blocks`] — no dedicated count, no extra
//! hot-path RMW); exact enforcement happens on the slow path, so
//! concurrent fast puts can transiently overshoot the bound by at most
//! one chain per CPU (see DESIGN.md §9 for the argument).
//! Excess goes to the coalesce-to-page layer and an empty pool is
//! replenished from it — both via return values, so the page layer is
//! never entered while the slow-path lock is held.

use core::ptr;
use core::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

use kmem_smp::{faults, EventCounter, Faults, SpinLock, TaggedAtomic};

use crate::block::{self, LinkKey};
use crate::chain::Chain;

/// Statistics for one global pool.
///
/// Beyond the access/miss pair the paper's tables need, the counters break
/// every event down by *how* it was served — the detail the snapshot layer
/// (`crate::snapshot`) exposes per class. The counters are chosen so the
/// lock-free fast path bumps exactly **one** of them per operation
/// ([`GlobalStats::get_fast`] or [`GlobalStats::put_fast`]): totals like
/// [`GlobalStats::get`] are *derived* as `fast + slow` at read time rather
/// than maintained with an extra hot-path RMW. The slow path bumps its
/// entry counter (`get_slow`/`put_slow`) before any outcome detail, so a
/// concurrent reader that loads the details first can still assert
/// `detail <= slow-entries` on live samples.
#[derive(Default)]
pub struct GlobalStats {
    /// Gets served entirely by the lock-free CAS pop (no spinlock); every
    /// one handed out a ready `target`-sized chain.
    pub get_fast: EventCounter,
    /// Gets that took the locked slow path (bucket serves, short pools,
    /// misses, and the under-lock stack retry).
    pub get_slow: EventCounter,
    /// Slow-path gets served by a ready chain (a racing put landed one
    /// between the failed fast pop and the lock).
    pub get_chain_hits_slow: EventCounter,
    /// Gets whose first block came from the bucket list.
    pub get_bucket_hits: EventCounter,
    /// Gets that handed back a sub-`target` chain (the pool held fewer
    /// than `target` blocks; each one erodes the per-CPU hysteresis).
    pub get_short: EventCounter,
    /// Total blocks missing from short gets (`target - len`, summed).
    pub get_short_deficit: EventCounter,
    /// Chain requests that fell through to the coalesce-to-page layer.
    pub get_miss: EventCounter,
    /// Exact-`target` puts served entirely by the lock-free CAS push.
    pub put_fast: EventCounter,
    /// Puts that took the locked slow path (odd chains, bound-exceeding
    /// puts).
    pub put_slow: EventCounter,
    /// Puts that took the odd-sized bucket path (low-memory flushes).
    pub put_odd: EventCounter,
    /// Returns that spilled excess blocks to the coalesce-to-page layer.
    pub put_miss: EventCounter,
    /// Spills forced by the pressure ladder ([`GlobalPool::spill_to`])
    /// rather than by a put exceeding the bound. Counted separately from
    /// `put_miss`, which stays bounded by [`GlobalStats::put`].
    pub pressure_spills: EventCounter,
    /// Total blocks spilled to the coalesce-to-page layer (bound-exceeding
    /// puts and forced spills combined).
    pub spill_blocks: EventCounter,
    /// Failed tag-CAS attempts on the Treiber stack head (both pops and
    /// pushes; monotone, and zero without contention).
    pub cas_retries: EventCounter,
    /// Epoch-batched stack detaches ([`GlobalPool::detach_stack_locked`]):
    /// each one moved *every* stacked chain with a single tagged CAS and
    /// settled the slow-path block account with a single RMW.
    pub batch_drains: EventCounter,
    /// Chains moved by batched detaches. `batched_chains / batch_drains`
    /// is the per-CAS amortization the maintenance core achieves over the
    /// one-CAS-per-chain pop loop it replaced.
    pub batched_chains: EventCounter,
}

impl GlobalStats {
    /// Chain requests served (hits and misses): every get is either fast
    /// or slow, so the total is derived instead of costing the fast path
    /// a second RMW.
    pub fn get(&self) -> u64 {
        // Fast before slow: a live reader must never see a partition
        // exceed a total it reads later, and `get_fast` is the half that
        // races snapshots without a lock.
        let fast = self.get_fast.get();
        fast + self.get_slow.get()
    }

    /// Gets whose first block came from a ready `target`-sized chain —
    /// every fast get plus the slow path's under-lock stack hits.
    pub fn get_chain_hits(&self) -> u64 {
        let fast = self.get_fast.get();
        fast + self.get_chain_hits_slow.get()
    }

    /// Chains returned by per-CPU caches (derived, like
    /// [`GlobalStats::get`]).
    pub fn put(&self) -> u64 {
        let fast = self.put_fast.get();
        fast + self.put_slow.get()
    }
}

/// The global free pool for one size class.
pub struct GlobalPool {
    /// Treiber stack of intact, exactly-`target`-sized chains. Only
    /// [`GlobalPool::push_stack`] / [`GlobalPool::pop_stack`] touch it.
    stack: TaggedAtomic,
    /// Net blocks the *slow path* has moved onto (+) or off (−) the
    /// stack: bound-exceeding puts and regrouped bucket chains add
    /// before pushing; trims, drains, and the under-lock get retry
    /// subtract after popping. Written only by bucket-lock holders, read
    /// lock-free by [`GlobalPool::stack_blocks`]. Fast-path traffic is
    /// *not* tracked here — it is derived from `put_fast`/`get_fast`, so
    /// the fast path pays no extra RMW for the block count.
    slow_net: AtomicI64,
    /// The slow path: the odd-sized bucket list awaiting regrouping,
    /// behind the pool's only lock. Holding this lock also serializes
    /// structural decisions (trims, short gets, drains) — the lock-free
    /// stack itself may still be pushed/popped concurrently.
    bucket: SpinLock<Chain>,
    target: usize,
    gbltarget: usize,
    /// Link-encoding key shared with every chain this pool handles (the
    /// arena's per-secret key under the hardened profile, identity
    /// otherwise). Steal targets share the arena key, so a stolen chain
    /// decodes on the thief's node exactly as it would at home.
    key: LinkKey,
    /// Blocks sunk by a detected bucket-link corruption: they are
    /// unreachable through the clobbered word, so the pool drops them and
    /// records the loss here for the conservation check.
    sunk: AtomicUsize,
    faults: Faults,
    stats: GlobalStats,
}

impl GlobalPool {
    /// Creates an empty pool with the class's `target` and `gbltarget`.
    pub fn new(target: usize, gbltarget: usize) -> Self {
        GlobalPool::new_with_faults(target, gbltarget, Faults::none())
    }

    /// Creates an empty pool wired to `faults`: the `faults::GLOBAL_GET`
    /// site is consulted on *both* the CAS fast path and the locked slow
    /// path of [`GlobalPool::get_chain`].
    pub fn new_with_faults(target: usize, gbltarget: usize, faults: Faults) -> Self {
        GlobalPool::new_hardened(target, gbltarget, Faults::none(), LinkKey::PLAIN)
            .with_faults(faults)
    }

    /// Creates an empty pool whose stack words, stash words, and bucket
    /// links are all encoded under `key`.
    pub fn new_hardened(target: usize, gbltarget: usize, faults: Faults, key: LinkKey) -> Self {
        assert!(target >= 1, "target-sized chains must hold a block");
        GlobalPool {
            stack: TaggedAtomic::null(),
            slow_net: AtomicI64::new(0),
            bucket: SpinLock::new(Chain::new_keyed(key)),
            target,
            gbltarget,
            key,
            sunk: AtomicUsize::new(0),
            faults,
            stats: GlobalStats::default(),
        }
    }

    fn with_faults(mut self, faults: Faults) -> Self {
        self.faults = faults;
        self
    }

    /// This pool's `target`.
    pub fn target(&self) -> usize {
        self.target
    }

    /// This pool's `gbltarget`.
    pub fn gbltarget(&self) -> usize {
        self.gbltarget
    }

    /// Statistics for this pool.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Pushes an exactly-`target`-sized chain onto the lock-free stack.
    ///
    /// The chain is kept intact: the head's first word becomes the stack
    /// link, the displaced intra-chain link moves to the head's second
    /// word, and the tail pointer to the second block's second word
    /// (single-block chains need no stashing — head *is* tail). Only the
    /// head's first word is ever read by non-owners, so only it uses
    /// atomic accesses.
    fn push_stack(&self, chain: Chain) {
        let (head, tail, len) = chain.into_raw();
        debug_assert_eq!(len, self.target, "stack chains must be exactly target");
        if len > 1 {
            // SAFETY: we own the chain; head and its successor are free
            // blocks of at least MIN_BLOCK bytes.
            unsafe {
                let second = block::read_next(head, self.key);
                block::write_stash(head, second, self.key);
                block::write_stash(second, tail, self.key);
            }
        }
        let mut cur = self.stack.load();
        loop {
            // SAFETY: we still own `head` until the CAS publishes it.
            unsafe { block::write_next_atomic(head, cur.ptr(), self.key) };
            match self.stack.compare_exchange(cur, head) {
                Ok(_) => return,
                Err(seen) => {
                    self.stats.cas_retries.inc();
                    cur = seen;
                }
            }
        }
    }

    /// Pops one intact `target`-sized chain off the lock-free stack, or
    /// `None` if the stack is empty. Counter-free: callers attribute the
    /// pop to their own path.
    fn pop_stack(&self) -> Option<Chain> {
        let mut cur = self.stack.load();
        loop {
            if cur.is_null() {
                return None;
            }
            let head = cur.ptr();
            // SAFETY: `head` may already have been popped by a racing
            // CPU — the arena reservation is type-stable, so this atomic
            // load cannot fault, and a stale value is discarded below
            // when the generation-tag CAS fails.
            let next = unsafe { block::read_next_atomic(head, self.key) };
            match self.stack.compare_exchange(cur, next) {
                Ok(_) => {
                    // SAFETY: the successful tag CAS transferred the
                    // whole chain under `head` to us.
                    return Some(unsafe { self.rebuild_chain(head) });
                }
                Err(seen) => {
                    self.stats.cas_retries.inc();
                    cur = seen;
                }
            }
        }
    }

    /// Restores the intra-chain layout of a freshly popped stack chain.
    ///
    /// # Safety
    ///
    /// `head` must be a chain head this CPU just popped (owns) that was
    /// laid out by [`GlobalPool::push_stack`] for this pool's `target`.
    unsafe fn rebuild_chain(&self, head: *mut u8) -> Chain {
        if self.target == 1 {
            // SAFETY: we own `head`; racing poppers may still load its
            // first word, hence the atomic store.
            unsafe { block::write_next_atomic(head, ptr::null_mut(), self.key) };
            // SAFETY: a single owned block is a well-formed chain.
            return unsafe { Chain::from_raw(head, head, 1, self.key) };
        }
        // SAFETY: push_stack stashed the second-block and tail pointers
        // in the spare words; taking them back re-poisons the words.
        let second = unsafe { block::take_stash(head, self.key) };
        // Under a hardened key, a scribble over the head's stash word
        // decodes to an implausible second-block pointer; stop before
        // dereferencing it. A clean panic (not a typed error) because the
        // popped chain is already off the stack: there is no caller state
        // to unwind to that could keep the arena consistent.
        if !self.key.is_plain() && (!self.key.plausible(second) || second.is_null()) {
            panic!(
                "corrupted freelist link: stash word of stacked chain head {head:p} decoded to {second:p}"
            );
        }
        // SAFETY: as above (plausibility-checked under hardened keys).
        let tail = unsafe { block::take_stash(second, self.key) };
        if !self.key.is_plain() && (!self.key.plausible(tail) || tail.is_null()) {
            panic!(
                "corrupted freelist link: tail stash of stacked chain {head:p} decoded to {tail:p}"
            );
        }
        // SAFETY: restoring the intra-chain link we displaced; atomic
        // because racing poppers may still load this word.
        unsafe { block::write_next_atomic(head, second, self.key) };
        // SAFETY: head -> second -> … -> tail is the original chain.
        unsafe { Chain::from_raw(head, tail, self.target, self.key) }
    }

    /// Conservative lock-free estimate of the blocks on the stack.
    ///
    /// No dedicated counter is maintained — that would put a
    /// `fetch_add`/`fetch_sub` pair back on the CAS fast path. Instead
    /// the estimate is derived from counters the pool already keeps:
    /// the fast-path op counters (`put_fast` rises *before* its push,
    /// `get_fast` *after* its pop) plus [`GlobalPool::slow_net`], the
    /// lock holders' net block movement (also added before pushes,
    /// subtracted after pops). A torn sweep — another CPU completing
    /// round trips between the loads — could inflate the estimate
    /// without bound, so the sweep is seqlock-style: it retries while
    /// `put_fast` moves. With `put_fast` stable across the window, any
    /// pop the window counts is of a chain whose push it also counts:
    /// fast pushes raise `put_fast` first and would force a retry, and
    /// slow pushes raise `slow_net` before publishing, which reading
    /// `slow_net` *after* `get_fast` picks up through the pop's release
    /// chain. The result therefore overstates only by in-flight pushes
    /// that have raised their counter but not yet landed — at most one
    /// chain per CPU, the overshoot already granted by the approximate
    /// bound (DESIGN.md §9) — and never understates. Exact at
    /// quiescence. Under a sustained put storm the retry loop could
    /// spin, so after a few rounds it falls back to the torn-but-
    /// conservative read of [`GlobalPool::bound_estimate`].
    ///
    /// Callers are the slow-path consumers (trims, `len`, drains),
    /// where the retry cost is irrelevant and accuracy prevents
    /// spurious spills; the put fast path uses `bound_estimate`.
    fn stack_blocks(&self) -> usize {
        let mut pushed = self.stats.put_fast.get();
        for attempt in 0.. {
            let popped = self.stats.get_fast.get();
            let slow = self.slow_net.load(Ordering::Acquire);
            let pushed_after = self.stats.put_fast.get();
            if pushed_after == pushed || attempt == 8 {
                let est = self.target as i64 * (pushed_after as i64 - popped as i64) + slow;
                return est.max(0) as usize;
            }
            pushed = pushed_after;
        }
        unreachable!("loop above always returns")
    }

    /// Cheapest bound-safe estimate — three loads, no retry — for the
    /// put fast path. Reading `get_fast` (stale) before `put_fast`
    /// (fresh) means round trips completing mid-sweep *inflate* the
    /// result, so it never understates the stack and the `2 *
    /// gbltarget` check stays sound. The inflation is unbounded in
    /// theory (a long preemption mid-sweep), but the only consequence
    /// is a spurious slow-path entry, where [`GlobalPool::stack_blocks`]
    /// re-judges accurately under the lock.
    fn bound_estimate(&self) -> usize {
        let popped = self.stats.get_fast.get() as i64;
        let slow = self.slow_net.load(Ordering::Acquire);
        let pushed = self.stats.put_fast.get() as i64;
        (self.target as i64 * (pushed - popped) + slow).max(0) as usize
    }

    /// Slow-path push: accounts the chain in `slow_net` *before*
    /// publishing it, so [`GlobalPool::stack_blocks`] never understates.
    /// Caller must hold the bucket lock.
    fn push_stack_slow(&self, chain: Chain) {
        self.slow_net
            .fetch_add(chain.len() as i64, Ordering::Release);
        self.push_stack(chain);
    }

    /// Slow-path pop: accounts the chain *after* it is off the stack.
    /// Caller must hold the bucket lock.
    fn pop_stack_slow(&self) -> Option<Chain> {
        let chain = self.pop_stack()?;
        self.slow_net
            .fetch_sub(chain.len() as i64, Ordering::Release);
        Some(chain)
    }

    /// Epoch-batched multi-chain pop: detaches **every** stacked chain
    /// with a *single* tagged CAS (swap the head to null), rebuilds the
    /// run privately, and settles the slow-path block account with a
    /// *single* RMW — instead of one CAS plus one `fetch_sub` per chain.
    /// This is what the maintenance core drains through: a bulk drain of
    /// N chains costs O(1) shared-line RMWs on the stack head no matter
    /// how large N is (probe-asserted in the tests below).
    ///
    /// Returns the merged chain and the number of chains it contained.
    /// Caller must hold the bucket lock (the `slow_net` convention); the
    /// walk itself touches only blocks the CAS transferred to us.
    fn detach_stack_locked(&self) -> (Chain, usize) {
        let mut all = Chain::new_keyed(self.key);
        let mut cur = self.stack.load();
        let run = loop {
            if cur.is_null() {
                return (all, 0);
            }
            match self.stack.compare_exchange(cur, ptr::null_mut()) {
                Ok(_) => break cur.ptr(),
                Err(seen) => {
                    self.stats.cas_retries.inc();
                    cur = seen;
                }
            }
        };
        let mut node = run;
        let mut chains = 0usize;
        while !node.is_null() {
            // Read the stack link *before* rebuilding: rebuild_chain
            // overwrites the head's first word with the intra-chain link.
            // SAFETY: the successful detach CAS transferred the whole run
            // to us; every node is an owned chain head.
            let next = unsafe { block::read_next_atomic(node, self.key) };
            // SAFETY: as above — `node` is an owned chain head laid out by
            // push_stack for this pool's target.
            let mut chain = unsafe { self.rebuild_chain(node) };
            all.append(&mut chain);
            chains += 1;
            node = next;
        }
        // One settle for the whole epoch: every stacked chain is exactly
        // `target` blocks, so the batch moved `chains * target` blocks.
        self.slow_net
            .fetch_sub((chains * self.target) as i64, Ordering::Release);
        self.stats.batch_drains.inc();
        self.stats.batched_chains.add(chains as u64);
        (all, chains)
    }

    /// The batched analogue of [`GlobalPool::trim_locked`], used by the
    /// maintenance core: one detach CAS pulls the whole stack, exact
    /// arithmetic decides the spill, and the remainder regroups back. The
    /// re-push CASes run on the maintenance core, not a hot CPU. Caller
    /// holds the bucket lock; counter-free like `trim_locked`.
    fn trim_batched_locked(&self, bucket: &mut Chain, bound: usize) -> Option<Chain> {
        if self.stack_blocks() + bucket.len() <= bound {
            return None;
        }
        let (mut pool_blocks, _chains) = self.detach_stack_locked();
        pool_blocks.append(bucket);
        let total = pool_blocks.len();
        if total <= bound {
            // The estimate over-stated (in-flight fast puts); put
            // everything back and let the next crossing re-judge.
            bucket.append(&mut pool_blocks);
            self.regroup(bucket);
            return None;
        }
        let spill = pool_blocks.split_first(total - bound);
        debug_assert_eq!(spill.len(), total - bound);
        bucket.append(&mut pool_blocks);
        self.regroup(bucket);
        Some(spill)
    }

    /// Fetches a chain for a per-CPU cache.
    ///
    /// The common case is a single tag-CAS pop of a ready `target`-sized
    /// chain — no lock. When the stack is empty the locked slow path
    /// serves from the bucket list instead, so the caller receives
    /// `min(target, pool_total)` blocks — the most the paper's
    /// hysteresis guarantee ("the global layer will be accessed at most
    /// one time per target-number of accesses") can get. A chain shorter
    /// than `target` is handed back only when the whole pool holds fewer
    /// than `target` blocks, counted in `get_short`/`get_short_deficit`.
    ///
    /// Returns `None` when the pool is empty — the caller then asks the
    /// coalesce-to-page layer (the counted miss) — or when the
    /// `faults::GLOBAL_GET` failpoint fires.
    pub fn get_chain(&self) -> Option<Chain> {
        // The failpoint preempts the pool entirely (fast and slow path
        // alike), exactly as an injected global-layer miss should.
        if self.faults.hit(faults::GLOBAL_GET) {
            return None;
        }
        if let Some(chain) = self.pop_stack() {
            // The fast path's *only* counter write; `get` and
            // `get_chain_hits` are derived from it at read time.
            self.stats.get_fast.inc();
            return Some(chain);
        }
        self.get_slow()
    }

    /// Work-stealing get against a *remote* node's shard: pops one ready
    /// `target`-sized chain with the same single tag-CAS as the local
    /// fast path, but never falls through to the locked bucket path — a
    /// thief takes only what is cheap to take and leaves the victim's
    /// slow-path structures alone. Counted as a fast get so the
    /// `get = get_fast + get_slow` partition (and the derived
    /// `get_chain_hits`) stays exact; the *thief's* arena attributes the
    /// refill to stealing in its per-node stats.
    pub fn steal_chain(&self) -> Option<Chain> {
        let chain = self.pop_stack()?;
        self.stats.get_fast.inc();
        Some(chain)
    }

    /// The locked get path: retry the stack under the lock, then serve
    /// (possibly short) from the bucket list.
    #[cold]
    fn get_slow(&self) -> Option<Chain> {
        self.stats.get_slow.inc();
        let mut bucket = self.bucket.lock();
        // The slow path honours the same failpoint: a lock-free rework
        // must never route around an armed site.
        if self.faults.hit(faults::GLOBAL_GET) {
            drop(bucket);
            self.stats.get_miss.inc();
            return None;
        }
        // A racing put may have pushed a chain after our empty fast-path
        // pop; prefer it over a short bucket serve.
        if let Some(chain) = self.pop_stack_slow() {
            self.stats.get_chain_hits_slow.inc();
            return Some(chain);
        }
        if bucket.is_empty() {
            drop(bucket);
            self.stats.get_miss.inc();
            return None;
        }
        let n = bucket.len().min(self.target);
        let chain = match bucket.try_split_first(n) {
            Ok(chain) => chain,
            Err(fault) => {
                // A clobbered bucket link: the walk stopped before
                // dereferencing it, the bucket sank its now-unreachable
                // blocks, and this get becomes a miss the page layer will
                // serve. The loss is recorded for the conservation check.
                drop(bucket);
                self.sunk.fetch_add(fault.lost, Ordering::Relaxed);
                self.stats.get_miss.inc();
                return None;
            }
        };
        drop(bucket);
        if n < self.target {
            self.stats.get_short_deficit.add((self.target - n) as u64);
            self.stats.get_short.inc();
        }
        self.stats.get_bucket_hits.inc();
        Some(chain)
    }

    /// Accepts an exactly-`target`-sized chain from a per-CPU cache.
    ///
    /// The common case is a single tag-CAS push — no lock. The derived
    /// block-count estimate ([`GlobalPool::stack_blocks`]) approximates
    /// the `2 * gbltarget` bound: a put that would exceed it takes the
    /// locked slow path, which pushes the chain and then trims the pool
    /// exactly. Concurrent fast puts can overshoot transiently by at
    /// most one chain per CPU.
    ///
    /// A chain of any other length is routed through the bucket list
    /// instead of corrupting the ready-chain stack (the internal callers
    /// always pass exact chains; the routing keeps the stack's invariant —
    /// every stacked chain holds exactly `target` blocks — intact under
    /// misuse).
    ///
    /// Returns the excess to push down to the coalesce-to-page layer when
    /// the pool exceeds `2 * gbltarget` blocks.
    pub fn put_chain(&self, chain: Chain) -> Option<Chain> {
        if chain.len() != self.target {
            return self.put_odd(chain);
        }
        if self.bound_estimate() + self.target <= 2 * self.gbltarget {
            // The fast path's only counter write; `put` is derived, and
            // `stack_blocks` folds this increment into its estimate —
            // hence inc *before* push (the mirror of `get_chain`'s
            // pop-then-inc), keeping the estimate conservative.
            self.stats.put_fast.inc();
            self.push_stack(chain);
            return None;
        }
        self.stats.put_slow.inc();
        let mut bucket = self.bucket.lock();
        self.push_stack_slow(chain);
        self.spill_locked(&mut bucket)
    }

    /// Accepts an odd-sized chain (low-memory flushes, partial refills
    /// handed back). Blocks land in the bucket list, which regroups them
    /// into `target`-sized chains pushed back onto the lock-free stack.
    pub fn put_odd(&self, mut chain: Chain) -> Option<Chain> {
        if chain.is_empty() {
            return None;
        }
        self.stats.put_slow.inc();
        self.stats.put_odd.inc();
        let mut bucket = self.bucket.lock();
        bucket.append(&mut chain);
        self.regroup(&mut bucket);
        self.spill_locked(&mut bucket)
    }

    /// Deferred-maintenance put of an exact-`target` chain: *always*
    /// pushes wait-free (the same counted fast-path push as
    /// [`GlobalPool::put_chain`]'s common case, so the derived block
    /// estimate stays exact) and returns whether the pool is now over its
    /// `2 * gbltarget` bound. On `true` the caller posts a `Trim` work
    /// item to the maintenance mailbox instead of trimming inline — the
    /// hot CPU never takes the bucket lock on this path. The bound
    /// overshoots transiently until the maintenance core drains the trim;
    /// the arena's invariant walker is run after the pump in maintenance
    /// mode (DESIGN.md §13).
    ///
    /// A wrong-length chain routes through
    /// [`GlobalPool::put_odd_deferred`], mirroring `put_chain`'s routing.
    pub fn put_chain_deferred(&self, chain: Chain) -> bool {
        if chain.len() != self.target {
            return self.put_odd_deferred(chain);
        }
        let over = self.bound_estimate() + self.target > 2 * self.gbltarget;
        self.stats.put_fast.inc();
        self.push_stack(chain);
        over
    }

    /// Deferred-maintenance odd put: blocks land in the bucket with one
    /// O(1) lock-append — no regroup walk, no trim — and the caller posts
    /// a `Regroup` work item. Returns whether maintenance is needed
    /// (always, for a non-empty chain; the mailbox dedups the storm).
    /// Gets stay correct meanwhile: the locked get path serves straight
    /// from the un-regrouped bucket.
    pub fn put_odd_deferred(&self, mut chain: Chain) -> bool {
        if chain.is_empty() {
            return false;
        }
        self.stats.put_slow.inc();
        self.stats.put_odd.inc();
        let mut bucket = self.bucket.lock();
        bucket.append(&mut chain);
        true
    }

    /// Maintenance-core trim to the standard `2 * gbltarget` bound via
    /// the epoch-batched detach — the deferred half of a bound-exceeding
    /// put, with the same attribution as the inline path (`put_miss`,
    /// `spill_blocks`).
    pub fn maint_trim(&self) -> Option<Chain> {
        let mut bucket = self.bucket.lock();
        let spill = self.trim_batched_locked(&mut bucket, 2 * self.gbltarget)?;
        drop(bucket);
        self.stats.put_miss.inc();
        self.stats.spill_blocks.add(spill.len() as u64);
        Some(spill)
    }

    /// Maintenance-core regroup of the bucket list (the deferred half of
    /// an odd put), then the standard bound trim — identical tail to the
    /// inline [`GlobalPool::put_odd`].
    pub fn maint_regroup(&self) -> Option<Chain> {
        let mut bucket = self.bucket.lock();
        self.regroup(&mut bucket);
        self.spill_locked(&mut bucket)
    }

    /// Maintenance-core pressure spill down to `bound` via the batched
    /// detach — the deferred [`GlobalPool::spill_to`], with the same
    /// attribution (`pressure_spills`, `spill_blocks`).
    pub fn maint_spill(&self, bound: usize) -> Option<Chain> {
        let mut bucket = self.bucket.lock();
        let spill = self.trim_batched_locked(&mut bucket, bound)?;
        drop(bucket);
        self.stats.pressure_spills.inc();
        self.stats.spill_blocks.add(spill.len() as u64);
        Some(spill)
    }

    /// Regroup: "the bucket list, which is used to group the blocks back
    /// into target-sized lists". Exact chains leave the bucket for the
    /// lock-free stack, where gets can reach them without the lock.
    fn regroup(&self, bucket: &mut Chain) {
        while bucket.len() >= self.target {
            let grouped = bucket.split_first(self.target);
            self.push_stack_slow(grouped);
        }
    }

    /// Trims the pool to exactly `2 * gbltarget` blocks, returning the
    /// spill.
    ///
    /// Whole chains are shed first (O(1) each); the final chain is *split*
    /// so the pool lands exactly on the bound. The split walk is bounded
    /// by `target` links and happens at most once per spill.
    fn spill_locked(&self, bucket: &mut Chain) -> Option<Chain> {
        let spill = self.trim_locked(bucket, 2 * self.gbltarget)?;
        self.stats.put_miss.inc();
        self.stats.spill_blocks.add(spill.len() as u64);
        Some(spill)
    }

    /// Trims the pool down to `bound` blocks on behalf of the pressure
    /// ladder, returning the spill for the caller to push to the
    /// coalesce-to-page layer. `None` when the pool is already within
    /// bounds. Counted in `pressure_spills`, not `put_miss`.
    pub fn spill_to(&self, bound: usize) -> Option<Chain> {
        let mut bucket = self.bucket.lock();
        let spill = self.trim_locked(&mut bucket, bound)?;
        drop(bucket);
        self.stats.pressure_spills.inc();
        self.stats.spill_blocks.add(spill.len() as u64);
        Some(spill)
    }

    /// The trimming walk shared by [`GlobalPool::spill_locked`] and
    /// [`GlobalPool::spill_to`]; counter-free so each caller can attribute
    /// the spill to its own cause. Caller holds the bucket lock; stack
    /// chains are shed through ordinary lock-free pops, so concurrent
    /// fast-path traffic stays correct (and may make the trim
    /// approximate — the next slow-path entry re-trims).
    fn trim_locked(&self, bucket: &mut Chain, bound: usize) -> Option<Chain> {
        let mut total = self.stack_blocks() + bucket.len();
        if total <= bound {
            return None;
        }
        let mut spill = Chain::new_keyed(self.key);
        while total > bound {
            let excess = total - bound;
            match self.pop_stack_slow() {
                Some(mut chain) if chain.len() > excess => {
                    let mut cut = chain.split_first(excess);
                    total -= excess;
                    spill.append(&mut cut);
                    // The kept remainder is odd-sized; it goes back through
                    // the bucket (and regroups if the bucket fills up).
                    bucket.append(&mut chain);
                    self.regroup(bucket);
                }
                Some(mut chain) => {
                    total -= chain.len();
                    spill.append(&mut chain);
                }
                None => {
                    // Only the bucket is left; trim it directly.
                    let n = excess.min(bucket.len());
                    if n == 0 {
                        break;
                    }
                    let mut cut = bucket.split_first(n);
                    total -= n;
                    spill.append(&mut cut);
                }
            }
        }
        Some(spill)
    }

    /// Current block count (tests and the invariant walker). Exact at
    /// quiescence; a live sample may transiently overstate by chains
    /// whose push has been counted but not yet published.
    pub fn len(&self) -> usize {
        let bucket = self.bucket.lock().len();
        self.stack_blocks() + bucket
    }

    /// Returns whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks this pool sank on detected bucket-link corruption — still
    /// part of the arena's reservation, so the conservation check counts
    /// them alongside free and cached blocks.
    pub fn sunk(&self) -> usize {
        self.sunk.load(Ordering::Relaxed)
    }

    /// Drains every block (arena teardown and low-memory reclaim) through
    /// the epoch-batched detach: the whole stack moves with one tagged
    /// CAS and one counter settle, however many chains it held.
    pub fn drain_all(&self) -> Chain {
        let mut bucket = self.bucket.lock();
        let mut all = bucket.take();
        let (mut stacked, _chains) = self.detach_stack_locked();
        all.append(&mut stacked);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem_smp::probe::{self, ProbeEvent};
    use kmem_smp::FailPolicy;

    // Boxed so each block keeps a stable address while the Vec grows.
    #[expect(clippy::vec_box)]
    struct Blocks {
        store: Vec<Box<[u8; 32]>>,
        next: usize,
    }

    impl Blocks {
        fn new(n: usize) -> Self {
            Blocks {
                store: (0..n).map(|_| Box::new([0u8; 32])).collect(),
                next: 0,
            }
        }

        fn chain(&mut self, n: usize) -> Chain {
            let mut c = Chain::new();
            for _ in 0..n {
                // SAFETY: fake blocks are owned and disjoint.
                unsafe { c.push(self.store[self.next].as_mut_ptr()) };
                self.next += 1;
            }
            c
        }
    }

    fn discard(c: Chain) -> usize {
        let mut c = c;
        let mut n = 0;
        while c.pop().is_some() {
            n += 1;
        }
        n
    }

    #[test]
    fn get_put_round_trip() {
        let mut blocks = Blocks::new(64);
        let pool = GlobalPool::new(3, 12);
        assert!(pool.get_chain().is_none());
        assert!(pool.put_chain(blocks.chain(3)).is_none());
        assert_eq!(pool.len(), 3);
        let got = pool.get_chain().unwrap();
        assert_eq!(got.len(), 3);
        assert!(pool.is_empty());
        discard(got);
    }

    #[test]
    fn single_block_targets_round_trip() {
        // target == 1: chain head == tail, no stash words in play.
        let mut blocks = Blocks::new(8);
        let pool = GlobalPool::new(1, 4);
        for _ in 0..4 {
            assert!(pool.put_chain(blocks.chain(1)).is_none());
        }
        assert_eq!(pool.len(), 4);
        for _ in 0..4 {
            let c = pool.get_chain().unwrap();
            assert_eq!(c.len(), 1);
            discard(c);
        }
        assert!(pool.get_chain().is_none());
    }

    #[test]
    fn popped_chains_walk_intact() {
        // The stack borrows chain-interior words; a popped chain must walk
        // head-to-tail with its original blocks and a working tail.
        let mut blocks = Blocks::new(64);
        for target in [2usize, 3, 5, 8] {
            let pool = GlobalPool::new(target, 4 * target);
            let c = blocks.chain(target);
            let members: Vec<*mut u8> = c.iter().collect();
            pool.put_chain(c);
            pool.put_chain(blocks.chain(target)); // stack depth 2
            discard(pool.get_chain().unwrap()); // pops the second chain
            let mut got = pool.get_chain().unwrap();
            assert_eq!(got.iter().collect::<Vec<_>>(), members);
            // The tail pointer survived the stash round trip: append works.
            let mut more = blocks.chain(1);
            got.append(&mut more);
            assert_eq!(got.len(), target + 1);
            discard(got);
        }
    }

    #[test]
    fn bucket_regroups_odd_chains() {
        let mut blocks = Blocks::new(64);
        let pool = GlobalPool::new(3, 12);
        // 2 + 2 blocks: one regrouped chain of 3 plus 1 in the bucket.
        assert!(pool.put_odd(blocks.chain(2)).is_none());
        assert!(pool.put_odd(blocks.chain(2)).is_none());
        assert_eq!(pool.len(), 4);
        let first = pool.get_chain().unwrap();
        assert_eq!(first.len(), 3);
        // The straggler comes out as a short chain rather than a miss.
        let second = pool.get_chain().unwrap();
        assert_eq!(second.len(), 1);
        assert!(pool.get_chain().is_none());
        discard(first);
        discard(second);
    }

    #[test]
    fn pool_spills_beyond_twice_gbltarget() {
        let mut blocks = Blocks::new(64);
        // target 3, gbltarget 6: capacity 12 blocks = 4 chains.
        let pool = GlobalPool::new(3, 6);
        for _ in 0..4 {
            assert!(pool.put_chain(blocks.chain(3)).is_none());
        }
        assert_eq!(pool.len(), 12);
        let spill = pool.put_chain(blocks.chain(3)).unwrap();
        assert_eq!(spill.len(), 3);
        assert_eq!(pool.len(), 12);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn spill_lands_exactly_on_the_bound() {
        let mut blocks = Blocks::new(64);
        // target 5, gbltarget 5: capacity 10.
        let pool = GlobalPool::new(5, 5);
        // 12 odd blocks regroup into two chains of 5 plus 2 in the bucket;
        // exactly the 2 excess blocks are shed (the final chain is split),
        // leaving the pool at its 10-block bound.
        let spill = pool.put_odd(blocks.chain(12)).unwrap();
        assert_eq!(spill.len(), 2);
        assert_eq!(pool.len(), 10);
        assert_eq!(pool.stats().spill_blocks.get(), 2);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn spill_of_one_excess_block_sheds_exactly_one() {
        // Regression edge case: total == 2 * gbltarget + 1 must spill
        // exactly 1 block, not a whole `target`-sized chain.
        let mut blocks = Blocks::new(32);
        // target 3, gbltarget 6: capacity 12 = 4 chains.
        let pool = GlobalPool::new(3, 6);
        for _ in 0..4 {
            assert!(pool.put_chain(blocks.chain(3)).is_none());
        }
        assert_eq!(pool.len(), 12);
        // One more block (odd put) pushes the total to 13.
        let spill = pool.put_odd(blocks.chain(1)).unwrap();
        assert_eq!(spill.len(), 1);
        assert_eq!(pool.len(), 12);
        // The split remainder keeps serving full chains: 12 blocks are
        // still four exact `target`-chains' worth.
        for _ in 0..4 {
            let c = pool.get_chain().unwrap();
            assert_eq!(c.len(), 3);
            discard(c);
        }
        assert!(pool.is_empty());
        discard(spill);
    }

    #[test]
    fn get_chain_tops_up_short_chains_from_the_bucket() {
        // Regression: a sub-`target` chain in the pool used to be handed
        // back as-is even when the bucket held more blocks, breaking the
        // "one global access per `target` operations" hysteresis. A
        // wrong-sized put routes through the bucket, which regroups into
        // exact `target`-sized stack chains whenever it holds enough.
        let mut blocks = Blocks::new(32);
        let pool = GlobalPool::new(4, 8);
        pool.put_chain(blocks.chain(2)); // misuse: short "exact" put
        pool.put_odd(blocks.chain(3));
        assert_eq!(pool.len(), 5);
        let first = pool.get_chain().unwrap();
        assert_eq!(first.len(), 4, "get must be topped up to target");
        assert_eq!(pool.stats().get_short.get(), 0);
        // Only 1 block left: the short get is now inevitable and counted.
        let second = pool.get_chain().unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(pool.stats().get_short.get(), 1);
        assert_eq!(pool.stats().get_short_deficit.get(), 3);
        assert!(pool.get_chain().is_none());
        discard(first);
        discard(second);
    }

    #[test]
    fn get_sources_are_counted() {
        let mut blocks = Blocks::new(32);
        let pool = GlobalPool::new(3, 8);
        pool.put_chain(blocks.chain(3));
        pool.put_odd(blocks.chain(2));
        discard(pool.get_chain().unwrap()); // ready chain first
        discard(pool.get_chain().unwrap()); // then the bucket
        assert!(pool.get_chain().is_none());
        let s = pool.stats();
        assert_eq!(s.get(), 3);
        assert_eq!(s.get_chain_hits(), 1);
        assert_eq!(s.get_bucket_hits.get(), 1);
        assert_eq!(s.get_miss.get(), 1);
        assert_eq!(s.put(), 2);
        assert_eq!(s.put_odd.get(), 1);
        // Fast/slow partition: the ready-chain pop was lock-free; the
        // bucket hit and the miss took the slow path.
        assert_eq!(s.get_fast.get(), 1);
        assert_eq!(s.get_slow.get(), 2);
        assert_eq!(s.put_fast.get(), 1);
        assert_eq!(s.put_slow.get(), 1);
    }

    #[test]
    fn spill_to_trims_without_touching_put_counters() {
        let mut blocks = Blocks::new(32);
        // target 3, gbltarget 6: bound 12.
        let pool = GlobalPool::new(3, 6);
        for _ in 0..4 {
            assert!(pool.put_chain(blocks.chain(3)).is_none());
        }
        assert_eq!(pool.len(), 12);
        // Already within `2 * gbltarget`: nothing to shed at that bound.
        assert!(pool.spill_to(12).is_none());
        // A pressure spill down to `gbltarget` sheds exactly 6 blocks and
        // is attributed to `pressure_spills`, leaving `put_miss` alone.
        let spill = pool.spill_to(6).unwrap();
        assert_eq!(spill.len(), 6);
        assert_eq!(pool.len(), 6);
        let s = pool.stats();
        assert_eq!(s.put_miss.get(), 0);
        assert_eq!(s.pressure_spills.get(), 1);
        assert_eq!(s.spill_blocks.get(), 6);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn spill_trims_bucket_when_no_chains_remain() {
        let mut blocks = Blocks::new(64);
        // target 10, gbltarget 3: capacity 6, and 8 odd blocks are too few
        // to regroup into a chain — the bucket itself must be trimmed.
        let pool = GlobalPool::new(10, 3);
        let spill = pool.put_odd(blocks.chain(8)).unwrap();
        assert_eq!(spill.len(), 2);
        assert_eq!(pool.len(), 6);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn miss_statistics_track_fallthrough() {
        let mut blocks = Blocks::new(16);
        let pool = GlobalPool::new(2, 4);
        assert!(pool.get_chain().is_none());
        assert_eq!(pool.stats().get(), 1);
        assert_eq!(pool.stats().get_miss.get(), 1);
        pool.put_chain(blocks.chain(2));
        let c = pool.get_chain().unwrap();
        assert_eq!(pool.stats().get(), 2);
        assert_eq!(pool.stats().get_miss.get(), 1);
        discard(c);
    }

    #[test]
    fn drain_all_empties_everything() {
        let mut blocks = Blocks::new(32);
        let pool = GlobalPool::new(3, 10);
        pool.put_chain(blocks.chain(3));
        pool.put_odd(blocks.chain(2));
        assert_eq!(discard(pool.drain_all()), 5);
        assert!(pool.is_empty());
    }

    /// The acceptance-criterion probe test: an exact-`target` ping-pong
    /// must acquire no spinlock — the whole hot path is the tag CAS.
    #[test]
    fn exact_target_ping_pong_takes_no_spinlock() {
        let mut blocks = Blocks::new(16);
        let pool = GlobalPool::new(4, 16);
        pool.put_chain(blocks.chain(4));
        let ((), ev) = probe::record(|| {
            for _ in 0..100 {
                let c = pool.get_chain().unwrap();
                assert!(pool.put_chain(c).is_none());
            }
        });
        assert!(
            ev.iter().all(|e| !matches!(
                e,
                ProbeEvent::LockAcquire { .. } | ProbeEvent::LockRelease { .. }
            )),
            "fast path acquired a lock: {ev:?}"
        );
        // The CAS traffic itself is visible to the simulator.
        assert!(ev.iter().any(|e| matches!(e, ProbeEvent::LineRmw { .. })));
        let s = pool.stats();
        assert_eq!(s.get_fast.get(), 100);
        assert_eq!(s.get_slow.get(), 0);
        assert_eq!(s.put_fast.get(), 101);
        assert_eq!(s.put_slow.get(), 0);
        assert_eq!(s.cas_retries.get(), 0, "single thread never retries");
        discard(pool.drain_all());
    }

    /// Fast/slow totals partition `get`/`put` exactly at quiescence.
    #[test]
    fn fast_slow_counters_partition_totals() {
        let mut blocks = Blocks::new(64);
        let pool = GlobalPool::new(3, 6);
        for _ in 0..5 {
            // The 5th put exceeds the 12-block bound and goes slow.
            if let Some(sp) = pool.put_chain(blocks.chain(3)) {
                discard(sp);
            }
        }
        if let Some(sp) = pool.put_odd(blocks.chain(2)) {
            discard(sp);
        }
        while let Some(c) = pool.get_chain() {
            discard(c);
        }
        let s = pool.stats();
        assert_eq!(s.get_fast.get() + s.get_slow.get(), s.get());
        assert_eq!(s.put_fast.get() + s.put_slow.get(), s.put());
        assert_eq!(s.put_fast.get(), 4);
        assert_eq!(s.put_slow.get(), 2);
        discard(pool.drain_all());
    }

    /// An armed `global.get` failpoint must preempt *both* paths: the
    /// CAS fast path (ready chains on the stack) and the locked slow
    /// path (blocks only in the bucket).
    #[test]
    fn global_get_fault_covers_fast_and_slow_paths() {
        let mut blocks = Blocks::new(32);
        let faults = Faults::with_plan();
        let pool = GlobalPool::new_with_faults(3, 8, faults.clone());
        pool.put_chain(blocks.chain(3)); // fast-path ammunition
        pool.put_odd(blocks.chain(2)); // slow-path ammunition

        let plan = faults.plan().unwrap();
        plan.set(faults::GLOBAL_GET, FailPolicy::EveryNth(1));
        // Stack non-empty, yet the armed site forces a miss before the CAS.
        assert!(pool.get_chain().is_none(), "fast path bypassed the site");
        plan.set(faults::GLOBAL_GET, FailPolicy::Off);
        discard(pool.get_chain().unwrap()); // stack drains normally

        // Now only the bucket holds blocks: fire on the slow path. The
        // script passes the entry consult and fires the locked one.
        plan.set(faults::GLOBAL_GET, FailPolicy::Script(vec![false, true]));
        assert!(pool.get_chain().is_none(), "slow path bypassed the site");
        assert_eq!(pool.stats().get_miss.get(), 1);
        assert_eq!(pool.len(), 2, "faulted gets must not lose blocks");
        let fired = plan
            .site_stats()
            .iter()
            .find(|s| s.site == faults::GLOBAL_GET)
            .unwrap()
            .fired;
        assert_eq!(fired, 2, "one firing per path");
        discard(pool.drain_all());
    }

    /// 16-aligned backing store for hardened-key tests (plausibility
    /// checks reject unaligned link targets).
    #[repr(align(16))]
    struct Aligned([u8; 32]);

    // Boxed so each block keeps a stable address while the Vec grows.
    #[expect(clippy::vec_box)]
    fn aligned_store(n: usize) -> (Vec<Box<Aligned>>, LinkKey) {
        let store: Vec<Box<Aligned>> = (0..n).map(|_| Box::new(Aligned([0u8; 32]))).collect();
        let lo = store.iter().map(|b| b.0.as_ptr() as usize).min().unwrap();
        let hi = store.iter().map(|b| b.0.as_ptr() as usize).max().unwrap();
        let key = LinkKey::hardened(0xfeed_5eed, lo, hi + 32);
        (store, key)
    }

    fn keyed_chain(
        store: &mut [Box<Aligned>],
        key: LinkKey,
        range: core::ops::Range<usize>,
    ) -> Chain {
        let mut c = Chain::new_keyed(key);
        for b in &mut store[range] {
            // SAFETY: fake blocks are owned and disjoint.
            unsafe { c.push(b.0.as_mut_ptr()) };
        }
        c
    }

    #[test]
    fn hardened_pool_round_trips_encoded_chains() {
        // The Treiber stack's word-stash layout must decode/re-encode
        // correctly under a hardened key: chains survive push/pop (and
        // steal_chain, the cross-shard path) with members and tail intact.
        let (mut store, key) = aligned_store(16);
        let pool = GlobalPool::new_hardened(3, 12, Faults::none(), key);
        let c = keyed_chain(&mut store, key, 0..3);
        let members: Vec<*mut u8> = c.iter().collect();
        assert!(pool.put_chain(c).is_none());
        assert!(pool.put_chain(keyed_chain(&mut store, key, 3..6)).is_none());
        // Stack depth 2: the deeper chain's stash words round-trip too.
        let stolen = pool.steal_chain().unwrap();
        assert_eq!(stolen.len(), 3);
        let mut got = pool.get_chain().unwrap();
        assert_eq!(got.iter().collect::<Vec<_>>(), members);
        // Tail survived the stash round trip: append still works.
        let mut more = keyed_chain(&mut store, key, 6..7);
        got.append(&mut more);
        assert_eq!(got.len(), 4);
        discard(stolen);
        discard(got);
    }

    #[test]
    fn hardened_bucket_corruption_is_sunk_not_dereferenced() {
        let (mut store, key) = aligned_store(8);
        let pool = GlobalPool::new_hardened(4, 8, Faults::none(), key);
        let chain = keyed_chain(&mut store, key, 0..3);
        let head = chain.peek().unwrap();
        assert!(pool.put_odd(chain).is_none());
        // Scribble the bucket head's encoded link (a use-after-free).
        // SAFETY: the fake block is owned by the test.
        unsafe { (head as *mut usize).write(0x4141_4141_4141_4141_u64 as usize) };
        assert!(
            pool.get_chain().is_none(),
            "a clobbered bucket must miss, not hand out garbage"
        );
        assert_eq!(pool.sunk(), 3, "the unreachable blocks are accounted");
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.stats().get_miss.get(), 1);
    }

    #[test]
    fn concurrent_get_put_preserves_blocks() {
        let pool = GlobalPool::new(4, 40);
        let mut blocks = Blocks::new(80);
        for _ in 0..20 {
            pool.put_chain(blocks.chain(4));
        }
        let spilled = EventCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        if let Some(c) = pool.get_chain() {
                            if let Some(sp) = pool.put_odd(c) {
                                spilled.add(discard(sp) as u64);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(pool.len() + spilled.get() as usize, 80);
        discard(pool.drain_all());
    }

    /// The acceptance-criterion probe test for the epoch-batched drain:
    /// a bulk drain of N chains costs the same number of shared-line
    /// RMWs whether N is 4 or 64 — one tagged CAS detaches the whole run
    /// and one RMW settles the slow-path account, unlike the old
    /// one-CAS-per-chain pop loop.
    #[test]
    fn batched_drain_moves_n_chains_with_constant_rmw_cost() {
        let rmws_for = |chains: usize| {
            let mut blocks = Blocks::new(chains * 2);
            let pool = GlobalPool::new(2, 2 * chains);
            for _ in 0..chains {
                assert!(pool.put_chain(blocks.chain(2)).is_none());
            }
            let (all, ev) = probe::record(|| pool.drain_all());
            assert_eq!(discard(all), chains * 2, "batched drain conserves");
            assert_eq!(pool.stats().batch_drains.get(), 1);
            assert_eq!(pool.stats().batched_chains.get(), chains as u64);
            ev.iter()
                .filter(|e| matches!(e, ProbeEvent::LineRmw { .. }))
                .count()
        };
        let small = rmws_for(4);
        let large = rmws_for(64);
        assert_eq!(
            small, large,
            "drain RMW cost must not scale with chain count"
        );
    }

    #[test]
    fn deferred_exact_puts_push_wait_free_and_flag_the_trim() {
        let mut blocks = Blocks::new(64);
        // target 3, gbltarget 6: bound 12 = 4 chains.
        let pool = GlobalPool::new(3, 6);
        for _ in 0..4 {
            assert!(
                !pool.put_chain_deferred(blocks.chain(3)),
                "within bound: no maintenance requested"
            );
        }
        assert_eq!(pool.len(), 12);
        // Over the bound: the put still lands wait-free (no spinlock),
        // the pool transiently overshoots, and the caller is told to
        // post a Trim to the maintenance core.
        let (over, ev) = probe::record(|| pool.put_chain_deferred(blocks.chain(3)));
        assert!(over, "over-bound deferred put must request maintenance");
        assert!(
            ev.iter().all(|e| !matches!(
                e,
                ProbeEvent::LockAcquire { .. } | ProbeEvent::LockRelease { .. }
            )),
            "deferred put took a lock: {ev:?}"
        );
        assert_eq!(pool.len(), 15, "trim is deferred, not inline");
        // The maintenance core's trim restores the bound with `put_miss`
        // attribution, exactly like the inline slow path would have.
        let spill = pool.maint_trim().unwrap();
        assert_eq!(spill.len(), 3);
        assert_eq!(pool.len(), 12);
        let s = pool.stats();
        assert_eq!(s.put_fast.get(), 5, "deferred puts count as fast pushes");
        assert_eq!(s.put_miss.get(), 1);
        assert_eq!(s.spill_blocks.get(), 3);
        assert!(pool.maint_trim().is_none(), "second trim finds nothing");
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn deferred_odd_puts_append_and_regroup_at_the_pump() {
        let mut blocks = Blocks::new(32);
        let pool = GlobalPool::new(3, 8);
        assert!(pool.put_odd_deferred(blocks.chain(2)));
        assert!(pool.put_odd_deferred(blocks.chain(2)));
        assert_eq!(pool.stats().put_odd.get(), 2);
        assert_eq!(pool.len(), 4);
        assert!(pool.maint_regroup().is_none());
        // One exact chain regrouped onto the lock-free stack.
        let c = pool.get_chain().unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(
            pool.stats().get_fast.get(),
            1,
            "regrouped chain is served lock-free"
        );
        discard(c);
        discard(pool.drain_all());
    }

    #[test]
    fn maint_spill_trims_batched_with_pressure_attribution() {
        let mut blocks = Blocks::new(64);
        let pool = GlobalPool::new(3, 6);
        for _ in 0..4 {
            assert!(pool.put_chain(blocks.chain(3)).is_none());
        }
        assert!(pool.maint_spill(12).is_none(), "already within the bound");
        let spill = pool.maint_spill(6).unwrap();
        assert_eq!(spill.len(), 6);
        assert_eq!(pool.len(), 6);
        let s = pool.stats();
        assert_eq!(s.pressure_spills.get(), 1);
        assert_eq!(s.put_miss.get(), 0);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn hardened_batched_drain_decodes_the_whole_run() {
        let (mut store, key) = aligned_store(9);
        let pool = GlobalPool::new_hardened(3, 12, Faults::none(), key);
        for i in 0..3 {
            let chain = keyed_chain(&mut store, key, i * 3..i * 3 + 3);
            assert!(pool.put_chain(chain).is_none());
        }
        assert_eq!(discard(pool.drain_all()), 9);
        assert_eq!(pool.stats().batched_chains.get(), 3);
    }

    /// Exact-chain recycling under real threads: the headline pattern the
    /// Treiber stack exists for. Conservation plus counter partitions.
    #[test]
    fn concurrent_exact_ping_pong_is_conserving_and_lock_free_counted() {
        const THREADS: usize = 4;
        const OPS: usize = 500;
        let pool = GlobalPool::new(4, 4 * THREADS * 2);
        let mut blocks = Blocks::new(4 * THREADS * 2);
        for _ in 0..THREADS * 2 {
            pool.put_chain(blocks.chain(4));
        }
        let total = pool.len();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..OPS {
                        if let Some(c) = pool.get_chain() {
                            assert_eq!(c.len(), 4, "stack chains are exact");
                            assert!(pool.put_chain(c).is_none());
                        }
                    }
                });
            }
        });
        assert_eq!(pool.len(), total);
        let s = pool.stats();
        assert_eq!(s.get_fast.get() + s.get_slow.get(), s.get());
        assert_eq!(s.put_fast.get() + s.put_slow.get(), s.put());
        assert!(s.put_fast.get() > 0);
        discard(pool.drain_all());
    }
}
