//! The global layer (paper Figure 3).
//!
//! "The only purpose of the global layer is to support reasonable
//! performance in cases when one CPU allocates buffers of a given size,
//! which are then passed to other CPUs that free them. The global layer
//! allows the freed buffers to move back to the allocating CPU without
//! incurring the overhead of coalescing."
//!
//! Each size class has one [`GlobalPool`]: a spinlock-protected list of
//! `target`-sized chains (`gblfree`) plus a *bucket list* that accumulates
//! odd-sized chains (from low-memory cache flushes) and regroups them into
//! `target`-sized chains. The pool holds at most `2 * gbltarget` blocks;
//! excess goes to the coalesce-to-page layer, and an empty pool is
//! replenished from it — both via return values, so the page layer is
//! never entered while the global spinlock is held.

use kmem_smp::{EventCounter, SpinLock};

use crate::chain::Chain;

/// Statistics for one global pool.
///
/// Beyond the access/miss pair the paper's tables need, the counters break
/// every event down by *how* it was served — the detail the snapshot layer
/// (`crate::snapshot`) exposes per class. The owner bumps `get`/`put`
/// before the outcome detail, so a concurrent reader that loads the detail
/// first can assert `detail <= total` on live samples.
#[derive(Default)]
pub struct GlobalStats {
    /// Chain requests served (hits and misses).
    pub get: EventCounter,
    /// Gets whose first block came from a ready `target`-sized chain.
    pub get_chain_hits: EventCounter,
    /// Gets whose first block came from the bucket list.
    pub get_bucket_hits: EventCounter,
    /// Gets that handed back a sub-`target` chain (the pool held fewer
    /// than `target` blocks; each one erodes the per-CPU hysteresis).
    pub get_short: EventCounter,
    /// Total blocks missing from short gets (`target - len`, summed).
    pub get_short_deficit: EventCounter,
    /// Chain requests that fell through to the coalesce-to-page layer.
    pub get_miss: EventCounter,
    /// Chains returned by per-CPU caches.
    pub put: EventCounter,
    /// Puts that took the odd-sized bucket path (low-memory flushes).
    pub put_odd: EventCounter,
    /// Returns that spilled excess blocks to the coalesce-to-page layer.
    pub put_miss: EventCounter,
    /// Spills forced by the pressure ladder ([`GlobalPool::spill_to`])
    /// rather than by a put exceeding the bound. Counted separately from
    /// `put_miss`, which stays bounded by `put`.
    pub pressure_spills: EventCounter,
    /// Total blocks spilled to the coalesce-to-page layer (bound-exceeding
    /// puts and forced spills combined).
    pub spill_blocks: EventCounter,
}

struct GlobalInner {
    /// `target`-sized chains, ready for O(1) hand-off to a per-CPU cache.
    chains: Vec<Chain>,
    /// Odd-sized leftovers awaiting regrouping.
    bucket: Chain,
}

/// The global free pool for one size class.
pub struct GlobalPool {
    inner: SpinLock<GlobalInner>,
    target: usize,
    gbltarget: usize,
    stats: GlobalStats,
}

impl GlobalPool {
    /// Creates an empty pool with the class's `target` and `gbltarget`.
    pub fn new(target: usize, gbltarget: usize) -> Self {
        // The pool holds at most `2 * gbltarget` blocks; preallocating the
        // chain vector keeps the hot path free of host-heap traffic.
        let max_chains = (2 * gbltarget).div_ceil(target) + 2;
        GlobalPool {
            inner: SpinLock::new(GlobalInner {
                chains: Vec::with_capacity(max_chains),
                bucket: Chain::new(),
            }),
            target,
            gbltarget,
            stats: GlobalStats::default(),
        }
    }

    /// This pool's `target`.
    pub fn target(&self) -> usize {
        self.target
    }

    /// This pool's `gbltarget`.
    pub fn gbltarget(&self) -> usize {
        self.gbltarget
    }

    /// Statistics for this pool.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Fetches a chain for a per-CPU cache.
    ///
    /// Prefers a ready `target`-sized chain, then tops the chain up to
    /// `target` blocks from the bucket list (and any further chains), so
    /// the caller receives `min(target, pool_total)` blocks — the most the
    /// paper's hysteresis guarantee ("the global layer will be accessed at
    /// most one time per target-number of accesses") can get. A chain
    /// shorter than `target` is handed back only when the whole pool holds
    /// fewer than `target` blocks, and is counted in `get_short` /
    /// `get_short_deficit`. (This used to return whatever single source it
    /// hit first, so a sub-`target` chain could come back while other
    /// blocks sat in the pool.)
    ///
    /// Returns `None` only when the pool is empty — the caller then asks
    /// the coalesce-to-page layer (the counted miss).
    pub fn get_chain(&self) -> Option<Chain> {
        self.stats.get.inc();
        let mut inner = self.inner.lock();
        let mut chain = inner.chains.pop().unwrap_or_default();
        let from_ready_chain = !chain.is_empty();
        while chain.len() < self.target {
            let need = self.target - chain.len();
            if !inner.bucket.is_empty() {
                let n = inner.bucket.len().min(need);
                let mut cut = inner.bucket.split_first(n);
                chain.append(&mut cut);
            } else if let Some(mut next) = inner.chains.pop() {
                if next.len() > need {
                    let mut cut = next.split_first(need);
                    chain.append(&mut cut);
                    // The remainder is odd-sized now; it waits in the
                    // bucket for regrouping.
                    inner.bucket.append(&mut next);
                } else {
                    chain.append(&mut next);
                }
            } else {
                break;
            }
        }
        drop(inner);
        if chain.is_empty() {
            self.stats.get_miss.inc();
            return None;
        }
        if chain.len() < self.target {
            self.stats
                .get_short_deficit
                .add((self.target - chain.len()) as u64);
            self.stats.get_short.inc();
        }
        if from_ready_chain {
            self.stats.get_chain_hits.inc();
        } else {
            self.stats.get_bucket_hits.inc();
        }
        Some(chain)
    }

    /// Accepts an exactly-`target`-sized chain from a per-CPU cache.
    ///
    /// A chain of any other length is routed through the bucket list
    /// instead of corrupting the ready-chain list (the internal callers
    /// always pass exact chains; the routing keeps the pool's invariants —
    /// every ready chain holds exactly `target` blocks — intact under
    /// misuse).
    ///
    /// Returns the excess to push down to the coalesce-to-page layer when
    /// the pool exceeds `2 * gbltarget` blocks.
    pub fn put_chain(&self, chain: Chain) -> Option<Chain> {
        if chain.len() != self.target {
            return self.put_odd(chain);
        }
        self.stats.put.inc();
        let mut inner = self.inner.lock();
        inner.chains.push(chain);
        self.spill_locked(&mut inner)
    }

    /// Accepts an odd-sized chain (low-memory flushes, partial refills
    /// handed back). Blocks land in the bucket list, which regroups them
    /// into `target`-sized chains.
    pub fn put_odd(&self, mut chain: Chain) -> Option<Chain> {
        if chain.is_empty() {
            return None;
        }
        self.stats.put.inc();
        self.stats.put_odd.inc();
        let mut inner = self.inner.lock();
        inner.bucket.append(&mut chain);
        Self::regroup(&mut inner, self.target);
        self.spill_locked(&mut inner)
    }

    /// Regroup: "the bucket list, which is used to group the blocks back
    /// into target-sized lists".
    fn regroup(inner: &mut GlobalInner, target: usize) {
        while inner.bucket.len() >= target {
            let grouped = inner.bucket.split_first(target);
            inner.chains.push(grouped);
        }
    }

    /// Trims the pool to exactly `2 * gbltarget` blocks, returning the
    /// spill.
    ///
    /// Whole chains are shed first (O(1) each); the final chain is *split*
    /// so the pool lands exactly on the bound. (It used to shed whole
    /// chains only, overshooting the bound by up to `target - 1` blocks
    /// per spill and inflating page-layer traffic.) The split walk is
    /// bounded by `target` links and happens at most once per spill.
    fn spill_locked(&self, inner: &mut GlobalInner) -> Option<Chain> {
        let spill = self.trim_locked(inner, 2 * self.gbltarget)?;
        self.stats.put_miss.inc();
        self.stats.spill_blocks.add(spill.len() as u64);
        Some(spill)
    }

    /// Trims the pool down to `bound` blocks on behalf of the pressure
    /// ladder, returning the spill for the caller to push to the
    /// coalesce-to-page layer. `None` when the pool is already within
    /// bounds. Counted in `pressure_spills`, not `put_miss`.
    pub fn spill_to(&self, bound: usize) -> Option<Chain> {
        let mut inner = self.inner.lock();
        let spill = self.trim_locked(&mut inner, bound)?;
        drop(inner);
        self.stats.pressure_spills.inc();
        self.stats.spill_blocks.add(spill.len() as u64);
        Some(spill)
    }

    /// The trimming walk shared by [`GlobalPool::spill_locked`] and
    /// [`GlobalPool::spill_to`]; counter-free so each caller can attribute
    /// the spill to its own cause.
    fn trim_locked(&self, inner: &mut GlobalInner, bound: usize) -> Option<Chain> {
        let mut total = inner.bucket.len() + inner.chains.iter().map(Chain::len).sum::<usize>();
        if total <= bound {
            return None;
        }
        let mut spill = Chain::new();
        while total > bound {
            let excess = total - bound;
            match inner.chains.pop() {
                Some(mut chain) if chain.len() > excess => {
                    let mut cut = chain.split_first(excess);
                    total -= excess;
                    spill.append(&mut cut);
                    // The kept remainder is odd-sized; it goes back through
                    // the bucket (and regroups if the bucket fills up).
                    inner.bucket.append(&mut chain);
                    Self::regroup(inner, self.target);
                }
                Some(mut chain) => {
                    total -= chain.len();
                    spill.append(&mut chain);
                }
                None => {
                    // Only the bucket is left; trim it directly.
                    let n = excess.min(inner.bucket.len());
                    if n == 0 {
                        break;
                    }
                    let mut cut = inner.bucket.split_first(n);
                    total -= n;
                    spill.append(&mut cut);
                }
            }
        }
        Some(spill)
    }

    /// Current block count (tests and the invariant walker).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.bucket.len() + inner.chains.iter().map(Chain::len).sum::<usize>()
    }

    /// Returns whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every block (arena teardown and low-memory reclaim).
    pub fn drain_all(&self) -> Chain {
        let mut inner = self.inner.lock();
        let mut all = inner.bucket.take();
        while let Some(mut c) = inner.chains.pop() {
            all.append(&mut c);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Boxed so each block keeps a stable address while the Vec grows.
    #[expect(clippy::vec_box)]
    struct Blocks {
        store: Vec<Box<[u8; 32]>>,
        next: usize,
    }

    impl Blocks {
        fn new(n: usize) -> Self {
            Blocks {
                store: (0..n).map(|_| Box::new([0u8; 32])).collect(),
                next: 0,
            }
        }

        fn chain(&mut self, n: usize) -> Chain {
            let mut c = Chain::new();
            for _ in 0..n {
                // SAFETY: fake blocks are owned and disjoint.
                unsafe { c.push(self.store[self.next].as_mut_ptr()) };
                self.next += 1;
            }
            c
        }
    }

    fn discard(c: Chain) -> usize {
        let mut c = c;
        let mut n = 0;
        while c.pop().is_some() {
            n += 1;
        }
        n
    }

    #[test]
    fn get_put_round_trip() {
        let mut blocks = Blocks::new(64);
        let pool = GlobalPool::new(3, 12);
        assert!(pool.get_chain().is_none());
        assert!(pool.put_chain(blocks.chain(3)).is_none());
        assert_eq!(pool.len(), 3);
        let got = pool.get_chain().unwrap();
        assert_eq!(got.len(), 3);
        assert!(pool.is_empty());
        discard(got);
    }

    #[test]
    fn bucket_regroups_odd_chains() {
        let mut blocks = Blocks::new(64);
        let pool = GlobalPool::new(3, 12);
        // 2 + 2 blocks: one regrouped chain of 3 plus 1 in the bucket.
        assert!(pool.put_odd(blocks.chain(2)).is_none());
        assert!(pool.put_odd(blocks.chain(2)).is_none());
        assert_eq!(pool.len(), 4);
        let first = pool.get_chain().unwrap();
        assert_eq!(first.len(), 3);
        // The straggler comes out as a short chain rather than a miss.
        let second = pool.get_chain().unwrap();
        assert_eq!(second.len(), 1);
        assert!(pool.get_chain().is_none());
        discard(first);
        discard(second);
    }

    #[test]
    fn pool_spills_beyond_twice_gbltarget() {
        let mut blocks = Blocks::new(64);
        // target 3, gbltarget 6: capacity 12 blocks = 4 chains.
        let pool = GlobalPool::new(3, 6);
        for _ in 0..4 {
            assert!(pool.put_chain(blocks.chain(3)).is_none());
        }
        assert_eq!(pool.len(), 12);
        let spill = pool.put_chain(blocks.chain(3)).unwrap();
        assert_eq!(spill.len(), 3);
        assert_eq!(pool.len(), 12);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn spill_lands_exactly_on_the_bound() {
        let mut blocks = Blocks::new(64);
        // target 5, gbltarget 5: capacity 10.
        let pool = GlobalPool::new(5, 5);
        // 12 odd blocks regroup into two chains of 5 plus 2 in the bucket;
        // exactly the 2 excess blocks are shed (the final chain is split),
        // leaving the pool at its 10-block bound. (It used to shed a whole
        // 5-chain, overshooting down to 7.)
        let spill = pool.put_odd(blocks.chain(12)).unwrap();
        assert_eq!(spill.len(), 2);
        assert_eq!(pool.len(), 10);
        assert_eq!(pool.stats().spill_blocks.get(), 2);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn spill_of_one_excess_block_sheds_exactly_one() {
        // Regression edge case: total == 2 * gbltarget + 1 must spill
        // exactly 1 block, not a whole `target`-sized chain.
        let mut blocks = Blocks::new(32);
        // target 3, gbltarget 6: capacity 12 = 4 chains.
        let pool = GlobalPool::new(3, 6);
        for _ in 0..4 {
            assert!(pool.put_chain(blocks.chain(3)).is_none());
        }
        assert_eq!(pool.len(), 12);
        // One more block (odd put) pushes the total to 13.
        let spill = pool.put_odd(blocks.chain(1)).unwrap();
        assert_eq!(spill.len(), 1);
        assert_eq!(pool.len(), 12);
        // The split remainder keeps serving full chains: 12 blocks are
        // still four exact `target`-chains' worth.
        for _ in 0..4 {
            let c = pool.get_chain().unwrap();
            assert_eq!(c.len(), 3);
            discard(c);
        }
        assert!(pool.is_empty());
        discard(spill);
    }

    #[test]
    fn get_chain_tops_up_short_chains_from_the_bucket() {
        // Regression: a sub-`target` chain in the pool used to be handed
        // back as-is even when the bucket held more blocks, breaking the
        // "one global access per `target` operations" hysteresis. A
        // wrong-sized put now routes through the bucket and gets are
        // topped up to `target` whenever the pool holds enough blocks.
        let mut blocks = Blocks::new(32);
        let pool = GlobalPool::new(4, 8);
        pool.put_chain(blocks.chain(2)); // misuse: short "exact" put
        pool.put_odd(blocks.chain(3));
        assert_eq!(pool.len(), 5);
        let first = pool.get_chain().unwrap();
        assert_eq!(first.len(), 4, "get must be topped up to target");
        assert_eq!(pool.stats().get_short.get(), 0);
        // Only 1 block left: the short get is now inevitable and counted.
        let second = pool.get_chain().unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(pool.stats().get_short.get(), 1);
        assert_eq!(pool.stats().get_short_deficit.get(), 3);
        assert!(pool.get_chain().is_none());
        discard(first);
        discard(second);
    }

    #[test]
    fn get_sources_are_counted() {
        let mut blocks = Blocks::new(32);
        let pool = GlobalPool::new(3, 8);
        pool.put_chain(blocks.chain(3));
        pool.put_odd(blocks.chain(2));
        discard(pool.get_chain().unwrap()); // ready chain first
        discard(pool.get_chain().unwrap()); // then the bucket
        assert!(pool.get_chain().is_none());
        let s = pool.stats();
        assert_eq!(s.get.get(), 3);
        assert_eq!(s.get_chain_hits.get(), 1);
        assert_eq!(s.get_bucket_hits.get(), 1);
        assert_eq!(s.get_miss.get(), 1);
        assert_eq!(s.put.get(), 2);
        assert_eq!(s.put_odd.get(), 1);
    }

    #[test]
    fn spill_to_trims_without_touching_put_counters() {
        let mut blocks = Blocks::new(32);
        // target 3, gbltarget 6: bound 12.
        let pool = GlobalPool::new(3, 6);
        for _ in 0..4 {
            assert!(pool.put_chain(blocks.chain(3)).is_none());
        }
        assert_eq!(pool.len(), 12);
        // Already within `2 * gbltarget`: nothing to shed at that bound.
        assert!(pool.spill_to(12).is_none());
        // A pressure spill down to `gbltarget` sheds exactly 6 blocks and
        // is attributed to `pressure_spills`, leaving `put_miss` alone.
        let spill = pool.spill_to(6).unwrap();
        assert_eq!(spill.len(), 6);
        assert_eq!(pool.len(), 6);
        let s = pool.stats();
        assert_eq!(s.put_miss.get(), 0);
        assert_eq!(s.pressure_spills.get(), 1);
        assert_eq!(s.spill_blocks.get(), 6);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn spill_trims_bucket_when_no_chains_remain() {
        let mut blocks = Blocks::new(64);
        // target 10, gbltarget 3: capacity 6, and 8 odd blocks are too few
        // to regroup into a chain — the bucket itself must be trimmed.
        let pool = GlobalPool::new(10, 3);
        let spill = pool.put_odd(blocks.chain(8)).unwrap();
        assert_eq!(spill.len(), 2);
        assert_eq!(pool.len(), 6);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn miss_statistics_track_fallthrough() {
        let mut blocks = Blocks::new(16);
        let pool = GlobalPool::new(2, 4);
        assert!(pool.get_chain().is_none());
        assert_eq!(pool.stats().get.get(), 1);
        assert_eq!(pool.stats().get_miss.get(), 1);
        pool.put_chain(blocks.chain(2));
        let c = pool.get_chain().unwrap();
        assert_eq!(pool.stats().get.get(), 2);
        assert_eq!(pool.stats().get_miss.get(), 1);
        discard(c);
    }

    #[test]
    fn drain_all_empties_everything() {
        let mut blocks = Blocks::new(32);
        let pool = GlobalPool::new(3, 10);
        pool.put_chain(blocks.chain(3));
        pool.put_odd(blocks.chain(2));
        assert_eq!(discard(pool.drain_all()), 5);
        assert!(pool.is_empty());
    }

    #[test]
    fn concurrent_get_put_preserves_blocks() {
        let pool = GlobalPool::new(4, 40);
        let mut blocks = Blocks::new(80);
        for _ in 0..20 {
            pool.put_chain(blocks.chain(4));
        }
        let spilled = EventCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        if let Some(c) = pool.get_chain() {
                            if let Some(sp) = pool.put_odd(c) {
                                spilled.add(discard(sp) as u64);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(pool.len() + spilled.get() as usize, 80);
        discard(pool.drain_all());
    }
}
