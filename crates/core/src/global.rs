//! The global layer (paper Figure 3).
//!
//! "The only purpose of the global layer is to support reasonable
//! performance in cases when one CPU allocates buffers of a given size,
//! which are then passed to other CPUs that free them. The global layer
//! allows the freed buffers to move back to the allocating CPU without
//! incurring the overhead of coalescing."
//!
//! Each size class has one [`GlobalPool`]: a spinlock-protected list of
//! `target`-sized chains (`gblfree`) plus a *bucket list* that accumulates
//! odd-sized chains (from low-memory cache flushes) and regroups them into
//! `target`-sized chains. The pool holds at most `2 * gbltarget` blocks;
//! excess goes to the coalesce-to-page layer, and an empty pool is
//! replenished from it — both via return values, so the page layer is
//! never entered while the global spinlock is held.

use kmem_smp::{EventCounter, SpinLock};

use crate::chain::Chain;

/// Statistics for one global pool.
#[derive(Default)]
pub struct GlobalStats {
    /// Chain requests served (hits and misses).
    pub get: EventCounter,
    /// Chain requests that fell through to the coalesce-to-page layer.
    pub get_miss: EventCounter,
    /// Chains returned by per-CPU caches.
    pub put: EventCounter,
    /// Returns that spilled excess blocks to the coalesce-to-page layer.
    pub put_miss: EventCounter,
}

struct GlobalInner {
    /// `target`-sized chains, ready for O(1) hand-off to a per-CPU cache.
    chains: Vec<Chain>,
    /// Odd-sized leftovers awaiting regrouping.
    bucket: Chain,
}

/// The global free pool for one size class.
pub struct GlobalPool {
    inner: SpinLock<GlobalInner>,
    target: usize,
    gbltarget: usize,
    stats: GlobalStats,
}

impl GlobalPool {
    /// Creates an empty pool with the class's `target` and `gbltarget`.
    pub fn new(target: usize, gbltarget: usize) -> Self {
        // The pool holds at most `2 * gbltarget` blocks; preallocating the
        // chain vector keeps the hot path free of host-heap traffic.
        let max_chains = (2 * gbltarget).div_ceil(target) + 2;
        GlobalPool {
            inner: SpinLock::new(GlobalInner {
                chains: Vec::with_capacity(max_chains),
                bucket: Chain::new(),
            }),
            target,
            gbltarget,
            stats: GlobalStats::default(),
        }
    }

    /// This pool's `target`.
    pub fn target(&self) -> usize {
        self.target
    }

    /// This pool's `gbltarget`.
    pub fn gbltarget(&self) -> usize {
        self.gbltarget
    }

    /// Statistics for this pool.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Fetches a chain for a per-CPU cache.
    ///
    /// Prefers a ready `target`-sized chain; falls back to carving up to
    /// `target` blocks out of the bucket list. Returns `None` on a miss —
    /// the caller then asks the coalesce-to-page layer (the counted miss).
    pub fn get_chain(&self) -> Option<Chain> {
        self.stats.get.inc();
        let mut inner = self.inner.lock();
        if let Some(chain) = inner.chains.pop() {
            return Some(chain);
        }
        if !inner.bucket.is_empty() {
            let n = inner.bucket.len().min(self.target);
            return Some(inner.bucket.split_first(n));
        }
        drop(inner);
        self.stats.get_miss.inc();
        None
    }

    /// Accepts an exactly-`target`-sized chain from a per-CPU cache.
    ///
    /// Returns the excess to push down to the coalesce-to-page layer when
    /// the pool exceeds `2 * gbltarget` blocks.
    pub fn put_chain(&self, chain: Chain) -> Option<Chain> {
        debug_assert_eq!(chain.len(), self.target);
        self.stats.put.inc();
        let mut inner = self.inner.lock();
        inner.chains.push(chain);
        self.spill_locked(&mut inner)
    }

    /// Accepts an odd-sized chain (low-memory flushes, partial refills
    /// handed back). Blocks land in the bucket list, which regroups them
    /// into `target`-sized chains.
    pub fn put_odd(&self, mut chain: Chain) -> Option<Chain> {
        if chain.is_empty() {
            return None;
        }
        self.stats.put.inc();
        let mut inner = self.inner.lock();
        inner.bucket.append(&mut chain);
        // Regroup: "the bucket list, which is used to group the blocks
        // back into target-sized lists".
        while inner.bucket.len() >= self.target {
            let grouped = inner.bucket.split_first(self.target);
            inner.chains.push(grouped);
        }
        self.spill_locked(&mut inner)
    }

    /// Trims the pool to `2 * gbltarget` blocks, returning the spill.
    fn spill_locked(&self, inner: &mut GlobalInner) -> Option<Chain> {
        let mut total = inner.bucket.len() + inner.chains.len() * self.target;
        if total <= 2 * self.gbltarget {
            return None;
        }
        let mut spill = Chain::new();
        while total > 2 * self.gbltarget {
            match inner.chains.pop() {
                Some(mut chain) => {
                    total -= chain.len();
                    spill.append(&mut chain);
                }
                None => {
                    // Only the bucket is left; trim it directly.
                    let n = (total - 2 * self.gbltarget).min(inner.bucket.len());
                    if n == 0 {
                        break;
                    }
                    let mut cut = inner.bucket.split_first(n);
                    total -= n;
                    spill.append(&mut cut);
                }
            }
        }
        self.stats.put_miss.inc();
        Some(spill)
    }

    /// Current block count (tests and the invariant walker).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.bucket.len() + inner.chains.iter().map(Chain::len).sum::<usize>()
    }

    /// Returns whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every block (arena teardown and low-memory reclaim).
    pub fn drain_all(&self) -> Chain {
        let mut inner = self.inner.lock();
        let mut all = inner.bucket.take();
        while let Some(mut c) = inner.chains.pop() {
            all.append(&mut c);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Boxed so each block keeps a stable address while the Vec grows.
    #[expect(clippy::vec_box)]
    struct Blocks {
        store: Vec<Box<[u8; 32]>>,
        next: usize,
    }

    impl Blocks {
        fn new(n: usize) -> Self {
            Blocks {
                store: (0..n).map(|_| Box::new([0u8; 32])).collect(),
                next: 0,
            }
        }

        fn chain(&mut self, n: usize) -> Chain {
            let mut c = Chain::new();
            for _ in 0..n {
                // SAFETY: fake blocks are owned and disjoint.
                unsafe { c.push(self.store[self.next].as_mut_ptr()) };
                self.next += 1;
            }
            c
        }
    }

    fn discard(c: Chain) -> usize {
        let mut c = c;
        let mut n = 0;
        while c.pop().is_some() {
            n += 1;
        }
        n
    }

    #[test]
    fn get_put_round_trip() {
        let mut blocks = Blocks::new(64);
        let pool = GlobalPool::new(3, 12);
        assert!(pool.get_chain().is_none());
        assert!(pool.put_chain(blocks.chain(3)).is_none());
        assert_eq!(pool.len(), 3);
        let got = pool.get_chain().unwrap();
        assert_eq!(got.len(), 3);
        assert!(pool.is_empty());
        discard(got);
    }

    #[test]
    fn bucket_regroups_odd_chains() {
        let mut blocks = Blocks::new(64);
        let pool = GlobalPool::new(3, 12);
        // 2 + 2 blocks: one regrouped chain of 3 plus 1 in the bucket.
        assert!(pool.put_odd(blocks.chain(2)).is_none());
        assert!(pool.put_odd(blocks.chain(2)).is_none());
        assert_eq!(pool.len(), 4);
        let first = pool.get_chain().unwrap();
        assert_eq!(first.len(), 3);
        // The straggler comes out as a short chain rather than a miss.
        let second = pool.get_chain().unwrap();
        assert_eq!(second.len(), 1);
        assert!(pool.get_chain().is_none());
        discard(first);
        discard(second);
    }

    #[test]
    fn pool_spills_beyond_twice_gbltarget() {
        let mut blocks = Blocks::new(64);
        // target 3, gbltarget 6: capacity 12 blocks = 4 chains.
        let pool = GlobalPool::new(3, 6);
        for _ in 0..4 {
            assert!(pool.put_chain(blocks.chain(3)).is_none());
        }
        assert_eq!(pool.len(), 12);
        let spill = pool.put_chain(blocks.chain(3)).unwrap();
        assert_eq!(spill.len(), 3);
        assert_eq!(pool.len(), 12);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn spill_prefers_whole_chains() {
        let mut blocks = Blocks::new(64);
        // target 5, gbltarget 5: capacity 10.
        let pool = GlobalPool::new(5, 5);
        // 12 odd blocks regroup into two chains of 5 plus 2 in the bucket;
        // the excess is shed as one whole chain (O(1)), leaving 7.
        let spill = pool.put_odd(blocks.chain(12)).unwrap();
        assert_eq!(spill.len(), 5);
        assert_eq!(pool.len(), 7);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn spill_trims_bucket_when_no_chains_remain() {
        let mut blocks = Blocks::new(64);
        // target 10, gbltarget 3: capacity 6, and 8 odd blocks are too few
        // to regroup into a chain — the bucket itself must be trimmed.
        let pool = GlobalPool::new(10, 3);
        let spill = pool.put_odd(blocks.chain(8)).unwrap();
        assert_eq!(spill.len(), 2);
        assert_eq!(pool.len(), 6);
        discard(spill);
        discard(pool.drain_all());
    }

    #[test]
    fn miss_statistics_track_fallthrough() {
        let mut blocks = Blocks::new(16);
        let pool = GlobalPool::new(2, 4);
        assert!(pool.get_chain().is_none());
        assert_eq!(pool.stats().get.get(), 1);
        assert_eq!(pool.stats().get_miss.get(), 1);
        pool.put_chain(blocks.chain(2));
        let c = pool.get_chain().unwrap();
        assert_eq!(pool.stats().get.get(), 2);
        assert_eq!(pool.stats().get_miss.get(), 1);
        discard(c);
    }

    #[test]
    fn drain_all_empties_everything() {
        let mut blocks = Blocks::new(32);
        let pool = GlobalPool::new(3, 10);
        pool.put_chain(blocks.chain(3));
        pool.put_odd(blocks.chain(2));
        assert_eq!(discard(pool.drain_all()), 5);
        assert!(pool.is_empty());
    }

    #[test]
    fn concurrent_get_put_preserves_blocks() {
        let pool = GlobalPool::new(4, 40);
        let mut blocks = Blocks::new(80);
        for _ in 0..20 {
            pool.put_chain(blocks.chain(4));
        }
        let spilled = EventCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        if let Some(c) = pool.get_chain() {
                            if let Some(sp) = pool.put_odd(c) {
                                spilled.add(discard(sp) as u64);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(pool.len() + spilled.get() as usize, 80);
        discard(pool.drain_all());
    }
}
