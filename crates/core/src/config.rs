//! Allocator configuration and the paper's parameter heuristics.

use kmem_smp::{Faults, NodeMapping, Topology, MAX_NODES};
use kmem_vm::{SpaceConfig, PAGE_SIZE};

use crate::pressure::PressureConfig;

/// Per-size-class parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassConfig {
    /// Block size in bytes (a power of two, at least 16).
    pub size: usize,
    /// Per-CPU cache transfer unit: each of `main` and `aux` holds at most
    /// `target` blocks, and blocks move between the per-CPU and global
    /// layers in `target`-sized chains.
    pub target: usize,
    /// Global-layer bound: the global pool holds up to `2 * gbltarget`
    /// blocks before spilling to the coalesce-to-page layer.
    pub gbltarget: usize,
}

impl ClassConfig {
    /// Builds a class with the paper's heuristics for `target` and
    /// `gbltarget`.
    ///
    /// The paper reports `target` "ranges from 10 for 16-byte blocks to
    /// just 2 for 4096-byte blocks", set by "a heuristic that limits the
    /// amount of memory that is tied up in per-CPU caches", and
    /// `gbltarget = 15` for small blocks (the 6.7 % worst-case global miss
    /// rate). We reproduce both endpoints with memory-budget formulas:
    /// `target = clamp(budget / (2 * size), 2, 10)` with a 16 KB per-CPU
    /// budget, and `gbltarget = clamp(3 * budget / (2 * size), 3, 15)`.
    pub fn with_heuristics(size: usize) -> Self {
        const PERCPU_BUDGET: usize = 16 * 1024;
        let target = (PERCPU_BUDGET / (2 * size)).clamp(2, 10);
        let gbltarget = (3 * PERCPU_BUDGET / (2 * size)).clamp(3, 15);
        ClassConfig {
            size,
            target,
            gbltarget,
        }
    }
}

/// The hardened-profile knobs: which heap-corruption defenses an arena
/// runs with. The default ([`HardenedConfig::off`]) is the paper's plain
/// profile — every defense compiled in but dormant, with the dormant cost
/// of the link paths being the identity XOR mask (see
/// [`crate::block::LinkKey::PLAIN`]).
///
/// The defenses are the SLUB-style quartet: XOR-encoded freelist links,
/// poison-on-free verified on alloc, seeded randomized carve order for
/// fresh pages, and a per-CPU double-free quarantine ring. Each can be
/// toggled independently (the overhead bench prices them one at a time);
/// [`HardenedConfig::full`] turns them all on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardenedConfig {
    /// XOR-encode every intrusive `next`/stash word with
    /// `secret ^ word_address`, so a decoded clobber is implausible and
    /// detected rather than dereferenced.
    pub encode: bool,
    /// Fill freed blocks with the poison pattern and verify it on the
    /// next allocation; an overwrite is a detected use-after-free.
    pub poison: bool,
    /// Shuffle the order in which a fresh page's blocks are carved onto
    /// its freelist, so heap feng-shui cannot rely on address-ordered
    /// allocation.
    pub randomize: bool,
    /// Per-CPU double-free quarantine ring size in blocks (0 disables the
    /// ring). A freed block parks here; freeing it again while parked is
    /// a detected double free.
    pub quarantine: usize,
    /// Panic with the corruption report instead of returning
    /// [`crate::KmemError::Corruption`]. Off by default: a production
    /// kernel wants the typed error, `should_panic` tests want the panic.
    pub panic_on_corruption: bool,
    /// Seed for the per-arena link secret and the carve shuffle. Two
    /// arenas with the same seed still derive different secrets (the
    /// arena id is mixed in), but a fixed seed makes torture rounds
    /// reproducible.
    pub seed: u64,
}

impl HardenedConfig {
    /// Every defense off — the paper's plain profile.
    pub const fn off() -> Self {
        HardenedConfig {
            encode: false,
            poison: false,
            randomize: false,
            quarantine: 0,
            panic_on_corruption: false,
            seed: 0,
        }
    }

    /// Every defense on: encoded links, poisoning, randomized carve, and
    /// an 8-slot per-CPU quarantine, reporting corruption as typed
    /// errors. The quarantine is deliberately small: its job is catching
    /// the free/free-again window, not delaying reuse, and each slot
    /// holds a block out of circulation per CPU per class.
    pub const fn full(seed: u64) -> Self {
        HardenedConfig {
            encode: true,
            poison: true,
            randomize: true,
            quarantine: 8,
            panic_on_corruption: false,
            seed,
        }
    }

    /// Whether any defense is active (the one branch the dormant path
    /// pays per configuration read).
    pub const fn any(&self) -> bool {
        self.encode || self.poison || self.randomize || self.quarantine > 0
    }

    /// Panic instead of returning typed corruption errors.
    pub const fn panicking(mut self) -> Self {
        self.panic_on_corruption = true;
        self
    }
}

impl Default for HardenedConfig {
    fn default() -> Self {
        HardenedConfig::off()
    }
}

/// The maintenance-core knobs. Off by default ([`MaintConfig::off`]):
/// every slow-path chore (bound trims, bucket regrouping, pressure
/// spills, drain requests) runs inline on the CPU that crossed the
/// threshold, byte-for-byte the pre-maintenance behaviour. With the core
/// enabled ([`MaintConfig::on`]), hot CPUs instead post work items to a
/// wait-free deduplicated mailbox ([`kmem_smp::Mailbox`]) and a
/// maintenance thread — or an explicit [`crate::KmemArena::maint_poll`]
/// pump in deterministic tests — owns the locked slow path alone,
/// draining the global stacks through the epoch-batched multi-chain pop.
///
/// The payoff is *tail* latency: the mean cost of a threshold crossing
/// barely moves, but no application CPU ever pays the regroup/trim walk
/// inline, so p99/p999 allocation latency drops (see `BENCH_maint.json`
/// and DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintConfig {
    /// Route slow-path chores through the maintenance mailbox.
    pub enabled: bool,
}

impl MaintConfig {
    /// Maintenance core off — every chore inline (the default).
    pub const fn off() -> Self {
        MaintConfig { enabled: false }
    }

    /// Maintenance core on — chores post to the mailbox.
    pub const fn on() -> Self {
        MaintConfig { enabled: true }
    }

    /// Whether the maintenance core is active (the one branch the
    /// disabled profile pays per slow-path site).
    pub const fn any(&self) -> bool {
        self.enabled
    }
}

impl Default for MaintConfig {
    fn default() -> Self {
        MaintConfig::off()
    }
}

/// Configuration for a [`crate::KmemArena`].
#[derive(Debug, Clone)]
pub struct KmemConfig {
    /// Number of virtual CPUs (per-CPU cache sets).
    pub ncpus: usize,
    /// Number of NUMA nodes. Every global pool is sharded per node, the
    /// physical pool is split per node, and frames record a home node.
    /// The default of 1 is the paper's flat Symmetry machine: one shard
    /// per class, one physical pool — byte-for-byte the pre-NUMA layout.
    pub nodes: usize,
    /// How CPU indices map onto nodes (ignored when `nodes == 1`).
    pub node_mapping: NodeMapping,
    /// Virtual-memory substrate configuration.
    pub space: SpaceConfig,
    /// Size classes, ascending by size.
    pub classes: Vec<ClassConfig>,
    /// Use the radix-sorted page lists of the paper (`true`: allocate
    /// from the page with the fewest free blocks) or the inverse
    /// most-free-first policy (`false`; ablation only — the "efficient"
    /// policy that minimizes page visits per refill but never lets a
    /// page drain).
    pub radix_pages: bool,
    /// Use the split (`main`/`aux`) per-CPU freelist of the paper (`true`)
    /// or a single bounded list (`false`; ablation only).
    pub split_freelist: bool,
    /// Return fully free vmblks to the kernel space (releases their page-
    /// descriptor frames too). Kept on by default so "everything freed"
    /// states are observable as `phys.in_use() == 0`.
    pub release_empty_vmblks: bool,
    /// Failpoint handle threaded through every fallible layer boundary
    /// (physical claim, vmblk carve, page get, global get/spill, per-CPU
    /// refill). Defaults to [`Faults::none`]: a dormant handle whose cost
    /// on the refill path is a single predictable branch.
    pub faults: Faults,
    /// Watermarks and hysteresis for the memory-pressure ladder.
    pub pressure: PressureConfig,
    /// Heap-corruption defenses ([`HardenedConfig::off`] by default).
    pub hardened: HardenedConfig,
    /// Maintenance-core offload ([`MaintConfig::off`] by default).
    pub maint: MaintConfig,
}

impl KmemConfig {
    /// The paper's default: nine power-of-two classes from 16 to 4096
    /// bytes, heuristic targets, 4 MB vmblks.
    pub fn new(ncpus: usize, space: SpaceConfig) -> Self {
        let classes = (4..=12)
            .map(|shift| ClassConfig::with_heuristics(1 << shift))
            .collect();
        KmemConfig {
            ncpus,
            nodes: 1,
            node_mapping: NodeMapping::Block,
            space,
            classes,
            radix_pages: true,
            split_freelist: true,
            release_empty_vmblks: true,
            faults: Faults::none(),
            pressure: PressureConfig::default(),
            hardened: HardenedConfig::off(),
            maint: MaintConfig::off(),
        }
    }

    /// A small arena suitable for unit tests and doc examples:
    /// 4 CPUs, 16 MB of space, 256 KB vmblks.
    pub fn small() -> Self {
        KmemConfig::new(4, SpaceConfig::new(16 << 20).vmblk_shift(18))
    }

    /// Spreads the arena over `nodes` NUMA nodes (block CPU mapping).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Replaces the hardened profile (builder form of the field).
    pub fn hardened(mut self, hardened: HardenedConfig) -> Self {
        self.hardened = hardened;
        self
    }

    /// Replaces the maintenance-core profile (builder form of the field).
    pub fn maint(mut self, maint: MaintConfig) -> Self {
        self.maint = maint;
        self
    }

    /// Overrides how CPU indices map onto nodes.
    pub fn node_mapping(mut self, mapping: NodeMapping) -> Self {
        self.node_mapping = mapping;
        self
    }

    /// The CPU/node topology this configuration describes.
    pub fn topology(&self) -> Topology {
        Topology::new(self.nodes, self.ncpus, self.node_mapping)
    }

    /// Overrides the `target`/`gbltarget` of the class matching `size`.
    ///
    /// # Panics
    ///
    /// Panics if no class has exactly this block size.
    pub fn set_class(mut self, size: usize, target: usize, gbltarget: usize) -> Self {
        let class = self
            .classes
            .iter_mut()
            .find(|c| c.size == size)
            .expect("no class with that size");
        class.target = target;
        class.gbltarget = gbltarget;
        self
    }

    /// Applies one `target`/`gbltarget` pair to every class (used by the
    /// parameter-sweep ablations).
    pub fn set_all_classes(mut self, target: usize, gbltarget: usize) -> Self {
        for c in &mut self.classes {
            c.target = target;
            c.gbltarget = gbltarget;
        }
        self
    }

    /// Largest class block size.
    pub fn max_class_size(&self) -> usize {
        self.classes.last().map(|c| c.size).unwrap_or(0)
    }

    /// Validates structural requirements.
    ///
    /// # Panics
    ///
    /// Panics on an unusable configuration (zero CPUs, unsorted or
    /// non-power-of-two classes, classes above the page size, or targets
    /// below 1) — configurations are developer input, not runtime data.
    pub fn validate(&self) {
        assert!(self.ncpus >= 1, "need at least one CPU");
        assert!(
            (1..=MAX_NODES).contains(&self.nodes),
            "node count must be between 1 and MAX_NODES"
        );
        assert!(self.ncpus >= self.nodes, "every node needs a CPU");
        assert!(!self.classes.is_empty(), "need at least one size class");
        let mut prev = 0;
        for c in &self.classes {
            assert!(
                c.size.is_power_of_two(),
                "class sizes must be powers of two"
            );
            assert!(c.size >= 16, "classes must hold two words plus poison");
            assert!(
                c.size <= PAGE_SIZE,
                "classes above a page go to the vmblk layer"
            );
            assert!(c.size > prev, "classes must be ascending and distinct");
            assert!(c.target >= 1, "target must be at least 1");
            assert!(
                c.gbltarget >= c.target,
                "gbltarget below target would thrash the page layer"
            );
            prev = c.size;
        }
        self.pressure.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristics_match_paper_endpoints() {
        // "This value ranges from 10 for 16-byte blocks to just 2 for
        // 4096-byte blocks."
        assert_eq!(ClassConfig::with_heuristics(16).target, 10);
        assert_eq!(ClassConfig::with_heuristics(4096).target, 2);
        // "The value of 15 used for gbltarget for small blocks."
        assert_eq!(ClassConfig::with_heuristics(16).gbltarget, 15);
        assert_eq!(ClassConfig::with_heuristics(256).gbltarget, 15);
        // Monotone non-increasing targets as size grows.
        let mut prev = usize::MAX;
        for shift in 4..=12 {
            let t = ClassConfig::with_heuristics(1 << shift).target;
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn default_classes_are_the_papers_nine() {
        let cfg = KmemConfig::small();
        let sizes: Vec<_> = cfg.classes.iter().map(|c| c.size).collect();
        assert_eq!(sizes, vec![16, 32, 64, 128, 256, 512, 1024, 2048, 4096]);
        cfg.validate();
    }

    #[test]
    fn set_class_overrides_one_class() {
        let cfg = KmemConfig::small().set_class(64, 7, 21);
        let c = cfg.classes.iter().find(|c| c.size == 64).unwrap();
        assert_eq!((c.target, c.gbltarget), (7, 21));
        cfg.validate();
    }

    #[test]
    fn node_knobs_default_to_the_flat_machine() {
        let cfg = KmemConfig::small();
        assert_eq!(cfg.nodes, 1);
        assert_eq!(cfg.topology().nnodes(), 1);
        let cfg = cfg.nodes(2);
        cfg.validate();
        assert_eq!(cfg.topology().nnodes(), 2);
        assert_eq!(cfg.topology().ncpus(), 4);
    }

    #[test]
    fn hardened_defaults_off_and_full_turns_everything_on() {
        let cfg = KmemConfig::small();
        assert!(!cfg.hardened.any());
        let cfg = cfg.hardened(HardenedConfig::full(42));
        assert!(cfg.hardened.any());
        assert!(cfg.hardened.encode && cfg.hardened.poison && cfg.hardened.randomize);
        assert!(cfg.hardened.quarantine > 0);
        assert!(!cfg.hardened.panic_on_corruption);
        assert!(HardenedConfig::full(1).panicking().panic_on_corruption);
        cfg.validate();
    }

    #[test]
    fn maint_defaults_off_and_on_enables_the_core() {
        let cfg = KmemConfig::small();
        assert!(!cfg.maint.any());
        let cfg = cfg.maint(MaintConfig::on());
        assert!(cfg.maint.any() && cfg.maint.enabled);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "every node needs a CPU")]
    fn validate_rejects_more_nodes_than_cpus() {
        KmemConfig::small().nodes(8).validate();
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn validate_rejects_duplicate_classes() {
        let mut cfg = KmemConfig::small();
        let first = cfg.classes[0];
        cfg.classes.insert(0, first);
        cfg.validate();
    }
}
