//! Size classes and the size-to-class mapping table.
//!
//! The paper contrasts two ways of mapping a request size to a freelist:
//! the McKusick–Karels fully inlined binary search (fast only when the size
//! is a compile-time constant; otherwise its unpredictable branches stall
//! the pipeline) and "a subroutine call combined with a table lookup",
//! which the standard interface uses: "Requests are converted to an index
//! into the array of caches through use of a table indexed by size."
//! This module is that table.

use crate::config::ClassConfig;

/// Granularity of the lookup table (one entry per 16 bytes of request
/// size, since the smallest class is 16 bytes).
const GRAIN_SHIFT: usize = 4;

/// The arena's size classes plus the size→class lookup table.
pub struct SizeClasses {
    classes: Vec<ClassConfig>,
    /// `table[(size - 1) >> GRAIN_SHIFT]` = class index for any
    /// `1 <= size <= max_size`.
    table: Box<[u8]>,
    max_size: usize,
}

impl SizeClasses {
    /// Builds the lookup table for `classes` (ascending, validated by
    /// [`crate::KmemConfig::validate`]).
    pub fn new(classes: Vec<ClassConfig>) -> Self {
        assert!(classes.len() <= u8::MAX as usize, "too many classes");
        let max_size = classes.last().expect("at least one class").size;
        let entries = max_size >> GRAIN_SHIFT;
        let mut table = vec![0u8; entries].into_boxed_slice();
        for (entry, slot) in table.iter_mut().enumerate() {
            // Largest size covered by this entry.
            let size = (entry + 1) << GRAIN_SHIFT;
            let class = classes
                .iter()
                .position(|c| c.size >= size)
                .expect("table covers only sizes up to the largest class");
            *slot = class as u8;
        }
        SizeClasses {
            classes,
            table,
            max_size,
        }
    }

    /// Number of classes.
    #[inline]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns whether there are no classes (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Largest size served by a class; bigger requests go to the vmblk
    /// layer directly.
    #[inline]
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Parameters of class `index`.
    #[inline]
    pub fn class(&self, index: usize) -> &ClassConfig {
        &self.classes[index]
    }

    /// All classes, ascending by size.
    pub fn iter(&self) -> impl Iterator<Item = &ClassConfig> {
        self.classes.iter()
    }

    /// Maps a request size to its class index: the table lookup on the
    /// standard interface's fast path.
    ///
    /// Returns `None` for sizes above the largest class (the caller routes
    /// those to the vmblk layer) and for zero.
    #[inline]
    pub fn class_for(&self, size: usize) -> Option<usize> {
        if size == 0 || size > self.max_size {
            return None;
        }
        Some(usize::from(self.table[(size - 1) >> GRAIN_SHIFT]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_classes() -> SizeClasses {
        SizeClasses::new(
            (4..=12)
                .map(|s| ClassConfig::with_heuristics(1 << s))
                .collect(),
        )
    }

    #[test]
    fn class_for_rounds_up_to_next_power_of_two() {
        let sc = default_classes();
        for (size, expect) in [
            (1usize, 16usize),
            (16, 16),
            (17, 32),
            (50, 64),
            (64, 64),
            (65, 128),
            (4095, 4096),
            (4096, 4096),
        ] {
            let idx = sc.class_for(size).unwrap();
            assert_eq!(sc.class(idx).size, expect, "size {size}");
        }
    }

    #[test]
    fn class_for_matches_exhaustive_reference() {
        let sc = default_classes();
        for size in 1..=sc.max_size() {
            let idx = sc.class_for(size).unwrap();
            let got = sc.class(idx).size;
            let want = size.next_power_of_two().max(16);
            assert_eq!(got, want, "size {size}");
        }
    }

    #[test]
    fn out_of_range_sizes_have_no_class() {
        let sc = default_classes();
        assert_eq!(sc.class_for(0), None);
        assert_eq!(sc.class_for(4097), None);
        assert_eq!(sc.class_for(1 << 20), None);
    }

    #[test]
    fn sparse_class_sets_work() {
        // Only 32 and 512: sizes in (32, 512] map to 512.
        let sc = SizeClasses::new(vec![
            ClassConfig::with_heuristics(32),
            ClassConfig::with_heuristics(512),
        ]);
        assert_eq!(sc.class(sc.class_for(20).unwrap()).size, 32);
        assert_eq!(sc.class(sc.class_for(33).unwrap()).size, 512);
        assert_eq!(sc.class(sc.class_for(512).unwrap()).size, 512);
        assert_eq!(sc.class_for(513), None);
    }
}
