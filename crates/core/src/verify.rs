//! Cross-layer invariant verification.
//!
//! The paper's worst-case benchmark works only because coalescing is
//! *complete*: after every block of a size is freed, all memory must have
//! flowed back through the page and vmblk layers so the next size can use
//! it. These walkers make that property (and the bounds of every layer)
//! checkable after any test workload. All functions require quiescence:
//! no other thread may be using the arena during verification.

use crate::arena::KmemArena;

/// Checks the structural invariants of every layer.
///
/// * vmblk layer: spans well formed, fully coalesced, freelists and
///   physical-frame accounting exact (see
///   [`crate::vmblklayer::VmblkLayer::verify`]);
/// * global layer: every pool within `2 * gbltarget + ncpus * target`
///   blocks — the exact bound plus the worst-case transient overshoot of
///   the lock-free fast path, which checks the cached block count
///   *before* pushing, so each CPU can land at most one extra in-flight
///   chain past the bound (DESIGN.md §9);
/// * page layer: every per-page free count matches its freelist length
///   and lies within `1..=blocks_per_page` for listed pages (full pages
///   may stay listed briefly — a deferred coalesce — but are never
///   double-listed), the sum of per-page free counts equals the layer's
///   radix-visible total, and no page appears in two buckets.
///
/// # Panics
///
/// Panics on any violation.
pub fn verify_arena(arena: &KmemArena) {
    let inner = arena.inner();
    inner.vm().verify();
    let ncpus = arena.ncpus();
    for pool in inner.globals().iter() {
        let len = pool.len();
        let bound = 2 * pool.gbltarget() + ncpus * pool.target();
        assert!(
            len <= bound,
            "global pool holds {len} blocks, bound {bound} \
             (2 * {} + {ncpus} CPUs * {})",
            pool.gbltarget(),
            pool.target()
        );
    }
    for (idx, layer) in inner.pages().iter().enumerate() {
        let bpp = layer.blocks_per_page();
        let mut listed_pages = 0usize;
        let mut summed_counts = 0usize;
        layer.for_each_page(|count, listed| {
            assert_eq!(count, listed, "class {idx}: page count != freelist length");
            assert!(
                count >= 1 && count <= bpp,
                "class {idx}: listed page with {count}/{bpp} free blocks"
            );
            listed_pages += 1;
            summed_counts += count;
        });
        // Conservation across the radix lists: the atomic per-page counts
        // must sum to exactly the layer's free-block total, and every
        // owned page with free blocks must be listed exactly once (a
        // double-listed page would inflate both sums; a coalesced page
        // left behind in a bucket would trip the freelist-length check).
        let (pages, free_blocks) = layer.usage();
        assert_eq!(
            summed_counts, free_blocks,
            "class {idx}: per-page free counts sum to {summed_counts} but \
             the layer accounts {free_blocks} free blocks"
        );
        assert!(
            listed_pages <= pages,
            "class {idx}: {listed_pages} listed pages exceed {pages} owned \
             (a released page is still listed, or a page is double-listed)"
        );
    }
    for idx in 0..inner.classes().len() {
        inner.check_cache_bounds(idx);
    }
}

/// Checks block conservation per class, given how many blocks of each
/// class the *caller* currently holds.
///
/// For every class: `pages_owned * blocks_per_page` must equal
/// `page-layer free + global pool + per-CPU caches + quarantined +
/// sunk + user_held`. The last two are hardened-profile terms (both zero
/// in the default profile): blocks parked in per-CPU double-free
/// quarantine rings, and blocks the arena deliberately leaked after a
/// corruption detection — a known, counted loss rather than a silent one.
///
/// # Panics
///
/// Panics on a conservation violation (a lost or duplicated block).
pub fn verify_conservation(arena: &KmemArena, user_held: &[usize]) {
    let inner = arena.inner();
    assert_eq!(user_held.len(), inner.classes().len());
    for (idx, &held) in user_held.iter().enumerate() {
        let layer = &inner.pages()[idx];
        let (pages, page_free) = layer.usage();
        let global = inner.global_blocks(idx);
        let cached = inner.cached_blocks(idx);
        let quarantined = inner.quarantined_blocks(idx);
        let sunk = inner.sunk_blocks(idx);
        let capacity = pages * layer.blocks_per_page();
        assert_eq!(
            capacity,
            page_free + global + cached + quarantined + sunk + held,
            "class {idx}: {pages} pages hold {capacity} blocks but \
             {page_free} (page) + {global} (global) + {cached} (cached) + \
             {quarantined} (quarantined) + {sunk} (sunk) + \
             {held} (user) were found"
        );
    }
}

/// Convenience: full verification for a fully drained arena — no user
/// blocks, no cached pages, no physical frames claimed.
///
/// # Panics
///
/// Panics if anything is still held.
pub fn verify_empty(arena: &KmemArena) {
    verify_arena(arena);
    let zeros = vec![0; arena.inner().classes().len()];
    verify_conservation(arena, &zeros);
    assert_eq!(
        arena.space().phys().in_use(),
        0,
        "drained arena still claims physical frames"
    );
}
