//! Page descriptors and intrusive descriptor lists (paper Figure 6).
//!
//! Every data page of a vmblk has one [`PageDesc`], stored in the header
//! area at the front of the vmblk. "Page descriptors corresponding to pages
//! that have been split into blocks contain the block size, a freelist
//! pointer, and the number of free blocks. Page descriptors corresponding
//! to spans contain the boundary-tag information and free-list pointers
//! needed to allocate and coalesce large blocks."
//!
//! # Locking
//!
//! The `kind`/`class` discriminants are atomics because the *standard* free
//! path reads them with no lock held: while a caller still owns a block of
//! a page, that page cannot change role, so the read is stable. Everything
//! inside [`PdInner`] is owned by whichever layer currently owns the page —
//! the class's page layer for block pages, the vmblk layer for spans — and
//! is only touched under that layer's lock.

use core::cell::UnsafeCell;
use core::ptr;
use core::sync::atomic::{AtomicPtr, AtomicU8, Ordering};

use kmem_smp::{NodeId, TaggedAtomic};

/// Role of a page, stored in its descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PdKind {
    /// Interior page of a span (free or large-allocated), or not yet used.
    Unused = 0,
    /// First page of a *free* span; in a span freelist; `span_pages` valid.
    SpanFreeHead = 1,
    /// Last page of a free span of length ≥ 2; `span_pages` valid
    /// (the boundary tag that lets the next span coalesce backwards).
    SpanFreeTail = 2,
    /// Page split into blocks of size class `class`; owned by that class's
    /// coalesce-to-page layer.
    BlockPage = 3,
    /// First page of an *allocated* multi-page block; `span_pages` valid.
    Large = 4,
    /// Whole page parked on the vmblk layer's lock-free page cache: its
    /// physical frame is released, its virtual page is neither in a span
    /// freelist nor counted free, and it is linked through
    /// [`PageDesc::anext`].
    Cached = 5,
}

impl PdKind {
    fn from_u8(v: u8) -> PdKind {
        match v {
            0 => PdKind::Unused,
            1 => PdKind::SpanFreeHead,
            2 => PdKind::SpanFreeTail,
            3 => PdKind::BlockPage,
            4 => PdKind::Large,
            5 => PdKind::Cached,
            _ => unreachable!("corrupt page descriptor kind {v}"),
        }
    }
}

/// Layer-owned page-descriptor state. See the module docs for the locking
/// discipline.
pub struct PdInner {
    /// Block pages: head of the page's internal freelist.
    pub freelist: *mut u8,
    /// Block pages: free blocks in this page. Spans: unused.
    pub free_count: u32,
    /// Spans (head & tail) and large heads: span length in pages.
    pub span_pages: u32,
    /// Intrusive list linkage (radix lists for block pages, span freelists
    /// for span heads).
    pub prev: *mut PageDesc,
    pub next: *mut PageDesc,
}

impl PdInner {
    const fn new() -> Self {
        PdInner {
            freelist: ptr::null_mut(),
            free_count: 0,
            span_pages: 0,
            prev: ptr::null_mut(),
            next: ptr::null_mut(),
        }
    }
}

/// One page descriptor. Aligned so descriptor arrays stride whole cache
/// lines — descriptor traffic is already confined to the (locked) upper
/// layers; the alignment keeps two CPUs working on *different* pages from
/// false-sharing descriptor lines.
#[repr(C, align(64))]
pub struct PageDesc {
    kind: AtomicU8,
    class: AtomicU8,
    /// Home NUMA node of the physical frame currently (or last) backing
    /// this page — written by the vmblk layer when a span's frames are
    /// claimed, read lock-free wherever node-local placement matters.
    /// Fits the descriptor's existing padding, so `PD_STRIDE` is unchanged.
    home: AtomicU8,
    /// Block pages, lock-free layer state: a packed
    /// `(free count | bucket | LISTED | OWNED)` word with a generation
    /// tag (see `pagelayer`'s `PageState`). Written with
    /// [`TaggedAtomic::fetch_count_add`] by freeing CPUs and CAS'd by
    /// possessors; the tag serializes the two against each other.
    state: TaggedAtomic,
    /// Block pages: tagged head of the page's lock-free block freelist
    /// (links through each block's first word, as `global.rs` does).
    afree: TaggedAtomic,
    /// Lock-free intrusive linkage for [`PdStack`] (radix buckets, the
    /// vmblk page cache). Only the stack holding the page may follow it.
    anext: AtomicPtr<PageDesc>,
    inner: UnsafeCell<PdInner>,
}

impl core::fmt::Debug for PageDesc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PageDesc")
            .field("kind", &self.kind())
            .field("class", &self.class())
            .finish_non_exhaustive()
    }
}

/// Distance in bytes between consecutive descriptors in a vmblk header.
pub const PD_STRIDE: usize = core::mem::size_of::<PageDesc>();

impl PageDesc {
    /// Initializes a descriptor in place as `Unused`.
    ///
    /// # Safety
    ///
    /// `slot` must be valid for writes of `PageDesc` and properly aligned.
    pub unsafe fn init(slot: *mut PageDesc) {
        // SAFETY: forwarded caller contract.
        unsafe {
            slot.write(PageDesc {
                kind: AtomicU8::new(PdKind::Unused as u8),
                class: AtomicU8::new(0),
                home: AtomicU8::new(0),
                state: TaggedAtomic::null(),
                afree: TaggedAtomic::null(),
                anext: AtomicPtr::new(ptr::null_mut()),
                inner: UnsafeCell::new(PdInner::new()),
            });
        }
    }

    /// The page's packed lock-free state word (block pages only).
    #[inline]
    pub fn state(&self) -> &TaggedAtomic {
        &self.state
    }

    /// The page's lock-free block-freelist head (block pages only).
    #[inline]
    pub fn afree(&self) -> &TaggedAtomic {
        &self.afree
    }

    /// Reads the page's role (lock-free; see module docs).
    #[inline]
    pub fn kind(&self) -> PdKind {
        PdKind::from_u8(self.kind.load(Ordering::Acquire))
    }

    /// Publishes a new role.
    #[inline]
    pub fn set_kind(&self, kind: PdKind) {
        self.kind.store(kind as u8, Ordering::Release);
    }

    /// Reads the size class of a block page (lock-free; see module docs).
    #[inline]
    pub fn class(&self) -> usize {
        usize::from(self.class.load(Ordering::Acquire))
    }

    /// Records the size class of a block page.
    #[inline]
    pub fn set_class(&self, class: usize) {
        debug_assert!(class <= usize::from(u8::MAX));
        self.class.store(class as u8, Ordering::Release);
    }

    /// Home node of the frame backing this page (lock-free).
    #[inline]
    pub fn home_node(&self) -> NodeId {
        NodeId::new(usize::from(self.home.load(Ordering::Acquire)))
    }

    /// Records the home node of the frame backing this page.
    #[inline]
    pub fn set_home_node(&self, node: NodeId) {
        debug_assert!(node.index() <= usize::from(u8::MAX));
        self.home.store(node.index() as u8, Ordering::Release);
    }

    /// Grants access to the layer-owned state.
    ///
    /// # Safety
    ///
    /// The caller must hold the lock of the layer that currently owns this
    /// page (see module docs), and must not let two returned references
    /// alias mutably.
    #[expect(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn inner(&self) -> &mut PdInner {
        // SAFETY: exclusivity is provided by the owning layer's lock, per
        // the function contract.
        unsafe { &mut *self.inner.get() }
    }
}

/// An intrusive doubly linked list of page descriptors.
///
/// Used both for the radix-sorted per-class page lists (Figure 5) and the
/// vmblk layer's span freelists. All operations require the owning layer's
/// lock, mirrored by the `unsafe fn` contracts.
pub struct PdList {
    head: *mut PageDesc,
    len: usize,
}

// SAFETY: a `PdList` owns membership of the descriptors it links; the
// owning layer's lock serializes all access.
unsafe impl Send for PdList {}

impl PdList {
    /// Creates an empty list.
    pub const fn new() -> Self {
        PdList {
            head: ptr::null_mut(),
            len: 0,
        }
    }

    /// Number of descriptors in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Head of the list, if any.
    #[inline]
    pub fn front(&self) -> Option<*mut PageDesc> {
        if self.head.is_null() {
            None
        } else {
            Some(self.head)
        }
    }

    /// Pushes `pd` at the front.
    ///
    /// # Safety
    ///
    /// The caller holds the owning layer's lock; `pd` is valid and in no
    /// list.
    pub unsafe fn push_front(&mut self, pd: *mut PageDesc) {
        // SAFETY: lock held per contract; `pd` is valid.
        let inner = unsafe { (*pd).inner() };
        debug_assert!(inner.prev.is_null() && inner.next.is_null());
        inner.prev = ptr::null_mut();
        inner.next = self.head;
        if !self.head.is_null() {
            // SAFETY: `head` is a member of this list, hence valid; lock
            // held.
            unsafe { (*self.head).inner() }.prev = pd;
        }
        self.head = pd;
        self.len += 1;
    }

    /// Removes `pd` from the list.
    ///
    /// # Safety
    ///
    /// The caller holds the owning layer's lock; `pd` is a member of this
    /// list.
    pub unsafe fn remove(&mut self, pd: *mut PageDesc) {
        // SAFETY: lock held per contract; `pd` is a member, hence valid.
        let inner = unsafe { (*pd).inner() };
        let (prev, next) = (inner.prev, inner.next);
        inner.prev = ptr::null_mut();
        inner.next = ptr::null_mut();
        if prev.is_null() {
            debug_assert_eq!(self.head, pd, "pd not a member of this list");
            self.head = next;
        } else {
            // SAFETY: members of the list are valid; lock held.
            unsafe { (*prev).inner() }.next = next;
        }
        if !next.is_null() {
            // SAFETY: members of the list are valid; lock held.
            unsafe { (*next).inner() }.prev = prev;
        }
        self.len -= 1;
    }

    /// Pops the front descriptor.
    ///
    /// # Safety
    ///
    /// The caller holds the owning layer's lock.
    pub unsafe fn pop_front(&mut self) -> Option<*mut PageDesc> {
        let pd = self.front()?;
        // SAFETY: `pd` is the head of this list; lock held per contract.
        unsafe { self.remove(pd) };
        Some(pd)
    }

    /// Iterates raw descriptor pointers (verification only).
    ///
    /// # Safety
    ///
    /// The caller holds the owning layer's lock for the whole iteration.
    pub unsafe fn iter(&self) -> PdListIter {
        PdListIter { next: self.head }
    }
}

impl Default for PdList {
    fn default() -> Self {
        PdList::new()
    }
}

/// Iterator over a [`PdList`]; see [`PdList::iter`] for the contract.
pub struct PdListIter {
    next: *mut PageDesc,
}

impl Iterator for PdListIter {
    type Item = *mut PageDesc;

    fn next(&mut self) -> Option<*mut PageDesc> {
        if self.next.is_null() {
            return None;
        }
        let pd = self.next;
        // SAFETY: `pd` is a list member; the iteration contract says the
        // owning lock is held.
        self.next = unsafe { (*pd).inner() }.next;
        Some(pd)
    }
}

/// A lock-free Treiber stack of page descriptors, linked through
/// [`PageDesc::anext`] under a generation-tagged head — the page-descriptor
/// analogue of the global layer's chain stack.
///
/// Used for the per-class radix buckets (lazy positions: a listed page's
/// true free count may exceed its bucket; poppers repair by relisting) and
/// the vmblk layer's whole-page cache. A descriptor is in **at most one**
/// stack at a time; a successful [`pop`](PdStack::pop) transfers possession
/// of the descriptor to the caller.
pub struct PdStack {
    head: TaggedAtomic,
}

// SAFETY: all mutation is through tagged CAS; possession of popped
// descriptors transfers with the successful exchange.
unsafe impl Send for PdStack {}
unsafe impl Sync for PdStack {}

impl PdStack {
    /// Creates an empty stack.
    pub const fn new() -> Self {
        PdStack {
            head: TaggedAtomic::null(),
        }
    }

    /// Whether the stack looked empty at the load — a hint only; racing
    /// pushes and pops may change it immediately.
    #[inline]
    pub fn is_empty_hint(&self) -> bool {
        self.head.load().is_null()
    }

    /// Pushes `pd`, returning the number of failed CAS attempts (for the
    /// caller's `cas_retries` counter).
    ///
    /// # Safety
    ///
    /// The caller possesses `pd` (it is in no stack) and `pd` stays valid
    /// for the stack's lifetime (vmblk descriptor storage is type-stable).
    pub unsafe fn push(&self, pd: *mut PageDesc) -> u64 {
        let mut retries = 0;
        let mut cur = self.head.load();
        loop {
            // SAFETY: we possess `pd` until the CAS publishes it.
            unsafe {
                (*pd)
                    .anext
                    .store(cur.ptr() as *mut PageDesc, Ordering::Release)
            };
            match self.head.compare_exchange(cur, pd as *mut u8) {
                Ok(_) => return retries,
                Err(seen) => {
                    retries += 1;
                    cur = seen;
                }
            }
        }
    }

    /// Iterates raw descriptor pointers without popping (verification).
    ///
    /// # Safety
    ///
    /// The stack must be quiescent for the whole iteration: no concurrent
    /// push or pop may run, or the `anext` chain may be rewired mid-walk.
    pub unsafe fn iter(&self) -> PdStackIter {
        PdStackIter {
            next: self.head.load().ptr() as *mut PageDesc,
        }
    }

    /// Pops the top descriptor, transferring possession to the caller.
    /// Also returns the number of failed CAS attempts.
    pub fn pop(&self) -> (Option<*mut PageDesc>, u64) {
        let mut retries = 0;
        let mut cur = self.head.load();
        loop {
            if cur.is_null() {
                return (None, retries);
            }
            let pd = cur.ptr() as *mut PageDesc;
            // SAFETY: descriptor storage is type-stable, so this load
            // cannot fault even if `pd` was popped by a racing CPU; a
            // stale next is discarded when the tag CAS fails.
            let next = unsafe { (*pd).anext.load(Ordering::Acquire) };
            match self.head.compare_exchange(cur, next as *mut u8) {
                Ok(_) => return (Some(pd), retries),
                Err(seen) => {
                    retries += 1;
                    cur = seen;
                }
            }
        }
    }
}

impl Default for PdStack {
    fn default() -> Self {
        PdStack::new()
    }
}

/// Iterator over a quiescent [`PdStack`]; see [`PdStack::iter`].
pub struct PdStackIter {
    next: *mut PageDesc,
}

impl Iterator for PdStackIter {
    type Item = *mut PageDesc;

    fn next(&mut self) -> Option<*mut PageDesc> {
        if self.next.is_null() {
            return None;
        }
        let pd = self.next;
        // SAFETY: the iteration contract guarantees quiescence, so the
        // chain through `anext` is stable and every member valid.
        self.next = unsafe { (*pd).anext.load(Ordering::Acquire) };
        Some(pd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Boxed so each descriptor keeps a stable address while the Vec grows.
    #[expect(clippy::vec_box)]
    fn make_pds(n: usize) -> Vec<Box<PageDesc>> {
        (0..n)
            .map(|_| {
                let mut boxed = Box::new_uninit();
                // SAFETY: the box provides valid, aligned storage.
                unsafe {
                    PageDesc::init(boxed.as_mut_ptr());
                    boxed.assume_init()
                }
            })
            .collect()
    }

    #[test]
    fn kind_and_class_round_trip() {
        let pds = make_pds(1);
        let pd = &*pds[0];
        assert_eq!(pd.kind(), PdKind::Unused);
        pd.set_kind(PdKind::BlockPage);
        pd.set_class(7);
        assert_eq!(pd.kind(), PdKind::BlockPage);
        assert_eq!(pd.class(), 7);
    }

    #[test]
    fn descriptor_is_cache_line_sized() {
        // Compile-time facts, stated as consts so the assertions are not
        // flagged as constant-value checks.
        const _: () = assert!(PD_STRIDE.is_multiple_of(64));
        const _: () = assert!(PD_STRIDE <= 128, "descriptors should stay compact");
    }

    #[test]
    fn list_push_pop_front() {
        let mut pds = make_pds(3);
        let ptrs: Vec<*mut PageDesc> = pds.iter_mut().map(|b| &mut **b as *mut _).collect();
        let mut list = PdList::new();
        // SAFETY: single-threaded test owns all descriptors.
        unsafe {
            for &p in &ptrs {
                list.push_front(p);
            }
            assert_eq!(list.len(), 3);
            assert_eq!(list.pop_front(), Some(ptrs[2]));
            assert_eq!(list.pop_front(), Some(ptrs[1]));
            assert_eq!(list.pop_front(), Some(ptrs[0]));
            assert_eq!(list.pop_front(), None);
        }
    }

    #[test]
    fn list_remove_middle_and_ends() {
        let mut pds = make_pds(4);
        let ptrs: Vec<*mut PageDesc> = pds.iter_mut().map(|b| &mut **b as *mut _).collect();
        let mut list = PdList::new();
        // SAFETY: single-threaded test owns all descriptors.
        unsafe {
            for &p in &ptrs {
                list.push_front(p);
            }
            // List order is [3, 2, 1, 0].
            list.remove(ptrs[2]); // middle
            assert_eq!(
                list.iter().collect::<Vec<_>>(),
                vec![ptrs[3], ptrs[1], ptrs[0]]
            );
            list.remove(ptrs[3]); // head
            assert_eq!(list.iter().collect::<Vec<_>>(), vec![ptrs[1], ptrs[0]]);
            list.remove(ptrs[0]); // tail
            assert_eq!(list.iter().collect::<Vec<_>>(), vec![ptrs[1]]);
            list.remove(ptrs[1]);
            assert!(list.is_empty());
        }
    }

    #[test]
    fn init_zeroes_the_lock_free_words() {
        let pds = make_pds(1);
        let pd = &*pds[0];
        assert!(pd.state().load().is_null());
        assert_eq!(pd.state().load().value(), 0);
        assert!(pd.afree().load().is_null());
    }

    #[test]
    fn pd_stack_push_pop_lifo() {
        let mut pds = make_pds(3);
        let ptrs: Vec<*mut PageDesc> = pds.iter_mut().map(|b| &mut **b as *mut _).collect();
        let stack = PdStack::new();
        assert!(stack.is_empty_hint());
        // SAFETY: single-threaded test owns all descriptors.
        unsafe {
            for &p in &ptrs {
                stack.push(p);
            }
        }
        assert!(!stack.is_empty_hint());
        assert_eq!(stack.pop().0, Some(ptrs[2]));
        assert_eq!(stack.pop().0, Some(ptrs[1]));
        assert_eq!(stack.pop().0, Some(ptrs[0]));
        assert_eq!(stack.pop().0, None);
    }

    #[test]
    fn pd_stack_concurrent_cycling_conserves_descriptors() {
        const N: usize = 6;
        let mut pds = make_pds(N);
        let ptrs: Vec<usize> = pds
            .iter_mut()
            .map(|b| &mut **b as *mut PageDesc as usize)
            .collect();
        let stack = PdStack::new();
        for &p in &ptrs {
            // SAFETY: descriptors are owned and in no stack.
            unsafe { stack.push(p as *mut PageDesc) };
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        if let (Some(pd), _) = stack.pop() {
                            // SAFETY: pop transferred possession.
                            unsafe { stack.push(pd) };
                        }
                    }
                });
            }
        });
        let mut seen = Vec::new();
        while let (Some(pd), _) = stack.pop() {
            seen.push(pd as usize);
        }
        seen.sort_unstable();
        let mut want = ptrs.clone();
        want.sort_unstable();
        assert_eq!(seen, want, "every descriptor back exactly once");
    }

    #[test]
    fn removed_descriptor_can_rejoin() {
        let mut pds = make_pds(2);
        let a: *mut PageDesc = &mut *pds[0];
        let b: *mut PageDesc = &mut *pds[1];
        let mut l1 = PdList::new();
        let mut l2 = PdList::new();
        // SAFETY: single-threaded test owns all descriptors.
        unsafe {
            l1.push_front(a);
            l1.push_front(b);
            l1.remove(a);
            l2.push_front(a);
            assert_eq!(l1.iter().collect::<Vec<_>>(), vec![b]);
            assert_eq!(l2.iter().collect::<Vec<_>>(), vec![a]);
        }
    }
}
