//! The cookie interface (paper §"Cookies").
//!
//! "The caller invokes `kmem_alloc_get_cookie` to translate a request size
//! into an opaque cookie that is passed to subsequent expansions of the
//! macros named `KMEM_ALLOC_COOKIE` and `KMEM_FREE_COOKIE`. The cookie
//! contains pointers to the proper per-CPU pools, removing the need for the
//! free operation to determine the block size given only its address."
//!
//! In Rust the "macro" halves are the `#[inline]` methods
//! [`crate::CpuHandle::alloc_cookie`] and [`crate::CpuHandle::free_cookie`];
//! the cookie itself carries the resolved class index (the per-CPU pool
//! array is indexed by CPU at the call site, since a cookie may be shared
//! between CPUs) plus the arena identity so debug builds can catch cookies
//! crossing arenas.

/// An opaque, copyable token encoding a resolved size class.
///
/// Obtain one from [`crate::KmemArena::cookie_for`]; it is valid for the
/// lifetime of that arena and may be shared freely between CPUs and
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cookie {
    pub(crate) class: u32,
    pub(crate) size: u32,
    /// Identity of the issuing arena (debug validation only).
    pub(crate) arena_id: u64,
}

impl Cookie {
    /// The block size this cookie allocates.
    #[inline]
    pub fn block_size(self) -> usize {
        self.size as usize
    }

    /// The size-class index this cookie resolves to.
    #[inline]
    pub fn class_index(self) -> usize {
        self.class as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cookie_is_small_and_copy() {
        // A cookie must stay register-friendly: the whole point is to make
        // the fast path cheaper than a size lookup.
        assert!(core::mem::size_of::<Cookie>() <= 16);
        let c = Cookie {
            class: 3,
            size: 128,
            arena_id: 7,
        };
        let d = c;
        assert_eq!(c, d);
        assert_eq!(d.block_size(), 128);
        assert_eq!(d.class_index(), 3);
    }
}
