//! STREAMS buffer allocation (`allocb`/`freeb`) on top of `kmem`.
//!
//! The paper's investigation *started* with STREAMS: `allocb` "returns a
//! pointer to a message, which consists of a message block, data block, and
//! STREAMS buffer", and its measured cost was dominated by cache misses in
//! the old global allocator. The paper also uses STREAMS as the example of
//! special-purpose allocators reusing the general-purpose one "at the
//! binary level, so that a proliferation of special-purpose allocators can
//! be accommodated without undue kernel bloat".
//!
//! This crate is that special-purpose allocator: the classic `msgb` /
//! `datab` / buffer triplet (Ritchie's stream I/O system), where every
//! piece — message block, data block, and the data buffer itself — comes
//! from a [`kmem::KmemArena`] through the cookie interface. Reference
//! counting on data blocks supports `dupb` (e.g. retaining data for
//! retransmission), and `freemsg` walks `b_cont` chains of segmented
//! messages.
//!
//! All block handles are raw, kernel-style: the caller frees exactly once
//! via this module, with the usual `unsafe` contracts.

use core::ptr::{self, NonNull};
use core::sync::atomic::{AtomicU32, Ordering};

use kmem::{Cookie, CpuHandle, KmemArena};

/// A STREAMS data block descriptor (`struct datab`).
#[repr(C)]
pub struct Datab {
    /// Base of the data buffer.
    pub db_base: *mut u8,
    /// One past the end of the data buffer.
    pub db_lim: *mut u8,
    /// Reference count: number of message blocks pointing here.
    db_ref: AtomicU32,
    /// Cookie that frees the buffer.
    buf_cookie: Cookie,
}

/// A STREAMS message block descriptor (`struct msgb`).
#[repr(C)]
pub struct Msgb {
    /// Next message on a queue (unused by the allocator itself).
    pub b_next: *mut Msgb,
    /// Next block of the same (segmented) message.
    pub b_cont: *mut Msgb,
    /// First unread byte.
    pub b_rptr: *mut u8,
    /// First unwritten byte.
    pub b_wptr: *mut u8,
    /// The shared data block.
    pub b_datap: *mut Datab,
}

/// A raw handle to an allocated message block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MsgPtr(pub NonNull<Msgb>);

// SAFETY: a `MsgPtr` is an owned capability to a message block; the STREAMS
// discipline (one owner frees once) is carried by the unsafe contracts.
unsafe impl Send for MsgPtr {}

impl MsgPtr {
    /// The message block.
    ///
    /// # Safety
    ///
    /// The handle must still be allocated (not passed to `freeb`), and the
    /// caller must respect the usual aliasing rules on the block.
    #[expect(clippy::mut_from_ref)]
    pub unsafe fn msgb(&self) -> &mut Msgb {
        // SAFETY: per contract.
        unsafe { &mut *self.0.as_ptr() }
    }
}

/// A deferred allocation request registered with [`StreamsAlloc::bufcall`].
type BufCallback = Box<dyn FnOnce(&StreamsAlloc, &CpuHandle) + Send>;

/// The STREAMS buffer allocator: cookies resolved once, then every
/// `allocb` is three cookie allocations.
pub struct StreamsAlloc {
    arena: KmemArena,
    msgb_cookie: Cookie,
    datab_cookie: Cookie,
    /// Pending `bufcall` continuations, run when memory may be available
    /// again.
    bufcalls: kmem_smp::SpinLock<Vec<(usize, BufCallback)>>,
}

impl StreamsAlloc {
    /// Largest supported buffer (one page, as in the measured system).
    pub fn max_buffer(&self) -> usize {
        4096
    }

    /// Builds the allocator over `arena`.
    pub fn new(arena: KmemArena) -> Self {
        let msgb_cookie = arena
            .cookie_for(core::mem::size_of::<Msgb>())
            .expect("msgb fits a class");
        let datab_cookie = arena
            .cookie_for(core::mem::size_of::<Datab>())
            .expect("datab fits a class");
        StreamsAlloc {
            arena,
            msgb_cookie,
            datab_cookie,
            bufcalls: kmem_smp::SpinLock::new(Vec::new()),
        }
    }

    /// The underlying arena.
    pub fn arena(&self) -> &KmemArena {
        &self.arena
    }

    /// `allocb(size)`: allocates a message block, data block, and a buffer
    /// of at least `size` bytes, linked together. Returns `None` when
    /// memory is exhausted (the caller would use `bufcall` in a kernel).
    pub fn allocb(&self, cpu: &CpuHandle, size: usize) -> Option<MsgPtr> {
        let size = size.max(1);
        let buf_cookie = self.arena.cookie_for(size)?;
        let buf = cpu.alloc_cookie(buf_cookie).ok()?;
        let datap = match cpu.alloc_cookie(self.datab_cookie) {
            Ok(p) => p.cast::<Datab>(),
            Err(_) => {
                // SAFETY: `buf` was just allocated with `buf_cookie`.
                unsafe { cpu.free_cookie(buf, buf_cookie) };
                return None;
            }
        };
        let mp = match cpu.alloc_cookie(self.msgb_cookie) {
            Ok(p) => p.cast::<Msgb>(),
            Err(_) => {
                // SAFETY: both were just allocated with their cookies.
                unsafe {
                    cpu.free_cookie(datap.cast(), self.datab_cookie);
                    cpu.free_cookie(buf, buf_cookie);
                }
                return None;
            }
        };
        // SAFETY: fresh, exclusively owned allocations of the right sizes.
        unsafe {
            datap.as_ptr().write(Datab {
                db_base: buf.as_ptr(),
                db_lim: buf.as_ptr().add(buf_cookie.block_size()),
                db_ref: AtomicU32::new(1),
                buf_cookie,
            });
            mp.as_ptr().write(Msgb {
                b_next: ptr::null_mut(),
                b_cont: ptr::null_mut(),
                b_rptr: buf.as_ptr(),
                b_wptr: buf.as_ptr(),
                b_datap: datap.as_ptr(),
            });
        }
        Some(MsgPtr(mp))
    }

    /// `bufcall(size, f)`: registers `f` to run when an `allocb(size)`
    /// that failed may succeed again — the classic STREAMS answer to
    /// transient buffer exhaustion. Continuations run inside
    /// [`StreamsAlloc::run_bufcalls`], which a driver calls from its
    /// service routine (here: whenever the caller has freed memory).
    pub fn bufcall(&self, size: usize, f: impl FnOnce(&StreamsAlloc, &CpuHandle) + Send + 'static) {
        self.bufcalls.lock().push((size, Box::new(f)));
    }

    /// Number of pending bufcall continuations.
    pub fn pending_bufcalls(&self) -> usize {
        self.bufcalls.lock().len()
    }

    /// Runs every pending continuation whose size can now be allocated
    /// (probed with a real allocation that is immediately freed). Returns
    /// how many ran.
    pub fn run_bufcalls(&self, cpu: &CpuHandle) -> usize {
        let pending = core::mem::take(&mut *self.bufcalls.lock());
        let mut ran = 0;
        for (size, f) in pending {
            // Probe: can an allocb of this size succeed right now?
            match self.allocb(cpu, size) {
                Some(probe) => {
                    // SAFETY: probe was just allocated and never shared.
                    unsafe { self.freeb(cpu, probe) };
                    f(self, cpu);
                    ran += 1;
                }
                None => self.bufcalls.lock().push((size, f)),
            }
        }
        ran
    }

    /// `dupb(mp)`: a second message block sharing `mp`'s data block (e.g.
    /// to retain data for possible later retransmission).
    ///
    /// # Safety
    ///
    /// `mp` must be live (allocated by this allocator, not yet freed).
    pub unsafe fn dupb(&self, cpu: &CpuHandle, mp: MsgPtr) -> Option<MsgPtr> {
        let new = cpu.alloc_cookie(self.msgb_cookie).ok()?.cast::<Msgb>();
        // SAFETY: `mp` is live per contract.
        let src = unsafe { &*mp.0.as_ptr() };
        // SAFETY: `b_datap` of a live message is a live data block.
        unsafe { &*src.b_datap }
            .db_ref
            .fetch_add(1, Ordering::AcqRel);
        // SAFETY: fresh allocation of msgb size.
        unsafe {
            new.as_ptr().write(Msgb {
                b_next: ptr::null_mut(),
                b_cont: ptr::null_mut(),
                b_rptr: src.b_rptr,
                b_wptr: src.b_wptr,
                b_datap: src.b_datap,
            });
        }
        Some(MsgPtr(new))
    }

    /// `freeb(mp)`: frees one message block; the data block and buffer go
    /// when the last reference drops.
    ///
    /// # Safety
    ///
    /// `mp` must be live and is consumed by this call. Any `b_cont` chain
    /// is *not* freed (use [`StreamsAlloc::freemsg`]).
    pub unsafe fn freeb(&self, cpu: &CpuHandle, mp: MsgPtr) {
        // SAFETY: `mp` is live per contract.
        let datap = unsafe { (*mp.0.as_ptr()).b_datap };
        // SAFETY: live message ⇒ live data block.
        let last = unsafe { &*datap }.db_ref.fetch_sub(1, Ordering::AcqRel) == 1;
        if last {
            // SAFETY: we hold the final reference; base/cookie were set at
            // allocation.
            unsafe {
                let db = &*datap;
                let base = db.db_base;
                let cookie = db.buf_cookie;
                cpu.free_cookie(NonNull::new_unchecked(base), cookie);
                cpu.free_cookie(NonNull::new_unchecked(datap.cast()), self.datab_cookie);
            }
        }
        // SAFETY: consuming the caller's ownership of the msgb.
        unsafe { cpu.free_cookie(mp.0.cast(), self.msgb_cookie) };
    }

    /// `freemsg(mp)`: frees a whole `b_cont` chain.
    ///
    /// # Safety
    ///
    /// As for [`StreamsAlloc::freeb`], applied to every block on the
    /// chain.
    pub unsafe fn freemsg(&self, cpu: &CpuHandle, mp: MsgPtr) {
        let mut cur = mp.0.as_ptr();
        while !cur.is_null() {
            // SAFETY: chain blocks are live per contract.
            let next = unsafe { (*cur).b_cont };
            // SAFETY: as above; NonNull because it came from a MsgPtr or a
            // non-null b_cont.
            unsafe { self.freeb(cpu, MsgPtr(NonNull::new_unchecked(cur))) };
            cur = next;
        }
    }

    /// Appends `cont` to `mp`'s continuation chain (`linkb`).
    ///
    /// # Safety
    ///
    /// Both must be live; `cont` must not already be on a chain.
    pub unsafe fn linkb(&self, mp: MsgPtr, cont: MsgPtr) {
        // SAFETY: live per contract.
        let mut cur = mp.0.as_ptr();
        unsafe {
            while !(*cur).b_cont.is_null() {
                cur = (*cur).b_cont;
            }
            (*cur).b_cont = cont.0.as_ptr();
        }
    }

    /// Copies `data` into the message's buffer at `b_wptr`, advancing it.
    /// Returns `false` (writing nothing) if the buffer lacks room.
    ///
    /// # Safety
    ///
    /// `mp` must be live, and no other reference may concurrently use its
    /// buffer region.
    pub unsafe fn put(&self, mp: MsgPtr, data: &[u8]) -> bool {
        // SAFETY: live per contract.
        let m = unsafe { &mut *mp.0.as_ptr() };
        // SAFETY: wptr/lim point into the same buffer.
        let room = unsafe { (*m.b_datap).db_lim.offset_from(m.b_wptr) } as usize;
        if data.len() > room {
            return false;
        }
        // SAFETY: room was checked; regions cannot overlap (freshly
        // allocated kernel buffer vs caller slice).
        unsafe {
            ptr::copy_nonoverlapping(data.as_ptr(), m.b_wptr, data.len());
            m.b_wptr = m.b_wptr.add(data.len());
        }
        true
    }

    /// `copyb(mp)`: a deep copy of one message block — new buffer, new
    /// data block, data bytes duplicated (unlike [`StreamsAlloc::dupb`],
    /// which shares the buffer).
    ///
    /// # Safety
    ///
    /// `mp` must be live.
    pub unsafe fn copyb(&self, cpu: &CpuHandle, mp: MsgPtr) -> Option<MsgPtr> {
        // SAFETY: `mp` is live per contract.
        let src = unsafe { &*mp.0.as_ptr() };
        // SAFETY: live message ⇒ live data block with a valid buffer.
        let cap = unsafe { (*src.b_datap).db_lim.offset_from((*src.b_datap).db_base) } as usize;
        let new = self.allocb(cpu, cap)?;
        // SAFETY: both buffers are live and disjoint; rptr/wptr lie
        // within the source buffer.
        unsafe {
            let n = src.b_wptr.offset_from(src.b_rptr) as usize;
            let m = &mut *new.0.as_ptr();
            ptr::copy_nonoverlapping(src.b_rptr, m.b_rptr, n);
            m.b_wptr = m.b_rptr.add(n);
        }
        Some(new)
    }

    /// `copymsg(mp)`: deep-copies a whole `b_cont` chain. On allocation
    /// failure the partial copy is freed and `None` is returned.
    ///
    /// # Safety
    ///
    /// `mp` must be live (whole chain).
    pub unsafe fn copymsg(&self, cpu: &CpuHandle, mp: MsgPtr) -> Option<MsgPtr> {
        // SAFETY: forwarded contract; head is live.
        let head = unsafe { self.copyb(cpu, mp)? };
        let mut src_cur = unsafe { (*mp.0.as_ptr()).b_cont };
        let mut dst_tail = head.0.as_ptr();
        while !src_cur.is_null() {
            // SAFETY: chain members are live per contract.
            let seg = unsafe { self.copyb(cpu, MsgPtr(NonNull::new_unchecked(src_cur))) };
            let Some(seg) = seg else {
                // SAFETY: the partial chain is ours; free it all.
                unsafe { self.freemsg(cpu, head) };
                return None;
            };
            // SAFETY: `dst_tail` is the live end of our new chain.
            unsafe {
                (*dst_tail).b_cont = seg.0.as_ptr();
                dst_tail = seg.0.as_ptr();
                src_cur = (*src_cur).b_cont;
            }
        }
        Some(head)
    }

    /// `adjmsg(mp, len)`: trims `len` bytes — from the head of the chain
    /// when positive, from the tail when negative. Returns `false`
    /// (trimming nothing) if the chain holds fewer data bytes than
    /// requested.
    ///
    /// # Safety
    ///
    /// `mp` must be live (whole chain).
    pub unsafe fn adjmsg(&self, mp: MsgPtr, len: isize) -> bool {
        // SAFETY: forwarded contract.
        let total = unsafe { self.msgdsize(mp) };
        let trim = len.unsigned_abs();
        if trim > total {
            return false;
        }
        if len >= 0 {
            let mut remaining = trim;
            let mut cur = mp.0.as_ptr();
            while remaining > 0 {
                // SAFETY: chain members are live; msgdsize bounded `trim`.
                unsafe {
                    let avail = (*cur).b_wptr.offset_from((*cur).b_rptr) as usize;
                    let here = avail.min(remaining);
                    (*cur).b_rptr = (*cur).b_rptr.add(here);
                    remaining -= here;
                    cur = (*cur).b_cont;
                }
            }
        } else {
            // Trim from the tail: walk from the front each time (chains
            // are short; this is what the reference implementation does).
            let mut remaining = trim;
            while remaining > 0 {
                // Find the last block with data.
                let mut cur = mp.0.as_ptr();
                let mut last = ptr::null_mut();
                while !cur.is_null() {
                    // SAFETY: chain members are live.
                    unsafe {
                        if (*cur).b_wptr > (*cur).b_rptr {
                            last = cur;
                        }
                        cur = (*cur).b_cont;
                    }
                }
                debug_assert!(!last.is_null());
                // SAFETY: `last` holds at least one byte.
                unsafe {
                    let avail = (*last).b_wptr.offset_from((*last).b_rptr) as usize;
                    let here = avail.min(remaining);
                    (*last).b_wptr = (*last).b_wptr.sub(here);
                    remaining -= here;
                }
            }
        }
        true
    }

    /// `msgdsize(mp)`: total unread data bytes across the chain.
    ///
    /// # Safety
    ///
    /// `mp` must be live.
    pub unsafe fn msgdsize(&self, mp: MsgPtr) -> usize {
        let mut total = 0usize;
        let mut cur = mp.0.as_ptr();
        while !cur.is_null() {
            // SAFETY: chain blocks are live per contract.
            unsafe {
                total += (*cur).b_wptr.offset_from((*cur).b_rptr) as usize;
                cur = (*cur).b_cont;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem::KmemConfig;

    fn setup() -> (StreamsAlloc, CpuHandle) {
        let arena = KmemArena::new(KmemConfig::small()).unwrap();
        let cpu = arena.register_cpu().unwrap();
        (StreamsAlloc::new(arena), cpu)
    }

    #[test]
    fn allocb_wires_the_triplet() {
        let (sa, cpu) = setup();
        let mp = sa.allocb(&cpu, 100).unwrap();
        // SAFETY: just allocated.
        unsafe {
            let m = mp.msgb();
            assert_eq!(m.b_rptr, m.b_wptr);
            let db = &*m.b_datap;
            assert_eq!(db.db_base, m.b_rptr);
            // 100 bytes lands in the 128-byte class.
            assert_eq!(db.db_lim.offset_from(db.db_base), 128);
            sa.freeb(&cpu, mp);
        }
        cpu.flush();
        sa.arena().reclaim();
        kmem::verify::verify_empty(sa.arena());
    }

    #[test]
    fn put_and_msgdsize_track_data() {
        let (sa, cpu) = setup();
        let mp = sa.allocb(&cpu, 64).unwrap();
        // SAFETY: just allocated; exclusive.
        unsafe {
            assert!(sa.put(mp, b"hello "));
            assert!(sa.put(mp, b"world"));
            assert_eq!(sa.msgdsize(mp), 11);
            // Reading back what was written.
            let m = mp.msgb();
            let got = core::slice::from_raw_parts(m.b_rptr, 11);
            assert_eq!(got, b"hello world");
            // Overfill is refused.
            assert!(!sa.put(mp, &[0u8; 64]));
            assert_eq!(sa.msgdsize(mp), 11);
            sa.freeb(&cpu, mp);
        }
    }

    #[test]
    fn dupb_shares_until_last_freeb() {
        let (sa, cpu) = setup();
        let mp = sa.allocb(&cpu, 50).unwrap();
        // SAFETY: mp live; dup lives until freed below.
        unsafe {
            assert!(sa.put(mp, b"retain me"));
            let dup = sa.dupb(&cpu, mp).unwrap();
            assert_eq!(sa.msgdsize(dup), 9);
            // Free the original: the data must survive via dup.
            sa.freeb(&cpu, mp);
            let m = dup.msgb();
            let got = core::slice::from_raw_parts(m.b_rptr, 9);
            assert_eq!(got, b"retain me");
            sa.freeb(&cpu, dup);
        }
        cpu.flush();
        sa.arena().reclaim();
        kmem::verify::verify_empty(sa.arena());
    }

    #[test]
    fn freemsg_walks_segmented_messages() {
        let (sa, cpu) = setup();
        let head = sa.allocb(&cpu, 32).unwrap();
        // SAFETY: all blocks live; linkb invariants respected.
        unsafe {
            for i in 0..5 {
                let seg = sa.allocb(&cpu, 32).unwrap();
                assert!(sa.put(seg, &[i as u8; 10]));
                sa.linkb(head, seg);
            }
            assert_eq!(sa.msgdsize(head), 50);
            sa.freemsg(&cpu, head);
        }
        cpu.flush();
        sa.arena().reclaim();
        kmem::verify::verify_empty(sa.arena());
    }

    #[test]
    fn exhaustion_yields_none_and_cleans_up() {
        let arena = KmemArena::new(KmemConfig::new(1, kmem_vm_space_small())).unwrap();
        let cpu = arena.register_cpu().unwrap();
        let sa = StreamsAlloc::new(arena);
        let mut held = Vec::new();
        // 4 KB buffers exhaust the tiny pool quickly.
        while let Some(mp) = sa.allocb(&cpu, 4096) {
            held.push(mp);
            assert!(held.len() < 10_000, "pool never exhausted");
        }
        // Failure left nothing half-allocated: free everything and the
        // arena drains to zero.
        for mp in held {
            // SAFETY: allocated above, freed once.
            unsafe { sa.freeb(&cpu, mp) };
        }
        cpu.flush();
        sa.arena().reclaim();
        kmem::verify::verify_empty(sa.arena());
    }

    /// A tiny space for the exhaustion test.
    fn kmem_vm_space_small() -> kmem_vm::SpaceConfig {
        kmem_vm::SpaceConfig::new(1 << 20)
            .vmblk_shift(16)
            .phys_pages(12)
    }

    #[test]
    fn oversized_buffers_are_refused() {
        let (sa, cpu) = setup();
        assert!(sa.allocb(&cpu, sa.max_buffer() + 1).is_none());
    }

    #[test]
    fn bufcall_defers_until_memory_returns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let arena = KmemArena::new(KmemConfig::new(1, kmem_vm_space_small())).unwrap();
        let cpu = arena.register_cpu().unwrap();
        let sa = StreamsAlloc::new(arena);
        // Exhaust the pool with large buffers.
        let mut held = Vec::new();
        while let Some(m) = sa.allocb(&cpu, 4096) {
            held.push(m);
        }
        // The failed caller registers a continuation instead of spinning.
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&fired);
        sa.bufcall(4096, move |sa, cpu| {
            let m = sa.allocb(cpu, 4096).expect("memory was probed available");
            // SAFETY: just allocated, freed once.
            unsafe { sa.freeb(cpu, m) };
            f2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(sa.pending_bufcalls(), 1);
        // Still exhausted: the continuation stays queued.
        assert_eq!(sa.run_bufcalls(&cpu), 0);
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        // Free a message; the driver's service routine runs bufcalls.
        // SAFETY: allocated above, freed once.
        unsafe { sa.freeb(&cpu, held.pop().unwrap()) };
        assert_eq!(sa.run_bufcalls(&cpu), 1);
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        assert_eq!(sa.pending_bufcalls(), 0);
        for m in held {
            // SAFETY: allocated above, freed once.
            unsafe { sa.freeb(&cpu, m) };
        }
    }

    #[test]
    fn copyb_duplicates_data_independently() {
        let (sa, cpu) = setup();
        let orig = sa.allocb(&cpu, 32).unwrap();
        // SAFETY: all handles live; each freed exactly once.
        unsafe {
            assert!(sa.put(orig, b"original"));
            let copy = sa.copyb(&cpu, orig).unwrap();
            assert_eq!(sa.msgdsize(copy), 8);
            // Mutating the original must not affect the copy.
            *orig.msgb().b_rptr = b'X';
            let c = copy.msgb();
            let got = core::slice::from_raw_parts(c.b_rptr, 8);
            assert_eq!(got, b"original");
            sa.freeb(&cpu, orig);
            sa.freeb(&cpu, copy);
        }
        cpu.flush();
        sa.arena().reclaim();
        kmem::verify::verify_empty(sa.arena());
    }

    #[test]
    fn copymsg_copies_whole_chains() {
        let (sa, cpu) = setup();
        let head = sa.allocb(&cpu, 16).unwrap();
        // SAFETY: all handles live; each freed exactly once.
        unsafe {
            sa.put(head, b"h");
            for i in 0..3u8 {
                let seg = sa.allocb(&cpu, 16).unwrap();
                sa.put(seg, &[i; 5]);
                sa.linkb(head, seg);
            }
            let copy = sa.copymsg(&cpu, head).unwrap();
            assert_eq!(sa.msgdsize(copy), sa.msgdsize(head));
            sa.freemsg(&cpu, head);
            assert_eq!(sa.msgdsize(copy), 16);
            sa.freemsg(&cpu, copy);
        }
        cpu.flush();
        sa.arena().reclaim();
        kmem::verify::verify_empty(sa.arena());
    }

    #[test]
    fn adjmsg_trims_head_and_tail_across_segments() {
        let (sa, cpu) = setup();
        let head = sa.allocb(&cpu, 16).unwrap();
        // SAFETY: all handles live; freed exactly once at the end.
        unsafe {
            sa.put(head, b"aaaa"); // 4
            let seg = sa.allocb(&cpu, 16).unwrap();
            sa.put(seg, b"bbbbbb"); // 6
            sa.linkb(head, seg);
            assert_eq!(sa.msgdsize(head), 10);
            // Trim 5 from the front: eats all of block 1 and one byte of
            // block 2.
            assert!(sa.adjmsg(head, 5));
            assert_eq!(sa.msgdsize(head), 5);
            // Trim 3 from the tail.
            assert!(sa.adjmsg(head, -3));
            assert_eq!(sa.msgdsize(head), 2);
            // Over-trim refused, nothing changed.
            assert!(!sa.adjmsg(head, 3));
            assert_eq!(sa.msgdsize(head), 2);
            sa.freemsg(&cpu, head);
        }
    }
}
