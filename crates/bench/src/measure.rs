//! Real-thread, wall-clock measurement (for hosts with real CPUs).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use kmem::{KmemArena, KmemConfig};
use kmem_baselines::KernelAllocator;

/// Times `iters` runs of `f` and returns nanoseconds per run.
pub fn time_loop(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The in-tree bench harness: warms up (a tenth of `iters`), times
/// `iters` runs, prints one aligned report line, and returns ns per run.
///
/// This replaces the external criterion harness so benches build offline;
/// the `bench-ext` feature gates the bench targets themselves.
pub fn bench_ns(name: &str, iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let ns = time_loop(iters, f);
    println!("{name:<44} {ns:>12.1} ns/op   ({iters} iters)");
    ns
}

/// The paper's best-case benchmark on real OS threads: each thread runs
/// alloc/free pairs of `size` bytes for `duration`, and the aggregate
/// pair rate is returned.
///
/// On a single-core host this cannot show speedup (threads time-share);
/// it exists for running the identical workload on a real SMP machine.
pub fn thread_pairs_per_sec<A: KernelAllocator>(
    alloc: &A,
    size: usize,
    threads: usize,
    duration: Duration,
) -> f64 {
    let stop = AtomicBool::new(false);
    let total: u64 = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let stop = &stop;
            let alloc = &alloc;
            handles.push(s.spawn(move || {
                let mut ctx = alloc.register();
                let prep = alloc.prepare(size);
                let mut pairs = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let p = alloc
                            .alloc(&mut ctx, prep)
                            .expect("best-case loop must not exhaust memory");
                        // SAFETY: allocated just above with the same prep.
                        unsafe { alloc.free(&mut ctx, p, prep) };
                    }
                    pairs += 64;
                }
                pairs
            }));
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    total as f64 / duration.as_secs_f64()
}

/// ns per alloc/free pair with `threads` real threads hammering one
/// arena built from `config` (which must allow at least `threads` CPUs).
/// Every `flush_every` pairs each thread flushes its per-CPU caches, so
/// chains ping-pong through the shared global layer — this measures the
/// contended cross-layer path, not the cache-hit fast path.
pub fn arena_contended_pair_ns(
    config: KmemConfig,
    size: usize,
    threads: usize,
    ops_per_thread: usize,
    flush_every: usize,
) -> f64 {
    let arena = KmemArena::new(config).expect("bench arena");
    let cookie = arena.cookie_for(size).expect("bench size class");
    let barrier = Barrier::new(threads);
    // The phase is timed from inside the workers as max(end) - min(start):
    // the worker that rolls straight through the barrier release stamps
    // the true phase start, and the last finisher stamps the end. Timing
    // from the spawning thread is wrong on an oversubscribed host (the
    // workers can run to completion before the spawner is rescheduled
    // after the barrier, reading near-zero elapsed time), and taking only
    // per-worker spans is wrong the other way (a descheduled worker
    // stamps its start late, so each span covers just its own loop and an
    // N-thread serialized phase masquerades as an N-times speedup).
    let spans: Vec<(Instant, Instant)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let arena = &arena;
                let barrier = &barrier;
                s.spawn(move || {
                    let cpu = arena.register_cpu().expect("config sized for threads");
                    barrier.wait();
                    let start = Instant::now();
                    for i in 1..=ops_per_thread {
                        let p = cpu.alloc_cookie(cookie).expect("bench must not exhaust");
                        std::hint::black_box(p);
                        // SAFETY: allocated just above, freed exactly once.
                        unsafe { cpu.free_cookie(p, cookie) };
                        if i % flush_every == 0 {
                            cpu.flush();
                        }
                    }
                    (start, Instant::now())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let first_start = spans.iter().map(|&(s, _)| s).min().expect("threads > 0");
    let last_end = spans.iter().map(|&(_, e)| e).max().expect("threads > 0");
    (last_end - first_start).as_nanos() as f64 / (threads * ops_per_thread) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem_baselines::KmemCookieAlloc;

    #[test]
    fn thread_measurement_runs() {
        let alloc = KmemCookieAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
        let rate = thread_pairs_per_sec(&alloc, 128, 2, Duration::from_millis(50));
        assert!(rate > 0.0);
    }

    #[test]
    fn contended_pair_measurement_runs() {
        let ns = arena_contended_pair_ns(KmemConfig::small(), 256, 2, 500, 64);
        assert!(ns > 0.0);
    }

    #[test]
    fn time_loop_reports_positive_ns() {
        let ns = time_loop(1000, || {
            std::hint::black_box(1 + 1);
        });
        assert!(ns >= 0.0);
    }
}
