//! Real-thread, wall-clock measurement (for hosts with real CPUs).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use kmem_baselines::KernelAllocator;

/// Times `iters` runs of `f` and returns nanoseconds per run.
pub fn time_loop(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The in-tree bench harness: warms up (a tenth of `iters`), times
/// `iters` runs, prints one aligned report line, and returns ns per run.
///
/// This replaces the external criterion harness so benches build offline;
/// the `bench-ext` feature gates the bench targets themselves.
pub fn bench_ns(name: &str, iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let ns = time_loop(iters, f);
    println!("{name:<44} {ns:>12.1} ns/op   ({iters} iters)");
    ns
}

/// The paper's best-case benchmark on real OS threads: each thread runs
/// alloc/free pairs of `size` bytes for `duration`, and the aggregate
/// pair rate is returned.
///
/// On a single-core host this cannot show speedup (threads time-share);
/// it exists for running the identical workload on a real SMP machine.
pub fn thread_pairs_per_sec<A: KernelAllocator>(
    alloc: &A,
    size: usize,
    threads: usize,
    duration: Duration,
) -> f64 {
    let stop = AtomicBool::new(false);
    let total: u64 = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let stop = &stop;
            let alloc = &alloc;
            handles.push(s.spawn(move || {
                let mut ctx = alloc.register();
                let prep = alloc.prepare(size);
                let mut pairs = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let p = alloc
                            .alloc(&mut ctx, prep)
                            .expect("best-case loop must not exhaust memory");
                        // SAFETY: allocated just above with the same prep.
                        unsafe { alloc.free(&mut ctx, p, prep) };
                    }
                    pairs += 64;
                }
                pairs
            }));
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    total as f64 / duration.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem::{KmemArena, KmemConfig};
    use kmem_baselines::KmemCookieAlloc;

    #[test]
    fn thread_measurement_runs() {
        let alloc = KmemCookieAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
        let rate = thread_pairs_per_sec(&alloc, 128, 2, Duration::from_millis(50));
        assert!(rate > 0.0);
    }

    #[test]
    fn time_loop_reports_positive_ns() {
        let ns = time_loop(1000, || {
            std::hint::black_box(1 + 1);
        });
        assert!(ns >= 0.0);
    }
}
