//! DES drivers: run a real allocator on N virtual CPUs.

use kmem_baselines::KernelAllocator;
use kmem_sim::{SimConfig, Simulator};

/// One measured point of a scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct SimPoint {
    /// Virtual CPUs.
    pub ncpus: usize,
    /// Alloc/free pairs per simulated second.
    pub pairs_per_sec: f64,
    /// Fraction of simulated time spent waiting on locks.
    pub lock_wait_frac: f64,
}

/// Runs the paper's best-case loop (alloc one block, free it immediately)
/// on `ncpus` virtual CPUs of the simulator and returns pairs/sec.
///
/// `base_cycles` is the calibrated probe-free fast-path cost per pair
/// (see [`crate::calib`]).
pub fn sim_pairs_per_sec<A: KernelAllocator>(
    alloc: &A,
    size: usize,
    ncpus: usize,
    pairs_per_cpu: u64,
    base_cycles: u64,
) -> SimPoint {
    let mut ctxs: Vec<A::Ctx> = (0..ncpus).map(|_| alloc.register()).collect();
    let prep = alloc.prepare(size);
    let sim = Simulator::new(SimConfig::new(ncpus, pairs_per_cpu));
    let result = sim.run(|vcpu| {
        let p = alloc
            .alloc(&mut ctxs[vcpu], prep)
            .expect("best-case loop must not exhaust memory");
        // SAFETY: allocated just above with the same prep.
        unsafe { alloc.free(&mut ctxs[vcpu], p, prep) };
        base_cycles
    });
    SimPoint {
        ncpus,
        pairs_per_sec: result.ops_per_sec(),
        lock_wait_frac: if result.elapsed_cycles == 0 {
            0.0
        } else {
            result.lock_wait_cycles as f64 / (result.elapsed_cycles as f64 * ncpus as f64)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem::{KmemArena, KmemConfig};
    use kmem_baselines::{KmemCookieAlloc, MkAllocator};
    use kmem_vm::SpaceConfig;

    fn cookie_alloc(ncpus: usize) -> KmemCookieAlloc {
        let cfg = KmemConfig::new(ncpus, SpaceConfig::new(32 << 20));
        KmemCookieAlloc::new(KmemArena::new(cfg).unwrap())
    }

    #[test]
    fn cookie_scales_mk_does_not() {
        let c1 = sim_pairs_per_sec(&cookie_alloc(1), 256, 1, 2000, 60);
        let c8 = sim_pairs_per_sec(&cookie_alloc(8), 256, 8, 2000, 60);
        let speedup = c8.pairs_per_sec / c1.pairs_per_sec;
        assert!(speedup > 6.0, "cookie speedup only {speedup:.2}");

        let m1 = sim_pairs_per_sec(&MkAllocator::new(32 << 20, 8192), 256, 1, 2000, 80);
        let m8 = sim_pairs_per_sec(&MkAllocator::new(32 << 20, 8192), 256, 8, 2000, 80);
        let mk_speedup = m8.pairs_per_sec / m1.pairs_per_sec;
        assert!(
            mk_speedup < 2.0,
            "mk speedup {mk_speedup:.2} should plateau"
        );
        assert!(m8.lock_wait_frac > 0.3, "mk at 8 CPUs should mostly wait");
    }
}
