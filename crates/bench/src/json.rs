//! Shared emitter for the `BENCH_*.json` artifacts.
//!
//! The workspace is hermetic (no serde), so the benches hand-roll their
//! JSON; this module is the one place that does it. Every artifact gets
//! the same envelope — `schema` version, `bench` name, RNG `seed` (zero
//! for benches with no randomized workload), and a `config` object
//! holding the knobs the numbers depend on — so a reader can tell at a
//! glance which code vintage and parameters produced a file.

use core::fmt::Write as _;

/// Version stamped into every artifact as `"schema"`. Bump when the
/// envelope itself (not a bench's own fields) changes shape.
pub const SCHEMA_VERSION: u32 = 2;

/// An in-progress JSON object. Keys are emitted in call order; values
/// are limited to what the benches need (numbers, short names, nested
/// objects and arrays-of-objects).
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObj {
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        debug_assert!(!k.contains(['"', '\\']), "keys are plain identifiers");
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{k}\":");
    }

    /// A string value. Values must not need escaping (bench and profile
    /// names are plain identifiers).
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        debug_assert!(
            !v.contains(['"', '\\']),
            "string values must not need escaping"
        );
        self.key(k);
        let _ = write!(self.buf, "\"{v}\"");
        self
    }

    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn usize(&mut self, k: &str, v: usize) -> &mut Self {
        self.u64(k, v as u64)
    }

    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// A float rendered with `prec` decimal places (JSON has no NaN or
    /// infinity; the benches only publish finite measurements).
    pub fn f64(&mut self, k: &str, v: f64, prec: usize) -> &mut Self {
        debug_assert!(v.is_finite(), "artifacts hold finite measurements only");
        self.key(k);
        let _ = write!(self.buf, "{v:.prec$}");
        self
    }

    /// A nested object built by `f`.
    pub fn obj(&mut self, k: &str, f: impl FnOnce(&mut JsonObj)) -> &mut Self {
        self.key(k);
        let mut child = JsonObj::new();
        f(&mut child);
        self.buf.push_str(&child.finish());
        self
    }

    /// An array of objects, one per item, each built by `f`.
    pub fn arr<T>(
        &mut self,
        k: &str,
        items: impl IntoIterator<Item = T>,
        mut f: impl FnMut(T, &mut JsonObj),
    ) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        let mut first = true;
        for item in items {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let mut child = JsonObj::new();
            f(item, &mut child);
            self.buf.push_str(&child.finish());
        }
        self.buf.push(']');
        self
    }

    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

/// A `BENCH_*.json` artifact under construction, with the standard
/// envelope pre-filled.
pub struct BenchReport {
    obj: JsonObj,
}

impl BenchReport {
    /// Starts a report: `schema`, `bench`, and `seed` land first. Pass
    /// `seed = 0` for benches whose workload has no RNG.
    pub fn new(bench: &str, seed: u64) -> Self {
        let mut obj = JsonObj::new();
        obj.u64("schema", SCHEMA_VERSION as u64)
            .str("bench", bench)
            .u64("seed", seed);
        BenchReport { obj }
    }

    /// The `config` block: every knob the numbers depend on.
    pub fn config(mut self, f: impl FnOnce(&mut JsonObj)) -> Self {
        self.obj.obj("config", f);
        self
    }

    /// Direct access for the bench's own result sections.
    pub fn body(&mut self) -> &mut JsonObj {
        &mut self.obj
    }

    /// Renders the artifact to a JSON string.
    pub fn render(self) -> String {
        self.obj.finish()
    }

    /// Writes the artifact to `file` at the workspace root and logs the
    /// path — the single exit every bench shares.
    pub fn write_artifact(self, file: &str) {
        let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, self.render()).unwrap_or_else(|e| panic!("write {file}: {e}"));
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_leads_every_report() {
        let report = BenchReport::new("demo", 42).config(|c| {
            c.usize("threads", 8).f64("budget", 1.5, 1);
        });
        assert_eq!(
            report.render(),
            format!(
                "{{\"schema\":{SCHEMA_VERSION},\"bench\":\"demo\",\"seed\":42,\
                 \"config\":{{\"threads\":8,\"budget\":1.5}}}}"
            )
        );
    }

    #[test]
    fn nested_arrays_and_objects_render_in_order() {
        let mut report = BenchReport::new("demo", 0);
        report.body().arr("results", [1usize, 2], |n, row| {
            row.usize("threads", n).bool("win", n > 1);
        });
        report.body().obj("sim", |s| {
            s.f64("rate", 1234.5678, 0);
        });
        let json = report.render();
        assert!(json.ends_with(
            "\"results\":[{\"threads\":1,\"win\":false},\
             {\"threads\":2,\"win\":true}],\"sim\":{\"rate\":1235}}"
        ));
    }

    #[test]
    fn empty_iterators_render_empty_arrays() {
        let mut obj = JsonObj::new();
        obj.arr("rows", core::iter::empty::<usize>(), |_, _| {});
        assert_eq!(obj.finish(), "{\"rows\":[]}");
    }
}
