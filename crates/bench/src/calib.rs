//! Base-cost calibration for the DES runs.
//!
//! The simulator prices every *shared-memory* event from probes, but the
//! probe-free per-CPU fast path needs a constant. These constants are
//! anchored to the paper's own instruction counts on its 50 MHz 80486
//! ("Instruction Counts" section), including the measured ~40 % driver
//! loop overhead for the fast algorithms:
//!
//! * cookie: 13 + 13 instructions per alloc/free pair → ~60 cycles with
//!   loop overhead;
//! * standard interface: 35 + 32 instructions ("roughly half as fast as
//!   the cookie-based allocator") → ~115 cycles;
//! * MK and oldkma do essentially *all* their work inside the global
//!   lock, so their per-op costs are emitted as in-lock `Work` probe
//!   events by the allocators themselves (25 + 20 cycles for MK's bucket
//!   path; 400 + 410 for oldkma's fits search and coalesce, matching the
//!   paper's 12.5 µs + 8.8 µs nominal at 25 MHz and its measured ~15×
//!   single-CPU gap to the cookie interface). Their `BASE_*` constants
//!   cover only the out-of-lock driver-loop overhead.
//!
//! These are documented model parameters (see DESIGN.md substitutions),
//! not measurements; the *scaling shapes* come entirely from the priced
//! events, not from these constants.

/// Cookie-interface base cycles per alloc/free pair.
pub const BASE_COOKIE: u64 = 60;
/// Standard-interface base cycles per pair.
pub const BASE_NEWKMA: u64 = 115;
/// McKusick–Karels out-of-lock base cycles per pair (all allocator work
/// is priced inside the lock via probe events).
pub const BASE_MK: u64 = 30;
/// oldkma out-of-lock base cycles per pair (as for MK).
pub const BASE_OLDKMA: u64 = 30;

/// The paper's CPU clock for rate conversion.
pub const PAPER_CLOCK_HZ: u64 = 50_000_000;
