//! Observability: per-layer traffic for a mixed workload.
//!
//! The paper's miss-rate methodology generalizes to any workload:
//! "Measuring a particular application's miss rates allows us to estimate
//! that application's allocation overhead without the need for
//! special-purpose hardware." This tool runs a configurable mixed
//! workload and prints, per size class, the complete traffic picture
//! across all four layers — the numbers an operator would use to retune
//! `target`/`gbltarget`.
//!
//! Usage: layer_traffic [--ops N] [--threads N] [--working-set N]

use kmem::{KmemArena, KmemConfig};
use kmem_bench::print_table;
use kmem_vm::SpaceConfig;

struct Args {
    ops: usize,
    threads: usize,
    working_set: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        ops: 500_000,
        threads: 4,
        working_set: 64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ops" => args.ops = it.next().expect("--ops N").parse().expect("number"),
            "--threads" => args.threads = it.next().expect("--threads N").parse().expect("number"),
            "--working-set" => {
                args.working_set = it.next().expect("--working-set N").parse().expect("number")
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let arena = KmemArena::new(KmemConfig::new(args.threads, SpaceConfig::new(64 << 20))).unwrap();

    std::thread::scope(|s| {
        for t in 0..args.threads {
            let arena = arena.clone();
            let ops = args.ops;
            let ws = args.working_set;
            s.spawn(move || {
                let cpu = arena.register_cpu().unwrap();
                let mut held: Vec<(std::ptr::NonNull<u8>, usize)> = Vec::new();
                let mut x = 0xC0FFEEu64 ^ t as u64;
                for _ in 0..ops {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let size = 16usize << (x % 9);
                    if held.len() >= ws {
                        let (p, sz) = held.swap_remove((x as usize) % held.len());
                        // SAFETY: allocated below, freed exactly once.
                        unsafe { cpu.free_sized(p, sz) };
                    }
                    if let Ok(p) = cpu.alloc(size) {
                        held.push((p, size));
                    }
                }
                for (p, sz) in held {
                    // SAFETY: allocated above, freed exactly once.
                    unsafe { cpu.free_sized(p, sz) };
                }
            });
        }
    });

    let snap = arena.snapshot();
    let stats = snap.aggregate();
    let mut rows = Vec::new();
    for c in &stats.classes {
        if c.cpu_alloc.accesses == 0 {
            continue;
        }
        rows.push(vec![
            c.size.to_string(),
            c.cpu_alloc.accesses.to_string(),
            format!("{:.3}%", 100.0 * c.cpu_alloc.miss_rate()),
            format!("{:.3}%", 100.0 * c.cpu_free.miss_rate()),
            c.gbl_alloc.accesses.to_string(),
            format!("{:.3}%", 100.0 * c.gbl_alloc.miss_rate()),
            format!("{:.4}%", 100.0 * c.combined_alloc_miss_rate()),
        ]);
    }
    println!(
        "Layer traffic: {} threads x {} ops, working set {}\n",
        args.threads, args.ops, args.working_set
    );
    print_table(
        &[
            "size",
            "allocs",
            "cpu a-miss",
            "cpu f-miss",
            "gbl gets",
            "gbl a-miss",
            "combined",
        ],
        &rows,
    );
    // Per-CPU view (summed over classes): where each CPU's traffic went,
    // how it was replenished, and how full its caches ran. Skew across
    // rows is itself a finding — the per-class table above can't show it.
    let mut cpu_rows = Vec::new();
    for (cpu, t) in snap.per_cpu_totals().iter().enumerate() {
        cpu_rows.push(vec![
            cpu.to_string(),
            t.alloc.to_string(),
            format!("{:.3}%", 100.0 * t.alloc_layer().miss_rate()),
            t.free.to_string(),
            format!("{:.3}%", 100.0 * t.free_layer().miss_rate()),
            t.refill.to_string(),
            t.refill_short.to_string(),
            t.flushes().to_string(),
            t.flush_blocks.to_string(),
            match t.mean_occupancy() {
                Some(o) => format!("{:.0}%", 100.0 * o),
                None => "-".into(),
            },
        ]);
    }
    println!("\nPer-CPU totals (all classes):\n");
    print_table(
        &[
            "cpu", "allocs", "a-miss", "frees", "f-miss", "refills", "short", "flushes", "fl-blks",
            "occ",
        ],
        &cpu_rows,
    );
    println!(
        "\nphysical frames in use after drain-less run: {} / {}; vmblks live: {}",
        stats.phys_in_use, stats.phys_capacity, stats.vmblks_live
    );
    println!(
        "\nReading the table: 'cpu a-miss' is the fraction of kmem_alloc\n\
         calls that left the per-CPU layer (bound 1/target); 'combined' is\n\
         the fraction that reached the coalescing layers (bound\n\
         1/(target*gbltarget)). Retune targets per class if these approach\n\
         their bounds under your workload."
    );
}
