//! Ablation — sweeping `target` and `gbltarget` (DESIGN.md §5).
//!
//! "The global layer will be accessed at most one time per target-number
//! of accesses. This means that the per-allocation overhead incurred in
//! the global layer may be reduced to any desired level simply by
//! increasing the value of target. The only penalty [...] is the
//! increased amount of memory that will reside in the per-CPU caches."
//!
//! The workload alternates allocation and free bursts (the pattern that
//! maximizes layer crossings) and reports, per `target`: the per-CPU miss
//! rates against the 1/target bound, the combined miss rate against the
//! 1/(target*gbltarget) bound, and the memory resident in caches.
//!
//! Usage: ablation_target [--ops N]

use kmem::{KmemArena, KmemConfig};
use kmem_bench::print_table;
use kmem_vm::SpaceConfig;

fn main() {
    let mut ops: usize = 100_000;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ops" => ops = it.next().expect("--ops N").parse().expect("number"),
            other => panic!("unknown argument {other}"),
        }
    }
    let size = 256usize;
    let mut rows = Vec::new();
    for target in [1usize, 2, 4, 8, 10, 16, 32] {
        let gbltarget = (3 * target).max(3);
        let cfg = KmemConfig::new(1, SpaceConfig::new(32 << 20)).set_all_classes(target, gbltarget);
        let arena = KmemArena::new(cfg).unwrap();
        let cpu = arena.register_cpu().unwrap();
        // Burst pattern: allocate 12*target blocks, free them, repeat —
        // bursts overflow the per-CPU cache (2*target) *and* the global
        // pool (2*gbltarget = 6*target), so every layer boundary sees
        // worst-case traffic down to the coalesce-to-page layer.
        let burst = 12 * target;
        let mut held = Vec::with_capacity(burst);
        let mut done = 0usize;
        while done < ops {
            for _ in 0..burst {
                held.push(cpu.alloc(size).unwrap());
            }
            for p in held.drain(..) {
                // SAFETY: allocated above, freed once.
                unsafe { cpu.free_sized(p, size) };
            }
            done += 2 * burst;
        }
        let stats = arena.stats();
        let c = stats
            .classes
            .iter()
            .find(|c| c.size == size)
            .expect("class exists");
        let cached = cpu.cached_blocks();
        rows.push(vec![
            target.to_string(),
            gbltarget.to_string(),
            format!("{:.3}%", 100.0 * c.cpu_alloc.miss_rate()),
            format!("{:.3}%", 100.0 * (1.0 / target as f64)),
            format!("{:.4}%", 100.0 * c.combined_alloc_miss_rate()),
            format!("{:.4}%", 100.0 / (target as f64 * gbltarget as f64)),
            format!("{}", cached * size),
        ]);
    }
    println!("Ablation: target / gbltarget sweep ({size}-byte class, burst workload)\n");
    print_table(
        &[
            "target",
            "gbltarget",
            "cpu miss",
            "bound 1/t",
            "combined miss",
            "bound 1/(t*g)",
            "cached bytes",
        ],
        &rows,
    );
    println!(
        "\nExpected: miss rates track their bounds downward as target grows,\n\
         while per-CPU cached memory grows — the paper's stated tradeoff."
    );
}
