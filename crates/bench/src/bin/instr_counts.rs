//! E2 — the Instruction Counts section, as measurable path lengths.
//!
//! The paper counts 13 + 13 80x86 instructions for the cookie interface,
//! 35 + 32 for the standard interface, and 16 VAX instructions for MK's
//! free. Instruction counts do not transfer across 30 years of ISAs, but
//! the *ordering and ratios* do: cookie < standard ≈ 2× cookie; MK's
//! single-CPU fast path competitive; oldkma far behind. This harness
//! measures real single-thread ns/op for each interface's steady-state
//! fast path and prints them next to the paper's counts.
//!
//! Usage: instr_counts [--iters N]

use kmem::{KmemArena, KmemConfig};
use kmem_baselines::{KernelAllocator, KmemCookieAlloc, KmemStdAlloc, MkAllocator, OldKma};
use kmem_bench::{print_table, time_loop};
use kmem_smp::probe::{self, ProbeEvent};

/// Counts the shared-memory transactions (lock RMWs + shared-line
/// touches) one warm alloc/free pair performs — the probe-level analogue
/// of the paper's "a single additional memory reference is required in
/// order to handle multiple processors".
fn shared_footprint<A: KernelAllocator>(alloc: &A, size: usize) -> (usize, usize) {
    let mut ctx = alloc.register();
    let prep = alloc.prepare(size);
    for _ in 0..64 {
        let p = alloc.alloc(&mut ctx, prep).unwrap();
        // SAFETY: allocated above with the same prep.
        unsafe { alloc.free(&mut ctx, p, prep) };
    }
    let ((), events) = probe::record(|| {
        let p = alloc.alloc(&mut ctx, prep).unwrap();
        // SAFETY: allocated above with the same prep.
        unsafe { alloc.free(&mut ctx, p, prep) };
    });
    let locks = events
        .iter()
        .filter(|e| matches!(e, ProbeEvent::LockAcquire { .. }))
        .count();
    let lines = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                ProbeEvent::LineRead { .. }
                    | ProbeEvent::LineWrite { .. }
                    | ProbeEvent::LineRmw { .. }
            )
        })
        .count();
    (locks, lines)
}

fn measure_pair<A: KernelAllocator>(alloc: &A, size: usize, iters: u64) -> f64 {
    let mut ctx = alloc.register();
    let prep = alloc.prepare(size);
    // Warm the caches and the per-CPU layer.
    for _ in 0..1000 {
        let p = alloc.alloc(&mut ctx, prep).unwrap();
        // SAFETY: allocated above with the same prep.
        unsafe { alloc.free(&mut ctx, p, prep) };
    }
    time_loop(iters, || {
        let p = alloc.alloc(&mut ctx, prep).unwrap();
        std::hint::black_box(p);
        // SAFETY: allocated above with the same prep.
        unsafe { alloc.free(&mut ctx, p, prep) };
    })
}

fn main() {
    let mut iters: u64 = 2_000_000;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => iters = it.next().expect("--iters N").parse().expect("number"),
            other => panic!("unknown argument {other}"),
        }
    }
    let size = 256;
    let cookie = KmemCookieAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
    let newkma = KmemStdAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
    let mk = MkAllocator::new(16 << 20, 4096);
    let old = OldKma::new(16 << 20, 4096);

    let t_cookie = measure_pair(&cookie, size, iters);
    let t_newkma = measure_pair(&newkma, size, iters);
    let t_mk = measure_pair(&mk, size, iters);
    let t_old = measure_pair(&old, size, iters / 4);

    println!("Single-CPU fast-path cost per alloc/free pair ({size}-byte blocks)\n");
    let row = |name: &str, paper: &str, t: f64| {
        vec![
            name.to_string(),
            paper.to_string(),
            format!("{t:.1}"),
            format!("{:.2}x", t / t_cookie),
        ]
    };
    print_table(
        &[
            "interface",
            "paper instr (alloc+free)",
            "ns/pair",
            "vs cookie",
        ],
        &[
            row("cookie", "13 + 13", t_cookie),
            row("newkma (standard)", "35 + 32", t_newkma),
            row("mk (+global lock)", "~16 VAX each", t_mk),
            row("oldkma (fast fits)", "n/a (12.5+8.8 us nominal)", t_old),
        ],
    );

    println!("\nShared-memory transactions per warm pair (probed):");
    let fp = |name: &str, locks: usize, lines: usize| {
        vec![name.to_string(), locks.to_string(), lines.to_string()]
    };
    let (l1, n1) = shared_footprint(&cookie, size);
    let (l2, n2) = shared_footprint(&newkma, size);
    let (l3, n3) = shared_footprint(&mk, size);
    let (l4, n4) = shared_footprint(&old, size);
    print_table(
        &["interface", "lock RMWs", "shared-line touches"],
        &[
            fp("cookie", l1, n1),
            fp("newkma", l2, n2),
            fp("mk", l3, n3),
            fp("oldkma", l4, n4),
        ],
    );
    println!(
        "The new allocator's steady-state fast path performs zero shared\n\
         transactions; both baselines take a global lock on every operation."
    );

    println!("\nPaper shape checks:");
    println!(
        "  standard within ~1.5x-3x of cookie: measured {:.2}x",
        t_newkma / t_cookie
    );
    println!(
        "  oldkma far behind cookie:          measured {:.1}x (paper: 15x on its hardware)",
        t_old / t_cookie
    );
    println!(
        "\nNote: 80486 instruction counts do not transfer to this host; the\n\
         reproduced claim is the ordering and the rough ratios."
    );
}
