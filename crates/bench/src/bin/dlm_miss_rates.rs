//! E6 — the Distributed Lock Manager benchmark: per-layer miss rates.
//!
//! "We define the miss rate at a given layer as the fraction of accesses
//! to that layer that require the services of a higher layer." The paper
//! reports, for the DLM workload: per-CPU layer misses of 2.1 % (frees of
//! 256-byte blocks) to 7.8 % (allocations of 512-byte blocks), global
//! layer misses of 1.2 % to 3.0 %, and combined misses of 0.02 % to
//! 0.14 % — all comfortably below the worst-case bounds of 10 %
//! (1/target), 6.7 % (1/gbltarget), and 0.67 %.
//!
//! This harness runs the lock-manager workload on several CPUs and prints
//! the same table from the allocator's layer statistics.
//!
//! Usage: dlm_miss_rates [--threads N] [--ops N] [--resources N]

use std::sync::Arc;

use kmem::{KmemArena, KmemConfig};
use kmem_bench::print_table;
use kmem_dlm::workload::{run_worker, SharedLocks, WorkloadConfig};
use kmem_dlm::Dlm;
use kmem_vm::SpaceConfig;

struct Args {
    threads: usize,
    ops: usize,
    resources: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 4,
        ops: 200_000,
        resources: 512,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => args.threads = it.next().expect("--threads N").parse().expect("number"),
            "--ops" => args.ops = it.next().expect("--ops N").parse().expect("number"),
            "--resources" => {
                args.resources = it.next().expect("--resources N").parse().expect("number")
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn pct(x: f64) -> String {
    format!("{:.3}%", 100.0 * x)
}

fn main() {
    let args = parse_args();
    let arena = KmemArena::new(KmemConfig::new(args.threads, SpaceConfig::new(64 << 20))).unwrap();
    let dlm = Dlm::new(arena.clone(), 256);
    println!(
        "DLM miss-rate benchmark: {} workers x {} ops over {} resources",
        args.threads, args.ops, args.resources
    );

    let shared = SharedLocks::new();
    std::thread::scope(|s| {
        for t in 0..args.threads {
            let dlm = Arc::clone(&dlm);
            let arena = arena.clone();
            let shared = &shared;
            let cfg = WorkloadConfig {
                resources: args.resources,
                ops: args.ops,
                working_set: 256,
                burst: 24,
                seed: 0xD1_5C0,
            };
            s.spawn(move || {
                let cpu = arena.register_cpu().unwrap();
                let report = run_worker(&dlm, &cpu, shared, cfg, t as u64);
                let _ = report;
            });
        }
    });

    let snap = arena.snapshot();
    let stats = snap.aggregate();
    let mut rows = Vec::new();
    for c in &stats.classes {
        if c.cpu_alloc.accesses == 0 {
            continue;
        }
        rows.push(vec![
            c.size.to_string(),
            c.cpu_alloc.accesses.to_string(),
            pct(c.cpu_alloc.miss_rate()),
            pct(c.cpu_free.miss_rate()),
            pct(c.gbl_alloc.miss_rate()),
            pct(c.gbl_free.miss_rate()),
            pct(c.combined_alloc_miss_rate()),
            pct(c.combined_free_miss_rate()),
        ]);
    }
    println!();
    print_table(
        &[
            "size",
            "allocs",
            "cpu alloc miss",
            "cpu free miss",
            "gbl alloc miss",
            "gbl free miss",
            "combined alloc",
            "combined free",
        ],
        &rows,
    );

    // The paper's table is an average over CPUs; the per-CPU breakdown
    // shows whether any single CPU runs hot against the 1/target bound
    // (lock-master skew does exactly that in a real DLM).
    let mut cpu_rows = Vec::new();
    for cs in &snap.classes {
        let class_total: u64 = cs.per_cpu.iter().map(|c| c.alloc).sum();
        if class_total == 0 {
            continue;
        }
        for (cpu, c) in cs.per_cpu.iter().enumerate() {
            if c.alloc == 0 && c.free == 0 {
                continue;
            }
            cpu_rows.push(vec![
                cs.size.to_string(),
                cpu.to_string(),
                c.alloc.to_string(),
                pct(c.alloc_layer().miss_rate()),
                pct(c.free_layer().miss_rate()),
                c.refill.to_string(),
                c.refill_short.to_string(),
                match c.mean_occupancy() {
                    Some(o) => format!("{:.0}%", 100.0 * o),
                    None => "-".into(),
                },
            ]);
        }
    }
    println!("\nPer-CPU breakdown (bound on each alloc/free miss rate: 1/target):\n");
    print_table(
        &[
            "size",
            "cpu",
            "allocs",
            "alloc miss",
            "free miss",
            "refills",
            "short",
            "occ",
        ],
        &cpu_rows,
    );

    println!("\nWorst-case bounds and paper-reported ranges (256/512-byte classes):");
    println!("  per-CPU layer : bound 1/target       paper 2.1% - 7.8%");
    println!("  global layer  : bound 1/gbltarget    paper 1.2% - 3.0%");
    println!("  combined      : bound 0.67%          paper 0.02% - 0.14%");
    println!("\nDLM record classes: LKB -> 256 bytes, RSB -> 512 bytes.");
    println!(
        "Lock ops: {} grants, {} waits, {} promotions, {} converts",
        dlm.stats().grants.get(),
        dlm.stats().waits.get(),
        dlm.stats().promotions.get(),
        dlm.stats().converts.get(),
    );
}
