//! Ablation — radix-sorted page lists vs an unsorted page list
//! (DESIGN.md §5).
//!
//! "Pages that have some blocks in use are placed on a radix-sorted
//! freelist so that pages with the fewest free blocks will be allocated
//! from most frequently. This sorting has the benefit of allowing pages
//! that have only a few in-use blocks more time to gather them" — i.e.
//! live blocks concentrate onto few pages, sparse pages drain completely,
//! and their frames return to the system.
//!
//! The classic fragmentation experiment: build a large population, shrink
//! it to 20 % (the paper's day/night workload shift), then keep churning
//! the survivors in bursts. With radix sorting, replacements are steered
//! to the fullest pages, so pages polarize into full and empty — and the
//! empty ones are released. The ablation uses the inverse policy —
//! allocate from the page with the *most* free blocks, which minimizes
//! page visits per refill (a tempting "optimization") but keeps every
//! page partially live forever. Metric: frames claimed at the end.
//!
//! Usage: ablation_radix [--blocks N] [--steps N]

use kmem::{KmemArena, KmemConfig};
use kmem_bench::print_table;
use kmem_testkit::Rng;
use kmem_vm::SpaceConfig;

fn run(radix: bool, blocks: usize, steps: usize) -> (usize, usize) {
    let mut cfg = KmemConfig::new(1, SpaceConfig::new(64 << 20));
    cfg.radix_pages = radix;
    let arena = KmemArena::new(cfg).unwrap();
    let cpu = arena.register_cpu().unwrap();
    let size = 64usize;
    let mut rng = Rng::new(0xAB1A7E);

    // Phase 1: build the full population. Phase 2: the workload shrinks
    // (the paper's day/night shift) — free a random 80 %. Phase 3: churn
    // the surviving working set; whether the shrunken set re-packs into
    // few pages is exactly what the page policy decides.
    let mut held: Vec<_> = (0..blocks).map(|_| cpu.alloc(size).unwrap()).collect();
    let peak = arena.space().phys().in_use();
    for _ in 0..blocks * 4 / 5 {
        let idx = rng.index(held.len());
        let victim = held.swap_remove(idx);
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free_sized(victim, size) };
    }
    // Churn in bursts large enough to flow through the per-CPU cache and
    // global pool down to the page layer — 1:1 alloc/free churn would be
    // absorbed entirely by the caching layers and never consult the page
    // policy at all.
    let burst = 128usize;
    let mut step = 0usize;
    while step < steps {
        for _ in 0..burst {
            let idx = rng.index(held.len());
            let victim = held.swap_remove(idx);
            // SAFETY: allocated above, freed once.
            unsafe { cpu.free_sized(victim, size) };
        }
        for _ in 0..burst {
            held.push(cpu.alloc(size).unwrap());
        }
        step += burst;
    }
    cpu.flush();
    arena.reclaim();
    let frames = arena.space().phys().in_use();
    // Cleanup.
    for p in held {
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free_sized(p, size) };
    }
    (frames, peak)
}

fn main() {
    let mut blocks: usize = 50_000;
    let mut steps: usize = 500_000;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--blocks" => blocks = it.next().expect("--blocks N").parse().expect("number"),
            "--steps" => steps = it.next().expect("--steps N").parse().expect("number"),
            other => panic!("unknown argument {other}"),
        }
    }
    // After the shrink phase a fifth of the blocks survive.
    let ideal = (blocks / 5) * 64 / 4096;
    let (radix_frames, peak) = run(true, blocks, steps);
    let (unsorted_frames, _) = run(false, blocks, steps);
    println!(
        "Ablation: radix-sorted page lists vs unsorted (64-byte class,\n\
         {blocks} live blocks churned for {steps} steps; ideal packing = {ideal} frames)\n"
    );
    print_table(
        &["policy", "frames claimed after churn", "peak frames"],
        &[
            vec![
                "radix (paper)".into(),
                radix_frames.to_string(),
                peak.to_string(),
            ],
            vec![
                "most-free-first".into(),
                unsorted_frames.to_string(),
                peak.to_string(),
            ],
        ],
    );
    println!(
        "\nExpected: the radix policy re-packs the shrunken working set near\n\
         the ideal frame count, while most-free-first smears live blocks\n\
         across pages that then can never drain."
    );
}
