//! E1 — the Analysis section: why allocb/freeb ran 4-5x slower than
//! instruction counts predicted.
//!
//! The paper captured logic-analyzer traces of the STREAMS allocator over
//! the old global allocator on a 2-CPU 25 MHz Sequent S2000/200:
//!
//! * allocb: 12.5 µs nominal vs 28–198 µs measured (avg 64.2 µs); in one
//!   64.76 µs trace the worst 19 of 304 off-chip accesses (6.3 %) took
//!   57.6 % of the time, the worst 31 (10.2 %) took 68.4 %.
//! * freeb: 8.8 µs nominal vs 16–176 µs (avg 48.7 µs); worst 28 of 322
//!   (8.6 %) took 50.6 %, worst 74 (23.0 %) took 80.3 %.
//!
//! Here the logic analyzer is replaced by the MESI cost model: two
//! virtual CPUs alternate the documented access pattern of a
//! lock-protected allocator, and the same statistics are computed. The
//! claim being reproduced is the *shape*: a handful of remote-cache
//! accesses dominates elapsed time, making the op several times slower
//! than its instruction count predicts.

use kmem_bench::print_table;
use kmem_sim::analysis::{allocb_pattern, freeb_pattern, profile_two_cpu};
use kmem_sim::CostModel;

/// The paper's 25 MHz clock for µs conversion.
const CLOCK_MHZ: f64 = 25.0;

fn us(cycles: u64) -> String {
    format!("{:.1}", cycles as f64 / CLOCK_MHZ)
}

fn main() {
    let cost = CostModel::default();
    // Pattern sizes chosen to match the paper's traced access counts
    // (304 for allocb, 322 for freeb).
    let allocb = profile_two_cpu(&allocb_pattern(287), 3, cost);
    let freeb = profile_two_cpu(&freeb_pattern(308), 3, cost);

    println!("Analysis-section reproduction (2 CPUs, MESI cost model, 25 MHz scale)\n");
    let rows = vec![
        vec![
            "allocb".into(),
            allocb.accesses.to_string(),
            allocb.off_chip.to_string(),
            us(allocb.nominal_cycles),
            us(allocb.elapsed_cycles),
            format!("{:.1}x", allocb.slowdown()),
        ],
        vec![
            "freeb".into(),
            freeb.accesses.to_string(),
            freeb.off_chip.to_string(),
            us(freeb.nominal_cycles),
            us(freeb.elapsed_cycles),
            format!("{:.1}x", freeb.slowdown()),
        ],
    ];
    print_table(
        &[
            "op",
            "accesses",
            "off-chip",
            "nominal us",
            "measured us",
            "slowdown",
        ],
        &rows,
    );

    println!("\nShare of elapsed time taken by the worst off-chip accesses:");
    let rows = vec![
        vec![
            "allocb".into(),
            format!("{:.1}%", 100.0 * allocb.worst_offchip_share(0.063)),
            "57.6%".into(),
            format!("{:.1}%", 100.0 * allocb.worst_offchip_share(0.102)),
            "68.4%".into(),
        ],
        vec![
            "freeb".into(),
            format!("{:.1}%", 100.0 * freeb.worst_offchip_share(0.086)),
            "50.6%".into(),
            format!("{:.1}%", 100.0 * freeb.worst_offchip_share(0.230)),
            "80.3%".into(),
        ],
    ];
    print_table(
        &[
            "op",
            "worst 6.3%/8.6%",
            "paper",
            "worst 10.2%/23.0%",
            "paper",
        ],
        &rows,
    );

    println!(
        "\nShape reproduced: {} and {} accesses leave the chip (paper: 304\n\
         and 322), most hitting the board cache cheaply, while the worst\n\
         few percent — the lock word and shared allocator state bouncing\n\
         between the two CPUs' caches — consume the bulk of the elapsed\n\
         time, and the ops run several times slower than their instruction\n\
         counts predict. This is the observation that motivated the\n\
         per-CPU design. (Paper: allocb 12.5 us nominal vs 64.2 us avg.)",
        allocb.off_chip, freeb.off_chip
    );
}
