//! E5/E7 — Figure 9: the worst-case benchmark.
//!
//! "This is accomplished by allocating blocks of a given size until memory
//! is exhausted, freeing them all, then repeating the process with the
//! next-larger size. [...] an allocator that does no coalescing would fail
//! to complete this benchmark, having permanently fragmented all available
//! memory into the smallest possible blocks."
//!
//! The default run drives the new allocator (standard interface, real
//! wall-clock timing; the upper layers dominate, so per-CPU calibration
//! is irrelevant) across the paper's block sizes and beyond a page. After
//! every size pass the harness verifies that every physical frame came
//! back — the paper's "neither reboots nor delays" claim — and prints
//! alloc/free/pair rates per block size.
//!
//! `--allocator mk` runs the same sweep against McKusick–Karels and
//! reports how it strands memory (E7).
//!
//! Usage: fig9 [--allocator kmem|mk] [--phys-mb N]

use std::time::Instant;

use kmem::{verify, AllocError, KmemArena, KmemConfig};
use kmem_baselines::MkAllocator;
use kmem_bench::print_table;
use kmem_vm::SpaceConfig;

struct Args {
    allocator: String,
    phys_mb: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        allocator: "kmem".into(),
        phys_mb: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--allocator" => args.allocator = it.next().expect("--allocator NAME"),
            "--phys-mb" => args.phys_mb = it.next().expect("--phys-mb N").parse().expect("number"),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

const SIZES: &[usize] = &[16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

fn run_kmem(phys_mb: usize) {
    let phys_pages = (phys_mb << 20) >> 12;
    let arena = KmemArena::new(KmemConfig::new(
        1,
        SpaceConfig::new(256 << 20).phys_pages(phys_pages),
    ))
    .unwrap();
    let cpu = arena.register_cpu().unwrap();
    // Warm the host pages once (the first touch of each lazily committed
    // frame would otherwise be charged to the first size pass).
    {
        let mut held = Vec::new();
        while let Ok(p) = cpu.alloc(4096) {
            held.push(p);
        }
        for p in held {
            // SAFETY: allocated above, freed once.
            unsafe { cpu.free_sized(p, 4096) };
        }
        cpu.flush();
        arena.reclaim();
    }
    let mut rows = Vec::new();
    for &size in SIZES {
        let mut n = 0usize;
        let mut alloc_secs = 0.0f64;
        let mut free_secs = 0.0f64;
        // Few blocks fit at large sizes; repeat those passes more so each
        // cell aggregates a comparable amount of work.
        let reps = (500_000 / ((phys_mb << 20) / size).max(1)).clamp(3, 400);
        for _ in 0..reps {
            // Allocate until memory is exhausted.
            let t0 = Instant::now();
            let mut held = Vec::new();
            loop {
                match cpu.alloc(size) {
                    Ok(p) => held.push(p),
                    Err(AllocError::OutOfMemory { .. }) => break,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            alloc_secs += t0.elapsed().as_secs_f64();
            n = held.len();
            assert!(n > 0, "no memory at size {size}");
            // Free them all.
            let t1 = Instant::now();
            for p in held {
                // SAFETY: allocated above, freed once.
                unsafe { cpu.free_sized(p, size) };
            }
            free_secs += t1.elapsed().as_secs_f64();
            // The paper's claim: no reboot, no sleep — the next size simply
            // works because coalescing is online. We additionally verify
            // the stronger invariant that a flush+reclaim returns every
            // frame.
            cpu.flush();
            arena.reclaim();
            verify::verify_empty(&arena);
        }
        let total = (reps * n) as f64;
        rows.push(vec![
            size.to_string(),
            n.to_string(),
            format!("{:.3e}", total / alloc_secs),
            format!("{:.3e}", total / free_secs),
            format!("{:.3e}", total / (alloc_secs + free_secs)),
        ]);
    }
    println!("\nFigure 9 (kmem): worst-case sweep, phys pool {phys_mb} MB");
    print_table(
        &["size", "blocks", "allocs/sec", "frees/sec", "pairs/sec"],
        &rows,
    );
    println!(
        "\nAll {} size passes completed with full coalescing (every physical\n\
         frame verified returned after each pass): no reboot, no sleep.",
        SIZES.len()
    );
}

fn run_mk(phys_mb: usize) {
    let phys_pages = (phys_mb << 20) >> 12;
    let mk = MkAllocator::new(256 << 20, phys_pages);
    let mut rows = Vec::new();
    for &size in SIZES {
        let mut held = Vec::new();
        let t0 = Instant::now();
        while let Some(p) = mk.malloc(size) {
            held.push(p);
        }
        let t_alloc = t0.elapsed();
        let n = held.len();
        let t1 = Instant::now();
        for p in held {
            // SAFETY: allocated above, freed once.
            unsafe { mk.free(p) };
        }
        let t_free = t1.elapsed();
        let stranded = mk.space().phys().in_use();
        rows.push(vec![
            size.to_string(),
            n.to_string(),
            if n == 0 {
                "-".into()
            } else {
                format!("{:.3e}", n as f64 / (t_alloc + t_free).as_secs_f64())
            },
            stranded.to_string(),
        ]);
    }
    println!("\nFigure 9 sweep against McKusick–Karels (E7): phys pool {phys_mb} MB");
    print_table(
        &["size", "blocks", "pairs/sec", "frames stranded after free"],
        &rows,
    );
    println!(
        "\nMK dedicates pages to their first bucket forever: after the first\n\
         pass, later sizes allocate zero blocks because every frame stays\n\
         stranded - the paper's point that a non-coalescing allocator\n\
         cannot complete this benchmark without a reboot."
    );
}

fn main() {
    let args = parse_args();
    match args.allocator.as_str() {
        "kmem" => run_kmem(args.phys_mb),
        "mk" => run_mk(args.phys_mb),
        other => panic!("unknown allocator {other} (use kmem|mk)"),
    }
}
