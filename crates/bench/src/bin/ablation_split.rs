//! Ablation — split (`main`/`aux`) freelist vs a single bounded list
//! (DESIGN.md §5).
//!
//! The split freelist moves blocks between layers in O(1) chain moves;
//! a single bounded list must *walk* `target` links to split off a chain
//! on every overflow ("Blocks are moved in target-sized groups,
//! preventing unnecessary linked-list operations"), and it loses the
//! hysteresis that keeps a free-burst from touching the global layer
//! more than once per `target` frees.
//!
//! Usage: ablation_split [--ops N]

use std::time::Instant;

use kmem::{KmemArena, KmemConfig};
use kmem_bench::print_table;
use kmem_vm::SpaceConfig;

fn run(split: bool, ops: usize, target: usize) -> (f64, f64) {
    let cfg = KmemConfig::new(1, SpaceConfig::new(32 << 20)).set_all_classes(target, 3 * target);
    let mut cfg = cfg;
    cfg.split_freelist = split;
    let arena = KmemArena::new(cfg).unwrap();
    let cpu = arena.register_cpu().unwrap();
    let size = 128usize;
    let burst = 3 * target;
    let mut held = Vec::with_capacity(burst);
    let start = Instant::now();
    let mut done = 0usize;
    while done < ops {
        for _ in 0..burst {
            held.push(cpu.alloc(size).unwrap());
        }
        for p in held.drain(..) {
            // SAFETY: allocated above, freed once.
            unsafe { cpu.free_sized(p, size) };
        }
        done += 2 * burst;
    }
    let ns_per_op = start.elapsed().as_nanos() as f64 / done as f64;
    let stats = arena.stats();
    let c = stats.classes.iter().find(|c| c.size == size).unwrap();
    (ns_per_op, c.cpu_free.miss_rate())
}

fn main() {
    let mut ops: usize = 2_000_000;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ops" => ops = it.next().expect("--ops N").parse().expect("number"),
            other => panic!("unknown argument {other}"),
        }
    }
    let mut rows = Vec::new();
    for target in [4usize, 10, 32] {
        let (split_ns, split_miss) = run(true, ops, target);
        let (single_ns, single_miss) = run(false, ops, target);
        rows.push(vec![
            target.to_string(),
            format!("{split_ns:.1}"),
            format!("{single_ns:.1}"),
            format!("{:.2}x", single_ns / split_ns),
            format!("{:.3}%", 100.0 * split_miss),
            format!("{:.3}%", 100.0 * single_miss),
        ]);
    }
    println!("Ablation: split freelist vs single bounded list (burst workload)\n");
    print_table(
        &[
            "target",
            "split ns/op",
            "single ns/op",
            "single/split",
            "split free-miss",
            "single free-miss",
        ],
        &rows,
    );
    println!(
        "\nExpected: the single list pays an O(target) walk per overflow,\n\
         so its ns/op grows with target while the split list's does not."
    );
}
