//! E3/E4 — Figures 7 and 8: alloc/free pairs per second vs CPUs.
//!
//! Reproduces the paper's best-case benchmark (a loop that invokes
//! kmem_alloc to allocate a buffer, then invokes kmem_free to immediately
//! deallocate this same buffer") for the four allocators of Figure 7:
//! the cookie interface, the standard interface ("newkma"), the naive
//! parallelization of McKusick–Karels, and "oldkma" (Fast Fits).
//!
//! By default the workload runs on the discrete-event SMP simulator
//! (1..=25 virtual CPUs, 50 MHz 80486 cost model — see DESIGN.md's
//! hardware substitution note). With `--threads` it instead runs real OS
//! threads for wall-clock rates on a real SMP host.
//!
//! Usage: fig7 [--ops N] [--size BYTES] [--max-cpus N] [--threads]

use std::time::Duration;

use kmem::{KmemArena, KmemConfig};
use kmem_baselines::{KmemCookieAlloc, KmemStdAlloc, MkAllocator, OldKma};
use kmem_bench::{
    ascii_chart, print_table, sim_pairs_per_sec, thread_pairs_per_sec, Series, BASE_COOKIE,
    BASE_MK, BASE_NEWKMA, BASE_OLDKMA,
};
use kmem_vm::SpaceConfig;

struct Args {
    ops: u64,
    size: usize,
    max_cpus: usize,
    threads: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        ops: 5_000,
        size: 256,
        max_cpus: 25,
        threads: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ops" => args.ops = it.next().expect("--ops N").parse().expect("number"),
            "--size" => args.size = it.next().expect("--size B").parse().expect("number"),
            "--max-cpus" => {
                args.max_cpus = it.next().expect("--max-cpus N").parse().expect("number")
            }
            "--threads" => args.threads = true,
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn cpu_counts(max: usize) -> Vec<usize> {
    [1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 25]
        .into_iter()
        .filter(|&c| c <= max)
        .collect()
}

fn kmem_arena(ncpus: usize) -> KmemArena {
    KmemArena::new(KmemConfig::new(ncpus, SpaceConfig::new(64 << 20))).unwrap()
}

fn run_series(args: &Args, name: &str, f: impl Fn(usize) -> f64) -> Series {
    let points = cpu_counts(args.max_cpus)
        .into_iter()
        .map(|n| (n as f64, f(n)))
        .collect();
    Series {
        name: name.into(),
        points,
    }
}

fn main() {
    let args = parse_args();
    println!(
        "Figure 7/8 reproduction: best-case alloc/free pairs of {} bytes, {} mode",
        args.size,
        if args.threads {
            "real-thread"
        } else {
            "simulated-SMP (50 MHz 80486 cost model)"
        }
    );

    let series: Vec<Series> = if args.threads {
        let dur = Duration::from_millis(300);
        vec![
            run_series(&args, "cookie", |n| {
                let a = KmemCookieAlloc::new(kmem_arena(n));
                thread_pairs_per_sec(&a, args.size, n, dur)
            }),
            run_series(&args, "newkma", |n| {
                let a = KmemStdAlloc::new(kmem_arena(n));
                thread_pairs_per_sec(&a, args.size, n, dur)
            }),
            run_series(&args, "mk", |n| {
                let a = MkAllocator::new(64 << 20, 16384);
                thread_pairs_per_sec(&a, args.size, n, dur)
            }),
            run_series(&args, "oldkma", |n| {
                let a = OldKma::new(64 << 20, 16384);
                thread_pairs_per_sec(&a, args.size, n, dur)
            }),
        ]
    } else {
        vec![
            run_series(&args, "cookie", |n| {
                let a = KmemCookieAlloc::new(kmem_arena(n));
                sim_pairs_per_sec(&a, args.size, n, args.ops, BASE_COOKIE).pairs_per_sec
            }),
            run_series(&args, "newkma", |n| {
                let a = KmemStdAlloc::new(kmem_arena(n));
                sim_pairs_per_sec(&a, args.size, n, args.ops, BASE_NEWKMA).pairs_per_sec
            }),
            run_series(&args, "mk", |n| {
                let a = MkAllocator::new(64 << 20, 16384);
                sim_pairs_per_sec(&a, args.size, n, args.ops, BASE_MK).pairs_per_sec
            }),
            run_series(&args, "oldkma", |n| {
                let a = OldKma::new(64 << 20, 16384);
                sim_pairs_per_sec(&a, args.size, n, args.ops, BASE_OLDKMA).pairs_per_sec
            }),
        ]
    };

    // The Figure 7 data as a table.
    let mut rows = Vec::new();
    for (i, &n) in cpu_counts(args.max_cpus).iter().enumerate() {
        let mut row = vec![n.to_string()];
        for s in &series {
            row.push(format!("{:.3e}", s.points[i].1));
        }
        rows.push(row);
    }
    println!();
    print_table(&["CPUs", "cookie", "newkma", "mk", "oldkma"], &rows);

    ascii_chart("Figure 7 (linear): pairs/sec vs CPUs", &series, false);
    ascii_chart("Figure 8 (semilog): pairs/sec vs CPUs", &series, true);

    // E8 headline ratios.
    let at = |s: &Series, n: f64| {
        s.points
            .iter()
            .find(|p| p.0 == n)
            .map(|p| p.1)
            .unwrap_or(f64::NAN)
    };
    let last = cpu_counts(args.max_cpus).last().copied().unwrap() as f64;
    let cookie = &series[0];
    let newkma = &series[1];
    let oldkma = &series[3];
    println!("\nHeadline ratios (paper: ~15x at 1 CPU, >1000x at 25; standard ~ 1/2 cookie):");
    println!(
        "  cookie/oldkma @ 1 CPU : {:8.1}x",
        at(cookie, 1.0) / at(oldkma, 1.0)
    );
    println!(
        "  cookie/oldkma @ {last:.0} CPUs: {:8.1}x",
        at(cookie, last) / at(oldkma, last)
    );
    println!(
        "  newkma/cookie @ {last:.0} CPUs: {:8.2}",
        at(newkma, last) / at(cookie, last)
    );
    println!(
        "  cookie speedup 1 -> {last:.0}  : {:8.1}x (linear would be {last:.0}x)",
        at(cookie, last) / at(cookie, 1.0)
    );
}
