//! Shared harness code for the paper's experiments.
//!
//! Each binary in `src/bin/` regenerates one table or figure (see
//! `DESIGN.md` §4 for the experiment index); this library holds the
//! pieces they share: DES drivers for the four allocators, real-thread
//! throughput measurement, base-cost calibration, and plain-text
//! table/chart rendering.

pub mod calib;
pub mod drivers;
pub mod json;
pub mod measure;
pub mod report;

pub use calib::*;
pub use drivers::{sim_pairs_per_sec, SimPoint};
pub use json::{BenchReport, JsonObj};
pub use measure::{arena_contended_pair_ns, bench_ns, thread_pairs_per_sec, time_loop};
pub use report::{ascii_chart, print_table, Series};
