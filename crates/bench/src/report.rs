//! Plain-text tables and ASCII charts for the figure harnesses.

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points, ascending x.
    pub points: Vec<(f64, f64)>,
}

/// Prints an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Renders series as a fixed-size ASCII chart (the reproduction's stand-in
/// for the paper's gnuplot figures). `log_y` selects the Figure-8 semilog
/// view.
pub fn ascii_chart(title: &str, series: &[Series], log_y: bool) {
    const W: usize = 64;
    const H: usize = 20;
    let marks = ['*', '+', 'o', 'x', '#', '@'];
    let mut xmin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    let ty = |y: f64| if log_y { y.max(1.0).log10() } else { y };
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(ty(y));
            ymax = ymax.max(ty(y));
        }
    }
    if !xmin.is_finite() || xmax <= xmin {
        return;
    }
    if !log_y {
        ymin = 0.0;
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; W]; H];
    for (si, s) in series.iter().enumerate() {
        for &(x, y) in &s.points {
            let col = ((x - xmin) / (xmax - xmin) * (W - 1) as f64).round() as usize;
            let row = ((ty(y) - ymin) / (ymax - ymin) * (H - 1) as f64).round() as usize;
            grid[H - 1 - row][col] = marks[si % marks.len()];
        }
    }
    println!("\n{title}");
    let ylab = |v: f64| {
        if log_y {
            format!("1e{v:.1}")
        } else {
            format!("{v:.2e}")
        }
    };
    println!("  {} (top)", ylab(ymax));
    for row in grid {
        println!("  |{}", row.iter().collect::<String>());
    }
    println!("  +{}", "-".repeat(W));
    println!(
        "  {}  x: {} .. {} CPUs   y-floor: {}",
        series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}={}", marks[i % marks.len()], s.name))
            .collect::<Vec<_>>()
            .join("  "),
        xmin,
        xmax,
        ylab(ymin),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            &["a", "bee"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn chart_handles_linear_and_log() {
        let s = vec![
            Series {
                name: "one".into(),
                points: (1..=25).map(|x| (x as f64, 1000.0 * x as f64)).collect(),
            },
            Series {
                name: "flat".into(),
                points: (1..=25).map(|x| (x as f64, 500.0)).collect(),
            },
        ];
        ascii_chart("test linear", &s, false);
        ascii_chart("test semilog", &s, true);
    }

    #[test]
    fn chart_tolerates_degenerate_input() {
        ascii_chart("empty", &[], false);
        ascii_chart(
            "single",
            &[Series {
                name: "p".into(),
                points: vec![(1.0, 1.0)],
            }],
            true,
        );
    }
}
