//! E1 (Criterion) — allocb/freeb over the *new* allocator.
//!
//! The paper's investigation began with allocb costing 64 µs instead of
//! 12.5 µs under the old allocator; the companion paper ([6] McKenney &
//! Graunke) rebuilt it on the per-CPU design. This bench measures our
//! equivalent: the full message-block + data-block + buffer triplet
//! through the cookie fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use kmem::{KmemArena, KmemConfig};
use kmem_streams::StreamsAlloc;

fn streams(c: &mut Criterion) {
    let arena = KmemArena::new(KmemConfig::small()).unwrap();
    let cpu = arena.register_cpu().unwrap();
    let sa = StreamsAlloc::new(arena.clone());

    c.bench_function("streams/allocb_freeb_256", |b| {
        b.iter(|| {
            let m = sa.allocb(&cpu, 256).unwrap();
            // SAFETY: allocated above, freed once.
            unsafe { sa.freeb(&cpu, m) };
        })
    });

    c.bench_function("streams/dupb_freeb", |b| {
        let m = sa.allocb(&cpu, 256).unwrap();
        b.iter(|| {
            // SAFETY: `m` stays live; the dup is freed once per iter.
            unsafe {
                let d = sa.dupb(&cpu, m).unwrap();
                sa.freeb(&cpu, d);
            }
        });
        // SAFETY: allocated above, freed once.
        unsafe { sa.freeb(&cpu, m) };
    });

    c.bench_function("streams/segmented_msg_4", |b| {
        b.iter(|| {
            let head = sa.allocb(&cpu, 64).unwrap();
            // SAFETY: all blocks are live until freemsg.
            unsafe {
                for _ in 0..3 {
                    let seg = sa.allocb(&cpu, 64).unwrap();
                    sa.linkb(head, seg);
                }
                sa.freemsg(&cpu, head);
            }
        })
    });
}

criterion_group!(benches, streams);
criterion_main!(benches);
