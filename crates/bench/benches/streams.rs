//! E1 — allocb/freeb over the *new* allocator.
//!
//! The paper's investigation began with allocb costing 64 µs instead of
//! 12.5 µs under the old allocator; the companion paper ([6] McKenney &
//! Graunke) rebuilt it on the per-CPU design. This bench measures our
//! equivalent: the full message-block + data-block + buffer triplet
//! through the cookie fast path.
//!
//! Runs under the in-tree harness: `cargo bench --features bench-ext`.

use kmem::{KmemArena, KmemConfig};
use kmem_bench::bench_ns;
use kmem_streams::StreamsAlloc;

fn main() {
    let arena = KmemArena::new(KmemConfig::small()).unwrap();
    let cpu = arena.register_cpu().unwrap();
    let sa = StreamsAlloc::new(arena.clone());

    bench_ns("streams/allocb_freeb_256", 500_000, || {
        let m = sa.allocb(&cpu, 256).unwrap();
        // SAFETY: allocated above, freed once.
        unsafe { sa.freeb(&cpu, m) };
    });

    {
        let m = sa.allocb(&cpu, 256).unwrap();
        bench_ns("streams/dupb_freeb", 500_000, || {
            // SAFETY: `m` stays live; the dup is freed once per iter.
            unsafe {
                let d = sa.dupb(&cpu, m).unwrap();
                sa.freeb(&cpu, d);
            }
        });
        // SAFETY: allocated above, freed once.
        unsafe { sa.freeb(&cpu, m) };
    }

    bench_ns("streams/segmented_msg_4", 200_000, || {
        let head = sa.allocb(&cpu, 64).unwrap();
        // SAFETY: all blocks are live until freemsg.
        unsafe {
            for _ in 0..3 {
                let seg = sa.allocb(&cpu, 64).unwrap();
                sa.linkb(head, seg);
            }
            sa.freemsg(&cpu, head);
        }
    });
}
