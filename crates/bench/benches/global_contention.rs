//! Global-layer contention: lock-free Treiber stack vs spinlocked pool.
//!
//! Real OS threads ping-pong intact `target`-sized chains through a shared
//! pool — the CPU-to-CPU recycling pattern of paper §3.2 — once through
//! the lock-free [`GlobalPool`] (one tag-CAS per direction) and once
//! through the naive spinlocked `Vec<Chain>` the rework replaced. Reports
//! ns per get/put pair for each thread count and writes the sweep to
//! `BENCH_global.json` at the workspace root (hand-rolled JSON; the
//! workspace is hermetic).
//!
//! Run: `cargo bench --features bench-ext --bench global_contention`.
//!
//! On a loaded or single-core host the absolute numbers are noise, but
//! the *comparison* still holds (both sides run the identical workload,
//! and the reported figure is the min over interleaved repetitions, so
//! scheduler spikes are filtered out of both sides alike), so the
//! ≥ 8-thread shape pin — lock-free no slower than spinlocked — is
//! asserted here rather than eyeballed.

use std::sync::Barrier;
use std::time::Instant;

use kmem::chain::Chain;
use kmem::global::GlobalPool;
use kmem_smp::{EventCounter, SpinLock};

const TARGET: usize = 4;
const OPS_PER_THREAD: usize = 100_000;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Timed repetitions per (pool, thread count); the minimum is reported.
const REPS: usize = 7;
/// Pool depth in chains, fixed across thread counts: a gbltarget-scale
/// pool riding near its bound, as in a tuned deployment. Depth matters
/// because the replaced design re-summed every chain on the list under
/// the lock on *every* put (its bound check), an O(depth) walk the
/// lock-free pool's derived block count eliminates.
const POOL_CHAINS: usize = 128;

/// Backing store of fake blocks with stable addresses.
#[expect(clippy::vec_box)]
fn backing(n: usize) -> Vec<Box<[u8; 32]>> {
    (0..n).map(|_| Box::new([0u8; 32])).collect()
}

fn chain(store: &mut [Box<[u8; 32]>], range: core::ops::Range<usize>) -> Chain {
    let mut c = Chain::new();
    for b in &mut store[range] {
        // SAFETY: fake blocks are owned and disjoint.
        unsafe { c.push(b.as_mut_ptr()) };
    }
    c
}

fn discard(mut c: Chain) {
    while c.pop().is_some() {}
}

/// The two pools under one interface.
trait ChainPool: Sync {
    fn get(&self) -> Option<Chain>;
    fn put(&self, c: Chain);
    fn drain(&self);
}

impl ChainPool for GlobalPool {
    fn get(&self) -> Option<Chain> {
        self.get_chain()
    }

    fn put(&self, c: Chain) {
        assert!(
            self.put_chain(c).is_none(),
            "bench pool sized to never spill"
        );
    }

    fn drain(&self) {
        discard(self.drain_all());
    }
}

/// The pre-rework design, reproduced op-for-op: every access takes the
/// pool lock, bumps the same counters the old `GlobalPool` kept, and —
/// as the old put path did — re-sums the pool total under the lock to
/// enforce the `2 * gbltarget` bound.
struct SpinPool {
    inner: SpinLock<SpinInner>,
    gbltarget: usize,
    get: EventCounter,
    get_chain_hits: EventCounter,
    get_miss: EventCounter,
    put: EventCounter,
}

struct SpinInner {
    chains: Vec<Chain>,
    bucket: Chain,
}

impl SpinPool {
    fn new(gbltarget: usize) -> Self {
        SpinPool {
            inner: SpinLock::new(SpinInner {
                chains: Vec::new(),
                bucket: Chain::new(),
            }),
            gbltarget,
            get: EventCounter::new(),
            get_chain_hits: EventCounter::new(),
            get_miss: EventCounter::new(),
            put: EventCounter::new(),
        }
    }
}

impl ChainPool for SpinPool {
    fn get(&self) -> Option<Chain> {
        self.get.inc();
        let mut inner = self.inner.lock();
        let chain = inner.chains.pop();
        drop(inner);
        match chain {
            Some(c) => {
                self.get_chain_hits.inc();
                Some(c)
            }
            None => {
                self.get_miss.inc();
                None
            }
        }
    }

    fn put(&self, c: Chain) {
        self.put.inc();
        let mut inner = self.inner.lock();
        inner.chains.push(c);
        let total = inner.bucket.len() + inner.chains.iter().map(Chain::len).sum::<usize>();
        drop(inner);
        assert!(
            total <= 2 * self.gbltarget,
            "bench pool sized to never spill"
        );
    }

    fn drain(&self) {
        let mut inner = self.inner.lock();
        for c in inner.chains.drain(..) {
            discard(c);
        }
        discard(inner.bucket.take());
    }
}

/// Times `threads` × [`OPS_PER_THREAD`] get/put pairs against `pool`,
/// which must be pre-seeded; returns ns per pair.
fn run_pairs(pool: &dyn ChainPool, threads: usize) -> f64 {
    let barrier = Barrier::new(threads + 1);
    let mut start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                barrier.wait();
                for _ in 0..OPS_PER_THREAD {
                    if let Some(c) = pool.get() {
                        pool.put(c);
                    }
                }
            });
        }
        barrier.wait();
        start = Instant::now();
        // The scope joins every worker before returning.
    });
    start.elapsed().as_nanos() as f64 / (threads * OPS_PER_THREAD) as f64
}

fn bench_spin(threads: usize) -> f64 {
    let mut store = backing(POOL_CHAINS * TARGET);
    // Same headroom as the lock-free pool below.
    let pool = SpinPool::new(POOL_CHAINS * TARGET);
    for i in 0..POOL_CHAINS {
        pool.put(chain(&mut store, i * TARGET..(i + 1) * TARGET));
    }
    let ns = run_pairs(&pool, threads);
    pool.drain();
    ns
}

fn bench_lockfree(threads: usize) -> f64 {
    let mut store = backing(POOL_CHAINS * TARGET);
    // gbltarget sized so the bound (2 * gbltarget) is never exceeded:
    // every put rides the fast path, as in a tuned deployment.
    let pool = GlobalPool::new(TARGET, POOL_CHAINS * TARGET);
    for i in 0..POOL_CHAINS {
        pool.put(chain(&mut store, i * TARGET..(i + 1) * TARGET));
    }
    let ns = run_pairs(&pool, threads);
    pool.drain();
    ns
}

fn main() {
    use core::fmt::Write as _;

    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        // Warm-up pass absorbs thread-spawn and first-touch costs.
        let _ = bench_spin(threads);
        let _ = bench_lockfree(threads);
        // Interleaved repetitions, min of each side: the intrinsic
        // per-pair cost with scheduler interference (which dominates an
        // oversubscribed host) filtered out of both pools alike.
        let mut spin = f64::INFINITY;
        let mut lockfree = f64::INFINITY;
        for _ in 0..REPS {
            spin = spin.min(bench_spin(threads));
            lockfree = lockfree.min(bench_lockfree(threads));
        }
        println!(
            "global_contention/{threads:>2} threads   spinlock {spin:>9.1} ns/pair   \
             lock-free {lockfree:>9.1} ns/pair   ({:.2}x)",
            spin / lockfree
        );
        rows.push((threads, spin, lockfree));
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"global_contention\",\"target\":{TARGET},\
         \"ops_per_thread\":{OPS_PER_THREAD},\"results\":["
    );
    for (i, (threads, spin, lockfree)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"threads\":{threads},\"spinlock_ns\":{spin:.1},\
             \"lockfree_ns\":{lockfree:.1}}}"
        );
    }
    json.push_str("]}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_global.json");
    std::fs::write(path, &json).expect("write BENCH_global.json");
    println!("wrote {path}");

    // Shape pin: at every measured count of 8+ threads the lock-free
    // layer must not lose to the lock it replaced.
    for (threads, spin, lockfree) in rows {
        if threads >= 8 {
            assert!(
                lockfree < spin,
                "lock-free pool slower than spinlock at {threads} threads: \
                 {lockfree:.1} vs {spin:.1} ns/pair"
            );
        }
    }
}
