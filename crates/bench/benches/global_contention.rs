//! Global-layer contention: lock-free Treiber stack vs spinlocked pool.
//!
//! Real OS threads ping-pong intact `target`-sized chains through a shared
//! pool — the CPU-to-CPU recycling pattern of paper §3.2 — once through
//! the lock-free [`GlobalPool`] (one tag-CAS per direction) and once
//! through the naive spinlocked `Vec<Chain>` the rework replaced. Reports
//! ns per get/put pair for each thread count and writes the sweep to
//! `BENCH_global.json` at the workspace root (hand-rolled JSON; the
//! workspace is hermetic).
//!
//! Run: `cargo bench --features bench-ext --bench global_contention`.
//!
//! On a loaded or single-core host the absolute numbers are noise, but
//! the *comparison* still holds (both sides run the identical workload,
//! and the reported figure is the min over interleaved repetitions, so
//! scheduler spikes are filtered out of both sides alike), so the
//! ≥ 8-thread shape pin — lock-free no slower than spinlocked — is
//! asserted here rather than eyeballed.

use std::sync::Barrier;
use std::time::Instant;

use kmem::chain::Chain;
use kmem::global::GlobalPool;
use kmem::{HardenedConfig, KmemConfig};
use kmem_bench::{arena_contended_pair_ns, BenchReport};
use kmem_smp::{EventCounter, SpinLock};

const TARGET: usize = 4;
const OPS_PER_THREAD: usize = 100_000;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Timed repetitions per (pool, thread count); the minimum is reported.
const REPS: usize = 7;
/// Pool depth in chains, fixed across thread counts: a gbltarget-scale
/// pool riding near its bound, as in a tuned deployment. Depth matters
/// because the replaced design re-summed every chain on the list under
/// the lock on *every* put (its bound check), an O(depth) walk the
/// lock-free pool's derived block count eliminates.
const POOL_CHAINS: usize = 128;
/// Whole-arena hardened sweep: alloc/free pairs per thread, with a
/// flush every [`HARDENED_FLUSH_EVERY`] pairs forcing cross-layer
/// traffic through the shared (and, hardened, encoded) global layer.
const HARDENED_OPS: usize = 20_000;
const HARDENED_FLUSH_EVERY: usize = 64;
const HARDENED_SIZE: usize = 256;
const HARDENED_SEED: u64 = 0x4245_4e43_4752_4e44; // "BENCGRND"
/// Bound on the full hardened profile's contended-pair multiplier vs
/// the default profile under the same contention. Loose on purpose:
/// under contention the shared-line traffic dominates and the defense
/// cost should *shrink* relative to the uncontended 6x fast-path bound.
const HARDENED_MAX_MULT: f64 = 8.0;

/// Backing store of fake blocks with stable addresses.
#[expect(clippy::vec_box)]
fn backing(n: usize) -> Vec<Box<[u8; 32]>> {
    (0..n).map(|_| Box::new([0u8; 32])).collect()
}

fn chain(store: &mut [Box<[u8; 32]>], range: core::ops::Range<usize>) -> Chain {
    let mut c = Chain::new();
    for b in &mut store[range] {
        // SAFETY: fake blocks are owned and disjoint.
        unsafe { c.push(b.as_mut_ptr()) };
    }
    c
}

fn discard(mut c: Chain) {
    while c.pop().is_some() {}
}

/// The two pools under one interface.
trait ChainPool: Sync {
    fn get(&self) -> Option<Chain>;
    fn put(&self, c: Chain);
    fn drain(&self);
}

impl ChainPool for GlobalPool {
    fn get(&self) -> Option<Chain> {
        self.get_chain()
    }

    fn put(&self, c: Chain) {
        assert!(
            self.put_chain(c).is_none(),
            "bench pool sized to never spill"
        );
    }

    fn drain(&self) {
        discard(self.drain_all());
    }
}

/// The pre-rework design, reproduced op-for-op: every access takes the
/// pool lock, bumps the same counters the old `GlobalPool` kept, and —
/// as the old put path did — re-sums the pool total under the lock to
/// enforce the `2 * gbltarget` bound.
struct SpinPool {
    inner: SpinLock<SpinInner>,
    gbltarget: usize,
    get: EventCounter,
    get_chain_hits: EventCounter,
    get_miss: EventCounter,
    put: EventCounter,
}

struct SpinInner {
    chains: Vec<Chain>,
    bucket: Chain,
}

impl SpinPool {
    fn new(gbltarget: usize) -> Self {
        SpinPool {
            inner: SpinLock::new(SpinInner {
                chains: Vec::new(),
                bucket: Chain::new(),
            }),
            gbltarget,
            get: EventCounter::new(),
            get_chain_hits: EventCounter::new(),
            get_miss: EventCounter::new(),
            put: EventCounter::new(),
        }
    }
}

impl ChainPool for SpinPool {
    fn get(&self) -> Option<Chain> {
        self.get.inc();
        let mut inner = self.inner.lock();
        let chain = inner.chains.pop();
        drop(inner);
        match chain {
            Some(c) => {
                self.get_chain_hits.inc();
                Some(c)
            }
            None => {
                self.get_miss.inc();
                None
            }
        }
    }

    fn put(&self, c: Chain) {
        self.put.inc();
        let mut inner = self.inner.lock();
        inner.chains.push(c);
        let total = inner.bucket.len() + inner.chains.iter().map(Chain::len).sum::<usize>();
        drop(inner);
        assert!(
            total <= 2 * self.gbltarget,
            "bench pool sized to never spill"
        );
    }

    fn drain(&self) {
        let mut inner = self.inner.lock();
        for c in inner.chains.drain(..) {
            discard(c);
        }
        discard(inner.bucket.take());
    }
}

/// Times `threads` × [`OPS_PER_THREAD`] get/put pairs against `pool`,
/// which must be pre-seeded; returns ns per pair.
fn run_pairs(pool: &dyn ChainPool, threads: usize) -> f64 {
    let barrier = Barrier::new(threads);
    // Phase wall = max(end) - min(start), stamped inside the workers:
    // the worker rolling straight through the barrier release stamps the
    // true phase start. (Spawner-side timing reads near zero when the
    // workers finish before the spawner is rescheduled; per-worker spans
    // alone fake an N-times speedup when a serialized phase reschedules
    // each worker just before its own loop.)
    let spans: Vec<(Instant, Instant)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    let start = Instant::now();
                    for _ in 0..OPS_PER_THREAD {
                        if let Some(c) = pool.get() {
                            pool.put(c);
                        }
                    }
                    (start, Instant::now())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let start = spans.iter().map(|&(s, _)| s).min().unwrap();
    let end = spans.iter().map(|&(_, e)| e).max().unwrap();
    (end - start).as_nanos() as f64 / (threads * OPS_PER_THREAD) as f64
}

fn bench_spin(threads: usize) -> f64 {
    let mut store = backing(POOL_CHAINS * TARGET);
    // Same headroom as the lock-free pool below.
    let pool = SpinPool::new(POOL_CHAINS * TARGET);
    for i in 0..POOL_CHAINS {
        pool.put(chain(&mut store, i * TARGET..(i + 1) * TARGET));
    }
    let ns = run_pairs(&pool, threads);
    pool.drain();
    ns
}

fn bench_lockfree(threads: usize) -> f64 {
    let mut store = backing(POOL_CHAINS * TARGET);
    // gbltarget sized so the bound (2 * gbltarget) is never exceeded:
    // every put rides the fast path, as in a tuned deployment.
    let pool = GlobalPool::new(TARGET, POOL_CHAINS * TARGET);
    for i in 0..POOL_CHAINS {
        pool.put(chain(&mut store, i * TARGET..(i + 1) * TARGET));
    }
    let ns = run_pairs(&pool, threads);
    pool.drain();
    ns
}

/// Min-of-reps contended pair cost for a whole arena under `hardened`,
/// at `threads` threads (with periodic flushes driving the shared
/// global layer).
fn bench_arena(hardened: HardenedConfig, threads: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let config = KmemConfig::new(threads, kmem_vm::SpaceConfig::new(16 << 20).vmblk_shift(18))
            .hardened(hardened);
        best = best.min(arena_contended_pair_ns(
            config,
            HARDENED_SIZE,
            threads,
            HARDENED_OPS,
            HARDENED_FLUSH_EVERY,
        ));
    }
    best
}

fn main() {
    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        // Warm-up pass absorbs thread-spawn and first-touch costs.
        let _ = bench_spin(threads);
        let _ = bench_lockfree(threads);
        // Interleaved repetitions, min of each side: the intrinsic
        // per-pair cost with scheduler interference (which dominates an
        // oversubscribed host) filtered out of both pools alike.
        let mut spin = f64::INFINITY;
        let mut lockfree = f64::INFINITY;
        for _ in 0..REPS {
            spin = spin.min(bench_spin(threads));
            lockfree = lockfree.min(bench_lockfree(threads));
        }
        println!(
            "global_contention/{threads:>2} threads   spinlock {spin:>9.1} ns/pair   \
             lock-free {lockfree:>9.1} ns/pair   ({:.2}x)",
            spin / lockfree
        );
        rows.push((threads, spin, lockfree));
    }

    // Hardened variant of the sweep: the same thread counts, but whole
    // arenas (default vs full hardened profile) with flush-forced
    // cross-layer traffic — what the defenses cost when the global
    // layer is actually contended, not just on a lone fast path.
    let mut hardened_rows = Vec::new();
    for threads in THREAD_COUNTS {
        let default_ns = bench_arena(HardenedConfig::off(), threads);
        let hardened_ns = bench_arena(HardenedConfig::full(HARDENED_SEED), threads);
        println!(
            "global_contention/{threads:>2} threads   default  {default_ns:>9.1} ns/pair   \
             hardened  {hardened_ns:>9.1} ns/pair   ({:.2}x)",
            hardened_ns / default_ns
        );
        hardened_rows.push((threads, default_ns, hardened_ns));
    }

    let mut report = BenchReport::new("global_contention", HARDENED_SEED).config(|c| {
        c.usize("target", TARGET)
            .usize("ops_per_thread", OPS_PER_THREAD)
            .usize("pool_chains", POOL_CHAINS)
            .usize("reps", REPS)
            .usize("hardened_ops", HARDENED_OPS)
            .usize("hardened_flush_every", HARDENED_FLUSH_EVERY)
            .usize("hardened_size", HARDENED_SIZE);
    });
    report
        .body()
        .arr("results", &rows, |&(threads, spin, lockfree), row| {
            row.usize("threads", threads)
                .f64("spinlock_ns", spin, 1)
                .f64("lockfree_ns", lockfree, 1);
        });
    report.body().arr(
        "hardened",
        &hardened_rows,
        |&(threads, default_ns, hardened_ns), row| {
            row.usize("threads", threads)
                .f64("default_ns", default_ns, 1)
                .f64("hardened_ns", hardened_ns, 1)
                .f64("overhead_pct", 100.0 * (hardened_ns / default_ns - 1.0), 1);
        },
    );
    report.write_artifact("BENCH_global.json");

    // Shape pin: at every measured count of 8+ threads the lock-free
    // layer must not lose to the lock it replaced.
    for (threads, spin, lockfree) in rows {
        if threads >= 8 {
            assert!(
                lockfree < spin,
                "lock-free pool slower than spinlock at {threads} threads: \
                 {lockfree:.1} vs {spin:.1} ns/pair"
            );
        }
    }
    // And the hardened profile stays a bounded tax under contention.
    for (threads, default_ns, hardened_ns) in hardened_rows {
        assert!(
            hardened_ns <= default_ns * HARDENED_MAX_MULT,
            "hardened arena costs {hardened_ns:.1} ns/pair vs {default_ns:.1} \
             default at {threads} threads (over {HARDENED_MAX_MULT}x)"
        );
    }
}
