//! NUMA placement sweep: node-local shards vs a node-blind global layer
//! under the DLM workload, priced by the DES on a 4-node machine.
//!
//! Both runs simulate the *same* hardware — `NODES` nodes, cross-node
//! dirty transfers priced at `miss_remote_node` — and the same OLTP lock
//! traffic (locks granted by one CPU, released by another, so LKBs and
//! RSBs migrate constantly). The only variable is the allocator: the
//! node-blind arena keeps one global shard per size class that every CPU
//! CASes, while the node-local arena shards the global layer per node so
//! refills and spills stay on the local interconnect unless a shard runs
//! dry and a chain is stolen.
//!
//! Emits `BENCH_numa.json` at the repo root and self-asserts the shape:
//! at the full 25-CPU point the node-local arena must show *fewer
//! cross-node transfers* and *lower mean cycles per op* than the
//! node-blind one.
//!
//! Run with: `cargo bench --features bench-ext --bench numa_contention`

use kmem::{KmemArena, KmemConfig};
use kmem_dlm::{Dlm, LockHandle, LockStatus, Mode};
use kmem_sim::{SimConfig, Simulator};
use kmem_testkit::Rng;
use kmem_vm::SpaceConfig;

/// Nodes on the simulated machine (and on the node-local arena).
const NODES: usize = 4;
/// Lock operations each virtual CPU performs.
const OPS_PER_CPU: u64 = 4_000;
/// Sweep points; the last one is the paper's full machine.
const CPU_COUNTS: [usize; 3] = [8, 16, 25];
/// Distinct database resources.
const RESOURCES: u64 = 512;
/// Bound on the shared pool of granted locks.
const WORKING_SET: usize = 384;
/// Calibrated probe-free base cost of one lock/unlock op (alloc + table
/// walk; the newkma pair costs 115 — see `kmem_bench::calib`).
const BASE_CYCLES: u64 = 150;
/// Base of the per-CPU RNG streams (each CPU xors in its index).
const RNG_SEED: u64 = 0xD1_5C0;

/// What one simulated run measured.
struct RunStats {
    cycles_per_op: f64,
    remote_transfers: u64,
    remote_node_transfers: u64,
    lock_wait_cycles: u64,
    local_refills: u64,
    stolen_refills: u64,
}

/// OLTP-ish mode mix (the same distribution as `kmem_dlm::workload`).
fn pick_mode(rng: &mut Rng) -> Mode {
    match rng.range_u64(0..100) {
        0..=44 => Mode::Cr,
        45..=69 => Mode::Pr,
        70..=84 => Mode::Cw,
        85..=94 => Mode::Pw,
        95..=97 => Mode::Ex,
        _ => Mode::Nl,
    }
}

/// Runs the DLM hand-off workload on `ncpus` virtual CPUs of a 4-node
/// simulated machine, against an arena sharded over `arena_nodes`.
fn run(ncpus: usize, arena_nodes: usize) -> RunStats {
    let arena =
        KmemArena::new(KmemConfig::new(ncpus, SpaceConfig::new(64 << 20)).nodes(arena_nodes))
            .unwrap();
    let dlm = Dlm::new(arena.clone(), 256);
    let cpus: Vec<_> = (0..ncpus).map(|_| arena.register_cpu().unwrap()).collect();
    let mut rngs: Vec<Rng> = (0..ncpus)
        .map(|i| Rng::new(RNG_SEED ^ (i as u64).wrapping_mul(0x9E37_79B9)))
        .collect();
    // The cross-CPU hand-off pool. A plain Vec, not a probed structure:
    // the pool is workload plumbing, identical in both runs, and keeping
    // it off the priced lines focuses the measurement on the allocator.
    let mut pool: Vec<LockHandle> = Vec::new();

    let result = Simulator::new(SimConfig::new(ncpus, OPS_PER_CPU).nodes(NODES)).run(|vcpu| {
        let cpu = &cpus[vcpu];
        let rng = &mut rngs[vcpu];
        let release = pool.len() >= WORKING_SET || (!pool.is_empty() && rng.ratio(1, 2));
        if release {
            // Release a lock that some *other* CPU probably granted —
            // the one-sided flow the global layer exists for.
            let h = pool.swap_remove(rng.index(pool.len()));
            dlm.unlock(cpu, h);
        } else {
            let res = rng.range_u64(0..RESOURCES);
            match dlm.lock(cpu, res, pick_mode(rng)) {
                Ok((h, LockStatus::Granted)) => pool.push(h),
                // Impatient caller: cancel rather than block.
                Ok((h, LockStatus::Waiting)) => dlm.unlock(cpu, h),
                Err(_) => {}
            }
        }
        BASE_CYCLES
    });

    let snap = arena.snapshot();
    let local_refills = snap.nodes.iter().map(|n| n.local_refills).sum();
    let stolen_refills = snap.nodes.iter().map(|n| n.stolen_refills).sum();
    assert_eq!(snap.nodes.len(), arena_nodes, "one rollup per shard node");

    for h in pool.drain(..) {
        dlm.unlock(&cpus[0], h);
    }

    RunStats {
        cycles_per_op: result.elapsed_cycles as f64 / OPS_PER_CPU as f64,
        remote_transfers: result.remote_transfers,
        remote_node_transfers: result.remote_node_transfers,
        lock_wait_cycles: result.lock_wait_cycles,
        local_refills,
        stolen_refills,
    }
}

fn main() {
    let mut rows = Vec::new();
    for ncpus in CPU_COUNTS {
        let blind = run(ncpus, 1);
        let local = run(ncpus, NODES);
        println!(
            "numa_contention/{ncpus:>2} cpus   node-blind {:>8.0} cyc/op ({:>6} cross-node)   \
             node-local {:>8.0} cyc/op ({:>6} cross-node)   ({:.2}x, {:.1}% stolen)",
            blind.cycles_per_op,
            blind.remote_node_transfers,
            local.cycles_per_op,
            local.remote_node_transfers,
            blind.cycles_per_op / local.cycles_per_op,
            100.0 * local.stolen_refills as f64
                / (local.local_refills + local.stolen_refills).max(1) as f64,
        );
        rows.push((ncpus, blind, local));
    }

    let side = |s: &RunStats, obj: &mut kmem_bench::JsonObj| {
        obj.f64("cycles_per_op", s.cycles_per_op, 0)
            .u64("remote_transfers", s.remote_transfers)
            .u64("remote_node_transfers", s.remote_node_transfers)
            .u64("lock_wait_cycles", s.lock_wait_cycles)
            .u64("local_refills", s.local_refills)
            .u64("stolen_refills", s.stolen_refills);
    };
    let mut report = kmem_bench::BenchReport::new("numa_contention", RNG_SEED).config(|c| {
        c.usize("machine_nodes", NODES)
            .u64("ops_per_cpu", OPS_PER_CPU)
            .u64("resources", RESOURCES)
            .usize("working_set", WORKING_SET)
            .u64("base_cycles", BASE_CYCLES);
    });
    report
        .body()
        .arr("results", &rows, |(ncpus, blind, local), row| {
            row.usize("cpus", *ncpus)
                .obj("node_blind", |o| side(blind, o))
                .obj("node_local", |o| side(local, o));
        });
    report.write_artifact("BENCH_numa.json");

    // Shape pins. At the full 25-CPU machine, node-local placement must
    // beat node-blind on both axes the paper's argument rests on: less
    // traffic over the interconnect, and fewer cycles per operation.
    let (_, blind, local) = rows.last().expect("sweep is non-empty");
    assert!(
        local.remote_node_transfers < blind.remote_node_transfers,
        "sharding must cut cross-node transfers: local {} vs blind {}",
        local.remote_node_transfers,
        blind.remote_node_transfers
    );
    assert!(
        local.cycles_per_op < blind.cycles_per_op,
        "sharding must cut mean cycles per op: local {:.0} vs blind {:.0}",
        local.cycles_per_op,
        blind.cycles_per_op
    );
    // The sharded run exercised the machinery it claims credit for: the
    // shards served refills, and the overflow path actually stole.
    assert!(local.local_refills > 0, "no refill ever hit a local shard");
    assert!(
        local.stolen_refills < local.local_refills,
        "stealing should be the exception, not the steady state"
    );
}
