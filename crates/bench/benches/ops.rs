//! E2 — per-operation fast-path latency for each interface.
//!
//! The measured half of the paper's "Instruction Counts" section: a
//! steady-state alloc/free pair per interface. The shape claim is the
//! ordering (cookie fastest, standard ~2x, oldkma far behind).
//!
//! Runs under the in-tree harness: `cargo bench --features bench-ext`.

use kmem::{KmemArena, KmemConfig};
use kmem_baselines::{KernelAllocator, KmemCookieAlloc, KmemStdAlloc, MkAllocator, OldKma};
use kmem_bench::bench_ns;

const ITERS: u64 = 1_000_000;

fn bench_pair<A: KernelAllocator>(name: &str, alloc: &A, size: usize) -> f64 {
    let mut ctx = alloc.register();
    let prep = alloc.prepare(size);
    // Steady state: warm the per-CPU layer / freelists.
    for _ in 0..1024 {
        let p = alloc.alloc(&mut ctx, prep).unwrap();
        // SAFETY: allocated above with the same prep.
        unsafe { alloc.free(&mut ctx, p, prep) };
    }
    bench_ns(name, ITERS, || {
        let p = alloc.alloc(&mut ctx, prep).unwrap();
        std::hint::black_box(p);
        // SAFETY: allocated above with the same prep.
        unsafe { alloc.free(&mut ctx, p, prep) };
    })
}

fn main() {
    let size = 256;
    let cookie = KmemCookieAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
    let ns_cookie = bench_pair("pair/cookie", &cookie, size);
    let std_alloc = KmemStdAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
    bench_pair("pair/newkma", &std_alloc, size);
    let mk = MkAllocator::new(16 << 20, 4096);
    bench_pair("pair/mk", &mk, size);
    let old = OldKma::new(16 << 20, 4096);
    let ns_old = bench_pair("pair/oldkma", &old, size);
    println!("oldkma/cookie ratio: {:.1}x", ns_old / ns_cookie);
}
