//! E2 (Criterion) — per-operation fast-path latency for each interface.
//!
//! The measured half of the paper's "Instruction Counts" section: a
//! steady-state alloc/free pair per interface. The shape claim is the
//! ordering (cookie fastest, standard ~2x, oldkma far behind).

use criterion::{criterion_group, criterion_main, Criterion};
use kmem::{KmemArena, KmemConfig};
use kmem_baselines::{KernelAllocator, KmemCookieAlloc, KmemStdAlloc, MkAllocator, OldKma};

fn bench_pair<A: KernelAllocator>(c: &mut Criterion, name: &str, alloc: &A, size: usize) {
    let mut ctx = alloc.register();
    let prep = alloc.prepare(size);
    // Steady state: warm the per-CPU layer / freelists.
    for _ in 0..1024 {
        let p = alloc.alloc(&mut ctx, prep).unwrap();
        // SAFETY: allocated above with the same prep.
        unsafe { alloc.free(&mut ctx, p, prep) };
    }
    c.bench_function(name, |b| {
        b.iter(|| {
            let p = alloc.alloc(&mut ctx, prep).unwrap();
            std::hint::black_box(p);
            // SAFETY: allocated above with the same prep.
            unsafe { alloc.free(&mut ctx, p, prep) };
        })
    });
}

fn ops(c: &mut Criterion) {
    let size = 256;
    let cookie = KmemCookieAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
    bench_pair(c, "pair/cookie", &cookie, size);
    let std_alloc = KmemStdAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
    bench_pair(c, "pair/newkma", &std_alloc, size);
    let mk = MkAllocator::new(16 << 20, 4096);
    bench_pair(c, "pair/mk", &mk, size);
    let old = OldKma::new(16 << 20, 4096);
    bench_pair(c, "pair/oldkma", &old, size);
}

criterion_group!(benches, ops);
criterion_main!(benches);
