//! E5 (Criterion) — one pass of the Figure 9 worst-case sweep.
//!
//! Allocate blocks until the (small) physical pool is exhausted, free
//! them all, and verify the arena drains — the per-pass cost the figure
//! plots against block size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmem::{AllocError, KmemArena, KmemConfig};
use kmem_vm::SpaceConfig;

fn worstcase(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_pass");
    group.sample_size(10);
    for size in [64usize, 512, 4096] {
        // 2 MB pool keeps each pass small enough to iterate.
        let arena = KmemArena::new(KmemConfig::new(
            1,
            SpaceConfig::new(64 << 20).phys_pages(512),
        ))
        .unwrap();
        let cpu = arena.register_cpu().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let mut held = Vec::new();
                loop {
                    match cpu.alloc(size) {
                        Ok(p) => held.push(p),
                        Err(AllocError::OutOfMemory { .. }) => break,
                        Err(e) => panic!("{e}"),
                    }
                }
                for p in held {
                    // SAFETY: allocated above, freed once.
                    unsafe { cpu.free_sized(p, size) };
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, worstcase);
criterion_main!(benches);
