//! E5 — one pass of the Figure 9 worst-case sweep.
//!
//! Allocate blocks until the (small) physical pool is exhausted, free
//! them all, and verify the arena drains — the per-pass cost the figure
//! plots against block size.
//!
//! Runs under the in-tree harness: `cargo bench --features bench-ext`.

use kmem::{AllocError, KmemArena, KmemConfig};
use kmem_bench::bench_ns;
use kmem_vm::SpaceConfig;

fn main() {
    for size in [64usize, 512, 4096] {
        // 2 MB pool keeps each pass small enough to iterate.
        let arena = KmemArena::new(KmemConfig::new(
            1,
            SpaceConfig::new(64 << 20).phys_pages(512),
        ))
        .unwrap();
        let cpu = arena.register_cpu().unwrap();
        bench_ns(&format!("fig9_pass/{size}"), 10, || {
            let mut held = Vec::new();
            loop {
                match cpu.alloc(size) {
                    Ok(p) => held.push(p),
                    Err(AllocError::OutOfMemory { .. }) => break,
                    Err(e) => panic!("{e}"),
                }
            }
            for p in held {
                // SAFETY: allocated above, freed once.
                unsafe { cpu.free_sized(p, size) };
            }
        });
    }
}
