//! E6 — lock-manager operation cost over kmem.
//!
//! The realistic workload of the paper's evaluation: each iteration is a
//! lock/unlock round trip, whose cost includes the LKB (256 B) and RSB
//! (512 B) allocator traffic.
//!
//! Runs under the in-tree harness: `cargo bench --features bench-ext`.

use kmem::{KmemArena, KmemConfig};
use kmem_bench::bench_ns;
use kmem_dlm::{Dlm, Mode};

fn main() {
    let arena = KmemArena::new(KmemConfig::small()).unwrap();
    let dlm = Dlm::new(arena.clone(), 64);
    let cpu = arena.register_cpu().unwrap();

    let mut n = 0u64;
    bench_ns("dlm/lock_unlock_fresh_resource", 200_000, || {
        n += 1;
        let (h, _) = dlm.lock(&cpu, n, Mode::Ex).unwrap();
        dlm.unlock(&cpu, h);
    });

    // Keep the resource alive so only LKB traffic is measured.
    let (anchor, _) = dlm.lock(&cpu, 7777, Mode::Nl).unwrap();
    bench_ns("dlm/lock_unlock_hot_resource", 500_000, || {
        let (h, _) = dlm.lock(&cpu, 7777, Mode::Cr).unwrap();
        dlm.unlock(&cpu, h);
    });
    dlm.unlock(&cpu, anchor);
}
