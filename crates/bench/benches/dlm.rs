//! E6 (Criterion) — lock-manager operation cost over kmem.
//!
//! The realistic workload of the paper's evaluation: each iteration is a
//! lock/unlock round trip, whose cost includes the LKB (256 B) and RSB
//! (512 B) allocator traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use kmem::{KmemArena, KmemConfig};
use kmem_dlm::{Dlm, Mode};

fn dlm(c: &mut Criterion) {
    let arena = KmemArena::new(KmemConfig::small()).unwrap();
    let dlm = Dlm::new(arena.clone(), 64);
    let cpu = arena.register_cpu().unwrap();

    c.bench_function("dlm/lock_unlock_fresh_resource", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let (h, _) = dlm.lock(&cpu, n, Mode::Ex).unwrap();
            dlm.unlock(&cpu, h);
        })
    });

    c.bench_function("dlm/lock_unlock_hot_resource", |b| {
        // Keep the resource alive so only LKB traffic is measured.
        let (anchor, _) = dlm.lock(&cpu, 7777, Mode::Nl).unwrap();
        b.iter(|| {
            let (h, _) = dlm.lock(&cpu, 7777, Mode::Cr).unwrap();
            dlm.unlock(&cpu, h);
        });
        dlm.unlock(&cpu, anchor);
    });
}

criterion_group!(benches, dlm);
criterion_main!(benches);
