//! Page-layer contention: lock-free radix lists vs the spinlocked layer.
//!
//! The same workload — real threads (or virtual CPUs) cycling short block
//! chains through one shared coalesce-to-page layer, the refill/free
//! traffic the global layer generates under load — runs twice: once
//! through the lock-free [`PageLayer`] (tagged radix stacks, per-page
//! atomic free counts, vmblk page cache) and once through an op-for-op
//! reproduction of the spinlocked layer it replaced (one lock around
//! every radix-list move, page-freelist splice, and counter, with the
//! vmblk boundary-tag lock behind it and no whole-page cache).
//!
//! Two measurements are taken and both land in `BENCH_page.json`:
//!
//! * **Wall clock** on the host, ns per alloc+free pair per OS-thread
//!   count. Informational: on a small host (this repo's CI box has one
//!   core) threads serialize anyway, so wall clock shows the lock-free
//!   layer's higher per-op instruction count — the price it pays — and
//!   none of the independence it buys.
//! * **Simulated SMP**, the repo's standard methodology for pricing
//!   scaling the host cannot exhibit (Figure 7, `kmem-sim`): the same
//!   pools run on N virtual CPUs of the discrete-event simulator, every
//!   probe-emitted shared-line access priced through the MESI model and
//!   every lock hold serializing its waiters. The spinlocked baseline
//!   predates the probe layer, so this bench emits its under-lock
//!   shared-line traffic explicitly — the same modelling the `analysis`
//!   module applies to the paper's measured allocator.
//!
//! The asserted shape pin is on the simulated 8-CPU point: the lock-free
//! layer must beat the spinlocked baseline there, and the baseline must
//! be visibly lock-bound. (At 1 simulated CPU the spinlock *wins* — no
//! contention, fewer RMWs — which the model reproduces honestly, matching
//! the wall-clock picture.)
//!
//! Run: `cargo bench --features bench-ext --bench page_contention`.

use std::sync::Arc;
use std::sync::Barrier;
use std::time::Instant;

use kmem::block;
use kmem::chain::Chain;
use kmem::pagedesc::{PageDesc, PdKind, PdList};
use kmem::pagelayer::PageLayer;
use kmem::vmblklayer::VmblkLayer;
use kmem::Faults;
use kmem_sim::{SimConfig, Simulator};
use kmem_smp::probe::{self, ProbeEvent};
use kmem_smp::SpinLock;
use kmem_vm::{KernelSpace, SpaceConfig, VmError, PAGE_SIZE};

const BLOCK_SIZE: usize = 512;
const CLASS: usize = 3;
/// Blocks per alloc/free chain; rings of these keep pages partial, so the
/// radix lists — not just page acquire/release — carry the contention.
const WANT: usize = 3;
/// Standing chains each thread holds, oldest freed before each alloc.
const RING: usize = 4;
const OPS_PER_THREAD: usize = 50_000;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Timed repetitions per (layer, thread count); the minimum is reported.
const REPS: usize = 7;

/// Simulated-SMP sweep points.
const SIM_CPUS: [usize; 4] = [1, 2, 4, 8];
const SIM_PAIRS_PER_CPU: u64 = 2_000;
/// Probe-free out-of-lock driver overhead per pair in cycles (the `calib`
/// convention); identical for both layers, so only priced events separate
/// them.
const SIM_BASE: u64 = 60;

fn space() -> Arc<KernelSpace> {
    Arc::new(KernelSpace::new(
        SpaceConfig::new(32 << 20).vmblk_shift(16).phys_pages(2048),
    ))
}

/// Emits the read a real CPU would issue for a shared line the baseline
/// touches under its lock.
#[inline]
fn rd<T>(p: *const T) {
    probe::emit(ProbeEvent::LineRead {
        line: probe::line_of(p),
    });
}

/// As [`rd`], for a store.
#[inline]
fn wr<T>(p: *const T) {
    probe::emit(ProbeEvent::LineWrite {
        line: probe::line_of(p),
    });
}

/// The two page layers under one interface.
trait PagePool: Sync {
    fn alloc(&self, want: usize) -> Result<Chain, VmError>;
    /// # Safety
    ///
    /// `chain` holds blocks allocated from this pool, each freed once.
    unsafe fn free(&self, chain: Chain);
}

struct LockFree {
    vm: VmblkLayer,
    layer: PageLayer,
}

impl LockFree {
    fn new() -> Self {
        LockFree {
            // The production stack: lock-free layer fronting the vmblk
            // boundary-tag lock with the whole-page cache.
            vm: VmblkLayer::new_with_cache(space(), true, Faults::none()),
            layer: PageLayer::new(CLASS, BLOCK_SIZE, true),
        }
    }

    fn assert_drained(&self) {
        self.layer.flush_full_pages(&self.vm);
        self.vm.drain_page_cache();
        assert_eq!(self.layer.usage(), (0, 0), "bench leaked pages");
    }
}

impl PagePool for LockFree {
    fn alloc(&self, want: usize) -> Result<Chain, VmError> {
        self.layer.alloc_chain(&self.vm, want)
    }

    unsafe fn free(&self, chain: Chain) {
        // SAFETY: forwarded caller contract.
        unsafe { self.layer.free_chain(&self.vm, chain) };
    }
}

/// The pre-rework layer, reproduced op-for-op: one spinlock serializes
/// every radix-list move, page-freelist splice, and counter update, and
/// page acquire/release always goes to the (locked) vmblk carve/merge
/// path — there was no whole-page cache. Shared-line touches under the
/// lock are probe-emitted so the simulator prices the baseline's cache
/// traffic the same way it prices the lock-free layer's.
struct SpinPage {
    vm: VmblkLayer,
    inner: SpinLock<SpinInner>,
    blocks_per_page: usize,
}

struct SpinInner {
    /// `buckets[c]` lists pages with exactly `c` free blocks.
    buckets: Box<[PdList]>,
    npages: usize,
    free_blocks: usize,
}

impl SpinPage {
    fn new() -> Self {
        let blocks_per_page = PAGE_SIZE / BLOCK_SIZE;
        SpinPage {
            vm: VmblkLayer::new(space(), true),
            inner: SpinLock::new(SpinInner {
                buckets: (0..=blocks_per_page).map(|_| PdList::new()).collect(),
                npages: 0,
                free_blocks: 0,
            }),
            blocks_per_page,
        }
    }

    /// Ascending radix scan; each probed bucket head is a shared line.
    fn fullest_page(&self, inner: &SpinInner) -> Option<(*mut PageDesc, usize)> {
        for c in 1..=self.blocks_per_page {
            rd(&inner.buckets[c]);
            if let Some(pd) = inner.buckets[c].front() {
                return Some((pd, c));
            }
        }
        None
    }

    fn acquire_page(&self, inner: &mut SpinInner) -> Result<(), VmError> {
        let (page, pd) = self.vm.alloc_span(1)?;
        let base = page.as_ptr();
        pd.set_class(CLASS);
        pd.set_kind(PdKind::BlockPage);
        let pd_ptr = pd as *const PageDesc as *mut PageDesc;
        // SAFETY: the page is exclusively ours; lock held.
        let pdi = unsafe { pd.inner() };
        pdi.freelist = core::ptr::null_mut();
        for i in (0..self.blocks_per_page).rev() {
            // SAFETY: offsets stay inside the page we own.
            let blk = unsafe { base.add(i * BLOCK_SIZE) };
            // SAFETY: `blk` is a fresh free block of this page.
            unsafe {
                block::write_next(blk, pdi.freelist, block::LinkKey::PLAIN);
                block::poison(blk);
            }
            pdi.freelist = blk;
        }
        pdi.free_count = self.blocks_per_page as u32;
        wr(pd_ptr);
        inner.free_blocks += self.blocks_per_page;
        inner.npages += 1;
        wr(&inner.free_blocks);
        // SAFETY: lock held; the fresh page descriptor is unlisted.
        unsafe { inner.buckets[self.blocks_per_page].push_front(pd_ptr) };
        wr(&inner.buckets[self.blocks_per_page]);
        Ok(())
    }

    fn release_page(&self, inner: &mut SpinInner, pd: &PageDesc) {
        // SAFETY: lock held; page fully free.
        let pdi = unsafe { pd.inner() };
        pdi.freelist = core::ptr::null_mut();
        pdi.free_count = 0;
        wr(pd as *const PageDesc);
        inner.free_blocks -= self.blocks_per_page;
        inner.npages -= 1;
        wr(&inner.free_blocks);
        pd.set_kind(PdKind::Unused);
        pd.set_class(0);
        let page_addr = {
            let hdr = self
                .vm
                .header_of(pd as *const PageDesc as usize)
                .expect("descriptor outside any vmblk");
            hdr.data_page(hdr.pd_index_of(pd))
        };
        // SAFETY: the span is exactly the fully free page we own.
        unsafe { self.vm.free_span(page_addr, 1) };
    }
}

impl PagePool for SpinPage {
    fn alloc(&self, want: usize) -> Result<Chain, VmError> {
        let mut chain = Chain::new();
        let mut inner = self.inner.lock();
        while chain.len() < want {
            let Some((pd, count)) = self.fullest_page(&inner) else {
                match self.acquire_page(&mut inner) {
                    Ok(()) => continue,
                    Err(_) if !chain.is_empty() => break,
                    Err(e) => return Err(e),
                }
            };
            let take = count.min(want - chain.len());
            // SAFETY: lock held; this class owns the page.
            let pdi = unsafe { (*pd).inner() };
            rd(pd);
            for _ in 0..take {
                let blk = pdi.freelist;
                rd(blk);
                // SAFETY: freelist blocks are free blocks of this page.
                pdi.freelist = unsafe { block::read_next(blk, block::LinkKey::PLAIN) };
                // SAFETY: as above; the block enters the outgoing chain.
                unsafe { chain.push(blk) };
            }
            let left = count - take;
            pdi.free_count = left as u32;
            wr(pd);
            inner.free_blocks -= take;
            wr(&inner.free_blocks);
            // SAFETY: lock held; pd was in bucket(count).
            unsafe { inner.buckets[count].remove(pd) };
            wr(&inner.buckets[count]);
            if left > 0 {
                // SAFETY: lock held; pd is unlisted.
                unsafe { inner.buckets[left].push_front(pd) };
                wr(&inner.buckets[left]);
            }
        }
        Ok(chain)
    }

    unsafe fn free(&self, mut chain: Chain) {
        let mut inner = self.inner.lock();
        while let Some(blk) = chain.pop() {
            let pd = self
                .vm
                .pd_of(blk as usize)
                .expect("freed block not managed by this allocator");
            let pd_ptr = pd as *const PageDesc as *mut PageDesc;
            // SAFETY: page-layer lock held; this class owns the page.
            let pdi = unsafe { pd.inner() };
            rd(pd_ptr);
            // SAFETY: `blk` is free and ours per the function contract.
            unsafe { block::write_next(blk, pdi.freelist, block::LinkKey::PLAIN) };
            wr(blk);
            pdi.freelist = blk;
            let count = pdi.free_count as usize + 1;
            pdi.free_count = count as u32;
            wr(pd_ptr);
            inner.free_blocks += 1;
            wr(&inner.free_blocks);
            if count == self.blocks_per_page {
                if count > 1 {
                    // SAFETY: lock held; pd was in bucket (count - 1).
                    unsafe { inner.buckets[count - 1].remove(pd_ptr) };
                    wr(&inner.buckets[count - 1]);
                }
                self.release_page(&mut inner, pd);
            } else if count == 1 {
                // SAFETY: lock held; pd is unlisted.
                unsafe { inner.buckets[1].push_front(pd_ptr) };
                wr(&inner.buckets[1]);
            } else {
                // SAFETY: lock held; pd is in bucket (count - 1).
                unsafe {
                    inner.buckets[count - 1].remove(pd_ptr);
                    inner.buckets[count].push_front(pd_ptr);
                }
                wr(&inner.buckets[count - 1]);
                wr(&inner.buckets[count]);
            }
        }
    }
}

/// Times `threads` × [`OPS_PER_THREAD`] free-oldest + alloc-replacement
/// pairs against `pool`; returns ns per pair.
fn run_pairs(pool: &dyn PagePool, threads: usize) -> f64 {
    let barrier = Barrier::new(threads);
    // Phase wall = max(end) - min(start), stamped inside the workers:
    // the worker rolling straight through the barrier release stamps the
    // true phase start. (Spawner-side timing reads near zero when the
    // workers finish before the spawner is rescheduled; per-worker spans
    // alone fake an N-times speedup when a serialized phase reschedules
    // each worker just before its own loop.)
    let spans: Vec<(Instant, Instant)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    // Standing ring: keeps pages partial so the radix lists,
                    // not just carve/merge, carry the traffic.
                    let mut ring: Vec<Chain> = (0..RING)
                        .map(|_| pool.alloc(WANT).expect("bench sized for no pressure"))
                        .collect();
                    barrier.wait();
                    let start = Instant::now();
                    for i in 0..OPS_PER_THREAD {
                        let old = std::mem::replace(
                            &mut ring[i % RING],
                            pool.alloc(WANT).expect("bench sized for no pressure"),
                        );
                        // SAFETY: `old` was allocated from `pool` above.
                        unsafe { pool.free(old) };
                    }
                    let end = Instant::now();
                    for c in ring {
                        // SAFETY: ring chains were allocated from `pool`.
                        unsafe { pool.free(c) };
                    }
                    (start, end)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let start = spans.iter().map(|&(s, _)| s).min().unwrap();
    let end = spans.iter().map(|&(_, e)| e).max().unwrap();
    (end - start).as_nanos() as f64 / (threads * OPS_PER_THREAD) as f64
}

fn bench_spin(threads: usize) -> f64 {
    run_pairs(&SpinPage::new(), threads)
}

fn bench_lockfree(threads: usize) -> f64 {
    let pool = LockFree::new();
    let ns = run_pairs(&pool, threads);
    pool.assert_drained();
    ns
}

/// Runs the ring workload on `ncpus` virtual CPUs of the DES and returns
/// (pairs per simulated second, fraction of CPU-time spent lock-waiting).
fn sim_point(pool: &dyn PagePool, ncpus: usize) -> (f64, f64) {
    // Rings are built (and torn down) outside the recording window, as
    // the wall-clock runs build theirs before the barrier.
    let mut rings: Vec<Vec<Chain>> = (0..ncpus)
        .map(|_| {
            (0..RING)
                .map(|_| pool.alloc(WANT).expect("bench sized for no pressure"))
                .collect()
        })
        .collect();
    let mut next = vec![0usize; ncpus];
    let result = Simulator::new(SimConfig::new(ncpus, SIM_PAIRS_PER_CPU)).run(|vcpu| {
        let i = next[vcpu];
        next[vcpu] = (i + 1) % RING;
        let old = std::mem::replace(
            &mut rings[vcpu][i],
            pool.alloc(WANT).expect("bench sized for no pressure"),
        );
        // SAFETY: `old` was allocated from `pool` above.
        unsafe { pool.free(old) };
        SIM_BASE
    });
    for ring in rings {
        for c in ring {
            // SAFETY: ring chains were allocated from `pool`.
            unsafe { pool.free(c) };
        }
    }
    let wait_frac =
        result.lock_wait_cycles as f64 / (result.elapsed_cycles.max(1) as f64 * ncpus as f64);
    (result.ops_per_sec(), wait_frac)
}

fn main() {
    // Wall clock: informational on a small host (see module docs).
    let mut wall = Vec::new();
    for threads in THREAD_COUNTS {
        // Warm-up pass absorbs thread-spawn and first-touch costs.
        let _ = bench_spin(threads);
        let _ = bench_lockfree(threads);
        // Interleaved repetitions, min of each side: scheduler spikes are
        // filtered out of both layers alike.
        let mut spin = f64::INFINITY;
        let mut lockfree = f64::INFINITY;
        for _ in 0..REPS {
            spin = spin.min(bench_spin(threads));
            lockfree = lockfree.min(bench_lockfree(threads));
        }
        println!(
            "page_contention/wall {threads:>2} threads   spinlock {spin:>8.1} ns/pair   \
             lock-free {lockfree:>8.1} ns/pair   ({:.2}x)",
            spin / lockfree
        );
        wall.push((threads, spin, lockfree));
    }

    // Simulated SMP: the priced comparison the assertion pins.
    let mut sim = Vec::new();
    for ncpus in SIM_CPUS {
        let (spin_rate, spin_wait) = sim_point(&SpinPage::new(), ncpus);
        let pool = LockFree::new();
        let (lf_rate, _) = sim_point(&pool, ncpus);
        pool.assert_drained();
        println!(
            "page_contention/sim  {ncpus:>2} cpus      spinlock {spin_rate:>9.0} pairs/s \
             (lock-wait {:>4.1}%)   lock-free {lf_rate:>9.0} pairs/s   ({:.2}x)",
            spin_wait * 100.0,
            lf_rate / spin_rate
        );
        sim.push((ncpus, spin_rate, lf_rate, spin_wait));
    }

    let mut report = kmem_bench::BenchReport::new("page_contention", 0).config(|c| {
        c.usize("block_size", BLOCK_SIZE)
            .usize("chain_len", WANT)
            .usize("ops_per_thread", OPS_PER_THREAD);
    });
    report
        .body()
        .arr("wall", &wall, |&(threads, spin, lockfree), row| {
            row.usize("threads", threads)
                .f64("spinlock_ns", spin, 1)
                .f64("lockfree_ns", lockfree, 1);
        });
    report.body().obj("sim", |s| {
        s.u64("pairs_per_cpu", SIM_PAIRS_PER_CPU)
            .u64("base_cycles", SIM_BASE)
            .arr(
                "results",
                &sim,
                |&(ncpus, spin_rate, lf_rate, spin_wait), row| {
                    row.usize("cpus", ncpus)
                        .f64("spinlock_pairs_per_sec", spin_rate, 0)
                        .f64("lockfree_pairs_per_sec", lf_rate, 0)
                        .f64("spinlock_lock_wait_frac", spin_wait, 3);
                },
            );
    });
    report.write_artifact("BENCH_page.json");

    // Shape pins on the simulated sweep: at 8+ CPUs the lock-free layer
    // must beat the spinlocked baseline, and the baseline must be
    // visibly lock-bound (that being the mechanism of its defeat).
    for &(ncpus, spin_rate, lf_rate, spin_wait) in &sim {
        if ncpus >= 8 {
            assert!(
                lf_rate > spin_rate,
                "lock-free page layer slower than spinlock at {ncpus} simulated CPUs: \
                 {lf_rate:.0} vs {spin_rate:.0} pairs/s"
            );
            assert!(
                spin_wait > 0.2,
                "spinlocked baseline at {ncpus} CPUs waits only {:.1}% — \
                 contention model regressed",
                spin_wait * 100.0
            );
        }
    }
}
