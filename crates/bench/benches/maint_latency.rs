//! Tail latency of the slow path: maintenance core vs inline drains.
//!
//! The maintenance core does not make the *mean* allocation cheaper — it
//! moves the locked global-layer work (trims, regroups, spills) off the
//! hot CPU's critical path and onto a background thread, in exchange for
//! one wait-free mailbox post. The honest win criterion is therefore the
//! *tail*: the p99/p999 of the per-iteration latency distribution, where
//! the inline configuration pays the lock-and-walk cost every time a
//! flush crosses the global layer and the core configuration pays a
//! single tagged-counter RMW.
//!
//! Each thread runs grow/shrink waves: allocate [`BURST`] blocks into a
//! stash, then free them all, repeatedly (connection-churn traffic, not
//! a closed loop — a closed alloc/free loop balances global-layer
//! inflow against refill outflow and the trim threshold never sustains
//! pressure). During a free burst the per-CPU cache overflows every
//! `target` frees and the global layer sits past its bound, so the
//! inline profile pays the locked trim-and-spill into the page layer on
//! ~6% of iterations — well above the p99 cut — while the core profile
//! pushes the same chains wait-free and posts a deduplicated `Trim`.
//! Every iteration is timed individually; the sides are identical
//! except `MaintConfig` and the presence of the background pump.
//!
//! Published numbers are the minimum over [`REPS`] repetitions per side
//! (per-rep percentiles; the min filters scheduler interference, which
//! hits both sides alike on a loaded host). Emits `BENCH_maint.json` at
//! the repo root and self-asserts the win shape at [`ASSERT_THREADS`]+
//! threads: core p99 and p999 strictly below inline, mean within
//! [`MEAN_SLACK`] of inline.
//!
//! Run with: `cargo bench --features bench-ext --bench maint_latency`

use std::sync::Barrier;
use std::time::Instant;

use kmem::{KmemArena, KmemConfig, MaintConfig};
use kmem_bench::BenchReport;
use kmem_vm::SpaceConfig;

const SIZE: usize = 256;
const THREAD_COUNTS: [usize; 3] = [2, 4, 8];
const OPS_PER_THREAD: usize = 20_000;
/// Blocks per grow/shrink wave. Each free burst drives ~BURST/target
/// overflow puts through a global layer already past its bound — the
/// sustained net inflow that makes trim work land on the hot CPU in the
/// inline profile.
const BURST: usize = 256;
/// Flush period: keeps drain requests serviced and adds occasional
/// odd-chain evictions on top of the burst traffic.
const FLUSH_EVERY: usize = 64;
/// Timed repetitions per (side, thread count); minima are published.
const REPS: usize = 5;
/// Thread counts at which the tail-latency win is asserted.
const ASSERT_THREADS: usize = 8;
/// Allowed mean regression for the core side: the offload buys tail,
/// not throughput, and must not tax the average by more than this.
const MEAN_SLACK: f64 = 1.10;

#[derive(Clone, Copy)]
struct LatSummary {
    mean_ns: f64,
    p50_ns: f64,
    p99_ns: f64,
    p999_ns: f64,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64
}

/// One timed run: every thread times each iteration (alloc/free pair
/// plus the periodic flush) individually; returns the merged summary.
fn run_once(maint: bool, threads: usize) -> LatSummary {
    // A tight global bound (gbltarget = target = 8) keeps the global
    // layer permanently at its trim threshold under the ring churn, so
    // overflow puts continually cross it: the inline profile pays the
    // trim-and-spill into the page layer inside the timed iteration,
    // the core profile hands the same work to the maintenance thread.
    let mut config =
        KmemConfig::new(threads, SpaceConfig::new(16 << 20).vmblk_shift(18)).set_class(SIZE, 8, 8);
    if maint {
        config = config.maint(MaintConfig::on());
    }
    let arena = KmemArena::new(config).unwrap();
    let pump = arena.start_maint_thread();
    let cookie = arena.cookie_for(SIZE).unwrap();
    let barrier = Barrier::new(threads);
    let mut all: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let arena = &arena;
                let barrier = &barrier;
                s.spawn(move || {
                    let cpu = arena.register_cpu().unwrap();
                    let mut stash: Vec<std::ptr::NonNull<u8>> = Vec::with_capacity(BURST);
                    let mut growing = true;
                    let mut samples = Vec::with_capacity(OPS_PER_THREAD);
                    barrier.wait();
                    for i in 1..=OPS_PER_THREAD {
                        let t0 = Instant::now();
                        if growing {
                            let p = cpu.alloc_cookie(cookie).unwrap();
                            std::hint::black_box(p);
                            stash.push(p);
                            growing = stash.len() < BURST;
                        } else {
                            let p = stash.pop().unwrap();
                            // SAFETY: allocated by this loop, freed once.
                            unsafe { cpu.free_cookie(p, cookie) };
                            growing = stash.is_empty();
                        }
                        if i % FLUSH_EVERY == 0 {
                            cpu.flush();
                        }
                        samples.push(t0.elapsed().as_nanos() as u64);
                    }
                    for p in stash {
                        // SAFETY: allocated above, freed exactly once.
                        unsafe { cpu.free_cookie(p, cookie) };
                    }
                    cpu.flush();
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    drop(pump);
    if maint {
        // The offload must actually have been exercised, and the final
        // pump must have settled the mailbox exactly.
        let snap = arena.snapshot();
        assert!(snap.maint.posted > 0, "core side never posted work");
        assert_eq!(arena.maint_backlog(), 0, "pump left a backlog");
        assert_eq!(snap.maint.drained, snap.maint.posted - snap.maint.deduped);
    }
    all.sort_unstable();
    if std::env::var("KMEM_MAINT_BENCH_DEBUG").is_ok() {
        let side = if maint { "core" } else { "inline" };
        let qs = [0.5, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9999, 1.0];
        let ladder: Vec<String> = qs
            .iter()
            .map(|&q| format!("p{:.2}={:.0}", 100.0 * q, percentile(&all, q)))
            .collect();
        let snap = arena.snapshot();
        let (mut pf, mut ps, mut pm, mut spill) = (0u64, 0u64, 0u64, 0u64);
        for cs in &snap.classes {
            pf += cs.global.put_fast;
            ps += cs.global.put_slow;
            pm += cs.global.put_miss;
            spill += cs.global.spill_blocks;
        }
        eprintln!(
            "DEBUG {side}/{threads}t: {} | put_fast={pf} put_slow={ps} \
             put_miss={pm} spill_blocks={spill} maint={:?}",
            ladder.join(" "),
            snap.maint
        );
    }
    LatSummary {
        mean_ns: all.iter().sum::<u64>() as f64 / all.len() as f64,
        p50_ns: percentile(&all, 0.50),
        p99_ns: percentile(&all, 0.99),
        p999_ns: percentile(&all, 0.999),
    }
}

/// Min-of-reps per field: the intrinsic distribution with scheduler
/// spikes (which inflate every field independently) filtered out.
fn bench_side(maint: bool, threads: usize) -> LatSummary {
    let _ = run_once(maint, threads); // warm-up
    let mut best = LatSummary {
        mean_ns: f64::INFINITY,
        p50_ns: f64::INFINITY,
        p99_ns: f64::INFINITY,
        p999_ns: f64::INFINITY,
    };
    for _ in 0..REPS {
        let s = run_once(maint, threads);
        best.mean_ns = best.mean_ns.min(s.mean_ns);
        best.p50_ns = best.p50_ns.min(s.p50_ns);
        best.p99_ns = best.p99_ns.min(s.p99_ns);
        best.p999_ns = best.p999_ns.min(s.p999_ns);
    }
    best
}

fn main() {
    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let inline = bench_side(false, threads);
        let core = bench_side(true, threads);
        println!(
            "maint_latency/{threads} threads   inline p99 {:>8.0} p999 {:>8.0} ns   \
             core p99 {:>8.0} p999 {:>8.0} ns   (mean {:.0} vs {:.0})",
            inline.p99_ns, inline.p999_ns, core.p99_ns, core.p999_ns, inline.mean_ns, core.mean_ns
        );
        rows.push((threads, inline, core));
    }

    let side = |s: &LatSummary, obj: &mut kmem_bench::JsonObj| {
        obj.f64("mean_ns", s.mean_ns, 1)
            .f64("p50_ns", s.p50_ns, 0)
            .f64("p99_ns", s.p99_ns, 0)
            .f64("p999_ns", s.p999_ns, 0);
    };
    let mut report = BenchReport::new("maint_latency", 0).config(|c| {
        c.usize("size", SIZE)
            .usize("ops_per_thread", OPS_PER_THREAD)
            .usize("flush_every", FLUSH_EVERY)
            .usize("reps", REPS);
    });
    report
        .body()
        .arr("results", &rows, |(threads, inline, core), row| {
            row.usize("threads", *threads)
                .obj("inline", |o| side(inline, o))
                .obj("core", |o| side(core, o));
        });
    report.write_artifact("BENCH_maint.json");

    // Win shape: at high thread counts the core must buy the tail
    // without taxing the mean.
    for (threads, inline, core) in rows {
        if threads >= ASSERT_THREADS {
            assert!(
                core.p99_ns < inline.p99_ns,
                "core p99 {:.0} ns not below inline {:.0} ns at {threads} threads",
                core.p99_ns,
                inline.p99_ns
            );
            assert!(
                core.p999_ns < inline.p999_ns,
                "core p999 {:.0} ns not below inline {:.0} ns at {threads} threads",
                core.p999_ns,
                inline.p999_ns
            );
            assert!(
                core.mean_ns <= inline.mean_ns * MEAN_SLACK,
                "core mean {:.1} ns taxes inline {:.1} ns by more than {MEAN_SLACK}x \
                 at {threads} threads",
                core.mean_ns,
                inline.mean_ns
            );
        }
    }
}
