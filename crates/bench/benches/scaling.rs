//! E3/E4 — simulated-SMP scaling points.
//!
//! Wraps the Figure 7 DES driver so the scaling data is regenerated under
//! the bench harness too. The *figure itself* is printed by the `fig7`
//! binary; this bench tracks the simulation cost and pins the headline
//! shape (cookie scales, mk does not) as assertions.
//!
//! Runs under the in-tree harness: `cargo bench --features bench-ext`.

use kmem::{KmemArena, KmemConfig};
use kmem_baselines::{KmemCookieAlloc, MkAllocator};
use kmem_bench::{bench_ns, sim_pairs_per_sec, BASE_COOKIE, BASE_MK};
use kmem_vm::SpaceConfig;

fn main() {
    for ncpus in [1usize, 8, 25] {
        bench_ns(&format!("fig7_sim/cookie/{ncpus}"), 10, || {
            let arena = KmemArena::new(KmemConfig::new(ncpus, SpaceConfig::new(32 << 20))).unwrap();
            let a = KmemCookieAlloc::new(arena);
            std::hint::black_box(sim_pairs_per_sec(&a, 256, ncpus, 1_000, BASE_COOKIE));
        });
        bench_ns(&format!("fig7_sim/mk/{ncpus}"), 10, || {
            let a = MkAllocator::new(32 << 20, 8192);
            std::hint::black_box(sim_pairs_per_sec(&a, 256, ncpus, 1_000, BASE_MK));
        });
    }

    // Shape pin: regressions in the allocator that break scaling fail
    // the bench run itself.
    let cookie1 = {
        let a = KmemCookieAlloc::new(
            KmemArena::new(KmemConfig::new(1, SpaceConfig::new(32 << 20))).unwrap(),
        );
        sim_pairs_per_sec(&a, 256, 1, 2_000, BASE_COOKIE).pairs_per_sec
    };
    let cookie25 = {
        let a = KmemCookieAlloc::new(
            KmemArena::new(KmemConfig::new(25, SpaceConfig::new(32 << 20))).unwrap(),
        );
        sim_pairs_per_sec(&a, 256, 25, 2_000, BASE_COOKIE).pairs_per_sec
    };
    assert!(
        cookie25 / cookie1 > 20.0,
        "cookie scaling regressed: {:.1}x at 25 CPUs",
        cookie25 / cookie1
    );
    println!("cookie scaling 1→25 CPUs: {:.1}x", cookie25 / cookie1);
}
