//! E3/E4 (Criterion) — simulated-SMP scaling points.
//!
//! Wraps the Figure 7 DES driver so the scaling data is regenerated under
//! Criterion's statistics too. The *figure itself* is printed by the
//! `fig7` binary; this bench tracks the simulation cost and pins the
//! headline shape (cookie scales, mk does not) as assertions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmem::{KmemArena, KmemConfig};
use kmem_baselines::{KmemCookieAlloc, MkAllocator};
use kmem_bench::{sim_pairs_per_sec, BASE_COOKIE, BASE_MK};
use kmem_vm::SpaceConfig;

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_sim");
    group.sample_size(10);
    for ncpus in [1usize, 8, 25] {
        group.bench_with_input(
            BenchmarkId::new("cookie", ncpus),
            &ncpus,
            |b, &ncpus| {
                b.iter(|| {
                    let arena = KmemArena::new(KmemConfig::new(
                        ncpus,
                        SpaceConfig::new(32 << 20),
                    ))
                    .unwrap();
                    let a = KmemCookieAlloc::new(arena);
                    sim_pairs_per_sec(&a, 256, ncpus, 1_000, BASE_COOKIE)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("mk", ncpus), &ncpus, |b, &ncpus| {
            b.iter(|| {
                let a = MkAllocator::new(32 << 20, 8192);
                sim_pairs_per_sec(&a, 256, ncpus, 1_000, BASE_MK)
            })
        });
    }
    group.finish();

    // Shape pin: regressions in the allocator that break scaling fail
    // the bench run itself.
    let cookie1 = {
        let a = KmemCookieAlloc::new(
            KmemArena::new(KmemConfig::new(1, SpaceConfig::new(32 << 20))).unwrap(),
        );
        sim_pairs_per_sec(&a, 256, 1, 2_000, BASE_COOKIE).pairs_per_sec
    };
    let cookie25 = {
        let a = KmemCookieAlloc::new(
            KmemArena::new(KmemConfig::new(25, SpaceConfig::new(32 << 20))).unwrap(),
        );
        sim_pairs_per_sec(&a, 256, 25, 2_000, BASE_COOKIE).pairs_per_sec
    };
    assert!(
        cookie25 / cookie1 > 20.0,
        "cookie scaling regressed: {:.1}x at 25 CPUs",
        cookie25 / cookie1
    );
}

criterion_group!(benches, scaling);
criterion_main!(benches);
