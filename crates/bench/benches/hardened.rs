//! Hardened-profile overhead: the fast-path price of each defense.
//!
//! The same steady-state alloc/free pair as the `ops` bench (256-byte
//! cookie interface, per-CPU cache hits only), swept across profiles:
//! the default plain profile, each hardened defense alone, and the full
//! quartet. The published number is the *minimum* of several timed reps
//! per profile — the defense cost is a lower-bound property of the code
//! path, and the min discards scheduler noise.
//!
//! A second sweep prices the full quartet under *contention*: real
//! threads with periodic flushes pushing traffic through the shared
//! global layer, default vs hardened, across thread counts.
//!
//! Emits `BENCH_hardened.json` at the repo root and self-asserts the
//! shape: every defense must price in at under `MAX_MULT` times the
//! default-profile pair, the full profile under `MAX_FULL_MULT`, and
//! the contended full profile under `MAX_CONTENDED_MULT` — the
//! hardening is a tax, not a redesign.
//!
//! Run with: `cargo bench --features bench-ext --bench hardened`

use kmem::{HardenedConfig, KmemArena, KmemConfig};
use kmem_bench::{arena_contended_pair_ns, time_loop, BenchReport};
use kmem_vm::SpaceConfig;

const ITERS: u64 = 1_000_000;
/// Timed repetitions per profile; the minimum is published.
const REPS: usize = 5;
/// Bound on any single defense's pair-cost multiplier vs default.
/// Deliberately loose: the default pair is ~10 ns, so frequency
/// scaling and core placement swing the *ratio* hard even when the
/// defense's absolute cost is stable (poison, the priciest, adds a
/// 256-byte write+verify — ~15 ns — per pair).
const MAX_MULT: f64 = 4.0;
/// Bound on the full quartet's pair-cost multiplier vs default.
const MAX_FULL_MULT: f64 = 6.0;
/// Bound on the full quartet under *contention* — looser still, since
/// shared-line traffic dominates there and ratios swing with scheduling.
const MAX_CONTENDED_MULT: f64 = 8.0;
const SIZE: usize = 256;
const SEED: u64 = 0x4245_4e43_4852_444e; // "BENCHRDN"
/// Contended sweep: thread counts, pairs per thread, and the flush
/// period that forces traffic through the shared global layer.
const CONTENTION_THREADS: [usize; 3] = [1, 4, 8];
const CONTENTION_OPS: usize = 20_000;
const CONTENTION_FLUSH_EVERY: usize = 64;
const CONTENTION_REPS: usize = 3;

/// Min-of-reps steady-state alloc/free pair cost under `hardened`.
fn bench_profile(name: &str, hardened: HardenedConfig) -> f64 {
    let arena = KmemArena::new(KmemConfig::small().hardened(hardened)).unwrap();
    let cpu = arena.register_cpu().unwrap();
    let cookie = arena.cookie_for(SIZE).unwrap();
    // Steady state: warm the per-CPU layer so every timed pair is a
    // cache hit (and, in quarantined profiles, fill the ring so every
    // timed free takes the park-and-evict path, not the cheaper
    // fill-up path).
    for _ in 0..1024 {
        let p = cpu.alloc_cookie(cookie).unwrap();
        // SAFETY: allocated just above, freed exactly once.
        unsafe { cpu.free_cookie(p, cookie) };
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let ns = time_loop(ITERS, || {
            let p = cpu.alloc_cookie(cookie).unwrap();
            std::hint::black_box(p);
            // SAFETY: allocated just above, freed exactly once.
            unsafe { cpu.free_cookie(p, cookie) };
        });
        best = best.min(ns);
    }
    let snap = arena.snapshot();
    assert_eq!(
        snap.corruption_reports, 0,
        "clean bench traffic tripped a detector under {name}: {snap:?}"
    );
    println!("hardened/{name:<12} {best:>8.1} ns/pair   (min of {REPS}x{ITERS})");
    best
}

/// Min-of-reps contended pair cost for `hardened` at `threads` threads.
fn bench_contended(hardened: HardenedConfig, threads: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..CONTENTION_REPS {
        let config =
            KmemConfig::new(threads, SpaceConfig::new(16 << 20).vmblk_shift(18)).hardened(hardened);
        best = best.min(arena_contended_pair_ns(
            config,
            SIZE,
            threads,
            CONTENTION_OPS,
            CONTENTION_FLUSH_EVERY,
        ));
    }
    best
}

fn main() {
    let off = HardenedConfig::off();
    let profiles: [(&str, HardenedConfig); 6] = [
        ("default", off),
        (
            "encode",
            HardenedConfig {
                encode: true,
                seed: SEED,
                ..off
            },
        ),
        (
            "poison",
            HardenedConfig {
                poison: true,
                seed: SEED,
                ..off
            },
        ),
        (
            "randomize",
            HardenedConfig {
                randomize: true,
                seed: SEED,
                ..off
            },
        ),
        (
            "quarantine",
            HardenedConfig {
                quarantine: 8,
                seed: SEED,
                ..off
            },
        ),
        ("full", HardenedConfig::full(SEED)),
    ];

    let results: Vec<(&str, f64)> = profiles
        .iter()
        .map(|&(name, h)| (name, bench_profile(name, h)))
        .collect();
    let baseline = results[0].1;

    // Price the defenses under contention as well: the same profile pair
    // (default vs full quartet) with real threads pushing flush traffic
    // through the shared global layer.
    let mut contention = Vec::new();
    for threads in CONTENTION_THREADS {
        let default_ns = bench_contended(off, threads);
        let hardened_ns = bench_contended(HardenedConfig::full(SEED), threads);
        println!(
            "hardened/contended/{threads} threads   default {default_ns:>8.1} ns/pair   \
             full {hardened_ns:>8.1} ns/pair   ({:.2}x)",
            hardened_ns / default_ns
        );
        contention.push((threads, default_ns, hardened_ns));
    }

    let mut report = BenchReport::new("hardened", SEED).config(|c| {
        c.usize("size", SIZE)
            .u64("iters", ITERS)
            .usize("reps", REPS)
            .usize("contention_ops", CONTENTION_OPS)
            .usize("contention_flush_every", CONTENTION_FLUSH_EVERY)
            .usize("contention_reps", CONTENTION_REPS);
    });
    report.body().arr("results", &results, |&(name, ns), row| {
        row.str("profile", name).f64("pair_ns", ns, 1).f64(
            "overhead_pct",
            100.0 * (ns / baseline - 1.0),
            1,
        );
    });
    report.body().arr(
        "contention",
        &contention,
        |&(threads, default_ns, hardened_ns), row| {
            row.usize("threads", threads)
                .f64("default_ns", default_ns, 1)
                .f64("hardened_ns", hardened_ns, 1)
                .f64("overhead_pct", 100.0 * (hardened_ns / default_ns - 1.0), 1);
        },
    );
    report.write_artifact("BENCH_hardened.json");

    // Shape pins: hardening is a bounded tax on the fast path, per
    // defense and in aggregate.
    for (name, ns) in &results[1..results.len() - 1] {
        assert!(
            *ns <= baseline * MAX_MULT,
            "defense {name} costs {ns:.1} ns/pair vs {baseline:.1} default \
             (over {MAX_MULT}x)"
        );
    }
    let full = results.last().unwrap().1;
    assert!(
        full <= baseline * MAX_FULL_MULT,
        "full profile costs {full:.1} ns/pair vs {baseline:.1} default \
         (over {MAX_FULL_MULT}x)"
    );
    for (threads, default_ns, hardened_ns) in contention {
        assert!(
            hardened_ns <= default_ns * MAX_CONTENDED_MULT,
            "contended full profile costs {hardened_ns:.1} ns/pair vs \
             {default_ns:.1} default at {threads} threads \
             (over {MAX_CONTENDED_MULT}x)"
        );
    }
}
