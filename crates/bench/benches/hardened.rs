//! Hardened-profile overhead: the fast-path price of each defense.
//!
//! The same steady-state alloc/free pair as the `ops` bench (256-byte
//! cookie interface, per-CPU cache hits only), swept across profiles:
//! the default plain profile, each hardened defense alone, and the full
//! quartet. The published number is the *minimum* of several timed reps
//! per profile — the defense cost is a lower-bound property of the code
//! path, and the min discards scheduler noise.
//!
//! Emits `BENCH_hardened.json` at the repo root and self-asserts the
//! shape: every defense must price in at under `MAX_MULT` times the
//! default-profile pair, and the full profile under `MAX_FULL_MULT` —
//! the hardening is a tax, not a redesign.
//!
//! Run with: `cargo bench --features bench-ext --bench hardened`

use kmem::{HardenedConfig, KmemArena, KmemConfig};
use kmem_bench::time_loop;

const ITERS: u64 = 1_000_000;
/// Timed repetitions per profile; the minimum is published.
const REPS: usize = 5;
/// Bound on any single defense's pair-cost multiplier vs default.
/// Deliberately loose: the default pair is ~10 ns, so frequency
/// scaling and core placement swing the *ratio* hard even when the
/// defense's absolute cost is stable (poison, the priciest, adds a
/// 256-byte write+verify — ~15 ns — per pair).
const MAX_MULT: f64 = 4.0;
/// Bound on the full quartet's pair-cost multiplier vs default.
const MAX_FULL_MULT: f64 = 6.0;
const SIZE: usize = 256;
const SEED: u64 = 0x4245_4e43_4852_444e; // "BENCHRDN"

/// Min-of-reps steady-state alloc/free pair cost under `hardened`.
fn bench_profile(name: &str, hardened: HardenedConfig) -> f64 {
    let arena = KmemArena::new(KmemConfig::small().hardened(hardened)).unwrap();
    let cpu = arena.register_cpu().unwrap();
    let cookie = arena.cookie_for(SIZE).unwrap();
    // Steady state: warm the per-CPU layer so every timed pair is a
    // cache hit (and, in quarantined profiles, fill the ring so every
    // timed free takes the park-and-evict path, not the cheaper
    // fill-up path).
    for _ in 0..1024 {
        let p = cpu.alloc_cookie(cookie).unwrap();
        // SAFETY: allocated just above, freed exactly once.
        unsafe { cpu.free_cookie(p, cookie) };
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let ns = time_loop(ITERS, || {
            let p = cpu.alloc_cookie(cookie).unwrap();
            std::hint::black_box(p);
            // SAFETY: allocated just above, freed exactly once.
            unsafe { cpu.free_cookie(p, cookie) };
        });
        best = best.min(ns);
    }
    let snap = arena.snapshot();
    assert_eq!(
        snap.corruption_reports, 0,
        "clean bench traffic tripped a detector under {name}: {snap:?}"
    );
    println!("hardened/{name:<12} {best:>8.1} ns/pair   (min of {REPS}x{ITERS})");
    best
}

fn main() {
    use core::fmt::Write as _;

    let off = HardenedConfig::off();
    let profiles: [(&str, HardenedConfig); 6] = [
        ("default", off),
        (
            "encode",
            HardenedConfig {
                encode: true,
                seed: SEED,
                ..off
            },
        ),
        (
            "poison",
            HardenedConfig {
                poison: true,
                seed: SEED,
                ..off
            },
        ),
        (
            "randomize",
            HardenedConfig {
                randomize: true,
                seed: SEED,
                ..off
            },
        ),
        (
            "quarantine",
            HardenedConfig {
                quarantine: 8,
                seed: SEED,
                ..off
            },
        ),
        ("full", HardenedConfig::full(SEED)),
    ];

    let results: Vec<(&str, f64)> = profiles
        .iter()
        .map(|&(name, h)| (name, bench_profile(name, h)))
        .collect();
    let baseline = results[0].1;

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"hardened\",\"size\":{SIZE},\"iters\":{ITERS},\
         \"reps\":{REPS},\"results\":["
    );
    for (i, (name, ns)) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"profile\":\"{name}\",\"pair_ns\":{ns:.1},\
             \"overhead_pct\":{:.1}}}",
            100.0 * (ns / baseline - 1.0)
        );
    }
    json.push_str("]}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hardened.json");
    std::fs::write(path, &json).expect("write BENCH_hardened.json");
    println!("wrote {path}");

    // Shape pins: hardening is a bounded tax on the fast path, per
    // defense and in aggregate.
    for (name, ns) in &results[1..results.len() - 1] {
        assert!(
            *ns <= baseline * MAX_MULT,
            "defense {name} costs {ns:.1} ns/pair vs {baseline:.1} default \
             (over {MAX_MULT}x)"
        );
    }
    let full = results.last().unwrap().1;
    assert!(
        full <= baseline * MAX_FULL_MULT,
        "full profile costs {full:.1} ns/pair vs {baseline:.1} default \
         (over {MAX_FULL_MULT}x)"
    );
}
