//! [`KernelAllocator`] adapters for the new allocator's two interfaces.

use core::ptr::NonNull;

use kmem::{Cookie, CpuHandle, KmemArena};

use crate::KernelAllocator;

/// The new allocator through its standard System V interface
/// (`kmem_alloc(size)` / `kmem_free(addr, size)`) — the paper's "newkma"
/// trace.
pub struct KmemStdAlloc {
    arena: KmemArena,
}

impl KmemStdAlloc {
    /// Wraps an arena.
    pub fn new(arena: KmemArena) -> Self {
        KmemStdAlloc { arena }
    }

    /// The wrapped arena (stats, reclaim).
    pub fn arena(&self) -> &KmemArena {
        &self.arena
    }
}

impl KernelAllocator for KmemStdAlloc {
    type Ctx = CpuHandle;
    type Prep = usize;

    fn name(&self) -> &'static str {
        "newkma"
    }

    fn register(&self) -> CpuHandle {
        self.arena.register_cpu().expect("out of virtual CPUs")
    }

    fn prepare(&self, size: usize) -> usize {
        size
    }

    fn alloc(&self, ctx: &mut CpuHandle, size: usize) -> Option<NonNull<u8>> {
        ctx.alloc(size).ok()
    }

    unsafe fn free(&self, ctx: &mut CpuHandle, ptr: NonNull<u8>, size: usize) {
        // SAFETY: forwarded caller contract.
        unsafe { ctx.free_sized(ptr, size) };
    }
}

/// The new allocator through the cookie interface — the paper's "cookie"
/// trace, its fastest configuration.
pub struct KmemCookieAlloc {
    arena: KmemArena,
}

impl KmemCookieAlloc {
    /// Wraps an arena.
    pub fn new(arena: KmemArena) -> Self {
        KmemCookieAlloc { arena }
    }

    /// The wrapped arena (stats, reclaim).
    pub fn arena(&self) -> &KmemArena {
        &self.arena
    }
}

impl KernelAllocator for KmemCookieAlloc {
    type Ctx = CpuHandle;
    type Prep = Cookie;

    fn name(&self) -> &'static str {
        "cookie"
    }

    fn register(&self) -> CpuHandle {
        self.arena.register_cpu().expect("out of virtual CPUs")
    }

    fn prepare(&self, size: usize) -> Cookie {
        self.arena
            .cookie_for(size)
            .expect("size not served by a class")
    }

    fn alloc(&self, ctx: &mut CpuHandle, cookie: Cookie) -> Option<NonNull<u8>> {
        ctx.alloc_cookie(cookie).ok()
    }

    unsafe fn free(&self, ctx: &mut CpuHandle, ptr: NonNull<u8>, cookie: Cookie) {
        // SAFETY: forwarded caller contract.
        unsafe { ctx.free_cookie(ptr, cookie) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem::KmemConfig;

    fn drive<A: KernelAllocator>(alloc: &A, size: usize, rounds: usize) {
        let mut ctx = alloc.register();
        let prep = alloc.prepare(size);
        for _ in 0..rounds {
            let p = alloc.alloc(&mut ctx, prep).unwrap();
            // SAFETY: allocated above, freed once, same prep.
            unsafe { alloc.free(&mut ctx, p, prep) };
        }
    }

    #[test]
    fn all_four_allocators_drive_through_the_trait() {
        let a1 = KmemStdAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
        let a2 = KmemCookieAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
        let a3 = crate::MkAllocator::new(4 << 20, 512);
        let a4 = crate::OldKma::new(4 << 20, 1024);
        drive(&a1, 256, 100);
        drive(&a2, 256, 100);
        drive(&a3, 256, 100);
        drive(&a4, 256, 100);
        assert_eq!(a3.stats().allocs.get(), 100);
        assert_eq!(a4.stats().allocs.get(), 100);
    }

    #[test]
    fn contexts_work_across_threads() {
        let alloc = KmemCookieAlloc::new(KmemArena::new(KmemConfig::small()).unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let alloc = &alloc;
                s.spawn(move || drive(alloc, 128, 500));
            }
        });
        let stats = alloc.arena().stats();
        assert_eq!(stats.total_allocs(), 2000);
    }
}
