//! Baseline allocators from the paper's evaluation.
//!
//! Figure 7/8 of the paper compares four allocators:
//!
//! 1. `cookie` — the new allocator's cookie interface,
//! 2. `newkma` — the new allocator's standard functional interface,
//! 3. a **naive parallelization of the McKusick–Karels** 4.3BSD allocator
//!    ([`mk::MkAllocator`]) — one global spinlock around the classic
//!    power-of-two bucket allocator,
//! 4. **`oldkma`** — the previous DYNIX allocator, "which resembles 'Fast
//!    Fits' (algorithm 'S' in Korn's and Vo's survey)": a boundary-tag
//!    heap indexed by a Cartesian tree, also under one global spinlock
//!    ([`oldkma::OldKma`]).
//!
//! This crate implements (3) and (4) from their sources and defines the
//! [`KernelAllocator`] trait that lets benches and tests drive all four
//! through one interface ([`adapters`] wraps the `kmem` arena).

pub mod adapters;
pub mod mk;
pub mod oldkma;

pub use adapters::{KmemCookieAlloc, KmemStdAlloc};
pub use mk::MkAllocator;
pub use oldkma::OldKma;

use core::ptr::NonNull;

/// A uniform interface over the four benchmarked allocators.
///
/// `Ctx` is the per-execution-context state (a `kmem` CPU handle; unit for
/// the lock-based baselines). `Prep` is a pre-resolved request size — the
/// general form of the paper's cookie, letting size resolution happen once
/// outside the measured loop for the interfaces that support it.
pub trait KernelAllocator: Sync {
    /// Per-context (per-CPU) state.
    type Ctx: Send;
    /// Pre-resolved request descriptor.
    type Prep: Copy + Send;

    /// Short name used in benchmark tables ("cookie", "newkma", "mk",
    /// "oldkma").
    fn name(&self) -> &'static str;

    /// Registers an execution context (one per thread / virtual CPU).
    fn register(&self) -> Self::Ctx;

    /// Resolves a request size ahead of the measured loop.
    fn prepare(&self, size: usize) -> Self::Prep;

    /// Allocates one block; `None` under memory exhaustion.
    fn alloc(&self, ctx: &mut Self::Ctx, prep: Self::Prep) -> Option<NonNull<u8>>;

    /// Frees a block from [`KernelAllocator::alloc`].
    ///
    /// # Safety
    ///
    /// `ptr` must come from `alloc` on this allocator with the same
    /// `prep`, be freed exactly once, and have no live references into it.
    unsafe fn free(&self, ctx: &mut Self::Ctx, ptr: NonNull<u8>, prep: Self::Prep);
}
