//! "oldkma": a Fast Fits style boundary-tag heap under one global lock.
//!
//! The paper's `oldkma` trace is the previous DYNIX general-purpose
//! allocator, which "resembles 'Fast Fits' [Stephenson 1983] (algorithm
//! 'S' in Korn's and Vo's survey)". Fast Fits keeps the free blocks of a
//! boundary-tag heap in a **Cartesian tree**: a binary search tree on
//! block *address* that is simultaneously a max-heap on block *size*, so a
//! leftmost-fit search, insertion, and deletion are all tree walks.
//!
//! * Every block carries its size (and a free bit) in a header word and a
//!   trailing footer word, so freeing can find both neighbours and
//!   coalesce immediately.
//! * Free blocks store the tree links (`left`, `right`) in their first
//!   payload words.
//! * The heap grows by whole vmblk extents; extent edges carry allocated
//!   sentinel words so coalescing never walks off an extent. In the old
//!   style, extents are never returned to the system.
//!
//! All of it sits behind one spinlock — the "simple global mutual
//! exclusion" whose cache behaviour the paper's Analysis section measures.

use core::ptr::{self, NonNull};
use std::sync::Arc;

use kmem_smp::probe::{self, ProbeEvent};
use kmem_smp::{EventCounter, SpinLock};
use kmem_vm::{KernelSpace, SpaceConfig, PAGE_SHIFT};

use crate::KernelAllocator;

const WORD: usize = core::mem::size_of::<usize>();
const FREE_BIT: usize = 1;
/// All block sizes are multiples of this.
const GRAIN: usize = 16;
/// Header + two tree links + footer.
const MIN_BLOCK: usize = 4 * WORD;
/// Per-block overhead (header + footer).
const OVERHEAD: usize = 2 * WORD;

/// A free block viewed as a Cartesian-tree node. The header word holds
/// `size | FREE_BIT`; the footer (last word of the block) repeats it.
#[repr(C)]
struct Node {
    header: usize,
    left: *mut Node,
    right: *mut Node,
}

/// Size (including overhead) stored in a block's header at `b`.
///
/// # Safety
///
/// `b` must point at a block header within a live extent.
#[inline]
unsafe fn block_size(b: *mut u8) -> usize {
    // SAFETY: per contract.
    unsafe { (b as *mut usize).read() & !FREE_BIT }
}

/// # Safety
///
/// `b` must point at a block header within a live extent.
#[inline]
unsafe fn is_free(b: *mut u8) -> bool {
    // SAFETY: per contract.
    unsafe { (b as *mut usize).read() & FREE_BIT != 0 }
}

/// Writes header and footer for a block of `size` bytes at `b`.
///
/// # Safety
///
/// `[b, b + size)` must lie within a live extent and be owned by the
/// caller.
#[inline]
unsafe fn set_tags(b: *mut u8, size: usize, free: bool) {
    let tag = size | usize::from(free);
    // SAFETY: per contract; footer is the last word of the block.
    unsafe {
        (b as *mut usize).write(tag);
        (b.add(size - WORD) as *mut usize).write(tag);
    }
}

/// Leftmost free block of size ≥ `n` (Stephenson's leftmost fit).
///
/// The heap property prunes: a subtree whose root is smaller than `n`
/// contains nothing of size ≥ `n`.
///
/// # Safety
///
/// `t` must be a valid tree under the allocator lock.
unsafe fn fit(t: *mut Node, n: usize) -> *mut Node {
    if t.is_null() {
        return ptr::null_mut();
    }
    probe::emit(ProbeEvent::LineRead {
        line: probe::line_of(t),
    });
    // SAFETY: tree nodes are live free blocks.
    let size = unsafe { block_size(t as *mut u8) };
    if size < n {
        return ptr::null_mut();
    }
    // SAFETY: recursion over the same tree.
    let left = unsafe { fit((*t).left, n) };
    if !left.is_null() {
        return left;
    }
    t
}

/// Splits `t` into (addresses < `addr`, addresses > `addr`).
///
/// # Safety
///
/// As for [`fit`].
unsafe fn split(t: *mut Node, addr: usize) -> (*mut Node, *mut Node) {
    if t.is_null() {
        return (ptr::null_mut(), ptr::null_mut());
    }
    if (t as usize) < addr {
        // SAFETY: recursion over the same tree.
        let (l, r) = unsafe { split((*t).right, addr) };
        // SAFETY: `t` is live.
        unsafe { (*t).right = l };
        (t, r)
    } else {
        // SAFETY: as above.
        let (l, r) = unsafe { split((*t).left, addr) };
        // SAFETY: as above.
        unsafe { (*t).left = r };
        (l, t)
    }
}

/// Merges two trees where every address in `a` precedes every address in
/// `b`, preserving the size heap.
///
/// # Safety
///
/// As for [`fit`].
unsafe fn merge(a: *mut Node, b: *mut Node) -> *mut Node {
    if a.is_null() {
        return b;
    }
    if b.is_null() {
        return a;
    }
    // SAFETY: both roots are live free blocks.
    let (sa, sb) = unsafe { (block_size(a as *mut u8), block_size(b as *mut u8)) };
    if sa >= sb {
        // SAFETY: recursion over the same trees.
        unsafe { (*a).right = merge((*a).right, b) };
        a
    } else {
        // SAFETY: as above.
        unsafe { (*b).left = merge(a, (*b).left) };
        b
    }
}

/// Inserts `node` (its tags already written) into `t`.
///
/// # Safety
///
/// As for [`fit`]; `node` must be a free block in no tree.
unsafe fn insert(t: *mut Node, node: *mut Node) -> *mut Node {
    if t.is_null() {
        // SAFETY: `node` is live.
        unsafe {
            (*node).left = ptr::null_mut();
            (*node).right = ptr::null_mut();
        }
        return node;
    }
    // SAFETY: live blocks.
    let (sn, st) = unsafe { (block_size(node as *mut u8), block_size(t as *mut u8)) };
    if sn >= st {
        // `node` dominates this subtree: split it by address around the
        // new root.
        // SAFETY: recursion over the same tree.
        let (l, r) = unsafe { split(t, node as usize) };
        // SAFETY: `node` is live.
        unsafe {
            (*node).left = l;
            (*node).right = r;
        }
        node
    } else if (node as usize) < (t as usize) {
        // SAFETY: as above.
        unsafe { (*t).left = insert((*t).left, node) };
        t
    } else {
        // SAFETY: as above.
        unsafe { (*t).right = insert((*t).right, node) };
        t
    }
}

/// Removes the exact node `target` from `t` (descends by address).
///
/// # Safety
///
/// As for [`fit`]; `target` must be in the tree.
unsafe fn delete(t: *mut Node, target: *mut Node) -> *mut Node {
    debug_assert!(!t.is_null(), "deleting a node not in the tree");
    if t == target {
        // SAFETY: `t` is live.
        return unsafe { merge((*t).left, (*t).right) };
    }
    if (target as usize) < (t as usize) {
        // SAFETY: recursion over the same tree.
        unsafe { (*t).left = delete((*t).left, target) };
    } else {
        // SAFETY: as above.
        unsafe { (*t).right = delete((*t).right, target) };
    }
    t
}

struct OldInner {
    root: *mut Node,
    /// Extents (whole vmblks) ever acquired; never returned.
    extents: Vec<(usize, usize)>,
}

// SAFETY: `OldInner` is only reachable through the global spinlock.
unsafe impl Send for OldInner {}

/// Statistics for the oldkma baseline.
#[derive(Default)]
pub struct OldKmaStats {
    /// Allocations served.
    pub allocs: EventCounter,
    /// Frees served.
    pub frees: EventCounter,
    /// Extents acquired from the space.
    pub extents: EventCounter,
}

/// The Fast Fits style heap under one global lock.
pub struct OldKma {
    space: Arc<KernelSpace>,
    inner: SpinLock<OldInner>,
    stats: OldKmaStats,
}

impl OldKma {
    /// Creates an allocator over its own kernel space.
    pub fn new(space_bytes: usize, phys_pages: usize) -> Self {
        let shift = 22.min(space_bytes.trailing_zeros());
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(space_bytes)
                .vmblk_shift(shift)
                .phys_pages(phys_pages),
        ));
        OldKma {
            space,
            inner: SpinLock::new(OldInner {
                root: ptr::null_mut(),
                extents: Vec::new(),
            }),
            stats: OldKmaStats::default(),
        }
    }

    /// The backing space.
    pub fn space(&self) -> &KernelSpace {
        &self.space
    }

    /// Statistics.
    pub fn stats(&self) -> &OldKmaStats {
        &self.stats
    }

    /// Total request size including overhead, rounded to the grain.
    fn request_size(size: usize) -> usize {
        (size + OVERHEAD).next_multiple_of(GRAIN).max(MIN_BLOCK)
    }

    /// Allocates `size` bytes.
    pub fn malloc(&self, size: usize) -> Option<NonNull<u8>> {
        if size == 0 {
            return None;
        }
        self.stats.allocs.inc();
        let need = Self::request_size(size);
        let mut inner = self.inner.lock();
        // SAFETY: lock held; the tree is valid.
        let mut node = unsafe { fit(inner.root, need) };
        if node.is_null() {
            self.grow(&mut inner, need)?;
            // SAFETY: as above.
            node = unsafe { fit(inner.root, need) };
            if node.is_null() {
                return None;
            }
        }
        // SAFETY: lock held; `node` is in the tree.
        unsafe {
            inner.root = delete(inner.root, node);
            let total = block_size(node as *mut u8);
            let block = node as *mut u8;
            if total - need >= MIN_BLOCK {
                // Split: keep the front, reinsert the remainder.
                let rest = block.add(need);
                set_tags(rest, total - need, true);
                inner.root = insert(inner.root, rest as *mut Node);
                set_tags(block, need, false);
            } else {
                set_tags(block, total, false);
            }
            probe::emit(ProbeEvent::LineWrite {
                line: probe::line_of(block),
            });
            probe::emit(ProbeEvent::Work { cycles: 400 });
            // Payload starts after the header word.
            Some(NonNull::new_unchecked(block.add(WORD)))
        }
    }

    /// Frees a block, coalescing with both neighbours immediately.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`OldKma::malloc`] on this allocator, be freed
    /// exactly once, with no live references into the block.
    pub unsafe fn free(&self, ptr: NonNull<u8>) {
        self.stats.frees.inc();
        // SAFETY: payload sits one word after the header.
        let mut block = unsafe { ptr.as_ptr().sub(WORD) };
        let mut inner = self.inner.lock();
        // SAFETY: lock held; `block` is a live allocated block; sentinels
        // bound every extent so neighbour probes stay in bounds.
        unsafe {
            let mut size = block_size(block);
            debug_assert!(!is_free(block), "oldkma double free");
            probe::emit(ProbeEvent::LineRead {
                line: probe::line_of(block.add(size)),
            });
            // Forward coalesce.
            let next = block.add(size);
            if is_free(next) {
                inner.root = delete(inner.root, next as *mut Node);
                size += block_size(next);
            }
            // Backward coalesce via the previous block's footer.
            let prev_footer = (block.sub(WORD) as *mut usize).read();
            probe::emit(ProbeEvent::LineRead {
                line: probe::line_of(block.sub(WORD)),
            });
            if prev_footer & FREE_BIT != 0 {
                let prev = block.sub(prev_footer & !FREE_BIT);
                inner.root = delete(inner.root, prev as *mut Node);
                size += prev_footer & !FREE_BIT;
                block = prev;
            }
            set_tags(block, size, true);
            inner.root = insert(inner.root, block as *mut Node);
            probe::emit(ProbeEvent::LineWrite {
                line: probe::line_of(block),
            });
            probe::emit(ProbeEvent::Work { cycles: 410 });
        }
    }

    /// Acquires a new extent and inserts its interior as one free block.
    fn grow(&self, inner: &mut OldInner, need: usize) -> Option<()> {
        let region = self.space.alloc_vmblk().ok()?;
        let pages = region.size() >> PAGE_SHIFT;
        if self.space.phys().claim(pages).is_err() {
            self.space.free_vmblk(region);
            return None;
        }
        self.stats.extents.inc();
        let base = region.base().as_ptr();
        let size = region.size();
        // (If `need` exceeds what one extent can hold, the block is still
        // added — it was paid for — and the caller's retry returns None.)
        let _ = need;
        // SAFETY: the extent is exclusively ours.
        unsafe {
            // Allocated sentinels at both edges stop coalescing.
            (base as *mut usize).write(2 * WORD); // fake allocated tag
            (base.add(size - WORD) as *mut usize).write(2 * WORD);
            let block = base.add(WORD);
            set_tags(block, size - 2 * WORD, true);
            inner.root = insert(inner.root, block as *mut Node);
        }
        inner
            .extents
            .push((region.base().as_ptr() as usize, region.size()));
        Some(())
    }

    /// Sums the free bytes in the tree (tests).
    pub fn free_bytes(&self) -> usize {
        let inner = self.inner.lock();
        // SAFETY: lock held.
        unsafe { tree_bytes(inner.root) }
    }

    /// Verifies the tree's heap/BST/tag invariants (tests; quiescence).
    ///
    /// # Panics
    ///
    /// Panics on a violation.
    pub fn verify(&self) {
        let inner = self.inner.lock();
        // SAFETY: lock held.
        unsafe { verify_node(inner.root, usize::MIN, usize::MAX, usize::MAX) };
    }
}

/// # Safety
///
/// Caller holds the allocator lock.
unsafe fn tree_bytes(t: *mut Node) -> usize {
    if t.is_null() {
        return 0;
    }
    // SAFETY: tree nodes are live.
    unsafe { block_size(t as *mut u8) + tree_bytes((*t).left) + tree_bytes((*t).right) }
}

/// # Safety
///
/// Caller holds the allocator lock.
unsafe fn verify_node(t: *mut Node, lo: usize, hi: usize, max_size: usize) {
    if t.is_null() {
        return;
    }
    let addr = t as usize;
    assert!(addr > lo && addr < hi, "BST order violated");
    // SAFETY: tree nodes are live free blocks.
    unsafe {
        let size = block_size(t as *mut u8);
        assert!(size <= max_size, "size heap violated");
        assert!(is_free(t as *mut u8), "allocated block in the free tree");
        let footer = ((t as *mut u8).add(size - WORD) as *mut usize).read();
        assert_eq!(footer & !FREE_BIT, size, "footer tag mismatch");
        assert!(footer & FREE_BIT != 0, "footer free bit mismatch");
        verify_node((*t).left, lo, addr, size);
        verify_node((*t).right, addr, hi, size);
    }
}

impl KernelAllocator for OldKma {
    type Ctx = ();
    type Prep = usize;

    fn name(&self) -> &'static str {
        "oldkma"
    }

    fn register(&self) -> Self::Ctx {}

    fn prepare(&self, size: usize) -> usize {
        size
    }

    fn alloc(&self, _ctx: &mut (), size: usize) -> Option<NonNull<u8>> {
        self.malloc(size)
    }

    unsafe fn free(&self, _ctx: &mut (), ptr: NonNull<u8>, _size: usize) {
        // SAFETY: forwarded caller contract.
        unsafe { OldKma::free(self, ptr) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn old() -> OldKma {
        OldKma::new(1 << 20, 256)
    }

    #[test]
    fn round_trip_and_coalesce_to_single_block() {
        let a = old();
        let initial = {
            let p = a.malloc(100).unwrap();
            // SAFETY: allocated above.
            unsafe { a.free(p) };
            a.free_bytes()
        };
        // Allocate a bunch, free in random-ish order: free bytes return
        // to exactly the initial single block (full coalescing).
        let blocks: Vec<_> = (0..50).map(|i| a.malloc(32 + i * 8).unwrap()).collect();
        a.verify();
        for (i, p) in blocks.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            let _ = i;
            // SAFETY: allocated above, freed once.
            unsafe { a.free(*p) };
        }
        a.verify();
        for (i, p) in blocks.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            let _ = i;
            // SAFETY: allocated above, freed once.
            unsafe { a.free(*p) };
        }
        a.verify();
        assert_eq!(a.free_bytes(), initial);
    }

    #[test]
    fn blocks_do_not_overlap() {
        let a = old();
        let blocks: Vec<_> = (0..100).map(|_| a.malloc(48).unwrap()).collect();
        let mut addrs: Vec<_> = blocks.iter().map(|p| p.as_ptr() as usize).collect();
        addrs.sort_unstable();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= 48 + OVERHEAD);
        }
        for p in blocks {
            // SAFETY: allocated above.
            unsafe { a.free(p) };
        }
        a.verify();
    }

    #[test]
    fn leftmost_fit_prefers_low_addresses() {
        let a = old();
        let p1 = a.malloc(64).unwrap();
        let p2 = a.malloc(64).unwrap();
        let _hold = a.malloc(64).unwrap();
        // SAFETY: allocated above.
        unsafe {
            a.free(p1);
            a.free(p2);
        }
        // p1 and p2 coalesced into one low block; next alloc comes from
        // its front, i.e. p1's address.
        let q = a.malloc(64).unwrap();
        assert_eq!(q, p1);
        a.verify();
    }

    #[test]
    fn payload_is_usable_to_the_brim() {
        let a = old();
        let p = a.malloc(200).unwrap();
        // SAFETY: 200 bytes were requested.
        unsafe { core::ptr::write_bytes(p.as_ptr(), 0x7e, 200) };
        // SAFETY: allocated above.
        unsafe { a.free(p) };
        a.verify();
    }

    #[test]
    fn exhaustion_returns_none() {
        // The space is one 64 KB vmblk (16 pages) but only 4 physical
        // frames exist: growth fails, and so must allocation.
        let a = OldKma::new(1 << 16, 4);
        assert!(a.malloc(32).is_none());
    }

    #[test]
    fn grows_across_extents() {
        let a = OldKma::new(1 << 20, 256);
        // Each extent is 1 MB? No - shift capped at min(22, 20) = 20,
        // one extent of 1 MB, 256 pages: exactly the phys pool.
        let p = a.malloc(500_000).unwrap();
        // SAFETY: 500000 bytes allocated.
        unsafe { core::ptr::write_bytes(p.as_ptr(), 1, 500_000) };
        let q = a.malloc(400_000).unwrap();
        // SAFETY: allocated above.
        unsafe {
            a.free(p);
            a.free(q);
        }
        a.verify();
    }

    #[test]
    fn concurrent_traffic_is_serialized_correctly() {
        let a = OldKma::new(4 << 20, 1024);
        std::thread::scope(|s| {
            for t in 0..4 {
                let a = &a;
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..2000usize {
                        held.push(a.malloc(16 + ((i + t) % 7) * 24).unwrap());
                        if held.len() > 8 {
                            // SAFETY: allocated above, freed once.
                            unsafe { a.free(held.swap_remove(i % held.len())) };
                        }
                    }
                    for p in held {
                        // SAFETY: allocated above, freed once.
                        unsafe { a.free(p) };
                    }
                });
            }
        });
        a.verify();
        assert_eq!(a.stats().allocs.get(), 8000);
        assert_eq!(a.stats().frees.get(), 8000);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught_in_debug() {
        let a = old();
        let p = a.malloc(64).unwrap();
        // SAFETY: first free legitimate; second intentionally violates the
        // contract to check the guard rail.
        unsafe {
            a.free(p);
            a.free(p);
        }
    }
}
