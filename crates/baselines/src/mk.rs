//! The McKusick–Karels allocator (4.3BSD `kmem_alloc`), naively
//! parallelized.
//!
//! "Design of a general purpose memory allocator for the 4.3BSD UNIX
//! kernel" (McKusick & Karels, USENIX 1988): power-of-two buckets with
//! per-bucket freelists, a `kmemsizes[]` array recording each page's block
//! size so that `free` needs no size argument, and whole-page spans for
//! requests above the largest bucket. Small-block pages are **permanently
//! dedicated** to their bucket — the algorithm "fails to meet goal 6"
//! (coalescing), which is exactly what experiment E7 demonstrates: the
//! worst-case sweep fragments all memory at the first size and cannot
//! finish.
//!
//! The "naive parallelization" of the paper's Figure 7 is reproduced as
//! one global spinlock around every operation. The famous fully inlined
//! binary search of the `MALLOC` macro is [`bucket_index`], `#[inline]` so
//! constant sizes fold at compile time.

use core::ptr::{self, NonNull};
use std::sync::Arc;

use kmem_smp::probe::{self, ProbeEvent};
use kmem_smp::{EventCounter, SpinLock};
use kmem_vm::{KernelSpace, SpaceConfig, PAGE_SHIFT, PAGE_SIZE};

use crate::KernelAllocator;

/// Smallest bucket: 16 bytes.
pub const MIN_BUCKET_SHIFT: u32 = 4;
/// Largest bucket: 4096 bytes (one page).
pub const MAX_BUCKET_SHIFT: u32 = 12;
/// Number of power-of-two buckets.
pub const NBUCKETS: usize = (MAX_BUCKET_SHIFT - MIN_BUCKET_SHIFT + 1) as usize;

/// The `MALLOC` macro's fully inlined binary search: size → bucket index.
///
/// With a compile-time-constant `size` the branches fold away, which is
/// the case the MK paper optimizes for; with run-time sizes this is the
/// unpredictable branch tree the kmem paper blames for pipeline stalls.
#[inline(always)]
pub fn bucket_index(size: usize) -> usize {
    if size <= 128 {
        if size <= 32 {
            if size <= 16 {
                0
            } else {
                1
            }
        } else if size <= 64 {
            2
        } else {
            3
        }
    } else if size <= 1024 {
        if size <= 256 {
            4
        } else if size <= 512 {
            5
        } else {
            6
        }
    } else if size <= 2048 {
        7
    } else {
        8
    }
}

/// Block size of bucket `b`.
#[inline]
pub fn bucket_size(b: usize) -> usize {
    1 << (MIN_BUCKET_SHIFT + b as u32)
}

/// Per-page state, the `kmemsizes[]` array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    /// Not yet carved from the space.
    NotOwned,
    /// Owned and free (from a freed large span, or never used).
    Free,
    /// Split into blocks of `bucket`'s size — forever.
    Small { bucket: u8 },
    /// First page of an allocated `npages` span.
    LargeHead { npages: u32 },
    /// Continuation page of a large span.
    LargeCont,
}

struct MkInner {
    /// Per-bucket freelist heads; links live in the blocks' first words.
    freelist: [*mut u8; NBUCKETS],
    /// Per-bucket free block counts (`kb_total - kb_calls` in BSD).
    nfree: [usize; NBUCKETS],
    /// Page states, indexed by page number within the space.
    kmemsizes: Vec<PageState>,
    /// Pages owned so far: `[0, owned)` within the space have been carved
    /// (vmblks are taken in order and never returned, so ownership is a
    /// prefix of the space).
    owned: usize,
    /// Scan hint for the next free-page search.
    scan_hint: usize,
}

// SAFETY: `MkInner` is only reachable through the global spinlock.
unsafe impl Send for MkInner {}

/// Statistics for the MK baseline.
#[derive(Default)]
pub struct MkStats {
    /// Allocations served.
    pub allocs: EventCounter,
    /// Frees served.
    pub frees: EventCounter,
    /// Pages permanently dedicated to small buckets.
    pub pages_dedicated: EventCounter,
}

/// The McKusick–Karels allocator under one global lock.
pub struct MkAllocator {
    space: Arc<KernelSpace>,
    inner: SpinLock<MkInner>,
    stats: MkStats,
}

impl MkAllocator {
    /// Creates an MK allocator over its own kernel space.
    pub fn new(space_bytes: usize, phys_pages: usize) -> Self {
        // Shrink the vmblk grain for small spaces so the space is always a
        // whole number of vmblks.
        let shift = 22.min(space_bytes.trailing_zeros());
        let space = Arc::new(KernelSpace::new(
            SpaceConfig::new(space_bytes)
                .vmblk_shift(shift)
                .phys_pages(phys_pages),
        ));
        let total_pages = space_bytes >> PAGE_SHIFT;
        MkAllocator {
            space,
            inner: SpinLock::new(MkInner {
                freelist: [ptr::null_mut(); NBUCKETS],
                nfree: [0; NBUCKETS],
                kmemsizes: vec![PageState::NotOwned; total_pages],
                owned: 0,
                scan_hint: 0,
            }),
            stats: MkStats::default(),
        }
    }

    /// The backing space (physical-pool accounting).
    pub fn space(&self) -> &KernelSpace {
        &self.space
    }

    /// Statistics.
    pub fn stats(&self) -> &MkStats {
        &self.stats
    }

    /// Allocates `size` bytes (`MALLOC`).
    pub fn malloc(&self, size: usize) -> Option<NonNull<u8>> {
        if size == 0 {
            return None;
        }
        self.stats.allocs.inc();
        if size > PAGE_SIZE {
            return self.malloc_large(size);
        }
        let bucket = bucket_index(size);
        let mut inner = self.inner.lock();
        if inner.freelist[bucket].is_null() {
            self.carve_page(&mut inner, bucket)?;
        }
        let block = inner.freelist[bucket];
        probe::emit(ProbeEvent::LineWrite {
            line: probe::line_of(&inner.freelist[bucket] as *const _),
        });
        probe::emit(ProbeEvent::LineRead {
            line: probe::line_of(block),
        });
        // SAFETY: freelist blocks store their next link in word 0 and are
        // owned by the allocator.
        inner.freelist[bucket] = unsafe { (block as *mut *mut u8).read() };
        inner.nfree[bucket] -= 1;
        probe::emit(ProbeEvent::Work { cycles: 25 });
        // SAFETY: blocks are interior to the reservation: non-null.
        Some(unsafe { NonNull::new_unchecked(block) })
    }

    /// Frees a block (`FREE`): the size comes from `kmemsizes[]`.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`MkAllocator::malloc`] on this allocator and
    /// be freed exactly once, with no live references into it.
    pub unsafe fn free(&self, ptr: NonNull<u8>) {
        self.stats.frees.inc();
        let addr = ptr.as_ptr() as usize;
        let page = self.page_of(addr);
        let mut inner = self.inner.lock();
        match inner.kmemsizes[page] {
            PageState::Small { bucket } => {
                let bucket = usize::from(bucket);
                probe::emit(ProbeEvent::LineWrite {
                    line: probe::line_of(ptr.as_ptr()),
                });
                probe::emit(ProbeEvent::LineWrite {
                    line: probe::line_of(&inner.freelist[bucket] as *const _),
                });
                // SAFETY: the block is free as of this call; word 0 is the
                // link.
                unsafe { (ptr.as_ptr() as *mut *mut u8).write(inner.freelist[bucket]) };
                inner.freelist[bucket] = ptr.as_ptr();
                inner.nfree[bucket] += 1;
                probe::emit(ProbeEvent::Work { cycles: 20 });
            }
            PageState::LargeHead { npages } => {
                let npages = npages as usize;
                debug_assert_eq!(addr & (PAGE_SIZE - 1), 0);
                for p in page..page + npages {
                    inner.kmemsizes[p] = PageState::Free;
                }
                if page < inner.scan_hint {
                    inner.scan_hint = page;
                }
                drop(inner);
                self.space.phys().release(npages);
                probe::emit(ProbeEvent::Work { cycles: 40 });
            }
            other => panic!("MK free of a pointer in a {other:?} page"),
        }
    }

    /// Free blocks currently on bucket freelists (tests).
    pub fn free_blocks(&self, bucket: usize) -> usize {
        self.inner.lock().nfree[bucket]
    }

    fn page_of(&self, addr: usize) -> usize {
        debug_assert!(self.space.contains(addr), "foreign pointer");
        (addr - self.space.base_addr()) >> PAGE_SHIFT
    }

    fn page_addr(&self, page: usize) -> *mut u8 {
        (self.space.base_addr() + (page << PAGE_SHIFT)) as *mut u8
    }

    /// Finds `n` consecutive free pages (first fit), extending ownership
    /// with fresh vmblks when the owned prefix has no such run.
    fn find_free_run(&self, inner: &mut MkInner, n: usize) -> Option<usize> {
        // `scan_hint` is a lower bound on the first free page, so the scan
        // may safely start there.
        let mut run = 0usize;
        let mut start = 0usize;
        let mut i = inner.scan_hint;
        while i < inner.owned {
            if inner.kmemsizes[i] == PageState::Free {
                if run == 0 {
                    start = i;
                }
                run += 1;
                if run == n {
                    return Some(start);
                }
            } else {
                run = 0;
            }
            i += 1;
        }
        // The loop left `run` = length of the trailing free run. Fresh
        // vmblks extend it: they are carved in address order, so their
        // pages are contiguous with the owned prefix.
        loop {
            if run >= n {
                return Some(start);
            }
            let region = self.space.alloc_vmblk().ok()?;
            let first = (region.base().as_ptr() as usize - self.space.base_addr()) >> PAGE_SHIFT;
            debug_assert_eq!(first, inner.owned, "vmblks must be carved in order");
            let pages = region.size() >> PAGE_SHIFT;
            for p in first..first + pages {
                inner.kmemsizes[p] = PageState::Free;
            }
            if run == 0 {
                start = first;
            }
            inner.owned = first + pages;
            run = inner.owned - start;
        }
    }

    /// Dedicates one page to `bucket` and carves it into blocks.
    fn carve_page(&self, inner: &mut MkInner, bucket: usize) -> Option<()> {
        let page = self.find_free_run(inner, 1)?;
        self.space.phys().claim(1).ok()?;
        inner.kmemsizes[page] = PageState::Small {
            bucket: bucket as u8,
        };
        self.stats.pages_dedicated.inc();
        let bsize = bucket_size(bucket);
        let base = self.page_addr(page);
        let mut head = inner.freelist[bucket];
        for i in (0..PAGE_SIZE / bsize).rev() {
            // SAFETY: offsets stay inside the page we own.
            let blk = unsafe { base.add(i * bsize) };
            // SAFETY: fresh free block; word 0 is the link.
            unsafe { (blk as *mut *mut u8).write(head) };
            head = blk;
        }
        inner.freelist[bucket] = head;
        inner.nfree[bucket] += PAGE_SIZE / bsize;
        Some(())
    }

    fn malloc_large(&self, size: usize) -> Option<NonNull<u8>> {
        let npages = size.div_ceil(PAGE_SIZE);
        let mut inner = self.inner.lock();
        let start = self.find_free_run(&mut inner, npages)?;
        self.space.phys().claim(npages).ok()?;
        inner.kmemsizes[start] = PageState::LargeHead {
            npages: npages as u32,
        };
        for p in start + 1..start + npages {
            inner.kmemsizes[p] = PageState::LargeCont;
        }
        probe::emit(ProbeEvent::Work { cycles: 60 });
        // SAFETY: page addresses are interior to the reservation.
        Some(unsafe { NonNull::new_unchecked(self.page_addr(start)) })
    }
}

impl KernelAllocator for MkAllocator {
    type Ctx = ();
    type Prep = usize;

    fn name(&self) -> &'static str {
        "mk"
    }

    fn register(&self) -> Self::Ctx {}

    fn prepare(&self, size: usize) -> usize {
        size
    }

    fn alloc(&self, _ctx: &mut (), size: usize) -> Option<NonNull<u8>> {
        self.malloc(size)
    }

    unsafe fn free(&self, _ctx: &mut (), ptr: NonNull<u8>, _size: usize) {
        // SAFETY: forwarded caller contract.
        unsafe { MkAllocator::free(self, ptr) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> MkAllocator {
        MkAllocator::new(4 << 20, 512)
    }

    #[test]
    fn bucket_index_matches_reference() {
        for size in 1..=4096usize {
            let want = size.next_power_of_two().max(16).trailing_zeros() - MIN_BUCKET_SHIFT;
            assert_eq!(bucket_index(size), want as usize, "size {size}");
        }
    }

    #[test]
    fn small_round_trip_reuses_block() {
        let a = mk();
        let p = a.malloc(100).unwrap();
        // SAFETY: allocated above.
        unsafe { a.free(p) };
        let q = a.malloc(100).unwrap();
        assert_eq!(p, q);
        // SAFETY: allocated above.
        unsafe { a.free(q) };
    }

    #[test]
    fn blocks_within_a_page_are_disjoint() {
        let a = mk();
        let blocks: Vec<_> = (0..32).map(|_| a.malloc(128).unwrap()).collect();
        let mut addrs: Vec<_> = blocks.iter().map(|p| p.as_ptr() as usize).collect();
        addrs.sort_unstable();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= 128);
        }
        for p in blocks {
            // SAFETY: allocated above.
            unsafe { a.free(p) };
        }
        // All 32 blocks are back on the freelist of bucket 3 (128 B).
        assert_eq!(a.free_blocks(3), 32);
    }

    #[test]
    fn small_pages_are_never_returned() {
        let a = mk();
        let p = a.malloc(64).unwrap();
        // SAFETY: allocated above.
        unsafe { a.free(p) };
        // The page stays dedicated: physical frame still claimed.
        assert_eq!(a.space().phys().in_use(), 1);
        assert_eq!(a.stats().pages_dedicated.get(), 1);
    }

    #[test]
    fn large_round_trip_returns_pages() {
        let a = mk();
        let p = a.malloc(3 * PAGE_SIZE).unwrap();
        assert_eq!(p.as_ptr() as usize % PAGE_SIZE, 0);
        assert_eq!(a.space().phys().in_use(), 3);
        // SAFETY: allocated above.
        unsafe { a.free(p) };
        assert_eq!(a.space().phys().in_use(), 0);
        // Pages are reusable for a different large size.
        let q = a.malloc(2 * PAGE_SIZE).unwrap();
        // SAFETY: allocated above.
        unsafe { a.free(q) };
    }

    #[test]
    fn large_spans_coalesce_with_free_neighbours() {
        let a = mk();
        let p1 = a.malloc(2 * PAGE_SIZE).unwrap();
        let p2 = a.malloc(2 * PAGE_SIZE).unwrap();
        // SAFETY: allocated above.
        unsafe {
            a.free(p1);
            a.free(p2);
        }
        // A 4-page span now fits where the two 2-page spans were.
        let q = a.malloc(4 * PAGE_SIZE).unwrap();
        assert_eq!(q, p1.min(p2));
        // SAFETY: allocated above.
        unsafe { a.free(q) };
    }

    #[test]
    fn fragmentation_blocks_reuse_for_other_sizes() {
        // This is the paper's point about MK: dedicate all memory to one
        // bucket, free it, and other sizes still cannot allocate.
        let a = MkAllocator::new(1 << 20, 8);
        let mut held = Vec::new();
        while let Some(p) = a.malloc(16) {
            held.push(p);
        }
        for p in held {
            // SAFETY: allocated above.
            unsafe { a.free(p) };
        }
        // Everything was freed, yet 64-byte allocations find no memory:
        // all 8 frames stay dedicated to the 16-byte bucket.
        assert_eq!(a.space().phys().in_use(), 8);
        assert!(a.malloc(64).is_none());
    }

    #[test]
    fn exhaustion_is_none_not_panic() {
        let a = MkAllocator::new(1 << 20, 2);
        let p = a.malloc(2 * PAGE_SIZE).unwrap();
        assert!(a.malloc(PAGE_SIZE).is_none());
        assert!(a.malloc(16).is_none());
        // SAFETY: allocated above.
        unsafe { a.free(p) };
        assert!(a.malloc(16).is_some());
    }

    #[test]
    fn concurrent_traffic_is_serialized_correctly() {
        let a = MkAllocator::new(8 << 20, 1024);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut held = Vec::new();
                    for i in 0..3000 {
                        held.push(a.malloc(16 << (i % 4)).unwrap());
                        if held.len() > 16 {
                            // SAFETY: allocated above, freed once.
                            unsafe { a.free(held.swap_remove(i % held.len())) };
                        }
                    }
                    for p in held {
                        // SAFETY: allocated above, freed once.
                        unsafe { a.free(p) };
                    }
                });
            }
        });
        assert_eq!(a.stats().allocs.get(), 12_000);
        assert_eq!(a.stats().frees.get(), 12_000);
    }
}
