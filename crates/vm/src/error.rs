//! VM substrate errors.

use core::fmt;

/// Errors reported by the virtual-memory substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// The kernel virtual address space has no free vmblk left.
    OutOfVirtual,
    /// The physical page pool cannot supply the requested frames.
    OutOfPhysical {
        /// Frames requested.
        requested: usize,
        /// Frames currently available.
        available: usize,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfVirtual => write!(f, "kernel virtual address space exhausted"),
            VmError::OutOfPhysical {
                requested,
                available,
            } => write!(
                f,
                "physical page pool exhausted ({requested} requested, {available} available)"
            ),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(VmError::OutOfVirtual.to_string().contains("virtual"));
        let e = VmError::OutOfPhysical {
            requested: 4,
            available: 1,
        };
        let s = e.to_string();
        assert!(s.contains('4') && s.contains('1'));
    }
}
