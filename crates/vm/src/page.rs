//! Page-size constants and address helpers.

/// Log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;

/// Size of one page in bytes (4 KB, as on the paper's 80486 systems).
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Rounds `bytes` up to a whole number of pages.
#[inline]
pub const fn pages_for(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

/// Rounds `addr` down to its page base.
#[inline]
pub const fn page_base(addr: usize) -> usize {
    addr & !(PAGE_SIZE - 1)
}

/// Returns whether `addr` is page-aligned.
#[inline]
pub const fn page_aligned(addr: usize) -> bool {
    addr & (PAGE_SIZE - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for(10 * PAGE_SIZE), 10);
    }

    #[test]
    fn page_base_masks_offset() {
        assert_eq!(page_base(0x12345), 0x12000);
        assert_eq!(page_base(0x12000), 0x12000);
        assert!(page_aligned(0x12000));
        assert!(!page_aligned(0x12001));
    }
}
