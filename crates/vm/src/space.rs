//! Kernel virtual address space, vmblk carving, and the dope vector.

use core::ptr::NonNull;
use core::sync::atomic::{AtomicUsize, Ordering};
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};

use kmem_smp::{faults, Faults, SpinLock};

use crate::error::VmError;
use crate::page::PAGE_SIZE;
use crate::phys::NodePhysPools;

/// Configuration for a [`KernelSpace`].
#[derive(Debug, Clone, Copy)]
pub struct SpaceConfig {
    /// Total bytes of virtual address space to reserve (lazily committed by
    /// the host). Must be a multiple of the vmblk size.
    pub space_bytes: usize,
    /// Log2 of the vmblk size. The paper uses 4 MB vmblks (`22`).
    pub vmblk_shift: u32,
    /// Capacity of the physical page pool in frames. Defaults to one frame
    /// per page of virtual space.
    pub phys_pages: usize,
    /// Number of NUMA nodes the physical pool is sharded over. Defaults to
    /// 1 (the paper's flat-bus machine).
    pub nodes: usize,
}

impl SpaceConfig {
    /// The paper's layout: 4 MB vmblks, with a modest 256 MB space suited
    /// to the benchmark workloads.
    pub fn new(space_bytes: usize) -> Self {
        SpaceConfig {
            space_bytes,
            vmblk_shift: 22,
            phys_pages: space_bytes / PAGE_SIZE,
            nodes: 1,
        }
    }

    /// Overrides the physical pool capacity.
    pub fn phys_pages(mut self, pages: usize) -> Self {
        self.phys_pages = pages;
        self
    }

    /// Overrides the NUMA node count the physical pool is sharded over.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Overrides the vmblk size (log2 bytes).
    ///
    /// Smaller vmblks make exhaustion tests cheap.
    pub fn vmblk_shift(mut self, shift: u32) -> Self {
        self.vmblk_shift = shift;
        self
    }
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig::new(256 << 20)
    }
}

/// A carved vmblk: `size` bytes of vmblk-aligned virtual memory.
#[derive(Debug, Clone, Copy)]
pub struct VmblkRegion {
    base: NonNull<u8>,
    index: usize,
    size: usize,
}

impl VmblkRegion {
    /// Base address of the region.
    #[inline]
    pub fn base(&self) -> NonNull<u8> {
        self.base
    }

    /// Index of this vmblk within the space (the dope-vector slot).
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Size of the region in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }
}

// SAFETY: a `VmblkRegion` is a description of an address range, not an
// access path with interior mutability; the owning allocator serializes all
// access to the memory it names.
unsafe impl Send for VmblkRegion {}
// SAFETY: as above — shared references expose only plain address values.
unsafe impl Sync for VmblkRegion {}

struct CarveState {
    /// Next never-carved vmblk index.
    next_unused: usize,
    /// Indices of vmblks that were carved and later returned.
    free: Vec<usize>,
}

/// The simulated kernel virtual address space.
///
/// One contiguous reservation, carved into vmblk-sized regions on demand.
/// The reservation is only *address space* as far as the allocator is
/// concerned: the physical frames behind it are claimed from the embedded
/// [`PhysPool`] page by page, exactly as the paper's coalesce layers claim
/// and return physical memory around retained virtual memory.
pub struct KernelSpace {
    base: NonNull<u8>,
    layout: Layout,
    vmblk_shift: u32,
    nvmblks: usize,
    carve: SpinLock<CarveState>,
    /// Dope vector: one tag word per vmblk slot. Zero means "not managed";
    /// the allocator stores the address of its vmblk header here so any
    /// block address resolves to its page descriptor in two steps
    /// (paper Figure 6).
    dope: Box<[AtomicUsize]>,
    phys: NodePhysPools,
    /// Failpoint handle; `faults::VM_CARVE` can force carve failures.
    faults: Faults,
}

// SAFETY: all mutation of carve state goes through the spinlock; the dope
// vector is atomic; the raw base pointer itself is never mutated. Access to
// the *memory behind* the reservation is governed by the allocator layers
// built on top.
unsafe impl Send for KernelSpace {}
// SAFETY: as above.
unsafe impl Sync for KernelSpace {}

impl KernelSpace {
    /// Reserves the space described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `space_bytes` is zero or not a multiple of the vmblk size,
    /// or aborts if the host refuses the reservation.
    pub fn new(config: SpaceConfig) -> Self {
        KernelSpace::new_with_faults(config, Faults::none())
    }

    /// Reserves the space described by `config`, wiring the carve path and
    /// the embedded [`PhysPool`] to `faults`.
    ///
    /// # Panics
    ///
    /// As [`KernelSpace::new`].
    pub fn new_with_faults(config: SpaceConfig, faults: Faults) -> Self {
        let vmblk_size = 1usize << config.vmblk_shift;
        assert!(
            config.vmblk_shift >= 14,
            "vmblks must hold at least a few pages"
        );
        assert!(config.space_bytes > 0, "empty kernel space");
        assert!(
            config.space_bytes.is_multiple_of(vmblk_size),
            "space must be a whole number of vmblks"
        );
        let nvmblks = config.space_bytes / vmblk_size;
        let layout = Layout::from_size_align(config.space_bytes, vmblk_size)
            .expect("space layout must be valid");
        // SAFETY: `layout` has non-zero size (asserted above).
        let raw = unsafe { alloc(layout) };
        let Some(base) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        let dope = (0..nvmblks).map(|_| AtomicUsize::new(0)).collect();
        KernelSpace {
            base,
            layout,
            vmblk_shift: config.vmblk_shift,
            nvmblks,
            carve: SpinLock::new(CarveState {
                next_unused: 0,
                free: Vec::new(),
            }),
            dope,
            phys: NodePhysPools::with_faults(config.phys_pages, config.nodes, faults.clone()),
            faults,
        }
    }

    /// The per-node physical page pools backing this space.
    #[inline]
    pub fn phys(&self) -> &NodePhysPools {
        &self.phys
    }

    /// Size of one vmblk in bytes.
    #[inline]
    pub fn vmblk_size(&self) -> usize {
        1 << self.vmblk_shift
    }

    /// Number of vmblk slots in the space.
    #[inline]
    pub fn nvmblks(&self) -> usize {
        self.nvmblks
    }

    /// Base address of the space.
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.base.as_ptr() as usize
    }

    /// Returns whether `addr` lies inside the reservation.
    #[inline]
    pub fn contains(&self, addr: usize) -> bool {
        let base = self.base_addr();
        addr >= base && addr < base + self.layout.size()
    }

    /// Carves a fresh vmblk out of the space.
    pub fn alloc_vmblk(&self) -> Result<VmblkRegion, VmError> {
        if self.faults.hit(faults::VM_CARVE) {
            return Err(VmError::OutOfVirtual);
        }
        let index = {
            let mut carve = self.carve.lock();
            if let Some(index) = carve.free.pop() {
                index
            } else if carve.next_unused < self.nvmblks {
                let index = carve.next_unused;
                carve.next_unused += 1;
                index
            } else {
                return Err(VmError::OutOfVirtual);
            }
        };
        Ok(self.region(index))
    }

    /// Returns a previously carved vmblk to the space.
    ///
    /// The caller must have released every physical frame it claimed for
    /// pages of this vmblk; the dope slot is cleared here.
    pub fn free_vmblk(&self, region: VmblkRegion) {
        self.dope[region.index].store(0, Ordering::Release);
        self.carve.lock().free.push(region.index);
    }

    fn region(&self, index: usize) -> VmblkRegion {
        let size = self.vmblk_size();
        // SAFETY: `index < nvmblks`, so the offset stays inside the single
        // reservation object.
        let base = unsafe { NonNull::new_unchecked(self.base.as_ptr().add(index * size)) };
        VmblkRegion { base, index, size }
    }

    /// Publishes `tag` (an allocator-defined non-zero word, typically a
    /// header address) in the dope slot for vmblk `index`.
    pub fn set_dope(&self, index: usize, tag: usize) {
        debug_assert!(tag != 0, "dope tags must be non-zero");
        self.dope[index].store(tag, Ordering::Release);
    }

    /// Looks up the dope tag covering `addr`.
    ///
    /// Returns `None` if `addr` is outside the space or its vmblk is not
    /// currently published.
    #[inline]
    pub fn dope_lookup(&self, addr: usize) -> Option<usize> {
        if !self.contains(addr) {
            return None;
        }
        let index = (addr - self.base_addr()) >> self.vmblk_shift;
        match self.dope[index].load(Ordering::Acquire) {
            0 => None,
            tag => Some(tag),
        }
    }

    /// Returns the vmblk index covering `addr`, if inside the space.
    #[inline]
    pub fn vmblk_index_of(&self, addr: usize) -> Option<usize> {
        if self.contains(addr) {
            Some((addr - self.base_addr()) >> self.vmblk_shift)
        } else {
            None
        }
    }
}

impl Drop for KernelSpace {
    fn drop(&mut self) {
        // SAFETY: `base` came from `alloc(self.layout)` and is released
        // exactly once here.
        unsafe { dealloc(self.base.as_ptr(), self.layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> KernelSpace {
        // 1 MB space of 16 KB vmblks: 64 slots.
        KernelSpace::new(SpaceConfig {
            space_bytes: 1 << 20,
            vmblk_shift: 14,
            phys_pages: 256,
            nodes: 1,
        })
    }

    #[test]
    fn carve_is_aligned_and_disjoint() {
        let s = small_space();
        let a = s.alloc_vmblk().unwrap();
        let b = s.alloc_vmblk().unwrap();
        assert_eq!(a.base().as_ptr() as usize % s.vmblk_size(), 0);
        assert_eq!(b.base().as_ptr() as usize % s.vmblk_size(), 0);
        let (lo, hi) = if a.base().as_ptr() < b.base().as_ptr() {
            (a, b)
        } else {
            (b, a)
        };
        assert!(lo.base().as_ptr() as usize + lo.size() <= hi.base().as_ptr() as usize);
    }

    #[test]
    fn exhaustion_and_reuse() {
        let s = small_space();
        let mut regions = Vec::new();
        for _ in 0..s.nvmblks() {
            regions.push(s.alloc_vmblk().unwrap());
        }
        assert_eq!(s.alloc_vmblk().unwrap_err(), VmError::OutOfVirtual);
        let last = regions.pop().unwrap();
        let last_base = last.base();
        s.free_vmblk(last);
        let again = s.alloc_vmblk().unwrap();
        assert_eq!(again.base(), last_base);
    }

    #[test]
    fn dope_lookup_resolves_interior_addresses() {
        let s = small_space();
        let r = s.alloc_vmblk().unwrap();
        let tag = 0xdead_beefusize;
        s.set_dope(r.index(), tag);
        let mid = r.base().as_ptr() as usize + r.size() / 2;
        assert_eq!(s.dope_lookup(mid), Some(tag));
        assert_eq!(s.dope_lookup(r.base().as_ptr() as usize), Some(tag));
        // Last byte of the region still maps to it.
        assert_eq!(
            s.dope_lookup(r.base().as_ptr() as usize + r.size() - 1),
            Some(tag)
        );
    }

    #[test]
    fn dope_lookup_rejects_foreign_and_unpublished() {
        let s = small_space();
        let r = s.alloc_vmblk().unwrap();
        // Not yet published.
        assert_eq!(s.dope_lookup(r.base().as_ptr() as usize), None);
        // Outside the space entirely.
        let foreign = Box::new(0u8);
        assert_eq!(s.dope_lookup(&*foreign as *const u8 as usize), None);
        // Published, then freed: cleared again.
        s.set_dope(r.index(), 1);
        s.free_vmblk(r);
        assert_eq!(s.dope_lookup(r.base().as_ptr() as usize), None);
    }

    #[test]
    fn vmblk_index_matches_layout() {
        let s = small_space();
        let a = s.alloc_vmblk().unwrap();
        let addr = a.base().as_ptr() as usize + 5;
        assert_eq!(s.vmblk_index_of(addr), Some(a.index()));
        assert_eq!(s.vmblk_index_of(s.base_addr() - 1), None);
    }

    #[test]
    fn phys_pool_is_shared_through_space() {
        let s = small_space();
        s.phys().claim(10).unwrap();
        assert_eq!(s.phys().in_use(), 10);
        s.phys().release(10);
    }

    #[test]
    fn node_sharded_space_splits_the_phys_pool() {
        use kmem_smp::NodeId;

        let s = KernelSpace::new(
            SpaceConfig::new(1 << 20)
                .vmblk_shift(14)
                .phys_pages(256)
                .nodes(2),
        );
        assert_eq!(s.phys().nnodes(), 2);
        assert_eq!(s.phys().capacity(), 256);
        assert_eq!(s.phys().node(NodeId::new(0)).capacity(), 128);
        let home = s.phys().claim_on(NodeId::new(1), 5).unwrap();
        assert_eq!(home, NodeId::new(1));
        assert_eq!(s.phys().node(home).in_use(), 5);
        s.phys().release_on(home, 5);
        assert_eq!(s.phys().in_use(), 0);
    }

    #[test]
    fn injected_carve_failure_is_transient() {
        use kmem_smp::FailPolicy;

        let faults = Faults::with_plan();
        let s = KernelSpace::new_with_faults(
            SpaceConfig {
                space_bytes: 1 << 20,
                vmblk_shift: 14,
                phys_pages: 256,
                nodes: 1,
            },
            faults.clone(),
        );
        faults
            .plan()
            .unwrap()
            .set(faults::VM_CARVE, FailPolicy::Script(vec![true]));
        assert_eq!(s.alloc_vmblk().unwrap_err(), VmError::OutOfVirtual);
        // The failed carve consumed no slot; the retry gets vmblk 0.
        let r = s.alloc_vmblk().unwrap();
        assert_eq!(r.index(), 0);
    }

    #[test]
    fn concurrent_carving_yields_distinct_regions() {
        let s = small_space();
        let seen = SpinLock::new(std::collections::HashSet::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        if let Ok(r) = s.alloc_vmblk() {
                            assert!(seen.lock().insert(r.base().as_ptr() as usize));
                        }
                    }
                });
            }
        });
        // (Two `.lock()` calls in one statement would deadlock a
        // non-reentrant spinlock: take the guard once.)
        let seen = seen.lock();
        assert!(seen.len() <= s.nvmblks());
    }
}
