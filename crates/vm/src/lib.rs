//! Virtual-memory substrate for the kmem allocator reproduction.
//!
//! The paper's allocator sits on top of the DYNIX/ptx virtual-memory
//! system: it carves 4 MB *vmblks* out of the kernel virtual address space,
//! maps physical pages into them on demand, returns physical pages to the
//! system when the coalesce-to-page layer drains a page, and locates page
//! descriptors from block addresses through a *dope vector* indexed by the
//! upper address bits (Figure 6).
//!
//! This crate is the stand-in for that VM system:
//!
//! * [`space::KernelSpace`] reserves one contiguous, lazily committed span
//!   of host memory as the "kernel virtual address space" and carves
//!   vmblk-sized regions from it, so dope-vector indexing by
//!   `(addr - base) >> vmblk_shift` works exactly as in the paper.
//! * [`phys::PhysPool`] is an explicitly accounted pool of physical page
//!   frames. Mapping a page claims a frame; unmapping credits it back.
//!   The accounting is what makes the paper's observable behaviours —
//!   "allocate until memory is exhausted" (worst-case benchmark) and "the
//!   physical memory is returned to the system" — real and testable in
//!   userspace, where the host kernel owns the actual page tables.
//! * the dope vector inside [`space::KernelSpace`] maps any managed
//!   address back to its vmblk.

pub mod error;
pub mod page;
pub mod phys;
pub mod space;

pub use error::VmError;
pub use page::{PAGE_SHIFT, PAGE_SIZE};
pub use phys::{NodePhysPools, PhysPool};
pub use space::{KernelSpace, SpaceConfig, VmblkRegion};
