//! Accounted physical page pool.
//!
//! On the paper's hardware, "returning the physical memory to the system"
//! unmaps frames so that user processes can have them. In this userspace
//! reproduction the host kernel owns the real frames, so the pool tracks
//! them by *accounting*: the allocator must claim a frame before treating a
//! virtual page as mapped and credits it back when the coalesce-to-page
//! layer drains a page. A bounded pool is what makes the worst-case
//! benchmark ("allocate blocks of a given size until memory is exhausted")
//! meaningful, and the `in_use == 0` check after a full drain is the
//! observable form of the paper's claim that every fully freed page leaves
//! the allocator.

use core::sync::atomic::{AtomicUsize, Ordering};

use kmem_smp::{faults, Faults};

use crate::error::VmError;

/// A bounded pool of physical page frames.
pub struct PhysPool {
    capacity: usize,
    in_use: AtomicUsize,
    /// High-water mark of frames simultaneously in use.
    peak: AtomicUsize,
    /// Total map operations, for stats.
    maps: AtomicUsize,
    /// Total unmap operations, for stats.
    unmaps: AtomicUsize,
    /// Failpoint handle; `faults::PHYS_CLAIM` can force claim failures.
    faults: Faults,
}

impl PhysPool {
    /// Creates a pool of `capacity` frames with failpoints off.
    pub fn new(capacity: usize) -> Self {
        PhysPool::with_faults(capacity, Faults::none())
    }

    /// Creates a pool of `capacity` frames wired to `faults`.
    pub fn with_faults(capacity: usize, faults: Faults) -> Self {
        PhysPool {
            capacity,
            in_use: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            maps: AtomicUsize::new(0),
            unmaps: AtomicUsize::new(0),
            faults,
        }
    }

    /// Total frames in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently claimed.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Frames currently available.
    pub fn available(&self) -> usize {
        self.capacity - self.in_use()
    }

    /// High-water mark of simultaneously claimed frames.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total successful [`PhysPool::claim`] page-count.
    pub fn total_mapped(&self) -> usize {
        self.maps.load(Ordering::Relaxed)
    }

    /// Total [`PhysPool::release`] page-count.
    pub fn total_unmapped(&self) -> usize {
        self.unmaps.load(Ordering::Relaxed)
    }

    /// Claims `n` frames, failing (with no partial claim) if fewer are free.
    pub fn claim(&self, n: usize) -> Result<(), VmError> {
        if self.faults.hit(faults::PHYS_CLAIM) {
            return Err(VmError::OutOfPhysical {
                requested: n,
                available: self.available(),
            });
        }
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let new = cur + n;
            if new > self.capacity {
                return Err(VmError::OutOfPhysical {
                    requested: n,
                    available: self.capacity - cur,
                });
            }
            match self
                .in_use
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.maps.fetch_add(n, Ordering::Relaxed);
                    self.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases `n` previously claimed frames back to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more frames are released than were claimed — that is a
    /// double-unmap bug in the caller.
    pub fn release(&self, n: usize) {
        self.unmaps.fetch_add(n, Ordering::Relaxed);
        let prev = self.in_use.fetch_sub(n, Ordering::AcqRel);
        assert!(prev >= n, "physical page pool: released more than claimed");
    }
}

impl core::fmt::Debug for PhysPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PhysPool")
            .field("capacity", &self.capacity)
            .field("in_use", &self.in_use())
            .field("peak", &self.peak())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_and_release_account_exactly() {
        let p = PhysPool::new(10);
        p.claim(4).unwrap();
        assert_eq!(p.in_use(), 4);
        assert_eq!(p.available(), 6);
        p.claim(6).unwrap();
        assert_eq!(p.available(), 0);
        p.release(10);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.peak(), 10);
        assert_eq!(p.total_mapped(), 10);
        assert_eq!(p.total_unmapped(), 10);
    }

    #[test]
    fn exhaustion_reports_availability_and_leaves_state_intact() {
        let p = PhysPool::new(5);
        p.claim(3).unwrap();
        let err = p.claim(4).unwrap_err();
        assert_eq!(
            err,
            VmError::OutOfPhysical {
                requested: 4,
                available: 2
            }
        );
        // The failed claim must not consume frames.
        assert_eq!(p.in_use(), 3);
        p.claim(2).unwrap();
    }

    #[test]
    #[should_panic(expected = "released more than claimed")]
    fn over_release_is_caught() {
        let p = PhysPool::new(2);
        p.claim(1).unwrap();
        p.release(2);
    }

    #[test]
    fn injected_claim_failure_is_typed_and_leaves_accounting_intact() {
        use kmem_smp::FailPolicy;

        let faults = Faults::with_plan();
        let p = PhysPool::with_faults(10, faults.clone());
        p.claim(2).unwrap();
        faults
            .plan()
            .unwrap()
            .set(faults::PHYS_CLAIM, FailPolicy::Script(vec![true]));
        let err = p.claim(1).unwrap_err();
        assert_eq!(
            err,
            VmError::OutOfPhysical {
                requested: 1,
                available: 8
            }
        );
        // The injected failure consumed no frames; the next claim works.
        assert_eq!(p.in_use(), 2);
        p.claim(8).unwrap();
        p.release(10);
    }

    #[test]
    fn concurrent_claims_never_oversubscribe() {
        let p = PhysPool::new(100);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        if p.claim(3).is_ok() {
                            assert!(p.in_use() <= 100);
                            p.release(3);
                        }
                    }
                });
            }
        });
        assert_eq!(p.in_use(), 0);
    }
}
