//! Accounted physical page pool.
//!
//! On the paper's hardware, "returning the physical memory to the system"
//! unmaps frames so that user processes can have them. In this userspace
//! reproduction the host kernel owns the real frames, so the pool tracks
//! them by *accounting*: the allocator must claim a frame before treating a
//! virtual page as mapped and credits it back when the coalesce-to-page
//! layer drains a page. A bounded pool is what makes the worst-case
//! benchmark ("allocate blocks of a given size until memory is exhausted")
//! meaningful, and the `in_use == 0` check after a full drain is the
//! observable form of the paper's claim that every fully freed page leaves
//! the allocator.

use core::sync::atomic::{AtomicUsize, Ordering};

use kmem_smp::{faults, Faults, NodeId};

use crate::error::VmError;

/// A bounded pool of physical page frames.
pub struct PhysPool {
    capacity: usize,
    in_use: AtomicUsize,
    /// High-water mark of frames simultaneously in use.
    peak: AtomicUsize,
    /// Total map operations, for stats.
    maps: AtomicUsize,
    /// Total unmap operations, for stats.
    unmaps: AtomicUsize,
    /// Failpoint handle; `faults::PHYS_CLAIM` can force claim failures.
    faults: Faults,
}

impl PhysPool {
    /// Creates a pool of `capacity` frames with failpoints off.
    pub fn new(capacity: usize) -> Self {
        PhysPool::with_faults(capacity, Faults::none())
    }

    /// Creates a pool of `capacity` frames wired to `faults`.
    pub fn with_faults(capacity: usize, faults: Faults) -> Self {
        PhysPool {
            capacity,
            in_use: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            maps: AtomicUsize::new(0),
            unmaps: AtomicUsize::new(0),
            faults,
        }
    }

    /// Total frames in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently claimed.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Frames currently available.
    pub fn available(&self) -> usize {
        self.capacity - self.in_use()
    }

    /// High-water mark of simultaneously claimed frames.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total successful [`PhysPool::claim`] page-count.
    pub fn total_mapped(&self) -> usize {
        self.maps.load(Ordering::Relaxed)
    }

    /// Total [`PhysPool::release`] page-count.
    pub fn total_unmapped(&self) -> usize {
        self.unmaps.load(Ordering::Relaxed)
    }

    /// Claims `n` frames, failing (with no partial claim) if fewer are free.
    pub fn claim(&self, n: usize) -> Result<(), VmError> {
        if self.faults.hit(faults::PHYS_CLAIM) {
            return Err(VmError::OutOfPhysical {
                requested: n,
                available: self.available(),
            });
        }
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let new = cur + n;
            if new > self.capacity {
                return Err(VmError::OutOfPhysical {
                    requested: n,
                    available: self.capacity - cur,
                });
            }
            match self
                .in_use
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.maps.fetch_add(n, Ordering::Relaxed);
                    self.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases `n` previously claimed frames back to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more frames are released than were claimed — that is a
    /// double-unmap bug in the caller.
    pub fn release(&self, n: usize) {
        self.unmaps.fetch_add(n, Ordering::Relaxed);
        let prev = self.in_use.fetch_sub(n, Ordering::AcqRel);
        assert!(prev >= n, "physical page pool: released more than claimed");
    }
}

/// Per-node physical frame pools behind one aggregate facade.
///
/// On a NUMA machine every frame lives on some node; the allocator above
/// records each frame's home node in its page descriptor and prefers
/// node-local frames. The facade keeps the whole single-pool API
/// (`claim`/`release`/`in_use`/...) working unchanged — with one node it
/// *is* the old pool — and adds the node-addressed [`claim_on`] /
/// [`release_on`] pair the node-aware layers use.
///
/// Capacity is split evenly across nodes, remainder to the first nodes.
///
/// [`claim_on`]: NodePhysPools::claim_on
/// [`release_on`]: NodePhysPools::release_on
pub struct NodePhysPools {
    nodes: Box<[PhysPool]>,
}

impl NodePhysPools {
    /// Creates `nnodes` pools splitting `capacity` frames, failpoints off.
    pub fn new(capacity: usize, nnodes: usize) -> Self {
        NodePhysPools::with_faults(capacity, nnodes, Faults::none())
    }

    /// As [`new`](NodePhysPools::new), wired to `faults`.
    pub fn with_faults(capacity: usize, nnodes: usize, faults: Faults) -> Self {
        assert!(nnodes >= 1, "at least one node");
        let base = capacity / nnodes;
        let rem = capacity % nnodes;
        let nodes = (0..nnodes)
            .map(|i| PhysPool::with_faults(base + usize::from(i < rem), faults.clone()))
            .collect();
        NodePhysPools { nodes }
    }

    /// Number of node pools.
    #[inline]
    pub fn nnodes(&self) -> usize {
        self.nodes.len()
    }

    /// The pool of one node.
    #[inline]
    pub fn node(&self, node: NodeId) -> &PhysPool {
        &self.nodes[node.index()]
    }

    /// Total frames across all nodes.
    pub fn capacity(&self) -> usize {
        self.nodes.iter().map(|p| p.capacity()).sum()
    }

    /// Frames currently claimed across all nodes.
    pub fn in_use(&self) -> usize {
        self.nodes.iter().map(|p| p.in_use()).sum()
    }

    /// Frames currently available across all nodes.
    pub fn available(&self) -> usize {
        self.nodes.iter().map(|p| p.available()).sum()
    }

    /// Sum of per-node high-water marks (an upper bound on the aggregate
    /// peak; exact with one node).
    pub fn peak(&self) -> usize {
        self.nodes.iter().map(|p| p.peak()).sum()
    }

    /// Total successful claim page-count across all nodes.
    pub fn total_mapped(&self) -> usize {
        self.nodes.iter().map(|p| p.total_mapped()).sum()
    }

    /// Total release page-count across all nodes.
    pub fn total_unmapped(&self) -> usize {
        self.nodes.iter().map(|p| p.total_unmapped()).sum()
    }

    /// Claims `n` frames from a single node, preferring `preferred` and
    /// falling back to the other nodes in index order. Returns the node
    /// that actually supplied the frames; a span is never split across
    /// nodes, so the whole claim has one home.
    pub fn claim_on(&self, preferred: NodeId, n: usize) -> Result<NodeId, VmError> {
        let start = preferred.index();
        debug_assert!(start < self.nodes.len(), "preferred node out of range");
        let nn = self.nodes.len();
        let mut last = VmError::OutOfPhysical {
            requested: n,
            available: 0,
        };
        for k in 0..nn {
            let i = (start + k) % nn;
            match self.nodes[i].claim(n) {
                Ok(()) => return Ok(NodeId::new(i)),
                Err(e) => last = e,
            }
        }
        // Report the aggregate availability, not the last node's.
        if let VmError::OutOfPhysical { requested, .. } = last {
            last = VmError::OutOfPhysical {
                requested,
                available: self.available(),
            };
        }
        Err(last)
    }

    /// Releases `n` frames claimed from `node`.
    pub fn release_on(&self, node: NodeId, n: usize) {
        self.nodes[node.index()].release(n);
    }

    /// Claims `n` frames node-blind (preferring node 0) — the drop-in for
    /// the old single-pool `claim`. No partial claim.
    pub fn claim(&self, n: usize) -> Result<(), VmError> {
        self.claim_on(NodeId::new(0), n).map(|_| ())
    }

    /// Releases `n` frames node-blind, draining nodes in index order.
    ///
    /// Only correct where claims were also node-blind (tests, 1-node
    /// configurations); node-aware callers pair
    /// [`claim_on`](NodePhysPools::claim_on) with
    /// [`release_on`](NodePhysPools::release_on).
    ///
    /// # Panics
    ///
    /// Panics if more frames are released than are claimed in total.
    pub fn release(&self, n: usize) {
        let mut left = n;
        for p in self.nodes.iter() {
            if left == 0 {
                return;
            }
            let take = left.min(p.in_use());
            if take > 0 {
                p.release(take);
                left -= take;
            }
        }
        assert!(left == 0, "physical page pool: released more than claimed");
    }
}

impl core::fmt::Debug for NodePhysPools {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NodePhysPools")
            .field("nnodes", &self.nnodes())
            .field("capacity", &self.capacity())
            .field("in_use", &self.in_use())
            .finish()
    }
}

impl core::fmt::Debug for PhysPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PhysPool")
            .field("capacity", &self.capacity)
            .field("in_use", &self.in_use())
            .field("peak", &self.peak())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_and_release_account_exactly() {
        let p = PhysPool::new(10);
        p.claim(4).unwrap();
        assert_eq!(p.in_use(), 4);
        assert_eq!(p.available(), 6);
        p.claim(6).unwrap();
        assert_eq!(p.available(), 0);
        p.release(10);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.peak(), 10);
        assert_eq!(p.total_mapped(), 10);
        assert_eq!(p.total_unmapped(), 10);
    }

    #[test]
    fn exhaustion_reports_availability_and_leaves_state_intact() {
        let p = PhysPool::new(5);
        p.claim(3).unwrap();
        let err = p.claim(4).unwrap_err();
        assert_eq!(
            err,
            VmError::OutOfPhysical {
                requested: 4,
                available: 2
            }
        );
        // The failed claim must not consume frames.
        assert_eq!(p.in_use(), 3);
        p.claim(2).unwrap();
    }

    #[test]
    #[should_panic(expected = "released more than claimed")]
    fn over_release_is_caught() {
        let p = PhysPool::new(2);
        p.claim(1).unwrap();
        p.release(2);
    }

    #[test]
    fn injected_claim_failure_is_typed_and_leaves_accounting_intact() {
        use kmem_smp::FailPolicy;

        let faults = Faults::with_plan();
        let p = PhysPool::with_faults(10, faults.clone());
        p.claim(2).unwrap();
        faults
            .plan()
            .unwrap()
            .set(faults::PHYS_CLAIM, FailPolicy::Script(vec![true]));
        let err = p.claim(1).unwrap_err();
        assert_eq!(
            err,
            VmError::OutOfPhysical {
                requested: 1,
                available: 8
            }
        );
        // The injected failure consumed no frames; the next claim works.
        assert_eq!(p.in_use(), 2);
        p.claim(8).unwrap();
        p.release(10);
    }

    #[test]
    fn node_pools_split_capacity_with_remainder_to_first_nodes() {
        let p = NodePhysPools::new(10, 4);
        assert_eq!(p.nnodes(), 4);
        assert_eq!(p.capacity(), 10);
        let caps: Vec<usize> = (0..4).map(|i| p.node(NodeId::new(i)).capacity()).collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
    }

    #[test]
    fn claim_on_prefers_the_named_node_and_falls_back_in_order() {
        let p = NodePhysPools::new(8, 2); // 4 + 4
        let n1 = NodeId::new(1);
        assert_eq!(p.claim_on(n1, 3).unwrap(), n1);
        assert_eq!(p.node(n1).in_use(), 3);
        // Node 1 can't take 2 more; the claim falls back to node 0.
        assert_eq!(p.claim_on(n1, 2).unwrap(), NodeId::new(0));
        // Release by home node keeps per-node accounting exact.
        p.release_on(n1, 3);
        p.release_on(NodeId::new(0), 2);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn aggregate_claim_reports_total_availability_on_exhaustion() {
        let p = NodePhysPools::new(6, 3); // 2 + 2 + 2
        p.claim(2).unwrap();
        p.claim(2).unwrap();
        p.claim(1).unwrap();
        // 1 frame left in total, spread thin: a 2-frame claim fails with
        // the aggregate availability.
        let err = p.claim(2).unwrap_err();
        assert_eq!(
            err,
            VmError::OutOfPhysical {
                requested: 2,
                available: 1
            }
        );
        p.release(5);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.total_mapped(), p.total_unmapped());
    }

    #[test]
    fn single_node_facade_matches_plain_pool_behaviour() {
        let p = NodePhysPools::new(10, 1);
        p.claim(4).unwrap();
        assert_eq!(p.in_use(), 4);
        assert_eq!(p.available(), 6);
        p.claim(6).unwrap();
        assert!(p.claim(1).is_err());
        p.release(10);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.peak(), 10);
    }

    #[test]
    #[should_panic(expected = "released more than claimed")]
    fn aggregate_over_release_is_caught() {
        let p = NodePhysPools::new(4, 2);
        p.claim(1).unwrap();
        p.release(2);
    }

    #[test]
    fn concurrent_claims_never_oversubscribe() {
        let p = PhysPool::new(100);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        if p.claim(3).is_ok() {
                            assert!(p.in_use() <= 100);
                            p.release(3);
                        }
                    }
                });
            }
        });
        assert_eq!(p.in_use(), 0);
    }
}
