//! Property tests for the kernel-space substrate.

use kmem_testkit::{check, shrink_vec, vec_of, Rng};
use kmem_vm::{KernelSpace, SpaceConfig, VmblkRegion};

/// Random carve/free interleavings keep regions disjoint and the dope
/// vector exact.
#[derive(Debug, Clone)]
enum Op {
    Carve,
    /// Free the i-th live region (modulo live count).
    Free(usize),
    /// Look up an interior address of the i-th live region.
    Lookup(usize),
}

fn gen_op(rng: &mut Rng) -> Op {
    // Weighted 3:2:2, matching the original proptest strategy.
    match rng.range_u64(0..7) {
        0..=2 => Op::Carve,
        3..=4 => Op::Free(rng.range_usize(0..64)),
        _ => Op::Lookup(rng.range_usize(0..64)),
    }
}

fn shrink_op(op: &Op) -> Vec<Op> {
    match *op {
        Op::Carve => Vec::new(),
        Op::Free(i) => kmem_testkit::shrink_usize(i, 0)
            .into_iter()
            .map(Op::Free)
            .collect(),
        Op::Lookup(i) => kmem_testkit::shrink_usize(i, 0)
            .into_iter()
            .map(Op::Lookup)
            .collect(),
    }
}

#[test]
fn carve_free_lookup_interleavings() {
    check(
        "carve_free_lookup_interleavings",
        128,
        vec_of(1..200, gen_op),
        |ops| shrink_vec(ops, shrink_op),
        |ops| {
            let space = KernelSpace::new(SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(16));
            let mut live: Vec<VmblkRegion> = Vec::new();
            for o in ops {
                match *o {
                    Op::Carve => {
                        if let Ok(r) = space.alloc_vmblk() {
                            // Freshly carved vmblks are unpublished.
                            assert_eq!(space.dope_lookup(r.base().as_ptr() as usize), None);
                            space.set_dope(r.index(), r.base().as_ptr() as usize);
                            // No overlap with any live region.
                            for other in &live {
                                let a = r.base().as_ptr() as usize;
                                let b = other.base().as_ptr() as usize;
                                assert!(
                                    a + r.size() <= b || b + other.size() <= a,
                                    "regions overlap"
                                );
                            }
                            live.push(r);
                        } else {
                            // Exhaustion only when every slot is carved.
                            assert_eq!(live.len(), space.nvmblks());
                        }
                    }
                    Op::Free(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let r = live.swap_remove(i % live.len());
                        space.free_vmblk(r);
                        assert_eq!(space.dope_lookup(r.base().as_ptr() as usize), None);
                    }
                    Op::Lookup(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let r = &live[i % live.len()];
                        let base = r.base().as_ptr() as usize;
                        for addr in [base, base + r.size() / 2, base + r.size() - 1] {
                            assert_eq!(space.dope_lookup(addr), Some(base));
                            assert_eq!(space.vmblk_index_of(addr), Some(r.index()));
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn phys_pool_never_oversubscribes() {
    check(
        "phys_pool_never_oversubscribes",
        128,
        vec_of(1..100, |rng| (rng.range_usize(1..8), rng.ratio(1, 2))),
        |claims| {
            shrink_vec(claims, |&(n, f)| {
                kmem_testkit::shrink_usize(n, 1)
                    .into_iter()
                    .map(|n| (n, f))
                    .collect()
            })
        },
        |claims| {
            let space = KernelSpace::new(SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(20));
            let pool = space.phys();
            let mut held = Vec::new();
            for &(n, free_one) in claims {
                if free_one {
                    if let Some(k) = held.pop() {
                        pool.release(k);
                    }
                } else if pool.claim(n).is_ok() {
                    held.push(n);
                } else {
                    // A failed claim must be because it would overflow.
                    assert!(pool.in_use() + n > pool.capacity());
                }
                assert!(pool.in_use() <= pool.capacity());
                assert_eq!(pool.in_use(), held.iter().sum::<usize>());
            }
            Ok(())
        },
    );
}
