//! Property tests for the kernel-space substrate.

use proptest::prelude::*;

use kmem_vm::{KernelSpace, SpaceConfig, VmblkRegion};

/// Random carve/free interleavings keep regions disjoint and the dope
/// vector exact.
#[derive(Debug, Clone)]
enum Op {
    Carve,
    /// Free the i-th live region (modulo live count).
    Free(usize),
    /// Look up an interior address of the i-th live region.
    Lookup(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Carve),
        2 => (0usize..64).prop_map(Op::Free),
        2 => (0usize..64).prop_map(Op::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn carve_free_lookup_interleavings(ops in proptest::collection::vec(op(), 1..200)) {
        let space = KernelSpace::new(
            SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(16),
        );
        let mut live: Vec<VmblkRegion> = Vec::new();
        for o in ops {
            match o {
                Op::Carve => {
                    if let Ok(r) = space.alloc_vmblk() {
                        // Freshly carved vmblks are unpublished.
                        prop_assert_eq!(
                            space.dope_lookup(r.base().as_ptr() as usize),
                            None
                        );
                        space.set_dope(r.index(), r.base().as_ptr() as usize);
                        // No overlap with any live region.
                        for other in &live {
                            let a = r.base().as_ptr() as usize;
                            let b = other.base().as_ptr() as usize;
                            prop_assert!(
                                a + r.size() <= b || b + other.size() <= a,
                                "regions overlap"
                            );
                        }
                        live.push(r);
                    } else {
                        // Exhaustion only when every slot is carved.
                        prop_assert_eq!(live.len(), space.nvmblks());
                    }
                }
                Op::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let r = live.swap_remove(i % live.len());
                    space.free_vmblk(r);
                    prop_assert_eq!(
                        space.dope_lookup(r.base().as_ptr() as usize),
                        None
                    );
                }
                Op::Lookup(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let r = &live[i % live.len()];
                    let base = r.base().as_ptr() as usize;
                    for addr in [base, base + r.size() / 2, base + r.size() - 1] {
                        prop_assert_eq!(space.dope_lookup(addr), Some(base));
                        prop_assert_eq!(space.vmblk_index_of(addr), Some(r.index()));
                    }
                }
            }
        }
    }

    #[test]
    fn phys_pool_never_oversubscribes(
        claims in proptest::collection::vec((1usize..8, proptest::bool::ANY), 1..100),
    ) {
        let space = KernelSpace::new(
            SpaceConfig::new(1 << 20).vmblk_shift(14).phys_pages(20),
        );
        let pool = space.phys();
        let mut held = Vec::new();
        for (n, free_one) in claims {
            if free_one {
                if let Some(k) = held.pop() {
                    pool.release(k);
                }
            } else if pool.claim(n).is_ok() {
                held.push(n);
            } else {
                // A failed claim must be because it would overflow.
                prop_assert!(pool.in_use() + n > pool.capacity());
            }
            prop_assert!(pool.in_use() <= pool.capacity());
            prop_assert_eq!(pool.in_use(), held.iter().sum::<usize>());
        }
    }
}
