//! The lock manager: resource table, grant/wait queues, conversions.
//!
//! Resource blocks (RSBs) and lock blocks (LKBs) are plain kernel records
//! living in `kmem` memory, linked intrusively, exactly the allocation
//! pattern the paper's DLM benchmark measures: a lock request allocates,
//! a release frees, and records routinely pass between CPUs.

use core::ptr::{self, NonNull};
use std::sync::Arc;

use kmem::{Cookie, CpuHandle, KmemArena};
use kmem_smp::{EventCounter, SpinLock};

use crate::modes::Mode;

/// Bytes in a lock value block.
pub const LVB_LEN: usize = 16;

/// Resource block. Padded so the whole record lands in the 512-byte size
/// class (the class whose allocation miss rates the paper reports).
#[repr(C)]
struct Rsb {
    name: u64,
    hash_next: *mut Rsb,
    granted: *mut Lkb,
    wait_head: *mut Lkb,
    wait_tail: *mut Lkb,
    /// Granted + waiting locks on this resource.
    nlocks: u32,
    /// The lock value block: 16 bytes of state that travels with the
    /// resource (VMS-style; OLTP clusters use it for, e.g., cache
    /// sequence numbers).
    lvb: [u8; LVB_LEN],
    _pad: [u8; 448],
}

/// Completion routine invoked (via [`Dlm::run_asts`]) when a waiting lock
/// is granted — the VMS "AST" delivered at a safe point, kernel-style: a
/// plain function pointer plus one context word, so it fits in the LKB.
pub type AstFn = fn(ctx: usize);

/// Lock block. Padded so the record lands in the 256-byte class (the
/// class whose free miss rates the paper reports).
#[repr(C)]
struct Lkb {
    res: *mut Rsb,
    next: *mut Lkb,
    /// Completion AST (0 = none) and its context word.
    ast_fn: usize,
    ast_ctx: usize,
    mode: u8,
    state: u8,
    _pad: [u8; 222],
}

const STATE_GRANTED: u8 = 0;
const STATE_WAITING: u8 = 1;

/// Status of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockStatus {
    /// The lock is granted.
    Granted,
    /// The lock sits on the resource's FIFO wait queue; poll or cancel.
    Waiting,
}

/// An owned reference to a lock block.
///
/// Must be resolved by [`Dlm::unlock`] (which also cancels waiting
/// requests); dropping it without unlocking leaks the lock.
#[derive(Debug)]
pub struct LockHandle {
    lkb: NonNull<Lkb>,
}

// SAFETY: the handle is a capability; all dereferences happen inside the
// manager under the resource's bucket lock.
unsafe impl Send for LockHandle {}

/// Counters for the DLM itself.
#[derive(Default)]
pub struct DlmStats {
    /// Requests granted immediately.
    pub grants: EventCounter,
    /// Requests that had to wait.
    pub waits: EventCounter,
    /// Waiters promoted to granted by a release or down-convert.
    pub promotions: EventCounter,
    /// Conversions performed.
    pub converts: EventCounter,
    /// Conversions denied (incompatible).
    pub converts_denied: EventCounter,
    /// Unlocks (including cancellations of waiting requests).
    pub unlocks: EventCounter,
    /// Resource blocks created.
    pub resources_created: EventCounter,
    /// Resource blocks freed (last lock gone).
    pub resources_freed: EventCounter,
}

/// One hash bucket: the head of a chain of RSBs.
struct Bucket(*mut Rsb);

// SAFETY: bucket contents are only touched under the bucket's spinlock.
unsafe impl Send for Bucket {}

/// The lock manager.
pub struct Dlm {
    arena: KmemArena,
    buckets: Box<[SpinLock<Bucket>]>,
    rsb_cookie: Cookie,
    lkb_cookie: Cookie,
    /// Pending completion ASTs (function, context), delivered by
    /// [`Dlm::run_asts`].
    asts: SpinLock<Vec<(AstFn, usize)>>,
    stats: DlmStats,
}

impl Dlm {
    /// Creates a manager with `nbuckets` hash buckets over `arena`.
    pub fn new(arena: KmemArena, nbuckets: usize) -> Arc<Self> {
        assert!(nbuckets.is_power_of_two(), "bucket count must be 2^k");
        let rsb_cookie = arena
            .cookie_for(core::mem::size_of::<Rsb>())
            .expect("RSB fits a class");
        let lkb_cookie = arena
            .cookie_for(core::mem::size_of::<Lkb>())
            .expect("LKB fits a class");
        // The records are padded to match the classes the paper measured.
        debug_assert_eq!(rsb_cookie.block_size(), 512);
        debug_assert_eq!(lkb_cookie.block_size(), 256);
        Arc::new(Dlm {
            arena,
            buckets: (0..nbuckets)
                .map(|_| SpinLock::new(Bucket(ptr::null_mut())))
                .collect(),
            rsb_cookie,
            lkb_cookie,
            asts: SpinLock::new(Vec::new()),
            stats: DlmStats::default(),
        })
    }

    /// The arena whose miss rates the benchmark reads.
    pub fn arena(&self) -> &KmemArena {
        &self.arena
    }

    /// Manager statistics.
    pub fn stats(&self) -> &DlmStats {
        &self.stats
    }

    fn bucket_of(&self, name: u64) -> &SpinLock<Bucket> {
        let h = name.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.buckets[(h as usize) & (self.buckets.len() - 1)]
    }

    /// Requests `mode` on resource `name`.
    ///
    /// Returns the handle plus whether it was granted immediately or
    /// queued. Fails only on memory exhaustion.
    pub fn lock(
        &self,
        cpu: &CpuHandle,
        name: u64,
        mode: Mode,
    ) -> Result<(LockHandle, LockStatus), kmem::AllocError> {
        let lkb = cpu.alloc_cookie(self.lkb_cookie)?.cast::<Lkb>();
        let bucket = self.bucket_of(name);
        let mut guard = bucket.lock();
        // Find or create the resource.
        let mut rsb = guard.0;
        // SAFETY: chain members are live RSBs guarded by this bucket lock.
        while !rsb.is_null() && unsafe { (*rsb).name } != name {
            rsb = unsafe { (*rsb).hash_next };
        }
        if rsb.is_null() {
            let new = match cpu.alloc_cookie(self.rsb_cookie) {
                Ok(p) => p.cast::<Rsb>().as_ptr(),
                Err(e) => {
                    drop(guard);
                    // SAFETY: the LKB was just allocated and never shared.
                    unsafe { cpu.free_cookie(lkb.cast(), self.lkb_cookie) };
                    return Err(e);
                }
            };
            // SAFETY: fresh RSB-sized allocation.
            unsafe {
                new.write(Rsb {
                    name,
                    hash_next: guard.0,
                    granted: ptr::null_mut(),
                    wait_head: ptr::null_mut(),
                    wait_tail: ptr::null_mut(),
                    nlocks: 0,
                    lvb: [0; LVB_LEN],
                    _pad: [0; 448],
                });
            }
            guard.0 = new;
            rsb = new;
            self.stats.resources_created.inc();
        }
        // Grant if nothing waits (FIFO fairness) and the mode is
        // compatible with every granted lock.
        // SAFETY: `rsb` is live under the bucket lock.
        let can_grant = unsafe {
            (*rsb).wait_head.is_null() && compatible_with_granted(rsb, mode, ptr::null_mut())
        };
        // SAFETY: fresh LKB-sized allocation.
        unsafe {
            lkb.as_ptr().write(Lkb {
                res: rsb,
                next: ptr::null_mut(),
                ast_fn: 0,
                ast_ctx: 0,
                mode: mode as u8,
                state: if can_grant {
                    STATE_GRANTED
                } else {
                    STATE_WAITING
                },
                _pad: [0; 222],
            });
        }
        // SAFETY: `rsb` and `lkb` are live under the bucket lock.
        unsafe {
            if can_grant {
                (*lkb.as_ptr()).next = (*rsb).granted;
                (*rsb).granted = lkb.as_ptr();
            } else {
                // FIFO append.
                if (*rsb).wait_tail.is_null() {
                    (*rsb).wait_head = lkb.as_ptr();
                } else {
                    (*(*rsb).wait_tail).next = lkb.as_ptr();
                }
                (*rsb).wait_tail = lkb.as_ptr();
            }
            (*rsb).nlocks += 1;
        }
        if can_grant {
            self.stats.grants.inc();
            Ok((LockHandle { lkb }, LockStatus::Granted))
        } else {
            self.stats.waits.inc();
            Ok((LockHandle { lkb }, LockStatus::Waiting))
        }
    }

    /// Current status of a lock.
    pub fn poll(&self, handle: &LockHandle) -> LockStatus {
        // SAFETY: handles keep their LKB live until unlock; the name and
        // state are read under the bucket lock.
        let name = {
            let lkb = handle.lkb.as_ptr();
            // Resource name is immutable after creation; reading it
            // requires knowing the bucket, which requires the name — so
            // read it through the LKB's resource pointer, which is
            // immutable too.
            unsafe { (*(*lkb).res).name }
        };
        let _guard = self.bucket_of(name).lock();
        // SAFETY: bucket lock held.
        let state = unsafe { (*handle.lkb.as_ptr()).state };
        if state == STATE_GRANTED {
            LockStatus::Granted
        } else {
            LockStatus::Waiting
        }
    }

    /// Converts a granted lock to `newmode`.
    ///
    /// Returns `false` (leaving the old mode) if the new mode conflicts
    /// with another granted lock or the lock is still waiting. A
    /// down-convert may promote waiters.
    pub fn convert(&self, cpu: &CpuHandle, handle: &LockHandle, newmode: Mode) -> bool {
        let lkb = handle.lkb.as_ptr();
        // SAFETY: the resource pointer is immutable while the handle lives.
        let (rsb, name) = unsafe { ((*lkb).res, (*(*lkb).res).name) };
        let _guard = self.bucket_of(name).lock();
        // SAFETY: bucket lock held; rsb/lkb live.
        unsafe {
            if (*lkb).state != STATE_GRANTED {
                self.stats.converts_denied.inc();
                return false;
            }
            if !compatible_with_granted(rsb, newmode, lkb) {
                self.stats.converts_denied.inc();
                return false;
            }
            let down = (newmode as u8) < (*lkb).mode;
            (*lkb).mode = newmode as u8;
            self.stats.converts.inc();
            if down {
                self.promote_waiters(cpu, rsb);
            }
        }
        true
    }

    /// Releases a lock (or cancels a waiting request), frees its LKB, and
    /// promotes any waiters that became grantable. The resource block is
    /// freed when its last lock goes.
    pub fn unlock(&self, cpu: &CpuHandle, handle: LockHandle) {
        self.stats.unlocks.inc();
        let lkb = handle.lkb.as_ptr();
        // SAFETY: the resource pointer is immutable while the handle lives.
        let (rsb, name) = unsafe { ((*lkb).res, (*(*lkb).res).name) };
        let bucket = self.bucket_of(name);
        let mut guard = bucket.lock();
        // SAFETY: bucket lock held; all records live.
        let free_rsb = unsafe {
            if (*lkb).state == STATE_GRANTED {
                remove_from_list(&mut (*rsb).granted, lkb);
            } else {
                remove_from_wait_queue(rsb, lkb);
            }
            (*rsb).nlocks -= 1;
            self.promote_waiters(cpu, rsb);
            if (*rsb).nlocks == 0 {
                // Unlink from the hash chain.
                let mut cur = &mut guard.0;
                while *cur != rsb {
                    debug_assert!(!(*cur).is_null(), "RSB missing from chain");
                    cur = &mut (**cur).hash_next;
                }
                *cur = (*rsb).hash_next;
                true
            } else {
                false
            }
        };
        drop(guard);
        if free_rsb {
            self.stats.resources_freed.inc();
            // SAFETY: the RSB was ours and is now unreachable.
            unsafe { cpu.free_cookie(NonNull::new_unchecked(rsb.cast()), self.rsb_cookie) };
        }
        // SAFETY: the LKB is unlinked and the handle consumed.
        unsafe { cpu.free_cookie(handle.lkb.cast(), self.lkb_cookie) };
    }

    /// Promotes waiters in FIFO order while they are compatible.
    ///
    /// # Safety
    ///
    /// Caller holds the bucket lock covering `rsb`.
    unsafe fn promote_waiters(&self, _cpu: &CpuHandle, rsb: *mut Rsb) {
        // SAFETY: bucket lock held per contract.
        unsafe {
            loop {
                let head = (*rsb).wait_head;
                if head.is_null() {
                    break;
                }
                let mode = Mode::from_u8((*head).mode);
                if !compatible_with_granted(rsb, mode, ptr::null_mut()) {
                    break;
                }
                // Dequeue and grant.
                (*rsb).wait_head = (*head).next;
                if (*rsb).wait_head.is_null() {
                    (*rsb).wait_tail = ptr::null_mut();
                }
                (*head).next = (*rsb).granted;
                (*rsb).granted = head;
                (*head).state = STATE_GRANTED;
                self.stats.promotions.inc();
                if (*head).ast_fn != 0 {
                    // SAFETY: ast_fn was written from a valid `AstFn` in
                    // `set_ast` and never mutated elsewhere.
                    let f: AstFn = core::mem::transmute::<usize, AstFn>((*head).ast_fn);
                    self.asts.lock().push((f, (*head).ast_ctx));
                }
            }
        }
    }

    /// Registers a completion AST on a waiting lock: when a release or
    /// down-convert grants it, `(ast)(ctx)` is queued and delivered by the
    /// next [`Dlm::run_asts`] — the cooperative form of VMS's asynchronous
    /// system traps. Registering on an already-granted lock queues the AST
    /// immediately.
    pub fn set_ast(&self, handle: &LockHandle, ast: AstFn, ctx: usize) {
        let lkb = handle.lkb.as_ptr();
        // SAFETY: the resource pointer is immutable while the handle lives.
        let name = unsafe { (*(*lkb).res).name };
        let _guard = self.bucket_of(name).lock();
        // SAFETY: bucket lock held; the LKB is live.
        unsafe {
            if (*lkb).state == STATE_GRANTED {
                self.asts.lock().push((ast, ctx));
            } else {
                (*lkb).ast_fn = ast as usize;
                (*lkb).ast_ctx = ctx;
            }
        }
    }

    /// Delivers every queued completion AST; returns how many ran.
    ///
    /// Call from a scheduling point (the kernel would deliver these at
    /// quantum boundaries); ASTs run outside all manager locks.
    pub fn run_asts(&self) -> usize {
        let pending = core::mem::take(&mut *self.asts.lock());
        let n = pending.len();
        for (f, ctx) in pending {
            f(ctx);
        }
        n
    }

    /// Pending, undelivered ASTs.
    pub fn pending_asts(&self) -> usize {
        self.asts.lock().len()
    }

    /// Reads the resource's lock value block.
    ///
    /// Any granted lock may read (as in VMS, where the LVB is returned on
    /// grant at CR or above); a waiting handle gets `None`.
    pub fn read_lvb(&self, handle: &LockHandle) -> Option<[u8; LVB_LEN]> {
        let lkb = handle.lkb.as_ptr();
        // SAFETY: the resource pointer is immutable while the handle lives.
        let (rsb, name) = unsafe { ((*lkb).res, (*(*lkb).res).name) };
        let _guard = self.bucket_of(name).lock();
        // SAFETY: bucket lock held; records live.
        unsafe {
            if (*lkb).state != STATE_GRANTED {
                return None;
            }
            Some((*rsb).lvb)
        }
    }

    /// Writes the resource's lock value block.
    ///
    /// Requires a granted lock at PW or EX (the modes allowed to update
    /// the value in VMS); returns `false` otherwise.
    pub fn write_lvb(&self, handle: &LockHandle, value: [u8; LVB_LEN]) -> bool {
        let lkb = handle.lkb.as_ptr();
        // SAFETY: the resource pointer is immutable while the handle lives.
        let (rsb, name) = unsafe { ((*lkb).res, (*(*lkb).res).name) };
        let _guard = self.bucket_of(name).lock();
        // SAFETY: bucket lock held; records live.
        unsafe {
            if (*lkb).state != STATE_GRANTED || Mode::from_u8((*lkb).mode) < Mode::Pw {
                return false;
            }
            (*rsb).lvb = value;
        }
        true
    }

    /// Total locks on a resource (tests).
    pub fn lock_count(&self, name: u64) -> usize {
        let guard = self.bucket_of(name).lock();
        let mut rsb = guard.0;
        // SAFETY: bucket lock held.
        unsafe {
            while !rsb.is_null() && (*rsb).name != name {
                rsb = (*rsb).hash_next;
            }
            if rsb.is_null() {
                0
            } else {
                (*rsb).nlocks as usize
            }
        }
    }
}

/// Whether `mode` is compatible with every granted lock except `skip`.
///
/// # Safety
///
/// Caller holds the bucket lock covering `rsb`.
unsafe fn compatible_with_granted(rsb: *mut Rsb, mode: Mode, skip: *mut Lkb) -> bool {
    // SAFETY: bucket lock held per contract; list members are live.
    unsafe {
        let mut cur = (*rsb).granted;
        while !cur.is_null() {
            if cur != skip && !mode.compatible_with(Mode::from_u8((*cur).mode)) {
                return false;
            }
            cur = (*cur).next;
        }
    }
    true
}

/// Removes `lkb` from a singly linked list headed at `head`.
///
/// # Safety
///
/// Caller holds the bucket lock; `lkb` is on the list.
unsafe fn remove_from_list(head: &mut *mut Lkb, lkb: *mut Lkb) {
    // SAFETY: bucket lock held per contract.
    unsafe {
        let mut cur = head as *mut *mut Lkb;
        while *cur != lkb {
            debug_assert!(!(*cur).is_null(), "LKB missing from list");
            cur = &mut (**cur).next;
        }
        *cur = (*lkb).next;
    }
}

/// Removes `lkb` from the wait queue, maintaining the tail pointer.
///
/// # Safety
///
/// Caller holds the bucket lock; `lkb` waits on `rsb`.
unsafe fn remove_from_wait_queue(rsb: *mut Rsb, lkb: *mut Lkb) {
    // SAFETY: bucket lock held per contract.
    unsafe {
        let mut prev: *mut Lkb = ptr::null_mut();
        let mut cur = (*rsb).wait_head;
        while cur != lkb {
            debug_assert!(!cur.is_null(), "LKB missing from wait queue");
            prev = cur;
            cur = (*cur).next;
        }
        if prev.is_null() {
            (*rsb).wait_head = (*lkb).next;
        } else {
            (*prev).next = (*lkb).next;
        }
        if (*rsb).wait_tail == lkb {
            (*rsb).wait_tail = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem::KmemConfig;

    fn setup() -> (Arc<Dlm>, CpuHandle) {
        let arena = KmemArena::new(KmemConfig::small()).unwrap();
        let cpu = arena.register_cpu().unwrap();
        (Dlm::new(arena, 64), cpu)
    }

    #[test]
    fn record_sizes_hit_the_papers_classes() {
        assert!(core::mem::size_of::<Rsb>() > 256 && core::mem::size_of::<Rsb>() <= 512);
        assert!(core::mem::size_of::<Lkb>() > 128 && core::mem::size_of::<Lkb>() <= 256);
    }

    #[test]
    fn grant_and_unlock_free_everything() {
        let (dlm, cpu) = setup();
        let (h, st) = dlm.lock(&cpu, 42, Mode::Ex).unwrap();
        assert_eq!(st, LockStatus::Granted);
        assert_eq!(dlm.lock_count(42), 1);
        dlm.unlock(&cpu, h);
        assert_eq!(dlm.lock_count(42), 0);
        assert_eq!(dlm.stats().resources_created.get(), 1);
        assert_eq!(dlm.stats().resources_freed.get(), 1);
        cpu.flush();
        dlm.arena().reclaim();
        kmem::verify::verify_empty(dlm.arena());
    }

    #[test]
    fn shared_locks_coexist_exclusive_waits() {
        let (dlm, cpu) = setup();
        let (r1, s1) = dlm.lock(&cpu, 7, Mode::Pr).unwrap();
        let (r2, s2) = dlm.lock(&cpu, 7, Mode::Pr).unwrap();
        assert_eq!((s1, s2), (LockStatus::Granted, LockStatus::Granted));
        let (w, sw) = dlm.lock(&cpu, 7, Mode::Ex).unwrap();
        assert_eq!(sw, LockStatus::Waiting);
        // FIFO fairness: a PR arriving after the EX waiter also waits.
        let (r3, s3) = dlm.lock(&cpu, 7, Mode::Pr).unwrap();
        assert_eq!(s3, LockStatus::Waiting);
        // Releasing both readers grants the EX (but not the PR behind it).
        dlm.unlock(&cpu, r1);
        dlm.unlock(&cpu, r2);
        assert_eq!(dlm.poll(&w), LockStatus::Granted);
        assert_eq!(dlm.poll(&r3), LockStatus::Waiting);
        // Releasing EX grants the queued PR.
        dlm.unlock(&cpu, w);
        assert_eq!(dlm.poll(&r3), LockStatus::Granted);
        dlm.unlock(&cpu, r3);
        assert_eq!(dlm.lock_count(7), 0);
    }

    #[test]
    fn cancel_waiting_request() {
        let (dlm, cpu) = setup();
        let (ex, _) = dlm.lock(&cpu, 1, Mode::Ex).unwrap();
        let (w, st) = dlm.lock(&cpu, 1, Mode::Pw).unwrap();
        assert_eq!(st, LockStatus::Waiting);
        // Unlock on a waiting handle cancels it.
        dlm.unlock(&cpu, w);
        assert_eq!(dlm.lock_count(1), 1);
        dlm.unlock(&cpu, ex);
    }

    #[test]
    fn conversion_up_and_down() {
        let (dlm, cpu) = setup();
        let (a, _) = dlm.lock(&cpu, 9, Mode::Cr).unwrap();
        let (b, _) = dlm.lock(&cpu, 9, Mode::Cr).unwrap();
        // CR → PW: compatible with the other CR.
        assert!(dlm.convert(&cpu, &a, Mode::Pw));
        // CR → PR while a PW is granted: denied.
        assert!(!dlm.convert(&cpu, &b, Mode::Pr));
        // Down-convert PW → NL; now the PR conversion succeeds.
        assert!(dlm.convert(&cpu, &a, Mode::Nl));
        assert!(dlm.convert(&cpu, &b, Mode::Pr));
        dlm.unlock(&cpu, a);
        dlm.unlock(&cpu, b);
    }

    #[test]
    fn down_convert_promotes_waiters() {
        let (dlm, cpu) = setup();
        let (a, _) = dlm.lock(&cpu, 3, Mode::Ex).unwrap();
        let (w, st) = dlm.lock(&cpu, 3, Mode::Pr).unwrap();
        assert_eq!(st, LockStatus::Waiting);
        assert!(dlm.convert(&cpu, &a, Mode::Cr));
        assert_eq!(dlm.poll(&w), LockStatus::Granted);
        dlm.unlock(&cpu, a);
        dlm.unlock(&cpu, w);
    }

    #[test]
    fn asts_fire_on_promotion_only_when_delivered() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        fn on_grant(ctx: usize) {
            FIRED.fetch_add(ctx, Ordering::Relaxed);
        }
        let (dlm, cpu) = setup();
        let (ex, _) = dlm.lock(&cpu, 11, Mode::Ex).unwrap();
        let (w, st) = dlm.lock(&cpu, 11, Mode::Pr).unwrap();
        assert_eq!(st, LockStatus::Waiting);
        dlm.set_ast(&w, on_grant, 5);
        assert_eq!(dlm.pending_asts(), 0);
        // Release promotes the waiter and queues the AST...
        dlm.unlock(&cpu, ex);
        assert_eq!(dlm.poll(&w), LockStatus::Granted);
        assert_eq!(dlm.pending_asts(), 1);
        assert_eq!(FIRED.load(Ordering::Relaxed), 0);
        // ...which runs only at the delivery point.
        assert_eq!(dlm.run_asts(), 1);
        assert_eq!(FIRED.load(Ordering::Relaxed), 5);
        assert_eq!(dlm.pending_asts(), 0);
        dlm.unlock(&cpu, w);
    }

    #[test]
    fn ast_on_granted_lock_is_queued_immediately() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        fn on_grant(_ctx: usize) {
            FIRED.fetch_add(1, Ordering::Relaxed);
        }
        let (dlm, cpu) = setup();
        let (h, st) = dlm.lock(&cpu, 12, Mode::Cr).unwrap();
        assert_eq!(st, LockStatus::Granted);
        dlm.set_ast(&h, on_grant, 0);
        assert_eq!(dlm.run_asts(), 1);
        assert_eq!(FIRED.load(Ordering::Relaxed), 1);
        dlm.unlock(&cpu, h);
    }

    #[test]
    fn lock_value_blocks_travel_with_the_resource() {
        let (dlm, cpu) = setup();
        // The anchor keeps the resource (and its LVB) alive throughout.
        let (anchor, _) = dlm.lock(&cpu, 5, Mode::Nl).unwrap();
        let (w, _) = dlm.lock(&cpu, 5, Mode::Ex).unwrap();
        // Fresh resources carry a zeroed LVB.
        assert_eq!(dlm.read_lvb(&w), Some([0; LVB_LEN]));
        let mut v = [0u8; LVB_LEN];
        v[..4].copy_from_slice(b"seq1");
        assert!(dlm.write_lvb(&w, v));
        dlm.unlock(&cpu, w);
        // The value survives while other locks keep the resource alive...
        let (r, _) = dlm.lock(&cpu, 5, Mode::Cr).unwrap();
        assert_eq!(dlm.read_lvb(&r).unwrap()[..4], *b"seq1");
        // ...readers cannot write it...
        assert!(!dlm.write_lvb(&r, [9; LVB_LEN]));
        dlm.unlock(&cpu, r);
        dlm.unlock(&cpu, anchor);
        // ...and it resets when the last lock goes and the resource is
        // recreated from scratch.
        let (fresh, _) = dlm.lock(&cpu, 5, Mode::Pr).unwrap();
        assert_eq!(dlm.read_lvb(&fresh), Some([0; LVB_LEN]));
        dlm.unlock(&cpu, fresh);
    }

    #[test]
    fn waiting_handles_cannot_touch_the_lvb() {
        let (dlm, cpu) = setup();
        let (ex, _) = dlm.lock(&cpu, 3, Mode::Ex).unwrap();
        let (w, st) = dlm.lock(&cpu, 3, Mode::Pw).unwrap();
        assert_eq!(st, LockStatus::Waiting);
        assert_eq!(dlm.read_lvb(&w), None);
        assert!(!dlm.write_lvb(&w, [1; LVB_LEN]));
        dlm.unlock(&cpu, w);
        dlm.unlock(&cpu, ex);
    }

    #[test]
    fn many_resources_hash_independently() {
        let (dlm, cpu) = setup();
        let handles: Vec<_> = (0..500u64)
            .map(|n| dlm.lock(&cpu, n, Mode::Ex).unwrap().0)
            .collect();
        assert_eq!(dlm.stats().resources_created.get(), 500);
        for h in handles {
            dlm.unlock(&cpu, h);
        }
        assert_eq!(dlm.stats().resources_freed.get(), 500);
        cpu.flush();
        dlm.arena().reclaim();
        kmem::verify::verify_empty(dlm.arena());
    }

    #[test]
    fn cross_thread_lock_traffic() {
        let arena = KmemArena::new(KmemConfig::small()).unwrap();
        let dlm = Dlm::new(arena.clone(), 64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let dlm = Arc::clone(&dlm);
                let arena = arena.clone();
                s.spawn(move || {
                    let cpu = arena.register_cpu().unwrap();
                    let mut held: Vec<LockHandle> = Vec::new();
                    for i in 0..2000u64 {
                        let res = (i * 37 + t) % 50;
                        let mode = Mode::ALL[(i % 6) as usize];
                        if let Ok((h, _)) = dlm.lock(&cpu, res, mode) {
                            held.push(h);
                        }
                        if held.len() > 8 {
                            let h = held.swap_remove((i as usize) % held.len());
                            dlm.unlock(&cpu, h);
                        }
                    }
                    for h in held {
                        dlm.unlock(&cpu, h);
                    }
                });
            }
        });
        // Everything released: no locks remain on any resource.
        for n in 0..50 {
            assert_eq!(dlm.lock_count(n), 0, "resource {n}");
        }
        dlm.arena().reclaim();
        kmem::verify::verify_arena(dlm.arena());
    }
}
