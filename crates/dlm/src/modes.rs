//! VMS-style lock modes and the compatibility matrix.

/// The six classic lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Mode {
    /// Null: placeholder interest, compatible with everything.
    Nl = 0,
    /// Concurrent read.
    Cr = 1,
    /// Concurrent write.
    Cw = 2,
    /// Protected read (shared).
    Pr = 3,
    /// Protected write (update).
    Pw = 4,
    /// Exclusive.
    Ex = 5,
}

impl Mode {
    /// All modes, weakest first.
    pub const ALL: [Mode; 6] = [Mode::Nl, Mode::Cr, Mode::Cw, Mode::Pr, Mode::Pw, Mode::Ex];

    /// The standard compatibility matrix (rows = held, columns =
    /// requested).
    #[rustfmt::skip]
    const COMPAT: [[bool; 6]; 6] = [
        // NL     CR     CW     PR     PW     EX
        [ true,  true,  true,  true,  true,  true ], // NL
        [ true,  true,  true,  true,  true,  false], // CR
        [ true,  true,  true,  false, false, false], // CW
        [ true,  true,  false, true,  false, false], // PR
        [ true,  true,  false, false, false, false], // PW
        [ true,  false, false, false, false, false], // EX
    ];

    /// Whether a request for `self` can be granted while `held` is
    /// granted.
    #[inline]
    pub fn compatible_with(self, held: Mode) -> bool {
        Self::COMPAT[held as usize][self as usize]
    }

    /// Builds a mode from its wire value.
    pub fn from_u8(v: u8) -> Mode {
        Mode::ALL[usize::from(v)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        for a in Mode::ALL {
            for b in Mode::ALL {
                assert_eq!(a.compatible_with(b), b.compatible_with(a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn null_is_compatible_with_everything() {
        for m in Mode::ALL {
            assert!(Mode::Nl.compatible_with(m));
        }
    }

    #[test]
    fn exclusive_conflicts_with_everything_but_null() {
        for m in Mode::ALL {
            assert_eq!(Mode::Ex.compatible_with(m), m == Mode::Nl);
        }
    }

    #[test]
    fn shared_read_self_compatible() {
        assert!(Mode::Pr.compatible_with(Mode::Pr));
        assert!(!Mode::Pr.compatible_with(Mode::Pw));
        assert!(Mode::Cw.compatible_with(Mode::Cw));
        assert!(!Mode::Cw.compatible_with(Mode::Pr));
    }

    #[test]
    fn round_trip_u8() {
        for m in Mode::ALL {
            assert_eq!(Mode::from_u8(m as u8), m);
        }
    }
}
