//! A distributed-lock-manager substrate driven by `kmem`.
//!
//! The paper's realistic benchmark is "a distributed lock manager, which
//! makes heavy use of `kmem_alloc` in order to build data structures needed
//! to track lock requests and ownership", as used by OLTP clusters. This
//! crate reproduces that substrate: a VMS-style lock manager whose resource
//! blocks and lock blocks are allocated from a [`kmem::KmemArena`] — sized
//! so resource blocks land in the **512-byte** class and lock blocks in the
//! **256-byte** class, the two classes whose miss rates the paper reports.
//!
//! Six lock modes with the standard compatibility matrix, a hashed resource
//! table, per-resource grant and FIFO wait queues, conversions, and
//! cancellation. Waiting is cooperative (poll/cancel) rather than
//! thread-blocking, which keeps the benchmark workload deterministic.

pub mod manager;
pub mod modes;
pub mod workload;

pub use manager::{AstFn, Dlm, DlmStats, LockHandle, LockStatus, LVB_LEN};
pub use modes::Mode;
