//! OLTP-style lock workload for the miss-rate experiment.
//!
//! The paper's DLM benchmark drives the lock manager the way an OLTP
//! cluster would: "huge numbers of small blocks of memory to track
//! database locking". Crucially, in such a system the CPU that releases a
//! lock is usually *not* the CPU that acquired it — requests for one
//! transaction are serviced by whichever CPU takes the network interrupt —
//! which is precisely the traffic pattern the allocator's global layer
//! exists for ("one CPU allocates buffers of a given size, which are then
//! passed to other CPUs that free them").
//!
//! Workers therefore share a pool of granted [`LockHandle`]s: each worker
//! pushes the locks it acquires and releases locks acquired by anyone,
//! so LKBs (256 B) and RSBs (512 B) continually migrate between CPUs.

use kmem::CpuHandle;
use kmem_smp::SpinLock;
use kmem_testkit::Rng;

use crate::manager::{Dlm, LockHandle, LockStatus};
use crate::modes::Mode;

/// Parameters for one worker.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of distinct resources (database objects).
    pub resources: u64,
    /// Lock operations to issue.
    pub ops: usize,
    /// Bound on the *shared* pool of held locks.
    pub working_set: usize,
    /// Locks acquired per transaction before the matching release burst.
    /// Transactions acquire all their locks up front and release at
    /// commit, so allocator traffic comes in bursts larger than `target`.
    pub burst: usize,
    /// RNG seed (combined with the worker id).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            resources: 512,
            ops: 100_000,
            working_set: 256,
            burst: 24,
            seed: 0x5eed,
        }
    }
}

/// The cross-CPU hand-off pool: locks granted by any worker, released by
/// any worker.
pub struct SharedLocks {
    held: SpinLock<Vec<LockHandle>>,
}

impl Default for SharedLocks {
    fn default() -> Self {
        SharedLocks::new()
    }
}

impl SharedLocks {
    /// Creates an empty pool.
    pub fn new() -> Self {
        SharedLocks {
            held: SpinLock::new(Vec::new()),
        }
    }

    /// Deposits a granted lock.
    pub fn push(&self, h: LockHandle) {
        self.held.lock().push(h);
    }

    /// Withdraws an arbitrary lock (pseudo-randomly chosen).
    pub fn pop(&self, rng: &mut Rng) -> Option<LockHandle> {
        let mut held = self.held.lock();
        if held.is_empty() {
            return None;
        }
        let idx = rng.index(held.len());
        Some(held.swap_remove(idx))
    }

    /// Current pool size.
    pub fn len(&self) -> usize {
        self.held.lock().len()
    }

    /// Returns whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Releases every pooled lock through `cpu`.
    pub fn drain(&self, dlm: &Dlm, cpu: &CpuHandle) {
        let handles = core::mem::take(&mut *self.held.lock());
        for h in handles {
            dlm.unlock(cpu, h);
        }
    }
}

/// What one worker observed.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkerReport {
    /// Requests granted immediately.
    pub granted: usize,
    /// Requests queued (cancelled on the spot).
    pub waited: usize,
    /// Conversions attempted.
    pub converts: usize,
    /// Locks this worker released on behalf of the pool.
    pub released: usize,
}

/// OLTP-ish mode mix: mostly reads, some updates, few exclusives.
fn pick_mode(rng: &mut Rng) -> Mode {
    match rng.range_u64(0..100) {
        0..=44 => Mode::Cr,
        45..=69 => Mode::Pr,
        70..=84 => Mode::Cw,
        85..=94 => Mode::Pw,
        95..=97 => Mode::Ex,
        _ => Mode::Nl,
    }
}

/// Runs the lock workload on the calling thread's CPU handle, exchanging
/// granted locks through `shared`.
pub fn run_worker(
    dlm: &Dlm,
    cpu: &CpuHandle,
    shared: &SharedLocks,
    cfg: WorkloadConfig,
    worker: u64,
) -> WorkerReport {
    let mut rng = Rng::new(cfg.seed ^ (worker.wrapping_mul(0x9E37_79B9)));
    let mut report = WorkerReport::default();
    let mut remaining = cfg.ops;
    while remaining > 0 {
        // Transaction body: acquire a burst of locks.
        let burst = cfg.burst.min(remaining);
        for _ in 0..burst {
            let res = rng.range_u64(0..cfg.resources);
            let mode = pick_mode(&mut rng);
            match dlm.lock(cpu, res, mode) {
                Ok((h, LockStatus::Granted)) => {
                    report.granted += 1;
                    // Occasionally convert, as real callers do.
                    if rng.ratio(1, 8) {
                        report.converts += 1;
                        let _ = dlm.convert(cpu, &h, pick_mode(&mut rng));
                    }
                    shared.push(h);
                }
                Ok((h, LockStatus::Waiting)) => {
                    report.waited += 1;
                    // Impatient caller: cancel rather than block.
                    dlm.unlock(cpu, h);
                }
                Err(_) => {
                    // Memory pressure: shed the shared set and continue.
                    shared.drain(dlm, cpu);
                }
            }
        }
        remaining -= burst;
        // Commit: release a burst of (anyone's) locks, keeping the shared
        // pool bounded.
        // While the shared pool is below its working set, commits release
        // less than they acquired (the database's lock population is
        // growing); at steady state they release a full burst. Occasionally
        // a large transaction commits and releases a gust — the sustained
        // one-sided flow that pushes traffic through the global layer.
        let base_release = if shared.len() < cfg.working_set / 2 {
            burst / 2
        } else {
            burst
        };
        let gust = if rng.ratio(1, 64) {
            shared.len() / 4
        } else {
            0
        };
        let to_release = base_release + gust + shared.len().saturating_sub(cfg.working_set);
        for _ in 0..to_release {
            match shared.pop(&mut rng) {
                Some(h) => {
                    dlm.unlock(cpu, h);
                    report.released += 1;
                }
                None => break,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmem::{KmemArena, KmemConfig};

    #[test]
    fn workload_runs_and_releases_everything() {
        let arena = KmemArena::new(KmemConfig::small()).unwrap();
        let dlm = Dlm::new(arena.clone(), 64);
        let cpu = arena.register_cpu().unwrap();
        let shared = SharedLocks::new();
        let cfg = WorkloadConfig {
            resources: 32,
            ops: 5_000,
            working_set: 16,
            burst: 8,
            seed: 42,
        };
        let report = run_worker(&dlm, &cpu, &shared, cfg, 0);
        assert_eq!(report.granted + report.waited, 5_000);
        shared.drain(&dlm, &cpu);
        for n in 0..32 {
            assert_eq!(dlm.lock_count(n), 0);
        }
        // The workload really does hit the 256 B and 512 B classes.
        let stats = arena.stats();
        let c256 = stats.classes.iter().find(|c| c.size == 256).unwrap();
        let c512 = stats.classes.iter().find(|c| c.size == 512).unwrap();
        assert!(c256.cpu_alloc.accesses >= 5_000);
        assert!(c512.cpu_alloc.accesses > 0);
        cpu.flush();
        arena.reclaim();
        kmem::verify::verify_empty(&arena);
    }

    #[test]
    fn multi_worker_workload_is_clean() {
        let arena = KmemArena::new(KmemConfig::small()).unwrap();
        let dlm = Dlm::new(arena.clone(), 128);
        let shared = SharedLocks::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let dlm = std::sync::Arc::clone(&dlm);
                let arena = arena.clone();
                let shared = &shared;
                s.spawn(move || {
                    let cpu = arena.register_cpu().unwrap();
                    let cfg = WorkloadConfig {
                        resources: 64,
                        ops: 10_000,
                        working_set: 32,
                        burst: 12,
                        seed: 7,
                    };
                    run_worker(&dlm, &cpu, shared, cfg, t);
                });
            }
        });
        let cpu = arena.register_cpu().unwrap();
        shared.drain(&dlm, &cpu);
        for n in 0..64 {
            assert_eq!(dlm.lock_count(n), 0);
        }
        arena.reclaim();
        kmem::verify::verify_arena(&arena);
    }
}
