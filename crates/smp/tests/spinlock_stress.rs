//! Cross-thread stress for the SMP primitives.

use std::sync::atomic::{AtomicBool, Ordering};

use kmem_smp::probe::{self, ProbeEvent};
use kmem_smp::{CpuRegistry, EventCounter, SpinLock};

/// The classic increment torture: interleaved critical sections of
/// different lengths never lose updates, and contention statistics move.
#[test]
fn spinlock_torture_with_mixed_section_lengths() {
    let lock = SpinLock::new((0u64, [0u8; 64]));
    std::thread::scope(|s| {
        for t in 0..6u8 {
            let lock = &lock;
            s.spawn(move || {
                for i in 0..20_000u64 {
                    let mut g = lock.lock();
                    g.0 += 1;
                    if i % 64 == 0 {
                        // Occasionally a long section, touching the data.
                        for b in g.1.iter_mut() {
                            *b = b.wrapping_add(t);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(lock.lock().0, 120_000);
    // On any multi-thread schedule some acquisitions contend; on a 1-CPU
    // box preemption still forces it occasionally. Don't assert a count,
    // just that the counters are readable and consistent.
    let stats = lock.stats();
    assert!(stats.contended.get() <= 120_000);
}

/// Guards released by panicking threads leave the lock usable.
#[test]
fn lock_survives_a_panicking_holder() {
    let lock = std::sync::Arc::new(SpinLock::new(7));
    let l2 = std::sync::Arc::clone(&lock);
    let res = std::thread::spawn(move || {
        let _g = l2.lock();
        panic!("holder dies");
    })
    .join();
    assert!(res.is_err());
    // The guard's Drop ran during unwinding: not poisoned, still usable.
    assert_eq!(*lock.lock(), 7);
}

/// Probe recording is strictly per-thread: a recording thread never sees
/// another thread's events.
#[test]
fn probe_recording_is_thread_local() {
    let noisy_running = AtomicBool::new(true);
    let observed = EventCounter::new();
    std::thread::scope(|s| {
        // A noisy thread emitting while not recording (its events vanish).
        s.spawn(|| {
            while noisy_running.load(Ordering::Relaxed) {
                probe::emit(ProbeEvent::Work { cycles: 1 });
                std::thread::yield_now();
            }
        });
        // The recording thread sees exactly its own events.
        s.spawn(|| {
            for _ in 0..100 {
                let ((), events) = probe::record(|| {
                    probe::emit(ProbeEvent::Work { cycles: 42 });
                });
                assert_eq!(events.len(), 1);
                observed.add(events.len() as u64);
            }
            noisy_running.store(false, Ordering::Relaxed);
        });
    });
    assert_eq!(observed.get(), 100);
}

/// Registry claims hand over cleanly between racing threads.
#[test]
fn registry_claims_migrate_under_contention() {
    let reg = CpuRegistry::new(2);
    let succeeded = EventCounter::new();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let reg = &reg;
            let succeeded = &succeeded;
            s.spawn(move || {
                for _ in 0..1000 {
                    if let Ok(claim) = reg.claim_any() {
                        succeeded.inc();
                        // Hold briefly.
                        std::hint::black_box(claim.cpu());
                        drop(claim);
                    }
                }
            });
        }
    });
    assert!(succeeded.get() > 0);
    // Both CPUs are free again.
    let a = reg.claim_any().unwrap();
    let b = reg.claim_any().unwrap();
    assert_ne!(a.cpu(), b.cpu());
}
