//! CPU ownership registry.
//!
//! The paper's fast path is safe *because* "CPUs are prohibited from
//! accessing other CPUs' per-CPU caches". In the kernel that prohibition is
//! structural (code runs *on* a CPU); in userspace we must grant it. A
//! [`CpuRegistry`] hands out at most one live [`CpuClaim`] per virtual CPU,
//! and the allocator only reaches per-CPU state through a claim. One OS
//! thread may hold several claims (the discrete-event simulator drives all
//! virtual CPUs from one thread), which is sound because a single thread
//! provides the required mutual exclusion by itself.

use core::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::cpu::CpuId;

/// Error returned when a CPU claim cannot be granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimError {
    /// The requested CPU is already claimed by another context.
    AlreadyClaimed(usize),
    /// Every CPU in the registry is claimed.
    Exhausted,
}

impl core::fmt::Display for ClaimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClaimError::AlreadyClaimed(i) => write!(f, "cpu{i} is already claimed"),
            ClaimError::Exhausted => write!(f, "all CPUs are claimed"),
        }
    }
}

impl std::error::Error for ClaimError {}

/// Tracks which virtual CPUs are currently owned by a claim.
pub struct CpuRegistry {
    claimed: Box<[AtomicBool]>,
}

impl CpuRegistry {
    /// Creates a registry for `ncpus` virtual CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `ncpus` is zero or exceeds [`crate::MAX_CPUS`].
    pub fn new(ncpus: usize) -> Arc<Self> {
        assert!(ncpus > 0, "need at least one CPU");
        assert!(ncpus <= crate::MAX_CPUS, "too many CPUs");
        let claimed = (0..ncpus).map(|_| AtomicBool::new(false)).collect();
        Arc::new(CpuRegistry { claimed })
    }

    /// Number of virtual CPUs in the registry.
    pub fn ncpus(&self) -> usize {
        self.claimed.len()
    }

    /// Claims a specific CPU.
    pub fn claim(self: &Arc<Self>, cpu: CpuId) -> Result<CpuClaim, ClaimError> {
        let idx = cpu.index();
        assert!(idx < self.claimed.len(), "cpu index out of range");
        if self.claimed[idx]
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Ok(CpuClaim {
                registry: Arc::clone(self),
                cpu,
            })
        } else {
            Err(ClaimError::AlreadyClaimed(idx))
        }
    }

    /// Claims the lowest-numbered free CPU.
    pub fn claim_any(self: &Arc<Self>) -> Result<CpuClaim, ClaimError> {
        for idx in 0..self.claimed.len() {
            if let Ok(claim) = self.claim(CpuId::new(idx)) {
                return Ok(claim);
            }
        }
        Err(ClaimError::Exhausted)
    }

    /// Returns whether `cpu` is currently claimed.
    pub fn is_claimed(&self, cpu: CpuId) -> bool {
        self.claimed[cpu.index()].load(Ordering::Acquire)
    }
}

/// Exclusive ownership of one virtual CPU; released on drop.
///
/// A claim is `Send` (ownership may migrate to another thread) but not
/// `Sync`: two threads may never operate as the same CPU concurrently.
pub struct CpuClaim {
    registry: Arc<CpuRegistry>,
    cpu: CpuId,
}

// A `CpuClaim` contains no interior mutability reachable through `&self`,
// but we still suppress `Sync` so shared references cannot be used to smuggle
// the same CPU identity onto two threads at once via future API additions.
impl CpuClaim {
    /// The CPU this claim owns.
    #[inline]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }
}

impl Drop for CpuClaim {
    fn drop(&mut self) {
        self.registry.claimed[self.cpu.index()].store(false, Ordering::Release);
    }
}

impl core::fmt::Debug for CpuClaim {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CpuClaim({})", self.cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_release_cycle() {
        let r = CpuRegistry::new(2);
        let c0 = r.claim(CpuId::new(0)).unwrap();
        assert!(r.is_claimed(CpuId::new(0)));
        assert_eq!(
            r.claim(CpuId::new(0)).unwrap_err(),
            ClaimError::AlreadyClaimed(0)
        );
        drop(c0);
        assert!(!r.is_claimed(CpuId::new(0)));
        let _c0 = r.claim(CpuId::new(0)).unwrap();
    }

    #[test]
    fn claim_any_fills_in_order_and_exhausts() {
        let r = CpuRegistry::new(3);
        let a = r.claim_any().unwrap();
        let b = r.claim_any().unwrap();
        let c = r.claim_any().unwrap();
        assert_eq!(a.cpu().index(), 0);
        assert_eq!(b.cpu().index(), 1);
        assert_eq!(c.cpu().index(), 2);
        assert_eq!(r.claim_any().unwrap_err(), ClaimError::Exhausted);
        drop(b);
        assert_eq!(r.claim_any().unwrap().cpu().index(), 1);
    }

    #[test]
    fn concurrent_claims_are_exclusive() {
        let r = CpuRegistry::new(1);
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    if let Ok(claim) = r.claim(CpuId::new(0)) {
                        winners.fetch_add(1, Ordering::Relaxed);
                        // Hold briefly so the others observe the claim.
                        std::thread::yield_now();
                        drop(claim);
                    }
                });
            }
        });
        assert!(winners.load(Ordering::Relaxed) >= 1);
    }
}
