//! CPU identities.

use core::fmt;

/// Maximum number of virtual CPUs supported by the substrate.
///
/// The paper's measurements run on a 26-CPU Sequent Symmetry 2000; 64 leaves
/// headroom for parameter sweeps while keeping per-CPU tables small.
pub const MAX_CPUS: usize = 64;

/// Identity of one virtual CPU.
///
/// A `CpuId` is only a name; exclusive ownership of the per-CPU state behind
/// it is granted by [`crate::registry::CpuRegistry`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(u16);

impl CpuId {
    /// Creates a `CpuId` from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_CPUS`.
    pub fn new(index: usize) -> Self {
        assert!(index < MAX_CPUS, "cpu index {index} out of range");
        CpuId(index as u16)
    }

    /// Returns the raw index of this CPU.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Debug for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 7, MAX_CPUS - 1] {
            assert_eq!(CpuId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = CpuId::new(MAX_CPUS);
    }

    #[test]
    fn display_names_cpu() {
        assert_eq!(CpuId::new(3).to_string(), "cpu3");
        assert_eq!(format!("{:?}", CpuId::new(12)), "cpu12");
    }
}
