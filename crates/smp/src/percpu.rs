//! Per-CPU slot arrays.

use crate::cpu::CpuId;
use crate::pad::CachePadded;

/// An array of `T`, one cache-line-padded slot per virtual CPU.
///
/// This is the storage shape behind Figure 4 of the paper ("Each CPU has a
/// pointer to an array of per-CPU caches"): indexing is by [`CpuId`], and
/// padding guarantees that CPU *i* touching its slot never invalidates a
/// line holding CPU *j*'s slot.
///
/// `PerCpu` hands out only shared references; interior mutability (and the
/// proof that it is exclusive) is the responsibility of the element type —
/// the allocator stores `UnsafeCell`s here and uses [`crate::CpuClaim`]
/// ownership as the exclusion argument.
pub struct PerCpu<T> {
    slots: Box<[CachePadded<T>]>,
}

impl<T> PerCpu<T> {
    /// Builds a per-CPU array with `ncpus` slots, initializing each with
    /// `init(cpu)`.
    pub fn new(ncpus: usize, mut init: impl FnMut(CpuId) -> T) -> Self {
        let slots = (0..ncpus)
            .map(|i| CachePadded::new(init(CpuId::new(i))))
            .collect();
        PerCpu { slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns whether the array is empty (it never is in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns the slot for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the array.
    #[inline]
    pub fn get(&self, cpu: CpuId) -> &T {
        &self.slots[cpu.index()]
    }

    /// Iterates over `(CpuId, &T)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CpuId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, slot)| (CpuId::new(i), &**slot))
    }

    /// Reads every slot through `f`, collecting one `R` per CPU in CPU
    /// order. This is the snapshot shape: a statistics thread walks all
    /// slots read-only while the owners keep writing their own.
    pub fn collect<R>(&self, mut f: impl FnMut(CpuId, &T) -> R) -> Vec<R> {
        self.iter().map(|(cpu, slot)| f(cpu, slot)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_receives_cpu_ids() {
        let p = PerCpu::new(4, |cpu| cpu.index() * 10);
        assert_eq!(p.len(), 4);
        assert_eq!(*p.get(CpuId::new(2)), 20);
        let collected: Vec<_> = p.iter().map(|(c, v)| (c.index(), *v)).collect();
        assert_eq!(collected, vec![(0, 0), (1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn collect_visits_slots_in_cpu_order() {
        let p = PerCpu::new(3, |cpu| cpu.index() as u64);
        assert_eq!(p.collect(|_, v| v * 2), vec![0, 2, 4]);
    }

    #[test]
    fn slots_are_padded() {
        let p = PerCpu::new(2, |_| 0u8);
        let a = p.get(CpuId::new(0)) as *const u8 as usize;
        let b = p.get(CpuId::new(1)) as *const u8 as usize;
        assert!(b - a >= crate::pad::CACHE_LINE);
    }
}
