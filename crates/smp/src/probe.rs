//! Shared-memory event probes for the SMP simulator.
//!
//! The paper measured its allocators on a 25-CPU Sequent Symmetry and with a
//! logic analyzer; this reproduction runs where neither exists. Instead,
//! allocator *slow paths* (lock acquisitions, shared-line manipulation in
//! the global and coalescing layers) call [`emit`] at each point where real
//! hardware would issue a shared-memory transaction. When nothing is
//! recording, [`emit`] is a thread-local flag test and costs a nanosecond or
//! two on paths that already cost hundreds; when the discrete-event
//! simulator in `kmem-sim` is recording, the events drive a MESI +
//! lock-contention cost model that reconstructs elapsed time on an N-CPU
//! machine.
//!
//! Per-CPU fast paths do **not** emit probes: by construction they touch
//! only CPU-private lines, so the simulator charges them a calibrated
//! constant instead. This keeps the real, measurable fast path exactly as
//! lean as the paper's.

use core::cell::{Cell, RefCell};

/// One shared-memory transaction reported by an allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// An atomic read-modify-write acquiring `lock` (its address).
    LockAcquire { lock: usize },
    /// A store releasing `lock`.
    LockRelease { lock: usize },
    /// A load from a potentially-shared cache line.
    LineRead { line: usize },
    /// A store to a potentially-shared cache line.
    LineWrite { line: usize },
    /// An atomic read-modify-write (CAS attempt, fetch-add) on a
    /// potentially-shared cache line — a line acquisition plus the
    /// interlocked-cycle stall, distinct from a plain store.
    LineRmw { line: usize },
    /// Plain CPU work of roughly `cycles` cycles touching no shared lines.
    Work { cycles: u64 },
}

/// Bytes per modelled cache line (80486-era systems used 16–32 bytes; we
/// model the 64-byte lines of the machines this code actually runs on).
pub const LINE_SHIFT: u32 = 6;

/// Maps an address to its cache-line index.
#[inline]
pub fn line_of<T>(ptr: *const T) -> usize {
    (ptr as usize) >> LINE_SHIFT
}

thread_local! {
    static RECORDING: Cell<bool> = const { Cell::new(false) };
    static EVENTS: RefCell<Vec<ProbeEvent>> = const { RefCell::new(Vec::new()) };
}

/// Returns whether the current thread is recording probe events.
#[inline]
pub fn recording() -> bool {
    RECORDING.with(|r| r.get())
}

/// Records `ev` if the current thread is recording; otherwise does nothing.
#[inline]
pub fn emit(ev: ProbeEvent) {
    if recording() {
        EVENTS.with(|e| e.borrow_mut().push(ev));
    }
}

/// Starts recording probe events on the current thread.
///
/// Any events from a previous recording that were never taken are discarded.
pub fn start() {
    EVENTS.with(|e| e.borrow_mut().clear());
    RECORDING.with(|r| r.set(true));
}

/// Stops recording and returns the events recorded since [`start`].
pub fn finish() -> Vec<ProbeEvent> {
    RECORDING.with(|r| r.set(false));
    EVENTS.with(|e| core::mem::take(&mut *e.borrow_mut()))
}

/// Drains events recorded so far without stopping the recording.
pub fn drain() -> Vec<ProbeEvent> {
    EVENTS.with(|e| core::mem::take(&mut *e.borrow_mut()))
}

/// Runs `f` with recording enabled and returns its result plus the events.
pub fn record<R>(f: impl FnOnce() -> R) -> (R, Vec<ProbeEvent>) {
    start();
    let r = f();
    let ev = finish();
    (r, ev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_is_inert_when_not_recording() {
        emit(ProbeEvent::Work { cycles: 1 });
        let (_, ev) = record(|| ());
        assert!(ev.is_empty());
    }

    #[test]
    fn record_captures_events_in_order() {
        let ((), ev) = record(|| {
            emit(ProbeEvent::LockAcquire { lock: 1 });
            emit(ProbeEvent::LineWrite { line: 2 });
            emit(ProbeEvent::LockRelease { lock: 1 });
        });
        assert_eq!(
            ev,
            vec![
                ProbeEvent::LockAcquire { lock: 1 },
                ProbeEvent::LineWrite { line: 2 },
                ProbeEvent::LockRelease { lock: 1 },
            ]
        );
        // Recording stopped again.
        emit(ProbeEvent::Work { cycles: 1 });
        let (_, ev) = record(|| ());
        assert!(ev.is_empty());
    }

    #[test]
    fn drain_keeps_recording() {
        start();
        emit(ProbeEvent::Work { cycles: 1 });
        let first = drain();
        emit(ProbeEvent::Work { cycles: 2 });
        let second = finish();
        assert_eq!(first, vec![ProbeEvent::Work { cycles: 1 }]);
        assert_eq!(second, vec![ProbeEvent::Work { cycles: 2 }]);
    }

    #[test]
    fn line_of_groups_by_64_bytes() {
        let base = 0x1000usize as *const u8;
        // SAFETY: pointers are never dereferenced; only address arithmetic.
        let l0 = line_of(base);
        let l1 = line_of(unsafe { base.add(63) });
        let l2 = line_of(unsafe { base.add(64) });
        assert_eq!(l0, l1);
        assert_eq!(l2, l0 + 1);
    }
}
